"""Multi-device distributed coloring: identity, topology, transports.

The contracts under test (see ``src/repro/distributed/`` and
docs/DISTRIBUTED.md):

* **byte-identity** — ``color_distributed(devices=k)`` returns colors
  byte-identical to ``color_sharded(num_shards=k)``, for every device
  count, topology, transport, and speculation mode;
* **halo protocol** — every device's halo equals the global snapshot
  each round (``HaloState.verify``), which is what makes the identity
  hold;
* **speculation** — delta exchange synchronizes fewer device pairs and
  ships fewer modeled bytes than the lockstep loop, without changing
  the colors;
* **degradation** — persistent device failures fall back to a
  single-device serial ``color_sharded`` run (recorded, byte-identical),
  or raise :class:`DistributedColoringError` under a strict policy;
* **cache-key invariance** — ``devices=``/``topology=`` never fork
  ``job_cache_key``.
"""

import multiprocessing

import numpy as np
import pytest

from repro import (
    RunConfig,
    color_distributed,
    color_graph,
    color_sharded,
    rmat_er,
)
from repro.cli import main
from repro.coloring.registry import ENGINE_KEYWORDS
from repro.distributed import (
    DistributedColoringError,
    HaloState,
    Link,
    LocalTransport,
    Message,
    PoolTransport,
    TOPOLOGIES,
    Topology,
    build_halo_plan,
    resolve_topology,
    resolve_transport,
)
from repro.graph.builder import complete_graph, path_graph
from repro.graph.partition import block_partition
from repro.parallel import color_streamed
from repro.parallel.cache import job_cache_key
from repro.parallel.scheduler import ProcessPoolScheduler

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="pool transport tests rely on cheap fork workers"
)

UNIFORM_KEYS = ("sync_rounds", "halo_bytes_modeled", "speculation_hits")


@pytest.fixture(scope="module")
def medium():
    return rmat_er(scale=11, seed=7)


@pytest.fixture(scope="module")
def small():
    return rmat_er(scale=8, seed=3)


# ---------------------------------------------------------------- identity
@pytest.mark.parametrize("devices", [2, 4, 8])
def test_byte_identical_to_sharded(medium, devices):
    sharded = color_sharded(medium, "data-ldg", num_shards=devices)
    dist = color_distributed(medium, "data-ldg", devices=devices)
    assert np.array_equal(dist.colors, sharded.colors)
    dist.validate(medium)
    stats = dist.shard_stats
    assert stats["mode"] == "distributed"
    assert stats["devices"] == devices
    assert stats["resolution_rounds"] == sharded.shard_stats["resolution_rounds"]


def test_lockstep_and_every_topology_keep_identity(medium):
    base = color_sharded(medium, "data-ldg", num_shards=4)
    for topology in TOPOLOGIES:
        for speculate in (True, False):
            dist = color_distributed(
                medium, "data-ldg", devices=4,
                topology=topology, speculate=speculate,
            )
            assert np.array_equal(dist.colors, base.colors)
            assert dist.shard_stats["topology"] == topology


def test_host_scheme_distributes_too(medium):
    sharded = color_sharded(medium, "sequential", num_shards=3)
    dist = color_distributed(medium, "sequential", devices=3)
    assert np.array_equal(dist.colors, sharded.colors)
    assert dist.scheme == "distributed(sequential)x3@pcie"


def test_single_device_equals_direct(medium):
    dist = color_distributed(medium, "data-ldg", devices=1)
    direct = color_graph(medium, "data-ldg")
    assert np.array_equal(dist.colors, direct.colors)
    stats = dist.shard_stats
    assert stats["links"] == 0
    assert stats["sync_rounds"] == 0
    assert stats["halo_bytes_modeled"] == 0


def test_more_devices_than_vertices_is_capped():
    tiny = rmat_er(scale=4, seed=1)
    dist = color_distributed(tiny, "data-ldg", devices=10_000)
    dist.validate(tiny)
    assert dist.shard_stats["devices"] <= tiny.num_vertices


def test_devices_validation(medium):
    with pytest.raises(ValueError, match="devices"):
        color_distributed(medium, devices=0)


def test_unknown_method_fails_fast(medium):
    with pytest.raises(ValueError, match=r"color_distributed\(\): unknown method"):
        color_distributed(medium, "no-such-method", devices=2)


# -------------------------------------------------------------- speculation
def test_speculation_reduces_pair_syncs_and_bytes():
    # The weak-scaling benchmark's D=4 leg: fixed per-device shard size.
    g = rmat_er(scale=12, seed=5)
    spec = color_distributed(g, "data-ldg", devices=4, speculate=True)
    lock = color_distributed(g, "data-ldg", devices=4, speculate=False)
    assert np.array_equal(spec.colors, lock.colors)
    s, l = spec.shard_stats, lock.shard_stats
    assert s["resolution_rounds"] == l["resolution_rounds"]
    rounds, links = l["resolution_rounds"], l["links"]
    # Lockstep: every linked pair synchronizes every round, plus the
    # initial full exchange.
    assert l["sync_rounds"] == links * (rounds + 1)
    assert l["speculation_hits"] == 0
    # Speculation skips exactly the pair-rounds it avoided.
    assert s["sync_rounds"] + s["speculation_hits"] == l["sync_rounds"]
    assert s["speculation_hits"] > 0
    assert s["sync_rounds"] < l["sync_rounds"]
    assert s["halo_bytes_modeled"] < l["halo_bytes_modeled"]
    assert spec.scheme == "distributed(data-ldg)x4@pcie"
    assert lock.scheme == "distributed(data-ldg)x4@pcie:lockstep"


def test_comm_cost_lands_in_transfer_time(medium):
    dist = color_distributed(medium, "data-ldg", devices=4)
    stats = dist.shard_stats
    assert stats["comm_time_us"] > 0
    # transfer_time_us = slowest device's PCIe time + interconnect cost.
    assert dist.transfer_time_us >= stats["comm_time_us"]


# ----------------------------------------------------------------- topology
def test_link_transfer_arithmetic():
    link = Link(5.0, 6.0)  # 6 GB/s = 6000 bytes/us
    assert link.transfer_us(6000) == pytest.approx(5.0 + 1.0)
    assert link.transfer_us(6000, hops=2) == pytest.approx(10.0 + 1.0)


def test_shared_bus_sums_and_all_to_all_maxes():
    msgs = [Message(0, 1, 6000), Message(1, 0, 6000)]
    pcie = TOPOLOGIES["pcie"](2)
    nvlink = TOPOLOGIES["nvlink"](2)
    per_pcie = pcie.link.transfer_us(6000)
    assert pcie.exchange_time_us(msgs) == pytest.approx(2 * per_pcie)
    per_nv = nvlink.link.transfer_us(6000)
    assert nvlink.exchange_time_us(msgs) == pytest.approx(per_nv)


def test_ring_routes_over_hops():
    ring = TOPOLOGIES["ring"](4)
    assert ring.hops(0, 1) == 1
    assert ring.hops(0, 2) == 2
    assert ring.hops(0, 3) == 1  # wraps around
    # A 2-hop message occupies both crossed links; concurrent links mean
    # the round costs one (identically loaded) link's time.
    cost = ring.exchange_time_us([Message(0, 2, 8000)])
    assert cost == pytest.approx(ring.link.transfer_us(8000))


def test_empty_exchange_is_free():
    assert TOPOLOGIES["pcie"](4).exchange_time_us([]) == 0.0


def test_unknown_topology_error(medium):
    with pytest.raises(
        ValueError, match=r"color_distributed\(\): unknown topology 'pciex'"
    ):
        color_distributed(medium, devices=2, topology="pciex")
    with pytest.raises(ValueError, match="did you mean 'pcie'"):
        resolve_topology("pciee", 2, entry_point="color_distributed")


def test_topology_instance_passthrough_and_mismatch(medium):
    topo = Topology("custom", "all-to-all", 3, Link(1.0, 50.0))
    dist = color_distributed(medium, "data-ldg", devices=3, topology=topo)
    assert dist.shard_stats["topology"] == "custom"
    with pytest.raises(ValueError, match="models 3 device"):
        color_distributed(medium, devices=2, topology=topo)
    with pytest.raises(TypeError, match="topology="):
        resolve_topology(42, 2)


# ---------------------------------------------------------------- halo plan
def test_halo_plan_on_a_path():
    g = path_graph(4)  # 0-1-2-3 split as [0,1] | [2,3]
    plan = build_halo_plan(g, block_partition(g, 2))
    assert plan.pairs == [(0, 1), (1, 0)]
    assert plan.send[(0, 1)].tolist() == [1]
    assert plan.send[(1, 0)].tolist() == [2]
    assert plan.boundary_count() == 2
    assert plan.full_exchange_bytes() == 2 * 4  # two int32 colors
    assert plan.recv_ids[0].tolist() == [2]
    assert plan.recv_ids[1].tolist() == [1]


def test_halo_state_verify_catches_drift(small):
    plan = build_halo_plan(small, block_partition(small, 3))
    truth = color_graph(small, "sequential").colors
    halo = HaloState(plan)
    for (d, e), ids in plan.send.items():
        halo.apply(e, ids, truth[ids])
    halo.verify(truth)  # delivered halos == ground truth
    victim = next(e for (d, e), ids in plan.send.items() if ids.size)
    halo.colors[victim][0] += 1
    with pytest.raises(AssertionError, match="halo drift"):
        halo.verify(truth)


# --------------------------------------------------------------- transports
@fork_only
def test_pool_transport_parity_with_local(small):
    local = color_distributed(small, "data-ldg", devices=3, transport="local")
    pool = color_distributed(
        small, "data-ldg", devices=3,
        transport=PoolTransport(scheduler=ProcessPoolScheduler(2)),
    )
    assert np.array_equal(pool.colors, local.colors)
    ls, ps = dict(local.shard_stats), dict(pool.shard_stats)
    assert ls.pop("transport") == "local" and ps.pop("transport") == "pool"
    # Everything else — modeled bytes, sync rounds, per-shard rows — is
    # transport-invariant.
    assert ls == ps


def test_resolve_transport_defaults_and_errors():
    assert isinstance(resolve_transport(None), LocalTransport)
    pool = resolve_transport(None, workers=2)
    assert isinstance(pool, PoolTransport) and pool.workers == 2
    passthrough = LocalTransport()
    assert resolve_transport(passthrough) is passthrough
    with pytest.raises(
        ValueError, match=r"color_distributed\(\): unknown transport 'sockets'"
    ):
        resolve_transport("sockets", entry_point="color_distributed")
    with pytest.raises(ValueError, match="did you mean 'local'"):
        resolve_transport("loca")
    with pytest.raises(TypeError, match="transport="):
        resolve_transport(42)


def test_transport_deliver_models_payload_bytes():
    ids = np.arange(5, dtype=np.int64)
    cols = np.ones(5, dtype=np.int32)
    for xport in (LocalTransport(), PoolTransport()):
        assert xport.deliver([(0, 1, ids, cols)]) == ids.nbytes + cols.nbytes


def test_store_shipping_keeps_identity(small, tmp_path):
    base = color_distributed(small, "data-ldg", devices=3)
    shipped = color_distributed(
        small, "data-ldg", devices=3, store=f"mmap:{tmp_path}"
    )
    assert np.array_equal(shipped.colors, base.colors)


# -------------------------------------------------------------- degradation
def test_device_failures_degrade_to_sharded(small):
    healthy = color_sharded(small, "data-ldg", num_shards=3)
    dist = color_distributed(
        small, "data-ldg", devices=3,
        faults="seed=4; job-error:",  # every device, every attempt
    )
    assert np.array_equal(dist.colors, healthy.colors)
    stats = dist.shard_stats
    assert stats["degraded"] == "sharded"
    assert stats["failed_devices"] == [0, 1, 2]
    # The healing run is single-address-space sharded coloring: global
    # sync per round, no modeled halo traffic.
    assert stats["sync_rounds"] == stats["resolution_rounds"]
    assert stats["halo_bytes_modeled"] == 0
    assert stats["speculation_hits"] == 0
    chains = [d["chain"] for d in dist.robustness["degradations"]]
    assert "distributed" in chains
    event = next(
        d for d in dist.robustness["degradations"] if d["chain"] == "distributed"
    )
    assert event["from"] == "distributed(x3,local)"
    assert event["to"] == "sharded"
    assert event["reason"] == "device-failures"


def test_strict_policy_raises_distributed_error(small):
    with pytest.raises(DistributedColoringError, match="device shard"):
        color_distributed(
            small, "data-ldg", devices=3,
            faults="seed=4; job-error:", health="strict",
        )


@fork_only
def test_worker_crash_in_pool_degrades_to_sharded(small):
    healthy = color_sharded(small, "data-ldg", num_shards=3)
    dist = color_distributed(
        small, "data-ldg", devices=3,
        transport=PoolTransport(
            scheduler=ProcessPoolScheduler(2, retries=1, backoff_s=0.0)
        ),
        faults="seed=4; worker-crash:",
    )
    assert np.array_equal(dist.colors, healthy.colors)
    assert dist.shard_stats["degraded"] == "sharded"
    event = next(
        d for d in dist.robustness["degradations"] if d["chain"] == "distributed"
    )
    assert event["from"] == "distributed(x3,pool)"


@fork_only
def test_worker_crash_strict_raises(small):
    with pytest.raises(DistributedColoringError):
        color_distributed(
            small, "data-ldg", devices=3,
            transport=PoolTransport(
                scheduler=ProcessPoolScheduler(2, retries=1, backoff_s=0.0)
            ),
            faults="seed=4; worker-crash:", health="strict",
        )


def test_round_cap_falls_back_to_sequential_sweep():
    g = complete_graph(8)
    dist = color_distributed(
        g, "data-ldg", devices=2, max_resolution_rounds=0, health="default",
    )
    dist.validate(g)
    stats = dist.shard_stats
    assert stats["fallback"] is True
    events = [
        d for d in dist.robustness["degradations"] if d["chain"] == "distributed"
    ]
    assert events and events[0]["reason"] == "round-cap"
    assert events[0]["to"] == "sequential-sweep"


# ------------------------------------------------------ cache-key invariance
def test_devices_and_topology_never_fork_cache_keys(small):
    assert {"devices", "topology"} <= set(ENGINE_KEYWORDS)
    base = job_cache_key(small, "data-ldg", {})
    assert job_cache_key(
        small, "data-ldg", {"devices": 8, "topology": "ring"}
    ) == base
    assert job_cache_key(
        small, "data-ldg", {"devices": 2, "topology": "nvlink", "workers": 4}
    ) == base


# --------------------------------------------------------- uniform stats
def test_shard_stats_uniform_keys_across_modes(small):
    sharded = color_sharded(small, "data-ldg", num_shards=3)
    streamed = color_streamed(small, "data-ldg", num_windows=3)
    dist = color_distributed(small, "data-ldg", devices=3)
    for result in (sharded, streamed, dist):
        for key in UNIFORM_KEYS:
            assert key in result.shard_stats
    # One address space: a resolution round is one global sync, no bytes.
    for result in (sharded, streamed):
        stats = result.shard_stats
        assert stats["sync_rounds"] == stats["resolution_rounds"]
        assert stats["halo_bytes_modeled"] == 0
        assert stats["speculation_hits"] == 0
    assert dist.shard_stats["halo_bytes_modeled"] > 0


def test_to_dict_schema_v1_carries_distributed_stats(small):
    d = color_distributed(small, "data-ldg", devices=3).to_dict(schema_version=1)
    assert d["schema_version"] == 1
    for key in UNIFORM_KEYS:
        assert key in d["shard_stats"]
    assert d["shard_stats"]["mode"] == "distributed"


# ------------------------------------------------------------- run config
def test_run_config_routes_devices_and_topology(medium):
    cfg = RunConfig(devices=3, topology="ring")
    dist = color_distributed(medium, "data-ldg", config=cfg)
    assert dist.scheme == "distributed(data-ldg)x3@ring"
    base = color_sharded(medium, "data-ldg", num_shards=3)
    assert np.array_equal(dist.colors, base.colors)


def test_run_config_conflicts_and_unsupported(medium):
    with pytest.raises(TypeError, match="'devices' both ways"):
        color_distributed(
            medium, devices=3, config=RunConfig(devices=5)
        )
    with pytest.raises(TypeError, match="does not take"):
        color_graph(medium, "data-ldg", config=RunConfig(devices=2))


# ---------------------------------------------------------- observability
def test_trace_merges_device_subtraces_and_exchanges(medium):
    dist = color_distributed(medium, "data-ldg", devices=4, observe="trace")
    tracer = dist.observation.tracer
    [root] = tracer.roots
    assert root.category == "run" and root.name.startswith("distributed:")
    assert root.counters["devices"] == 4
    devices = [s for s in root.children if s.category == "device"]
    assert len(devices) == 4
    exchanges = root.find("exchange")
    assert exchanges and exchanges[0].name == "halo-exchange:initial"
    assert exchanges[0].counters["mode"] == "full"
    [resolve] = root.find("resolve")
    assert resolve.counters["sync_rounds"] == dist.shard_stats["sync_rounds"]
    assert resolve.counters["remaining_conflicts"] == 0
    for span, _ in tracer.walk():
        assert span.end_us is not None


# ------------------------------------------------------------------- CLI
def test_cli_color_devices(capsys):
    assert main([
        "color", "--graph", "rmat-er", "--scale-div", "256",
        "--devices", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "devices: 2 @ pcie" in out
    assert "speculation hits" in out


def test_cli_color_devices_lockstep_ring(capsys):
    assert main([
        "color", "--graph", "rmat-er", "--scale-div", "256",
        "--devices", "2", "--topology", "ring", "--lockstep",
    ]) == 0
    assert "ring (local, lockstep)" in capsys.readouterr().out


def test_cli_batch_devices_digest(capsys):
    assert main([
        "batch", "--graphs", "rmat-er", "rmat-er", "--scale-div", "256",
        "--devices", "2", "--digest",
    ]) == 0
    out = capsys.readouterr().out
    assert "distributed(data-ldg)x2@pcie" in out and "sha16" in out


def test_cli_flag_combinations_rejected():
    base = ["color", "--graph", "rmat-er", "--scale-div", "256"]
    with pytest.raises(SystemExit, match="needs --devices"):
        main(base + ["--topology", "ring"])
    with pytest.raises(SystemExit, match="--shards/--stream"):
        main(base + ["--devices", "2", "--shards", "2"])
    with pytest.raises(SystemExit, match="--cache"):
        main(base + ["--devices", "2", "--cache", "memory"])
