"""Property-based invariants of graph construction and transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edges
from repro.graph.relabel import bandwidth, relabel


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    u = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
                 dtype=np.int64)
    v = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
                 dtype=np.int64)
    return n, u, v


@settings(max_examples=60, deadline=None)
@given(data=edge_lists())
def test_from_edges_always_simple_symmetric(data):
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    g.validate()  # no loops, no dupes, symmetric


@settings(max_examples=40, deadline=None)
@given(data=edge_lists())
def test_from_edges_idempotent(data):
    """Rebuilding from a built graph's own edges reproduces it exactly."""
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    eu, ev = g.edge_endpoints()
    g2 = from_edges(
        eu.astype(np.int64), ev.astype(np.int64), num_vertices=n, symmetrize=False
    )
    assert np.array_equal(g2.row_offsets, g.row_offsets)
    assert np.array_equal(g2.col_indices, g.col_indices)


@settings(max_examples=40, deadline=None)
@given(data=edge_lists())
def test_edge_count_bounds(data):
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    proper = (u != v).sum()
    assert g.num_undirected_edges <= proper  # dedup only removes
    assert g.num_edges % 2 == 0  # symmetric: every edge counted twice


@settings(max_examples=30, deadline=None)
@given(data=edge_lists(), seed=st.integers(0, 20))
def test_relabel_involution(data, seed):
    """Relabeling by a permutation and then by its inverse is identity."""
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    perm = np.random.default_rng(seed).permutation(n)
    inverse = np.empty(n, dtype=np.int64)
    inverse[np.arange(n)] = perm  # relabel(relabel(g, perm), argsort-trick)
    once = relabel(g, perm)
    # order[i] becomes vertex i; applying new_id mapping twice with the
    # matching permutation restores the original adjacency structure.
    new_id = np.empty(n, dtype=np.int64)
    new_id[perm] = np.arange(n)
    back = relabel(once, new_id)
    assert np.array_equal(back.row_offsets, g.row_offsets)
    assert np.array_equal(back.col_indices, g.col_indices)


@settings(max_examples=30, deadline=None)
@given(data=edge_lists())
def test_degree_sum_equals_edges(data):
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    assert int(g.degrees.sum()) == g.num_edges


@settings(max_examples=30, deadline=None)
@given(data=edge_lists(), seed=st.integers(0, 20))
def test_relabel_preserves_bandwidth_upper_bound(data, seed):
    n, u, v = data
    g = from_edges(u, v, num_vertices=n)
    perm = np.random.default_rng(seed).permutation(n)
    assert bandwidth(relabel(g, perm)) <= n - 1
