"""Targeted tests for paths the main suites exercise only indirectly."""

import numpy as np
import pytest

from repro.coloring import color_graph
from repro.coloring.jp import color_jp_gpu
from repro.coloring.kernels import upload_graph
from repro.gpusim import CacheConfig, Device
from repro.graph.generators import rmat_g


# ----------------------------------------------------------------- jp-gpu
def test_jp_gpu_proper_and_priced(small_er):
    r = color_jp_gpu(small_er)
    r.validate(small_er)
    assert r.gpu_time_us > 0
    # two kernels per color round (priority + MIS)
    assert r.num_kernel_launches == 2 * r.iterations


def test_jp_gpu_slower_than_csrcolor(small_er):
    """The historical motivation for multi-hash: plain JP pays one color
    per round and two launches per color."""
    jp = color_jp_gpu(small_er)
    csr = color_graph(small_er, method="csrcolor")
    assert jp.num_kernel_launches > csr.num_kernel_launches


def test_jp_gpu_via_api(c6):
    r = color_graph(c6, method="jp-gpu")
    assert r.scheme == "jp-gpu"


def test_jp_gpu_deterministic(small_mesh):
    a = color_jp_gpu(small_mesh, seed=5)
    b = color_jp_gpu(small_mesh, seed=5)
    assert np.array_equal(a.colors, b.colors)


# ------------------------------------------------------------ cache models
@pytest.mark.parametrize("model", ["exact", "analytic"])
def test_end_to_end_with_alternate_cache_models(model, small_er):
    """The non-default cache fidelities must run full schemes and agree
    functionally (timing differs within a band)."""
    default = color_graph(small_er, method="data-base")
    alt = color_graph(small_er, method="data-base", device=Device(cache_model=model))
    assert np.array_equal(default.colors, alt.colors)
    assert 0.2 * default.gpu_time_us < alt.gpu_time_us < 5 * default.gpu_time_us


# ------------------------------------------------------------- small gaps
def test_rmat_g_generator():
    g = rmat_g(scale=10, edge_factor=8.0, seed=1)
    assert g.name == "rmat-g"
    assert g.num_vertices == 1024
    from repro.graph.stats import compute_stats

    assert compute_stats(g).variance > 50  # heavy-tailed by construction


def test_iter_vertices(c6):
    assert list(c6.iter_vertices()) == list(range(6))


def test_dynamic_color_of(c6):
    from repro.coloring import DynamicColoring

    dyn = DynamicColoring(c6)
    assert dyn.color_of(0) == int(dyn.colors()[0])


def test_upload_graph_charged_transfer(small_er):
    device = Device()
    upload_graph(device, small_er, charge_transfer=True)
    assert device.timeline.transfer_time_us() > 0


def test_cache_config_derived():
    cfg = CacheConfig(size_bytes=16 * 128, line_bytes=128, ways=4)
    assert cfg.num_lines == 16
    assert cfg.num_sets == 4


def test_timeline_components_sum(small_er):
    device = Device()
    color_graph(small_er, method="topo-base", device=device)
    tl = device.timeline
    total = tl.total_time_us(device.config)
    assert total == pytest.approx(
        tl.kernel_time_us()
        + tl.transfer_time_us()
        + tl.launch_overhead_us(device.config)
    )


def test_cli_build_parser_help():
    from repro.cli import build_parser

    parser = build_parser()
    # every documented subcommand is registered
    text = parser.format_help()
    for cmd in ("color", "compare", "suite", "generate", "sweep", "profile"):
        assert cmd in text


def test_compute_stats_dataclass_fields(small_er):
    from repro.graph.stats import compute_stats

    s = compute_stats(small_er)
    assert s.name == small_er.name
    assert s.num_edges == small_er.num_edges


def test_suite_entry_metadata():
    from repro.graph.generators.suite import SUITE

    entry = SUITE["thermal2"]
    assert entry.paper.spd is True
    assert entry.paper.application == "Thermal Simulation"
    assert callable(entry.build)


def test_rmat_params_as_array():
    from repro.graph.generators.rmat import RMATParams

    arr = RMATParams(0.4, 0.2, 0.2, 0.2).as_array()
    assert arr.sum() == pytest.approx(1.0)
    assert arr.shape == (4,)
