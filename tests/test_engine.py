"""The execution engine: backends, contexts, batching, convergence cap."""

import numpy as np
import pytest

from repro.coloring.api import ENGINE_RECIPES, color_graph, make_recipe
from repro.engine import (
    Backend,
    ConvergenceError,
    CpuSimBackend,
    ExecutionContext,
    GpuSimBackend,
    RoundStatus,
    SchemeRecipe,
    color_many,
    resolve_backend,
    run_scheme,
)
from repro.gpusim.device import Device
from repro.metrics.recorder import Recorder, RoundRecord


# ------------------------------------------------------------- backends
def test_resolve_backend_specs():
    assert isinstance(resolve_backend(None), GpuSimBackend)
    assert isinstance(resolve_backend("cpusim"), CpuSimBackend)
    dev = Device()
    be = resolve_backend(dev)
    assert isinstance(be, GpuSimBackend) and be.device is dev
    inst = CpuSimBackend()
    assert resolve_backend(inst) is inst
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("tpusim")
    with pytest.raises(TypeError):
        resolve_backend(42)


def test_backends_satisfy_protocol():
    assert isinstance(GpuSimBackend(), Backend)
    assert isinstance(CpuSimBackend(), Backend)


def test_cpusim_backend_runs_every_recipe(small_er):
    for method in ("topo-base", "data-ldg", "3step-gm", "csrcolor"):
        result = color_graph(small_er, method, backend="cpusim")
        assert result.extra["backend"] == "cpusim"
        assert result.gpu_time_us == 0.0
        assert result.transfer_time_us == 0.0  # unified memory
        assert result.cpu_time_us > 0.0
        assert result.num_kernel_launches > 0


def test_cpusim_races_at_core_granularity(small_mesh):
    # Mesh in natural order: the race window (cores vs 32-wide warp)
    # changes which neighbors collide, so the runs are independent but
    # both must converge to proper colorings.
    gpu = color_graph(small_mesh, "topo-base")
    cpu = color_graph(small_mesh, "topo-base", backend="cpusim")
    assert gpu.num_colors >= 2 and cpu.num_colors >= 2


def test_backend_rejected_for_host_methods(p10):
    with pytest.raises(ValueError, match="takes no backend"):
        color_graph(p10, "sequential", backend="cpusim")


# ------------------------------------------------------------- contexts
def test_context_uploads_each_graph_once(small_er, small_mesh):
    ctx = ExecutionContext()
    for method in ("topo-base", "data-ldg", "csrcolor"):
        ctx.color_many([small_er, small_mesh, small_er], method)
    htod = [t for t in ctx.backend.device.timeline.transfers() if t.direction == "htod"]
    assert len(htod) == 2  # one R/C burst per distinct graph, ever
    assert ctx.uploads == 2
    assert ctx.upload_reuses == 3 * 3 - 2
    # the burst covers exactly the CSR payload
    sizes = sorted(t.nbytes for t in htod)
    for g, nbytes in zip(sorted([small_er, small_mesh], key=lambda g: g.num_edges), sizes):
        assert nbytes == (g.num_vertices + 1) * 4 + g.num_edges * 4


def test_color_many_table1_suite_uploads_once_per_graph():
    from repro.graph.generators.suite import SUITE_ORDER, load_graph

    graphs = [load_graph(name, scale_div=256) for name in SUITE_ORDER]
    ctx = ExecutionContext()
    for method in ("topo-ldg", "data-ldg"):
        results = ctx.color_many(graphs, method)
        assert len(results) == len(graphs)
        assert all(r.num_colors > 0 for r in results)
    htod = [t for t in ctx.backend.device.timeline.transfers() if t.direction == "htod"]
    assert len(htod) == len(graphs)  # each Table I graph crosses PCIe once, ever
    assert ctx.uploads == len(graphs)
    assert ctx.upload_reuses == 2 * len(graphs) - len(graphs)
    for g, t in zip(graphs, htod):
        assert t.nbytes == (g.num_vertices + 1) * 4 + g.num_edges * 4


def test_context_runs_match_single_shot(small_er):
    ctx = ExecutionContext()
    for method in sorted(ENGINE_RECIPES):
        fresh = color_graph(small_er, method)
        shared = ctx.run(small_er, method)
        assert np.array_equal(fresh.colors, shared.colors)
        assert fresh.iterations == shared.iterations
        assert fresh.num_kernel_launches == shared.num_kernel_launches


def test_context_pools_worklist_buffers(small_er):
    ctx = ExecutionContext()
    ctx.run(small_er, "data-base")
    misses = ctx.backend.device.pool_misses
    ctx.run(small_er, "data-base")
    assert ctx.backend.device.pool_hits >= 4  # both queues + both tails reused
    assert ctx.backend.device.pool_misses == misses


def test_context_evict_forces_reupload(small_er):
    ctx = ExecutionContext()
    ctx.run(small_er, "topo-base")
    ctx.evict(small_er)
    ctx.run(small_er, "topo-base")
    assert ctx.uploads == 2 and ctx.upload_reuses == 0


def test_context_rejects_host_methods(p10):
    with pytest.raises(ValueError, match="not a device scheme"):
        ExecutionContext().run(p10, "sequential")


def test_color_graph_routes_through_context(small_er):
    ctx = ExecutionContext()
    r1 = color_graph(small_er, "data-ldg", context=ctx)
    r2 = color_graph(small_er, "data-ldg", context=ctx)
    assert ctx.uploads == 1 and ctx.upload_reuses == 1
    assert np.array_equal(r1.colors, r2.colors)


def test_color_many_module_function(small_er, small_bipartite):
    results = color_many([small_er, small_bipartite], "data-ldg")
    assert len(results) == 2
    assert results[1].num_colors == 2  # bipartite oracle
    for r in results:
        assert r.scheme == "data-ldg"


def test_make_recipe_registry():
    for method in ENGINE_RECIPES:
        assert isinstance(make_recipe(method), SchemeRecipe)
    with pytest.raises(ValueError, match="not a device scheme"):
        make_recipe("jp")


# ------------------------------------------------------- convergence cap
def test_convergence_error_carries_diagnostics(small_mesh):
    ctx = ExecutionContext(max_iterations=1)
    with pytest.raises(ConvergenceError) as exc:
        ctx.run(small_mesh, "topo-base")
    err = exc.value
    assert err.scheme == "topo-base"
    assert err.iterations == 1
    assert 0 < err.uncolored <= small_mesh.num_vertices
    assert "failed to converge after 1 rounds" in str(err)
    assert isinstance(err, RuntimeError)  # legacy except-clauses keep working


def test_convergence_error_releases_worklists(small_mesh):
    ctx = ExecutionContext(max_iterations=1)
    with pytest.raises(ConvergenceError):
        ctx.run(small_mesh, "data-base")
    misses = ctx.backend.device.pool_misses
    ctx2_hits = ctx.backend.device.pool_hits
    with pytest.raises(ConvergenceError):
        ctx.run(small_mesh, "data-base")
    # cleanup ran despite the raise: the second run recycles the queues
    assert ctx.backend.device.pool_hits > ctx2_hits
    assert ctx.backend.device.pool_misses == misses


# ------------------------------------------------------- round recording
def test_recorder_receives_round_trace(small_er):
    rec = Recorder()
    ctx = ExecutionContext(observe=rec)
    result = ctx.run(small_er, "topo-base")
    rounds = [r for r in rec.rounds if r.scheme == "topo-base"]
    assert len(rounds) == result.iterations
    assert [r.iteration for r in rounds] == list(range(result.iterations))
    assert all(isinstance(r, RoundRecord) for r in rounds)
    assert rounds[0].graph == small_er.name
    assert rounds[0].active == small_er.num_vertices
    assert rounds[-1].active == 0  # the terminating empty round
    assert all(r.time_us >= 0.0 for r in rounds)


# ------------------------------------------------------- custom recipes
def test_run_scheme_accepts_custom_recipe(c6):
    class ConstantRecipe(SchemeRecipe):
        scheme = "constant"

        def setup(self, ex, graph, bufs):
            self.bufs = bufs
            self.done = False

        def has_work(self):
            return not self.done

        def round(self, iteration):
            self.done = True
            self.bufs.colors.data[:] = np.arange(1, len(self.bufs.colors.data) + 1)
            return RoundStatus(active=len(self.bufs.colors.data))

        def finalize(self):
            from repro.engine import SchemeOutcome

            return SchemeOutcome(colors=self.bufs.colors.data.copy())

    result = run_scheme(c6, ConstantRecipe())
    assert result.scheme == "constant"
    assert result.iterations == 1
    assert result.extra["backend"] == "gpusim"
    assert result.num_colors == 6
