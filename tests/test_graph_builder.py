"""from_edges normalization and the canonical small-graph builders."""

import numpy as np
import pytest

from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edges,
    from_networkx,
    from_scipy,
    path_graph,
    star_graph,
)


def test_symmetrize_adds_reverse_edges():
    g = from_edges([0, 1], [1, 2], num_vertices=3)
    assert np.array_equal(g.neighbors(1), [0, 2])
    assert g.is_symmetric()


def test_no_symmetrize_keeps_direction():
    g = from_edges([0], [1], num_vertices=2, symmetrize=False)
    assert g.degree(0) == 1
    assert g.degree(1) == 0


def test_self_loops_removed_by_default():
    g = from_edges([0, 1, 2], [0, 2, 1], num_vertices=3)
    assert not g.has_self_loops()
    assert g.num_undirected_edges == 1


def test_self_loops_kept_when_requested():
    g = from_edges([0], [0], num_vertices=1, remove_self_loops=False, symmetrize=False)
    assert g.has_self_loops()


def test_dedup_collapses_multi_edges():
    g = from_edges([0, 0, 0], [1, 1, 1], num_vertices=2)
    assert g.num_undirected_edges == 1
    g2 = from_edges([0, 0], [1, 1], num_vertices=2, dedup=False, symmetrize=False)
    assert g2.num_edges == 2


def test_isolated_trailing_vertices_preserved():
    g = from_edges([0], [1], num_vertices=10)
    assert g.num_vertices == 10
    assert g.degree(9) == 0


def test_num_vertices_inferred():
    g = from_edges([0, 7], [3, 2])
    assert g.num_vertices == 8


def test_endpoint_validation():
    with pytest.raises(ValueError, match="out of range"):
        from_edges([0], [5], num_vertices=3)
    with pytest.raises(ValueError, match="equal length"):
        from_edges([0, 1], [1])


def test_adjacency_lists_sorted():
    g = from_edges([5, 5, 5], [9, 2, 7], num_vertices=10)
    assert np.array_equal(g.neighbors(5), [2, 7, 9])


def test_from_adjacency():
    g = from_adjacency([[1, 2], [0], [0]])
    assert g.num_undirected_edges == 2
    assert g.is_symmetric()


def test_from_scipy_pattern_only():
    import scipy.sparse as sp

    mat = sp.csr_array(np.array([[0.0, 2.5, 0], [0, 0, -1], [0, 0, 0]]))
    g = from_scipy(mat)
    assert g.num_undirected_edges == 2
    assert g.is_symmetric()


def test_from_scipy_rejects_rectangular():
    import scipy.sparse as sp

    with pytest.raises(ValueError, match="square"):
        from_scipy(sp.csr_array(np.ones((2, 3))))


def test_from_networkx_relabels():
    import networkx as nx

    g = nx.Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    csr = from_networkx(g)
    assert csr.num_vertices == 3
    assert csr.num_undirected_edges == 2


def test_empty_graph():
    g = empty_graph(5)
    assert g.num_vertices == 5 and g.num_edges == 0


def test_complete_graph_edges():
    assert complete_graph(6).num_undirected_edges == 15


def test_cycle_graph_small_rejected():
    with pytest.raises(ValueError):
        cycle_graph(2)


def test_path_graph_degrees():
    g = path_graph(5)
    assert g.degree(0) == 1 and g.degree(2) == 2 and g.degree(4) == 1


def test_star_graph_hub():
    g = star_graph(7)
    assert g.degree(0) == 7
    assert all(g.degree(v) == 1 for v in range(1, 8))


def test_large_vertex_ids_no_overflow():
    # key packing uses u * n + v; make sure big ids survive
    n = 2_000_000
    g = from_edges([n - 2], [n - 1], num_vertices=n)
    assert g.degree(n - 1) == 1
