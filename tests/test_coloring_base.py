"""ColoringResult, verification, and quality metrics."""

import numpy as np
import pytest

from repro.coloring.base import (
    ColoringError,
    ColoringResult,
    color_class_sizes,
    count_conflicts,
)
from repro.graph.builder import complete_graph, cycle_graph


def test_count_conflicts_zero_on_proper(c6):
    colors = np.array([1, 2, 1, 2, 1, 2], dtype=np.int32)
    assert count_conflicts(c6, colors) == 0


def test_count_conflicts_counts_undirected_edges_once(c6):
    colors = np.ones(6, dtype=np.int32)
    assert count_conflicts(c6, colors) == 6  # every cycle edge clashes


def test_uncolored_vertices_never_conflict(c6):
    assert count_conflicts(c6, np.zeros(6, dtype=np.int32)) == 0


def test_color_class_sizes():
    sizes = color_class_sizes(np.array([1, 1, 2, 3, 3, 3]))
    assert list(sizes) == [2, 1, 3]
    assert color_class_sizes(np.array([0, 0])).size == 0


def test_validate_rejects_uncolored(c6):
    res = ColoringResult(colors=np.zeros(6, dtype=np.int32), scheme="t")
    with pytest.raises(ColoringError, match="uncolored"):
        res.validate(c6)


def test_validate_rejects_conflicts(c6):
    res = ColoringResult(colors=np.ones(6, dtype=np.int32), scheme="t")
    with pytest.raises(ColoringError, match="conflicting"):
        res.validate(c6)


def test_validate_rejects_wrong_shape(c6):
    res = ColoringResult(colors=np.ones(3, dtype=np.int32), scheme="t")
    with pytest.raises(ColoringError, match="shape"):
        res.validate(c6)


def test_num_colors_and_total_time():
    res = ColoringResult(
        colors=np.array([1, 3, 2], dtype=np.int32),
        scheme="t",
        gpu_time_us=10.0,
        cpu_time_us=5.0,
        transfer_time_us=2.5,
    )
    assert res.num_colors == 3
    assert res.total_time_us == 17.5


def test_balance_metric():
    balanced = ColoringResult(colors=np.array([1, 2, 1, 2], dtype=np.int32), scheme="t")
    assert balanced.balance() == pytest.approx(1.0)
    skewed = ColoringResult(colors=np.array([1, 1, 1, 2], dtype=np.int32), scheme="t")
    assert skewed.balance() == pytest.approx(1.5)


def test_summary_mentions_scheme_and_colors():
    res = ColoringResult(colors=np.array([1, 2], dtype=np.int32), scheme="myscheme")
    s = res.summary()
    assert "myscheme" in s and "2 colors" in s


def test_validate_passes_known_proper():
    k4 = complete_graph(4)
    res = ColoringResult(colors=np.array([1, 2, 3, 4], dtype=np.int32), scheme="t")
    res.validate(k4)
    c5 = cycle_graph(5)
    res = ColoringResult(colors=np.array([1, 2, 1, 2, 3], dtype=np.int32), scheme="t")
    res.validate(c5)
