"""Property-based invariants over hypothesis-generated graphs.

These are the deep guarantees of the library: on arbitrary simple graphs,
every scheme terminates with a proper, complete coloring within the
greedy bound, and the structural helpers agree with brute force.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.api import color_graph
from repro.coloring.base import count_conflicts
from repro.coloring.kernels import detect_conflicts, speculative_color_waved
from repro.coloring.sequential import greedy_colors_only
from repro.graph.builder import from_edges


@st.composite
def graphs(draw, max_n=40, max_m=120):
    """Arbitrary simple symmetric graphs, including edge cases."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    u = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.array)
    )
    v = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.array)
    )
    return from_edges(
        u.astype(np.int64) if m else np.empty(0, dtype=np.int64),
        v.astype(np.int64) if m else np.empty(0, dtype=np.int64),
        num_vertices=n,
        name="hyp",
    )


SCHEMES = ["sequential", "gm", "jp", "topo-base", "data-base", "csrcolor", "3step-gm"]


@pytest.mark.parametrize("scheme", SCHEMES)
@settings(max_examples=25, deadline=None)
@given(graph=graphs())
def test_scheme_proper_complete_bounded(scheme, graph):
    result = color_graph(graph, method=scheme)  # validates internally
    if scheme not in ("jp", "csrcolor"):
        # greedy-family bound: max degree + 1 (+ slack for speculation races)
        assert result.num_colors <= graph.max_degree + 2


@settings(max_examples=40, deadline=None)
@given(graph=graphs())
def test_sequential_greedy_bound_exact(graph):
    colors = greedy_colors_only(graph)
    assert count_conflicts(graph, colors) == 0
    assert colors.max() <= graph.max_degree + 1
    assert colors.min() >= 1


@settings(max_examples=30, deadline=None)
@given(graph=graphs(), window=st.sampled_from([1, 2, 8, 64]))
def test_waved_coloring_conflicts_only_within_window(graph, window):
    """After one waved pass, all surviving conflicts are window-internal."""
    colors = np.zeros(graph.num_vertices, dtype=np.int32)
    active = np.arange(graph.num_vertices, dtype=np.int64)
    speculative_color_waved(graph, colors, active, window)
    losers = detect_conflicts(graph, colors, active)
    # every conflicting edge joins two vertices of the same window chunk
    u, v = graph.edge_endpoints()
    clash = (colors[u] == colors[v]) & (u < v)
    assert np.all(u[clash] // window == v[clash] // window)
    # and window=1 is exactly sequential: never any conflict
    if window == 1:
        assert losers.size == 0


@settings(max_examples=25, deadline=None)
@given(graph=graphs(max_n=25, max_m=60))
def test_speculation_matches_greedy_quality_band(graph):
    """Parallel speculation stays within a small band of greedy quality."""
    seq = int(greedy_colors_only(graph).max())
    topo = color_graph(graph, method="topo-base").num_colors
    assert topo <= seq + 3


@settings(max_examples=25, deadline=None)
@given(graph=graphs(max_n=30))
def test_csrcolor_color_classes_independent(graph):
    result = color_graph(graph, method="csrcolor")
    u, v = graph.edge_endpoints()
    assert not np.any((result.colors[u] == result.colors[v]) & (u < v))


@settings(max_examples=20, deadline=None)
@given(graph=graphs(max_n=30, max_m=80))
def test_gm_and_topo_agree_with_each_other(graph):
    """Alg. 2 and Alg. 4 share semantics; both must satisfy the same
    invariants (not necessarily identical colors — visibility differs)."""
    gm = color_graph(graph, method="gm")
    topo = color_graph(graph, method="topo-base")
    assert abs(gm.num_colors - topo.num_colors) <= 3
