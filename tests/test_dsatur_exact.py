"""DSATUR heuristic and the exact chromatic-number oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import color_graph, greedy_colors_only
from repro.coloring.dsatur import chromatic_number, dsatur, max_clique_lower_bound
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    from_networkx,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi


# ------------------------------------------------------------------ dsatur
def test_dsatur_known_graphs():
    assert dsatur(complete_graph(7)).num_colors == 7
    assert dsatur(cycle_graph(8)).num_colors == 2
    assert dsatur(cycle_graph(9)).num_colors == 3
    assert dsatur(star_graph(10)).num_colors == 2
    assert dsatur(path_graph(10)).num_colors == 2


def test_dsatur_exact_on_bipartite(small_bipartite):
    """Brélaz's theorem: DSATUR colors bipartite graphs optimally."""
    res = dsatur(small_bipartite)
    res.validate(small_bipartite)
    assert res.num_colors == 2


def test_dsatur_proper_on_random(small_er, small_rmat):
    for g in (small_er, small_rmat):
        dsatur(g).validate(g)


def test_dsatur_not_worse_than_first_fit(small_er):
    assert dsatur(small_er).num_colors <= int(greedy_colors_only(small_er).max())


def test_dsatur_empty_and_isolated(isolated):
    res = dsatur(isolated)
    res.validate(isolated)
    assert res.num_colors == 1
    assert dsatur(empty_graph(0)).num_colors == 0


def test_dsatur_via_api(c6):
    assert color_graph(c6, method="dsatur").num_colors == 2


# ----------------------------------------------------------- clique bound
def test_clique_bound_known():
    assert max_clique_lower_bound(complete_graph(8)) == 8
    assert max_clique_lower_bound(cycle_graph(9)) == 2
    assert max_clique_lower_bound(empty_graph(5)) == 1
    assert max_clique_lower_bound(empty_graph(0)) == 0


def test_clique_bound_is_valid_lower_bound(small_er):
    assert max_clique_lower_bound(small_er) <= dsatur(small_er).num_colors


# ----------------------------------------------------------------- exact
def test_chromatic_number_known():
    assert chromatic_number(complete_graph(5)) == 5
    assert chromatic_number(cycle_graph(6)) == 2
    assert chromatic_number(cycle_graph(7)) == 3
    assert chromatic_number(path_graph(4)) == 2
    assert chromatic_number(empty_graph(3)) == 1
    assert chromatic_number(empty_graph(0)) == 0


def test_chromatic_number_petersen():
    import networkx as nx

    assert chromatic_number(from_networkx(nx.petersen_graph())) == 3


def test_chromatic_number_wheel():
    """Odd wheel W_n needs 4 colors; even wheel needs 3."""
    def wheel(k):
        u = list(range(1, k + 1)) + list(range(1, k + 1))
        v = [0] * k + [i % k + 1 for i in range(1, k + 1)]
        return from_edges(np.array(u), np.array(v), num_vertices=k + 1)

    assert chromatic_number(wheel(5)) == 4
    assert chromatic_number(wheel(6)) == 3


def test_chromatic_budget_guard():
    # A hard-ish instance with a tiny budget must fail loudly, not hang.
    g = erdos_renyi(60, 12.0, seed=3)
    with pytest.raises(RuntimeError, match="budget"):
        chromatic_number(g, node_budget=5)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 12), p=st.floats(0.1, 0.7), seed=st.integers(0, 50))
def test_exact_brackets_all_heuristics(n, p, seed):
    """chi <= every heuristic's count, and clique bound <= chi."""
    rng = np.random.default_rng(seed)
    m = int(p * n * (n - 1) / 2)
    g = from_edges(
        rng.integers(0, n, m), rng.integers(0, n, m), num_vertices=n
    )
    chi = chromatic_number(g)
    assert max_clique_lower_bound(g) <= chi
    assert chi <= dsatur(g).num_colors
    assert chi <= int(greedy_colors_only(g).max())
    for scheme in ("topo-base", "csrcolor"):
        assert chi <= color_graph(g, method=scheme).num_colors


def test_parallel_schemes_near_optimal_on_oracle():
    """On small oracle graphs the SGR schemes stay within 2 of chi —
    quantifying Fig. 6's quality claim against the true optimum."""
    g = erdos_renyi(50, 5.0, seed=7)
    chi = chromatic_number(g)
    for scheme in ("sequential", "topo-base", "data-base", "3step-gm"):
        got = color_graph(g, method=scheme).num_colors
        assert got <= chi + 2, (scheme, got, chi)
