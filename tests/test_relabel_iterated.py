"""Relabeling (BFS/RCM) and Culberson iterated-greedy extensions."""

import numpy as np
import pytest

from repro.coloring import color_graph, count_conflicts, iterated_greedy
from repro.coloring.sequential import greedy_colors_only
from repro.graph import bandwidth, bfs_order, rcm_order, relabel
from repro.graph.builder import complete_graph, cycle_graph, path_graph
from repro.graph.generators import grid2d


# ----------------------------------------------------------------- relabel
def test_bfs_order_is_permutation(small_er):
    order = bfs_order(small_er)
    assert np.array_equal(np.sort(order), np.arange(small_er.num_vertices))


def test_bfs_order_visits_components():
    from repro.graph.builder import from_edges

    # two disjoint triangles
    g = from_edges([0, 0, 1, 3, 3, 4], [1, 2, 2, 4, 5, 5], num_vertices=6)
    order = bfs_order(g)
    assert np.array_equal(np.sort(order), np.arange(6))
    first_three = set(order[:3].tolist())
    assert first_three in ({0, 1, 2}, {3, 4, 5})  # one whole component first


def test_bfs_neighbors_are_near():
    g = path_graph(100)
    order = bfs_order(g, start=0)
    assert np.array_equal(order, np.arange(100))  # path BFS = natural order


def test_rcm_reduces_bandwidth_of_shuffled_grid():
    g = grid2d(20, 20)
    rng = np.random.default_rng(1)
    shuffled = relabel(g, rng.permutation(g.num_vertices))
    assert bandwidth(shuffled) > bandwidth(g)
    recovered = relabel(shuffled, rcm_order(shuffled))
    assert bandwidth(recovered) < 0.1 * bandwidth(shuffled)


def test_relabel_preserves_structure(small_er):
    rng = np.random.default_rng(2)
    perm = rng.permutation(small_er.num_vertices)
    new = relabel(small_er, perm)
    assert new.num_edges == small_er.num_edges
    assert sorted(new.degrees.tolist()) == sorted(small_er.degrees.tolist())
    new.validate()


def test_relabel_color_mapping(small_er):
    """colors_new[new_id[v]] is a proper coloring of the original graph."""
    perm = np.random.default_rng(3).permutation(small_er.num_vertices)
    new = relabel(small_er, perm)
    result = color_graph(new, method="sequential")
    colors_old = np.empty_like(result.colors)
    colors_old[perm] = result.colors  # order[i] became vertex i
    assert count_conflicts(small_er, colors_old) == 0


def test_relabel_rejects_non_permutation(c6):
    with pytest.raises(ValueError, match="permutation"):
        relabel(c6, np.array([0, 1, 2, 3, 4, 4]))


def test_bandwidth_values():
    assert bandwidth(path_graph(10)) == 1
    assert bandwidth(cycle_graph(10)) == 9
    from repro.graph.builder import empty_graph

    assert bandwidth(empty_graph(5)) == 0


# --------------------------------------------------------- iterated greedy
def test_iterated_greedy_never_worse(small_er):
    base = int(greedy_colors_only(small_er).max())
    result = iterated_greedy(small_er, iterations=6)
    result.validate(small_er)
    assert result.num_colors <= base


def test_iterated_greedy_monotone_history(small_rmat):
    result = iterated_greedy(small_rmat, iterations=10)
    hist = result.extra["color_history"]
    assert all(b <= a for a, b in zip(hist, hist[1:]))


def test_iterated_greedy_improves_bad_start():
    """A deliberately wasteful proper coloring collapses to near-optimal."""
    g = cycle_graph(30)
    bad = np.arange(1, 31, dtype=np.int32)  # 30 distinct colors, proper
    result = iterated_greedy(g, initial=bad, iterations=6)
    result.validate(g)
    assert result.num_colors <= 3


def test_iterated_greedy_polishes_gpu_result(small_rmat):
    gpu = color_graph(small_rmat, method="data-base")
    polished = iterated_greedy(small_rmat, initial=gpu.colors, iterations=6)
    polished.validate(small_rmat)
    assert polished.num_colors <= gpu.num_colors


def test_iterated_greedy_complete_graph_stable():
    g = complete_graph(6)
    result = iterated_greedy(g, iterations=4)
    assert result.num_colors == 6  # chromatic optimum cannot improve


def test_iterated_greedy_validation():
    g = cycle_graph(4)
    with pytest.raises(ValueError, match="non-negative"):
        iterated_greedy(g, iterations=-1)
    with pytest.raises(ValueError, match="one entry per vertex"):
        iterated_greedy(g, initial=np.array([1, 2], dtype=np.int32))


def test_iterated_greedy_via_api(small_er):
    result = color_graph(small_er, method="iterated-greedy", iterations=4)
    assert result.scheme == "iterated-greedy"
