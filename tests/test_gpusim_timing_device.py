"""Timing model invariants and the Device runtime."""

import numpy as np
import pytest

from repro.gpusim.config import KEPLER_K20C, LaunchConfig
from repro.gpusim.device import Device
from repro.gpusim.timing import price_kernel
from repro.gpusim.trace import TraceBuilder


def make_trace(
    num_threads=4096,
    block_size=128,
    lines_per_thread=4,
    ldg=False,
    atomics_same_line=0,
    seed=0,
    footprint_lines=1 << 24,
):
    """Synthetic kernel: each thread gathers ``lines_per_thread`` random lines."""
    rng = np.random.default_rng(seed)
    tb = TraceBuilder(KEPLER_K20C, LaunchConfig(block_size=block_size), num_threads)
    threads = np.arange(num_threads, dtype=np.int64)
    for step in range(lines_per_thread):
        addrs = rng.integers(0, footprint_lines, size=num_threads) * 128
        tb.load(threads, addrs, ldg=ldg, step=step)
    tb.instructions(threads, 10)
    if atomics_same_line:
        tb.atomic(threads[:atomics_same_line], np.zeros(atomics_same_line, dtype=np.int64))
    return tb.build()


def test_profile_basics():
    p = price_kernel(make_trace(), KEPLER_K20C)
    assert p.cycles > 0
    assert p.time_us == pytest.approx(p.cycles / KEPLER_K20C.cycles_per_us)
    assert p.bound in ("compute", "memory_latency", "memory_bandwidth", "atomic")
    assert 0 <= p.occupancy <= 1.0


def test_stalls_sum_to_one():
    p = price_kernel(make_trace(), KEPLER_K20C)
    assert sum(p.stalls.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in p.stalls.values())


def test_gather_kernel_is_latency_bound():
    """Random-gather kernels with modest residency are the Fig. 3 regime:
    too few in-flight warps to hide latency, too little traffic to saturate
    DRAM bandwidth."""
    p = price_kernel(make_trace(num_threads=1024), KEPLER_K20C)
    assert p.bound == "memory_latency"
    assert p.stalls["memory_dependency"] > 0.5
    assert p.compute_utilization < 0.6
    assert p.bandwidth_utilization < 0.6


def test_small_block_size_slower():
    """Fig. 8's left edge: 32-thread blocks cap residency at 16 warps/SM
    (block-slot limit), so a full grid cannot hide latency."""
    slow = price_kernel(
        make_trace(num_threads=65536, block_size=32, footprint_lines=1 << 13),
        KEPLER_K20C,
    )
    fast = price_kernel(
        make_trace(num_threads=65536, block_size=128, footprint_lines=1 << 13),
        KEPLER_K20C,
    )
    assert slow.cycles > 1.5 * fast.cycles


def test_ldg_never_slower():
    base = price_kernel(make_trace(ldg=False, lines_per_thread=2, seed=3), KEPLER_K20C)
    ldg = price_kernel(make_trace(ldg=True, lines_per_thread=2, seed=3), KEPLER_K20C)
    assert ldg.cycles <= base.cycles * 1.01


def test_ldg_hit_rate_tracked():
    # re-reading the same small footprint: RO cache should score hits
    tb = TraceBuilder(KEPLER_K20C, LaunchConfig(), 1024)
    threads = np.arange(1024, dtype=np.int64)
    for step in range(4):
        tb.load(threads, (threads % 64) * 128, ldg=True, step=step)
    p = price_kernel(tb.build(), KEPLER_K20C)
    assert p.memory.ro_hit_rate > 0.4


def test_hot_atomic_serializes():
    quiet = price_kernel(make_trace(atomics_same_line=0), KEPLER_K20C)
    hot = price_kernel(make_trace(atomics_same_line=4096), KEPLER_K20C)
    assert hot.terms["atomic"] > quiet.terms["atomic"]
    assert hot.terms["atomic"] >= 4096 * KEPLER_K20C.atomic_op_cycles


def test_more_work_more_cycles():
    small = price_kernel(make_trace(lines_per_thread=2), KEPLER_K20C)
    big = price_kernel(make_trace(lines_per_thread=8), KEPLER_K20C)
    assert big.cycles > small.cycles


def test_cache_model_choices_agree_roughly():
    trace = make_trace(num_threads=2048)
    times = {
        m: price_kernel(trace, KEPLER_K20C, cache_model=m).cycles
        for m in ("reuse_distance", "exact", "analytic")
    }
    base = times["reuse_distance"]
    for m, t in times.items():
        assert 0.3 * base <= t <= 3.0 * base, (m, times)


def test_empty_trace_prices():
    tb = TraceBuilder(KEPLER_K20C, LaunchConfig(), 64)
    tb.uniform_overhead(2)
    p = price_kernel(tb.build(), KEPLER_K20C)
    assert p.cycles > 0
    assert p.memory.transactions == 0


# ----------------------------------------------------------------- device
def test_device_alloc_addresses_disjoint():
    dev = Device()
    a = dev.alloc(100, np.int32, name="a")
    b = dev.alloc(100, np.int32, name="b")
    assert a.base % 256 == 0 and b.base % 256 == 0
    assert b.base >= a.base + a.nbytes


def test_device_array_addr():
    dev = Device()
    a = dev.alloc(10, np.int64)
    assert list(a.addr(np.array([0, 2]))) == [a.base, a.base + 16]
    assert a.addr().size == 10
    assert len(a) == 10


def test_upload_charges_transfer():
    dev = Device()
    dev.upload(np.zeros(1000, dtype=np.float64))
    assert dev.timeline.transfer_time_us() > KEPLER_K20C.pcie_latency_us


def test_register_does_not_charge():
    dev = Device()
    dev.register(np.zeros(1000))
    assert dev.timeline.transfer_time_us() == 0.0


def test_transfer_math():
    dev = Device()
    dev.dtoh(6_000_000)  # 6 MB at 6 GB/s = 1000us + 10us latency
    (t,) = list(dev.timeline.transfers())
    assert t.time_us == pytest.approx(1010.0)
    with pytest.raises(ValueError):
        dev.htod(-1)


def test_commit_appends_profile_and_overhead():
    dev = Device()
    tb = dev.builder(256, name="k")
    tb.uniform_overhead(5)
    profile = dev.commit(tb)
    assert profile.name == "k"
    assert dev.timeline.num_launches() == 1
    total = dev.total_time_us()
    assert total == pytest.approx(
        profile.time_us + KEPLER_K20C.kernel_launch_overhead_us
    )


def test_device_reset():
    dev = Device()
    dev.dtoh(4)
    dev.reset()
    assert dev.total_time_us() == 0.0


def test_upload_copies_data():
    dev = Device()
    host = np.arange(5)
    buf = dev.upload(host)
    host[0] = 99
    assert buf.data[0] == 0
