"""benchmarks/regression_gate.py: baseline matching and drift detection.

The gate's matrix runs the real schemes (slow); these tests stub
``run_matrix`` with canned cells and exercise the comparison logic —
clean pass, tolerated drift, out-of-tolerance failure, functional
changes, and the missing-baseline / stale-baseline error paths.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def rg():
    spec = importlib.util.spec_from_file_location(
        "regression_gate", _ROOT / "benchmarks" / "regression_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cells(time_us=100.0, iterations=3, colors=5):
    return {
        "rmat-er/data-ldg": {
            "total_time_us": time_us,
            "iterations": iterations,
            "num_colors": colors,
        }
    }


@pytest.fixture
def gate(rg, tmp_path, monkeypatch):
    """The gate wired to a temp baseline and a stubbed one-cell matrix."""
    monkeypatch.setattr(rg, "BASELINE_PATH", tmp_path / "baseline_times.json")

    def set_matrix(**kwargs):
        monkeypatch.setattr(rg, "run_matrix", lambda: _cells(**kwargs))

    set_matrix()
    return rg, set_matrix


def test_update_writes_baseline(gate, capsys):
    rg, _ = gate
    assert rg.main(["--update"]) == 0
    baseline = json.loads(rg.BASELINE_PATH.read_text())
    assert baseline["scale_div"] == rg.SCALE_DIV
    assert baseline["cells"] == _cells()
    assert "wrote baseline" in capsys.readouterr().out


def test_exact_match_passes(gate, capsys):
    rg, _ = gate
    rg.main(["--update"])
    assert rg.main([]) == 0
    assert "regression gate passed" in capsys.readouterr().out


def test_tolerated_drift_passes(gate, capsys):
    rg, set_matrix = gate
    rg.main(["--update"])
    set_matrix(time_us=110.0)  # +10% < the 15% default tolerance
    assert rg.main([]) == 0
    assert "+10.0%" in capsys.readouterr().out


def test_out_of_tolerance_drift_fails(gate, capsys):
    rg, set_matrix = gate
    rg.main(["--update"])
    set_matrix(time_us=130.0)  # +30% > 15%
    assert rg.main([]) == 1
    out = capsys.readouterr().out
    assert "time drift +30.0%" in out
    assert "regression gate FAILED" in out


def test_tolerance_flag_overrides_default(gate):
    rg, set_matrix = gate
    rg.main(["--update"])
    set_matrix(time_us=130.0)
    assert rg.main(["--tolerance", "0.5"]) == 0


def test_functional_changes_are_gated_exactly(gate, capsys):
    rg, set_matrix = gate
    rg.main(["--update"])
    set_matrix(iterations=4)  # tiny time drift would pass; iterations must not
    assert rg.main([]) == 1
    assert "iterations 3 -> 4" in capsys.readouterr().out
    set_matrix(colors=6)
    assert rg.main([]) == 1
    assert "colors 5 -> 6" in capsys.readouterr().out


def test_missing_baseline_errors(gate, capsys):
    rg, _ = gate
    assert rg.main([]) == 1
    assert "no baseline" in capsys.readouterr().out


def test_stale_scale_div_errors(gate, capsys):
    rg, _ = gate
    rg.main(["--update"])
    baseline = json.loads(rg.BASELINE_PATH.read_text())
    baseline["scale_div"] = 9999
    rg.BASELINE_PATH.write_text(json.dumps(baseline))
    assert rg.main([]) == 1
    assert "regenerate with --update" in capsys.readouterr().out


def test_shrunken_matrix_fails(gate, monkeypatch, capsys):
    rg, _ = gate
    rg.main(["--update"])
    replaced = {
        "other/scheme": {"total_time_us": 1.0, "iterations": 1, "num_colors": 1}
    }
    monkeypatch.setattr(rg, "run_matrix", lambda: replaced)
    assert rg.main([]) == 1
    assert "in baseline but not run" in capsys.readouterr().out


def test_new_cell_without_baseline_entry_fails(gate, monkeypatch):
    rg, _ = gate
    rg.main(["--update"])
    cells = _cells()
    cells["new/data-ldg"] = {"total_time_us": 1.0, "iterations": 1, "num_colors": 1}
    monkeypatch.setattr(rg, "run_matrix", lambda: cells)
    assert rg.main([]) == 1
