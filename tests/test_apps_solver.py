"""Coloring-preconditioned PCG (the HPCG-style pipeline)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.solver import ColoredSGSPreconditioner, pcg
from repro.apps.sparse import graph_laplacian
from repro.graph.generators import grid2d, erdos_renyi


@pytest.fixture(scope="module")
def spd_system():
    g = grid2d(25, 25)
    lap = graph_laplacian(g, shift=0.05)
    rng = np.random.default_rng(1)
    x_true = rng.random(g.num_vertices)
    return lap, x_true, lap @ x_true


def test_plain_cg_converges(spd_system):
    lap, x_true, b = spd_system
    x, report = pcg(lap, b, tol=1e-10, max_iterations=2000)
    assert report.converged
    assert np.allclose(x, x_true, atol=1e-6)
    assert report.preconditioner_colors == 0


def test_preconditioner_cuts_iterations(spd_system):
    lap, x_true, b = spd_system
    _, plain = pcg(lap, b, tol=1e-10, max_iterations=2000)
    M = ColoredSGSPreconditioner(lap, method="sequential")
    x, pre = pcg(lap, b, preconditioner=M, tol=1e-10, max_iterations=2000)
    assert pre.converged
    assert pre.iterations < plain.iterations
    assert np.allclose(x, x_true, atol=1e-6)


def test_phases_track_color_count(spd_system):
    lap, _, _ = spd_system
    M = ColoredSGSPreconditioner(lap, method="sequential")
    assert M.parallel_phases_per_apply == 2 * M.num_colors
    # csrcolor's inflated coloring means a longer critical path per apply
    M_csr = ColoredSGSPreconditioner(lap, method="csrcolor")
    assert M_csr.parallel_phases_per_apply > M.parallel_phases_per_apply


def test_preconditioner_apply_is_spd_like(spd_system):
    """x' M^{-1} x > 0 for x != 0 (needed for PCG validity)."""
    lap, _, _ = spd_system
    M = ColoredSGSPreconditioner(lap, method="sequential")
    rng = np.random.default_rng(3)
    for _ in range(5):
        x = rng.standard_normal(lap.shape[0])
        assert x @ M.apply(x) > 0


def test_residuals_monotone_enough(spd_system):
    lap, _, b = spd_system
    M = ColoredSGSPreconditioner(lap, method="sequential")
    _, report = pcg(lap, b, preconditioner=M, tol=1e-12, max_iterations=300)
    norms = report.residual_norms
    assert norms[-1] < 1e-6 * norms[0]


def test_pcg_validates_shape(spd_system):
    lap, _, _ = spd_system
    with pytest.raises(ValueError, match="shape"):
        pcg(lap, np.ones(3))


def test_pcg_rejects_indefinite():
    mat = sp.csr_array(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
    with pytest.raises(np.linalg.LinAlgError):
        pcg(mat, np.array([1.0, -1.0]), max_iterations=10)


def test_pipeline_on_irregular_graph():
    g = erdos_renyi(400, 6.0, seed=9)
    lap = graph_laplacian(g, shift=0.5)
    b = np.ones(400)
    M = ColoredSGSPreconditioner(lap, method="data-base")
    x, report = pcg(lap, b, preconditioner=M, tol=1e-10)
    assert report.converged
    assert np.allclose(lap @ x, b, atol=1e-6)
