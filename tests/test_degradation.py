"""Graceful-degradation chains: every fallback is recorded and provably
harmless — degraded runs return byte-identical colors wherever the
fallback target is deterministic.

Chains under test (see docs/ROBUSTNESS.md):

* mex kernel: bitmask → sort on word-budget overflow
* scheduler: process pool → fault-free serial pass on exhausted retries
* result cache: corrupt disk entry → quarantined miss → clean recompute
* sharded: shard failures → one unsharded sequential run;
  Jacobi resolution → sequential sweep on the round cap
"""

import multiprocessing

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.faults import resolve_robustness
from repro.graph.builder import complete_graph
from repro.parallel import (
    ColorJob,
    JobFailure,
    ProcessPoolScheduler,
    ResultCache,
    ShardedColoringError,
    color_sharded,
)
from repro.parallel.scheduler import run_jobs

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="pool degradation tests rely on cheap fork workers"
)


def _chains(result):
    return [d["chain"] for d in result.robustness["degradations"]]


# ---------------------------------------------------------------------------
# mex: bitmask → sort on word-budget overflow.
# ---------------------------------------------------------------------------
def test_mex_overflow_degrades_to_sort_byte_identically():
    g = complete_graph(70)  # 70 colors ≫ one 32-color bitmask word
    healthy = color_graph(g, "data-ldg")
    degraded = color_graph(g, "data-ldg", mex="bitmask:1", health="default")
    assert np.array_equal(healthy.colors, degraded.colors)
    assert degraded.num_colors == 70
    events = degraded.robustness["degradations"]
    mex = [d for d in events if d["chain"] == "mex"]
    assert mex and mex[0]["from"] == "bitmask" and mex[0]["to"] == "sort"
    assert mex[0]["reason"] == "word-budget-overflow"


def test_mex_overflow_unobserved_without_a_bundle():
    g = complete_graph(70)
    result = color_graph(g, "data-ldg", mex="bitmask:1")  # no faults/health
    assert result.robustness is None  # silent, zero-overhead routing
    assert result.num_colors == 70


# ---------------------------------------------------------------------------
# scheduler: pool retries exhausted → fault-free serial healing pass.
# ---------------------------------------------------------------------------
@fork_only
def test_pool_degrades_to_serial_byte_identically():
    jobs = [
        ColorJob(rmat_er(scale=8, seed=s), "data-ldg", {}) for s in (31, 32)
    ]
    healthy = [color_graph(j.graph, j.method) for j in jobs]
    rb = resolve_robustness("seed=2; job-error: job=0", None)  # every attempt
    results = run_jobs(
        jobs,
        scheduler=ProcessPoolScheduler(2, retries=1, backoff_s=0.0),
        backend="gpusim", faults=rb,
    )
    assert all(not isinstance(r, JobFailure) for r in results)
    for r, h in zip(results, healthy):
        assert np.array_equal(r.colors, h.colors)
    events = rb.report()["degradations"]
    sched = [d for d in events if d["chain"] == "scheduler"]
    assert sched and sched[0]["from"] == "process" and sched[0]["to"] == "serial"
    assert sched[0]["reason"] == "retries-exhausted"


@fork_only
def test_strict_policy_keeps_the_pool_failure():
    jobs = [ColorJob(rmat_er(scale=8, seed=31), "data-ldg", {})]
    results = run_jobs(
        jobs,
        scheduler=ProcessPoolScheduler(2, retries=1, backoff_s=0.0),
        backend="gpusim",
        faults="seed=2; job-error: job=0", health="strict",
    )
    assert isinstance(results[0], JobFailure)
    assert results[0].attempts == 2


# ---------------------------------------------------------------------------
# cache: injected disk corruption → quarantined miss → clean recompute.
# ---------------------------------------------------------------------------
def test_cache_corrupt_entry_quarantined_and_recomputed(tmp_path):
    jobs = [ColorJob(rmat_er(scale=8, seed=41), "data-ldg", {})]
    healthy = color_graph(jobs[0].graph, "data-ldg")

    first_cache = ResultCache(directory=tmp_path)
    run_jobs(jobs, cache=first_cache, faults="seed=3; cache-corrupt: job=0")
    # The stored entry was overwritten with garbage after the put.
    assert list(tmp_path.glob("*.npz"))

    rb = resolve_robustness(None, "default")
    fresh = ResultCache(directory=tmp_path)
    (result,) = run_jobs(jobs, cache=fresh, faults=rb)
    assert not isinstance(result, JobFailure)
    assert not result.cache_hit  # the corrupt entry must NOT hit
    assert np.array_equal(result.colors, healthy.colors)
    assert fresh.quarantined == 1
    assert list(tmp_path.glob("*.npz.bad"))
    cache_events = [
        d for d in rb.report()["degradations"] if d["chain"] == "cache"
    ]
    assert cache_events and cache_events[0]["reason"] == "corrupt-entry"

    # The quarantine rewrote cleanly: a third pass is a genuine hit.
    (hit,) = run_jobs(jobs, cache=fresh)
    assert hit.cache_hit
    assert np.array_equal(hit.colors, healthy.colors)


# ---------------------------------------------------------------------------
# sharded: shard failures → one unsharded run; Jacobi cap → sweep.
# ---------------------------------------------------------------------------
def test_sharded_degrades_to_unsharded_byte_identically():
    g = rmat_er(scale=8, seed=51)
    healthy = color_graph(g, "data-ldg")
    result = color_sharded(
        g, "data-ldg", num_shards=3,
        faults="seed=4; job-error:",  # every shard job, every attempt
    )
    assert np.array_equal(result.colors, healthy.colors)
    stats = result.shard_stats
    assert stats["degraded"] == "unsharded"
    assert stats["failed_shards"] == [0, 1, 2]
    assert "sharded" in _chains(result)


def test_sharded_strict_raises_instead():
    g = rmat_er(scale=8, seed=51)
    with pytest.raises(ShardedColoringError):
        color_sharded(
            g, "data-ldg", num_shards=3,
            faults="seed=4; job-error:", health="strict",
        )


def test_jacobi_round_cap_falls_back_to_sequential_sweep():
    g = complete_graph(8)  # shards collide on every cross edge
    result = color_sharded(
        g, "data-ldg", num_shards=2, max_resolution_rounds=0,
        health="default",
    )
    result.validate(g)
    stats = result.shard_stats
    assert stats["fallback"] is True
    events = [
        d for d in result.robustness["degradations"] if d["chain"] == "sharded"
    ]
    assert events and events[0]["reason"] == "round-cap"
    assert events[0]["to"] == "sequential-sweep"


def test_healthy_sharded_run_with_bundle_records_nothing():
    g = rmat_er(scale=8, seed=51)
    plain = color_sharded(g, "data-ldg", num_shards=3)
    guarded = color_sharded(g, "data-ldg", num_shards=3, health="default")
    assert np.array_equal(plain.colors, guarded.colors)
    assert guarded.robustness["degradations"] == []
    assert plain.robustness is None
