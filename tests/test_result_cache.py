"""Content-addressed result cache: keying, LRU, disk store, hit semantics.

The defining property: a cache *hit* skips the round loop entirely —
verified by the absence of a ``run`` span in an attached trace — while
``cache=None`` stays byte-identical to an uncached run.
"""

import numpy as np
import pytest

from repro import color_graph, color_many, rmat_er
from repro.parallel import ResultCache, job_cache_key, resolve_cache


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=8, seed=11)


@pytest.fixture(scope="module")
def g2():
    return rmat_er(scale=8, seed=12)


# ---------------------------------------------------------------------------
# Keying.
# ---------------------------------------------------------------------------
def test_key_is_content_addressed(g, g2):
    base = job_cache_key(g, "data-ldg", {})
    assert base == job_cache_key(g, "data-ldg", {})
    assert base != job_cache_key(g2, "data-ldg", {})
    assert base != job_cache_key(g, "topo-ldg", {})
    # Same topology under a different name shares the key.
    twin = type(g)(g.row_offsets.copy(), g.col_indices.copy(), name="twin")
    assert job_cache_key(twin, "data-ldg", {}) == base


def test_key_resolves_options_against_registry_defaults(g):
    base = job_cache_key(g, "data-ldg", {})
    # Spelling a default explicitly does not fork the key...
    assert job_cache_key(g, "data-ldg", {"block_size": 128}) == base
    # ...but changing it does.
    assert job_cache_key(g, "data-ldg", {"block_size": 256}) != base


def test_key_ignores_engine_keywords_but_not_backend(g):
    base = job_cache_key(g, "data-ldg", {})
    assert job_cache_key(g, "data-ldg", {"observe": "trace", "workers": 4}) == base
    assert job_cache_key(g, "data-ldg", {}, "gpusim") == base  # None == default
    assert job_cache_key(g, "data-ldg", {}, "cpusim") != base
    assert job_cache_key(g, "data-ldg", {}, "gpusim", {"seed": 3}) != base


# ---------------------------------------------------------------------------
# Hit semantics.
# ---------------------------------------------------------------------------
def test_hit_skips_round_loop_entirely(g):
    cache = ResultCache()
    miss = color_graph(g, "data-ldg", cache=cache, observe="trace")
    assert not miss.cache_hit
    assert miss.observation.tracer.runs()  # the miss executed a run span

    hit = color_graph(g, "data-ldg", cache=cache, observe="trace")
    assert hit.cache_hit
    tracer = hit.observation.tracer
    assert tracer.runs() == []  # no run span: the round loop never ran
    [event] = tracer.spans("cache")
    assert event.counters == {"hit": 1, "miss": 0}
    assert np.array_equal(hit.colors, miss.colors)
    assert hit.iterations == miss.iterations
    assert cache.stats()["hits"] == 1


def test_cache_none_stays_byte_identical(g):
    plain = color_graph(g, "data-ldg")
    uncached = color_graph(g, "data-ldg", cache=None)
    assert np.array_equal(plain.colors, uncached.colors)
    assert plain.iterations == uncached.iterations


def test_hit_returns_isolated_copy(g):
    cache = ResultCache()
    color_graph(g, "data-ldg", cache=cache)
    first = color_graph(g, "data-ldg", cache=cache)
    first.colors[:] = -1  # corrupting the returned copy...
    second = color_graph(g, "data-ldg", cache=cache)
    assert second.colors.min() >= 1  # ...does not poison the cache


def test_cache_in_color_many_coordinator(g, g2):
    cache = ResultCache()
    first = color_many([g, g2], "data-ldg", cache=cache)
    again = color_many([g, g2], "data-ldg", cache=cache, workers=2)
    assert cache.stats()["hits"] == 2  # hits resolved without touching a worker
    for a, b in zip(first, again):
        assert b.cache_hit
        assert np.array_equal(a.colors, b.colors)


# ---------------------------------------------------------------------------
# LRU + disk store.
# ---------------------------------------------------------------------------
def test_lru_eviction():
    cache = ResultCache(max_entries=2)
    results = {}
    for seed in (1, 2, 3):
        graph = rmat_er(scale=6, seed=seed)
        key = job_cache_key(graph, "data-ldg", {})
        results[key] = color_graph(graph, "data-ldg", cache=cache)
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    oldest = job_cache_key(rmat_er(scale=6, seed=1), "data-ldg", {})
    assert cache.get(oldest) is None


def test_disk_store_survives_processes(tmp_path, g):
    first = ResultCache(directory=tmp_path)
    stored = color_graph(g, "data-ldg", cache=first)
    assert list(tmp_path.glob("*.npz"))

    fresh = ResultCache(directory=tmp_path)  # simulates a new process
    hit = color_graph(g, "data-ldg", cache=fresh)
    assert hit.cache_hit
    assert np.array_equal(hit.colors, stored.colors)
    assert hit.iterations == stored.iterations
    assert hit.scheme == stored.scheme


def test_corrupt_disk_entry_is_a_miss(tmp_path, g):
    cache = ResultCache(directory=tmp_path)
    color_graph(g, "data-ldg", cache=cache)
    for path in tmp_path.glob("*.npz"):
        path.write_bytes(b"not an npz")
    fresh = ResultCache(directory=tmp_path)
    result = color_graph(g, "data-ldg", cache=fresh)  # recomputes, no crash
    assert not result.cache_hit


def test_garbage_bytes_entry_is_quarantined_then_rewritten(tmp_path, g):
    """Regression: corrupt disk entries must be *renamed aside*, not just
    skipped — a garbage file left at the key's path would be re-parsed
    (and re-fail) on every lookup forever."""
    cache = ResultCache(directory=tmp_path)
    baseline = color_graph(g, "data-ldg", cache=cache)
    (entry,) = tmp_path.glob("*.npz")
    entry.write_bytes(b"\x00\x89garbage bytes, definitely not a zip archive")

    fresh = ResultCache(directory=tmp_path)
    recomputed = color_graph(g, "data-ldg", cache=fresh)
    assert not recomputed.cache_hit
    assert np.array_equal(recomputed.colors, baseline.colors)
    assert fresh.quarantined == 1
    assert fresh.stats()["quarantined"] == 1
    bad = entry.with_name(entry.name + ".bad")
    assert bad.exists()  # inspectable, but out of the lookup path
    assert entry.exists()  # the recompute re-stored a clean entry

    # The rewritten entry round-trips: next process gets a real hit.
    final = ResultCache(directory=tmp_path)
    hit = color_graph(g, "data-ldg", cache=final)
    assert hit.cache_hit and final.quarantined == 0
    assert np.array_equal(hit.colors, baseline.colors)


# ---------------------------------------------------------------------------
# resolve_cache + construction.
# ---------------------------------------------------------------------------
def test_resolve_cache(tmp_path):
    assert resolve_cache(None) is None
    mem = resolve_cache("memory")
    assert isinstance(mem, ResultCache) and mem.directory is None
    disk = resolve_cache(str(tmp_path / "store"))
    assert disk.directory is not None and disk.directory.is_dir()
    assert resolve_cache(mem) is mem
    with pytest.raises(TypeError, match="as a result cache"):
        resolve_cache(42)


def test_max_entries_validated():
    with pytest.raises(ValueError, match="max_entries"):
        ResultCache(max_entries=0)
