"""RoundLoop guard rails, driven by deliberately misbehaving recipes.

Each test builds a tiny custom :class:`SchemeRecipe` exhibiting exactly
one pathology — livelock, uncoloring, insane worklist counts, a
conflicted final coloring — and proves the matching guard converts it
into a *structured*, diagnosable error instead of a silent bad result
or an unbounded loop.
"""

import numpy as np
import pytest

from repro.engine import (
    AuditError,
    ConvergenceError,
    InvariantViolation,
    RoundStatus,
    SchemeOutcome,
    SchemeRecipe,
    run_scheme,
)
from repro.faults import HealthPolicy
from repro.graph.builder import complete_graph, cycle_graph


class _Misbehaver(SchemeRecipe):
    """Base for the pathological recipes: binds state, colors greedily."""

    scheme = "misbehaver"

    def setup(self, ex, graph, bufs):
        self.ex, self.graph, self.bufs = ex, graph, bufs
        self.n = graph.num_vertices
        self.rounds = 0

    def has_work(self):
        return True

    def finalize(self):
        return SchemeOutcome(colors=np.asarray(self.bufs.colors.data).copy())


class _Livelocked(_Misbehaver):
    """Runs forever without ever coloring a vertex."""

    def round(self, iteration):
        self.rounds += 1
        return RoundStatus(active=self.n, conflicts=0)


class _Uncolorer(_Misbehaver):
    """Colors everything, then starts *un*coloring — monotonicity broken."""

    def round(self, iteration):
        colors = self.bufs.colors.data
        if iteration == 0:
            colors[:] = np.arange(1, self.n + 1, dtype=colors.dtype)
        else:
            colors[: self.n // 2] = 0
        return RoundStatus(active=self.n, conflicts=0)


class _Overcounter(_Misbehaver):
    """Reports a worklist bigger than the graph."""

    def round(self, iteration):
        return RoundStatus(active=self.n + 5, conflicts=0)


class _ConflictFinisher(_Misbehaver):
    """Terminates normally but hands back an all-ones (conflicted) coloring."""

    def has_work(self):
        return self.rounds == 0

    def round(self, iteration):
        self.rounds += 1
        self.bufs.colors.data[:] = 1
        return RoundStatus(active=self.n, conflicts=0)


class _PartialFinisher(_ConflictFinisher):
    """Terminates leaving half the vertices uncolored."""

    def round(self, iteration):
        self.rounds += 1
        colors = self.bufs.colors.data
        colors[:] = np.arange(1, self.n + 1, dtype=colors.dtype)
        colors[: self.n // 2] = 0
        return RoundStatus(active=self.n, conflicts=0)


# ---------------------------------------------------------------------------
# The convergence watchdog.
# ---------------------------------------------------------------------------
def test_watchdog_catches_livelock_with_structured_payload():
    g = cycle_graph(16)
    policy = HealthPolicy(no_progress_window=5, invariants=False)
    with pytest.raises(ConvergenceError) as info:
        run_scheme(g, _Livelocked(), health=policy)
    err = info.value
    assert err.reason == "no-progress"
    assert err.uncolored == 16 and err.window == 5
    payload = err.to_dict()
    assert payload["scheme"] == "misbehaver"
    assert payload["reason"] == "no-progress"
    assert "no progress" in str(err)


def test_iteration_cap_override_from_policy():
    g = cycle_graph(16)
    policy = HealthPolicy(
        max_iterations=4, no_progress_window=0, invariants=False
    )
    with pytest.raises(ConvergenceError) as info:
        run_scheme(g, _Livelocked(), health=policy)
    assert info.value.reason == "cap"
    assert info.value.iterations == 4


def test_watchdog_window_zero_means_disabled():
    g = cycle_graph(8)
    policy = HealthPolicy(
        max_iterations=10, no_progress_window=0, invariants=False
    )
    with pytest.raises(ConvergenceError) as info:
        run_scheme(g, _Livelocked(), health=policy)
    assert info.value.reason == "cap"  # the cap fired, not the watchdog


# ---------------------------------------------------------------------------
# Post-round invariants.
# ---------------------------------------------------------------------------
def test_colored_set_monotonicity_violation():
    g = cycle_graph(16)
    with pytest.raises(InvariantViolation) as info:
        run_scheme(g, _Uncolorer(), health="strict")
    assert info.value.invariant == "colored-monotone"
    assert "uncolored grew" in info.value.to_dict()["detail"]


def test_worklist_sanity_violation():
    g = cycle_graph(16)
    with pytest.raises(InvariantViolation) as info:
        run_scheme(g, _Overcounter(), health="strict")
    assert info.value.invariant == "worklist-sane"


def test_invariants_off_lets_the_watchdog_catch_it_instead():
    # With invariants off, the uncolorer stalls at n//2 uncolored and the
    # watchdog (not the invariant check) ends the run.
    g = cycle_graph(16)
    policy = HealthPolicy(no_progress_window=4, invariants=False)
    with pytest.raises(ConvergenceError) as info:
        run_scheme(g, _Uncolorer(), health=policy)
    assert info.value.reason == "no-progress"


# ---------------------------------------------------------------------------
# The end-of-run audit.
# ---------------------------------------------------------------------------
def test_audit_rejects_conflicted_coloring():
    g = complete_graph(5)
    with pytest.raises(AuditError) as info:
        run_scheme(g, _ConflictFinisher(), health="strict")
    err = info.value
    assert err.conflicts == 10 and err.uncolored == 0  # K5: all C(5,2) edges
    assert err.to_dict()["scheme"] == "misbehaver"


def test_audit_rejects_partial_coloring():
    g = cycle_graph(16)
    with pytest.raises(AuditError) as info:
        run_scheme(g, _PartialFinisher(), health="strict")
    assert info.value.uncolored == 8


def test_audit_off_returns_the_bad_coloring():
    g = complete_graph(5)
    result = run_scheme(g, _ConflictFinisher(), health="off")
    assert (np.asarray(result.colors) == 1).all()  # junk, by request


def test_guards_pass_a_well_behaved_real_scheme():
    # The real recipes satisfy every invariant under the strictest policy.
    from repro.coloring.api import make_recipe

    g = complete_graph(6)
    strict = HealthPolicy(no_progress_window=2, degrade=False)
    result = run_scheme(g, make_recipe("data-ldg"), health=strict)
    result.validate(g)
