"""Property-based invariants of the GPU timing model.

The timing model must respond *monotonically* to its physical inputs —
more work never takes less time, better caches never hurt, more
parallelism never slows a latency-bound kernel.  Violations here mean a
benchmark conclusion could be a model artifact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.base import load_result, save_result
from repro.gpusim.config import KEPLER_K20C, LaunchConfig
from repro.gpusim.timing import price_kernel
from repro.gpusim.trace import TraceBuilder


def gather_trace(
    num_threads: int,
    lines_per_thread: int,
    footprint_lines: int,
    *,
    block_size: int = 128,
    seed: int = 0,
    instr: int = 10,
):
    rng = np.random.default_rng(seed)
    tb = TraceBuilder(KEPLER_K20C, LaunchConfig(block_size=block_size), num_threads)
    threads = np.arange(num_threads, dtype=np.int64)
    for step in range(lines_per_thread):
        addrs = rng.integers(0, max(footprint_lines, 1), size=num_threads) * 128
        tb.load(threads, addrs, step=step)
    tb.instructions(threads, instr)
    return tb.build()


@settings(max_examples=20, deadline=None)
@given(
    threads=st.sampled_from([256, 1024, 4096]),
    lines=st.integers(1, 6),
    footprint=st.sampled_from([64, 4096, 1 << 18]),
)
def test_more_memory_work_never_faster(threads, lines, footprint):
    small = price_kernel(gather_trace(threads, lines, footprint), KEPLER_K20C)
    big = price_kernel(gather_trace(threads, lines + 2, footprint), KEPLER_K20C)
    assert big.cycles >= small.cycles * 0.999


@settings(max_examples=20, deadline=None)
@given(
    threads=st.sampled_from([512, 2048]),
    lines=st.integers(1, 5),
)
def test_smaller_footprint_never_slower(threads, lines):
    """Better cache behavior (same access count) can only help."""
    hot = price_kernel(gather_trace(threads, lines, 64, seed=3), KEPLER_K20C)
    cold = price_kernel(gather_trace(threads, lines, 1 << 20, seed=3), KEPLER_K20C)
    assert hot.cycles <= cold.cycles * 1.001


@settings(max_examples=15, deadline=None)
@given(instr=st.sampled_from([1, 100, 10_000]))
def test_compute_scales_with_instructions(instr):
    a = price_kernel(gather_trace(1024, 1, 64, instr=instr), KEPLER_K20C)
    b = price_kernel(gather_trace(1024, 1, 64, instr=instr * 2), KEPLER_K20C)
    assert b.terms["compute"] >= a.terms["compute"] * 1.5


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_pricing_deterministic(seed):
    trace = gather_trace(1024, 3, 4096, seed=seed)
    a = price_kernel(trace, KEPLER_K20C, seed=7)
    b = price_kernel(trace, KEPLER_K20C, seed=7)
    assert a.cycles == b.cycles
    assert a.stalls == b.stalls


def test_terms_nonnegative_and_bounded():
    p = price_kernel(gather_trace(2048, 4, 1 << 16), KEPLER_K20C)
    assert all(v >= 0 for v in p.terms.values())
    assert p.cycles >= max(
        p.terms["compute"], p.terms["memory_latency"],
        p.terms["memory_bandwidth"], p.terms["atomic"],
    )


def test_device_with_more_bandwidth_never_slower():
    trace = gather_trace(65536, 4, 1 << 20)
    base = price_kernel(trace, KEPLER_K20C)
    fat = price_kernel(trace, KEPLER_K20C.with_(dram_bandwidth_gbs=400.0))
    assert fat.cycles <= base.cycles * 1.001


def test_device_with_bigger_l2_never_slower():
    trace = gather_trace(8192, 4, 20_000)  # footprint ~2x K20c L2
    base = price_kernel(trace, KEPLER_K20C)
    big = price_kernel(trace, KEPLER_K20C.with_(l2_cache_bytes=8 * 1280 * 1024))
    assert big.cycles <= base.cycles * 1.001


# --------------------------------------------------- result serialization
def test_result_roundtrip(tmp_path, small_er):
    from repro.coloring import color_graph

    result = color_graph(small_er, method="data-ldg")
    path = tmp_path / "res.npz"
    save_result(result, path)
    back = load_result(path)
    assert np.array_equal(back.colors, result.colors)
    assert back.scheme == result.scheme
    assert back.total_time_us == pytest.approx(result.total_time_us)
    back.validate(small_er)
