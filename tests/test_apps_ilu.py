"""ILU(0) factorization and level-scheduled triangular application."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.ilu import LevelScheduledILU, ilu0
from repro.apps.solver import pcg
from repro.apps.sparse import graph_laplacian
from repro.graph.generators import grid2d


def test_ilu0_exact_on_no_fill_pattern():
    """Tridiagonal matrices have no fill: ILU(0) == LU exactly."""
    n = 40
    A = sp.csr_array(sp.diags_array([-1.0, 2.5, -1.0], offsets=[-1, 0, 1], shape=(n, n)))
    L, U = ilu0(A)
    assert abs(sp.csr_array(L @ U) - A).max() < 1e-12
    # and the level-scheduled apply is an exact solve
    M = LevelScheduledILU(lower=L, upper=U)
    rng = np.random.default_rng(1)
    x = rng.random(n)
    assert np.allclose(M.apply(A @ x), x, atol=1e-10)


def test_ilu0_keeps_pattern():
    g = grid2d(8, 8)
    lap = graph_laplacian(g, shift=0.1)
    L, U = ilu0(lap)
    combined = sp.csr_array(abs(L) + abs(U))
    extra = (combined != 0).astype(int) - (lap != 0).astype(int)
    assert extra.max() <= 0  # never creates fill


def test_ilu0_validates():
    with pytest.raises(ValueError, match="square"):
        ilu0(sp.csr_array(np.ones((2, 3))))
    hollow = sp.csr_array(np.array([[0.0, 1.0], [1.0, 0.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        ilu0(hollow)


def test_ilu_l_is_unit_lower_u_upper():
    g = grid2d(6, 6)
    lap = graph_laplacian(g, shift=0.2)
    L, U = ilu0(lap)
    assert np.allclose(L.diagonal(), 1.0)
    assert abs(sp.csr_array(sp.triu(L, k=1, format="csr"))).max() == 0
    assert abs(sp.csr_array(sp.tril(U, k=-1, format="csr"))).max() == 0


def test_level_counts_and_metadata():
    g = grid2d(10, 10)
    M = LevelScheduledILU.from_matrix(graph_laplacian(g, shift=0.1))
    fwd, bwd = M.num_levels
    assert fwd >= 1 and bwd >= 1
    assert M.parallel_phases_per_apply == fwd + bwd


def test_ilu_pcg_beats_plain_on_grid():
    g = grid2d(20, 20)
    lap = graph_laplacian(g, shift=0.02)
    rng = np.random.default_rng(2)
    x_true = rng.random(g.num_vertices)
    b = lap @ x_true
    _, plain = pcg(lap, b, tol=1e-10, max_iterations=3000)
    M = LevelScheduledILU.from_matrix(lap)
    x, pre = pcg(lap, b, preconditioner=M, tol=1e-10, max_iterations=3000)
    assert pre.converged
    assert pre.iterations < plain.iterations
    assert np.allclose(x, x_true, atol=1e-5)
