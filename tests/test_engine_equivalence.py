"""Refactor regression: the engine reproduces the pre-engine drivers exactly.

The golden values below were captured by running the per-scheme round
loops as they existed *before* the extraction of ``repro.engine`` (commit
3ecf0a2), over the downscaled Table I suite: sha256 prefix of the color
array bytes, iteration count, and color count for every evaluated device
scheme plus the ablation knobs.  The engine refactor promised byte-identical
colorings and identical iteration counts — this file holds it to that.
"""

import hashlib

import pytest

from repro.coloring.api import color_graph
from repro.graph.generators.suite import load_graph

#: graph -> loaded CSR (scale_div=256, generator seed 7 — the defaults the
#: goldens were captured with; the graphs are deterministic).
_SCALE_DIV = 256

# (graph, method, kwargs) -> (sha256(colors)[:16], iterations, num_colors)
GOLDEN = {
    # -- rmat-er: every scheme + every ablation knob ---------------------
    ("rmat-er", "topo-base", ()): ("3f1b0a4b9e27e387", 3, 12),
    ("rmat-er", "topo-ldg", ()): ("3f1b0a4b9e27e387", 3, 12),
    ("rmat-er", "topo-base", (("conflict_scope", "active"),)): ("3f1b0a4b9e27e387", 3, 12),
    ("rmat-er", "topo-base", (("conflict_parallelism", "edge"),)): ("3f1b0a4b9e27e387", 3, 12),
    ("rmat-er", "topo-base", (("block_size", 256),)): ("3f1b0a4b9e27e387", 3, 12),
    ("rmat-er", "data-base", ()): ("3f1b0a4b9e27e387", 2, 12),
    ("rmat-er", "data-ldg", ()): ("3f1b0a4b9e27e387", 2, 12),
    ("rmat-er", "data-base", (("worklist_strategy", "atomic"),)): ("3f1b0a4b9e27e387", 2, 12),
    ("rmat-er", "data-base", (("load_balance", True),)): ("3f1b0a4b9e27e387", 2, 12),
    ("rmat-er", "data-ldg", (("block_size", 64),)): ("3f1b0a4b9e27e387", 2, 12),
    ("rmat-er", "3step-gm", ()): ("b5f4a823da2704e6", 4, 13),
    ("rmat-er", "3step-gm", (("partition_size", 64),)): ("74b6de524f9459ec", 4, 12),
    ("rmat-er", "csrcolor", ()): ("ef7fe01c7e0beb43", 37, 127),
    ("rmat-er", "csrcolor", (("num_hashes", 1),)): ("c9b048081faac352", 99, 130),
    ("rmat-er", "csrcolor", (("compare_all", False),)): ("768bb010fdbd7e67", 6, 32),
    ("rmat-er", "csrcolor", (("fraction", 0.9),)): ("a37d960fdb1ad0f5", 10, 398),
    # -- the rest of the Table I suite, default knobs --------------------
    ("rmat-g", "topo-base", ()): ("09e93accbcff272a", 4, 19),
    ("rmat-g", "topo-ldg", ()): ("09e93accbcff272a", 4, 19),
    ("rmat-g", "data-base", ()): ("d8af20d2bb58d959", 4, 20),
    ("rmat-g", "data-ldg", ()): ("d8af20d2bb58d959", 4, 20),
    ("rmat-g", "3step-gm", ()): ("7931e0b713194cae", 6, 21),
    ("rmat-g", "csrcolor", ()): ("5bef11b111b29bab", 74, 179),
    ("thermal2", "topo-base", ()): ("357f5a48835303e3", 23, 8),
    ("thermal2", "topo-ldg", ()): ("357f5a48835303e3", 23, 8),
    ("thermal2", "data-base", ()): ("afd5994d132ad884", 13, 8),
    ("thermal2", "data-ldg", ()): ("afd5994d132ad884", 13, 8),
    ("thermal2", "3step-gm", ()): ("4053e27e36112ab3", 21, 8),
    ("thermal2", "csrcolor", ()): ("701afb2a38b0062f", 12, 49),
    ("atmosmodd", "topo-base", ()): ("11a1f6631bd4041a", 16, 6),
    ("atmosmodd", "topo-ldg", ()): ("11a1f6631bd4041a", 16, 6),
    ("atmosmodd", "data-base", ()): ("d038a2c99f069263", 9, 7),
    ("atmosmodd", "data-ldg", ()): ("d038a2c99f069263", 9, 7),
    ("atmosmodd", "3step-gm", ()): ("c174bb96f97475e7", 16, 7),
    ("atmosmodd", "csrcolor", ()): ("ffb9a93cd58ae1af", 8, 40),
    ("Hamrle3", "topo-base", ()): ("30a49b8d113adab1", 3, 8),
    ("Hamrle3", "topo-ldg", ()): ("30a49b8d113adab1", 3, 8),
    ("Hamrle3", "data-base", ()): ("30a49b8d113adab1", 2, 8),
    ("Hamrle3", "data-ldg", ()): ("30a49b8d113adab1", 2, 8),
    ("Hamrle3", "3step-gm", ()): ("8e9c1583a93d0d05", 3, 9),
    ("Hamrle3", "csrcolor", ()): ("57ee2f98df583c7f", 17, 66),
    ("G3_circuit", "topo-base", ()): ("e9a01ce96f392b43", 13, 7),
    ("G3_circuit", "topo-ldg", ()): ("e9a01ce96f392b43", 13, 7),
    ("G3_circuit", "data-base", ()): ("30089a94e7eb399e", 10, 7),
    ("G3_circuit", "data-ldg", ()): ("30089a94e7eb399e", 10, 7),
    ("G3_circuit", "3step-gm", ()): ("fa868fdf2625fcab", 15, 7),
    ("G3_circuit", "csrcolor", ()): ("b16ef1c659be622d", 7, 36),
}

_GRAPH_CACHE = {}


def _graph(name):
    if name not in _GRAPH_CACHE:
        _GRAPH_CACHE[name] = load_graph(name, scale_div=_SCALE_DIV)
    return _GRAPH_CACHE[name]


@pytest.mark.parametrize(
    ("gname", "method", "kwargs"),
    sorted(GOLDEN),
    ids=lambda v: str(v).replace(" ", ""),
)
def test_engine_matches_pre_refactor_driver(gname, method, kwargs):
    result = color_graph(_graph(gname), method, **dict(kwargs))
    digest = hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]
    assert (digest, result.iterations, result.num_colors) == GOLDEN[
        (gname, method, kwargs)
    ]


@pytest.mark.parametrize(
    ("gname", "method", "kwargs"),
    sorted(GOLDEN),
    ids=lambda v: str(v).replace(" ", ""),
)
def test_compiled_backend_matches_goldens(gname, method, kwargs):
    """The JIT backend reproduces every golden cell byte-for-byte."""
    result = color_graph(
        _graph(gname), method, backend="compiled", **dict(kwargs)
    )
    digest = hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]
    assert (digest, result.iterations, result.num_colors) == GOLDEN[
        (gname, method, kwargs)
    ]
