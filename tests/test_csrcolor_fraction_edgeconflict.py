"""csrcolor's fraction fast path and edge-parallel conflict detection."""

import numpy as np
import pytest

from repro.coloring import color_graph
from repro.coloring.csrcolor import color_csrcolor
from repro.coloring.topo import color_topology_driven


# ------------------------------------------------------------- fraction
def test_fraction_validated(small_er):
    with pytest.raises(ValueError):
        color_csrcolor(small_er, fraction=0.0)
    with pytest.raises(ValueError):
        color_csrcolor(small_er, fraction=1.5)


def test_fraction_full_is_default(small_er):
    a = color_csrcolor(small_er)
    b = color_csrcolor(small_er, fraction=1.0)
    assert np.array_equal(a.colors, b.colors)


def test_fraction_result_still_proper(small_rmat):
    for frac in (0.95, 0.8, 0.5):
        r = color_csrcolor(small_rmat, fraction=frac)
        r.validate(small_rmat)


def test_fraction_trades_colors_for_rounds(small_rmat):
    full = color_csrcolor(small_rmat, fraction=1.0)
    part = color_csrcolor(small_rmat, fraction=0.8)
    assert part.iterations < full.iterations
    assert part.num_colors >= full.num_colors


def test_fraction_recorded(small_er):
    r = color_csrcolor(small_er, fraction=0.9)
    assert r.extra["fraction"] == 0.9


# ------------------------------------------------- edge-parallel conflicts
def test_edge_conflicts_same_result(small_er, small_mesh):
    for g in (small_er, small_mesh):
        vertex = color_topology_driven(g, conflict_parallelism="vertex")
        edge = color_topology_driven(g, conflict_parallelism="edge")
        assert np.array_equal(vertex.colors, edge.colors)


def test_edge_conflicts_validated(small_er):
    with pytest.raises(ValueError, match="vertex.*or.*edge"):
        color_topology_driven(small_er, conflict_parallelism="diagonal")
    with pytest.raises(ValueError, match="scope"):
        color_topology_driven(
            small_er, conflict_parallelism="edge", conflict_scope="active"
        )


def test_edge_conflicts_balanced_on_hubs():
    """One thread per edge: the conflict pass's SIMD efficiency must not
    collapse on a hub-heavy graph the way the vertex mapping's does."""
    from repro.graph.generators import rmat_graph
    from repro.graph.generators.rmat import G_PARAMS

    g = rmat_graph(11, 10.0, G_PARAMS, seed=8)
    vertex = color_topology_driven(g, conflict_parallelism="vertex")
    edge = color_topology_driven(g, conflict_parallelism="edge")
    v_conf = [p for p in vertex.profiles if "conflict" in p.name][0]
    e_conf = [p for p in edge.profiles if "conflict" in p.name][0]
    assert e_conf.simd_efficiency > v_conf.simd_efficiency


def test_edge_conflicts_faster_on_skew():
    from repro.graph.generators import rmat_graph
    from repro.graph.generators.rmat import G_PARAMS

    g = rmat_graph(12, 10.0, G_PARAMS, seed=9)
    vertex = color_topology_driven(g, conflict_parallelism="vertex")
    edge = color_topology_driven(g, conflict_parallelism="edge")
    assert edge.total_time_us < vertex.total_time_us * 1.05


def test_edge_conflicts_via_api(small_er):
    r = color_graph(small_er, method="topo-base", conflict_parallelism="edge")
    assert r.extra["conflict_parallelism"] == "edge"
