"""Generator families: parameter validation, determinism, degree regimes."""

import numpy as np
import pytest

from repro.graph.generators import (
    DegreeSpec,
    barabasi_albert,
    configuration_model,
    erdos_renyi,
    graph_from_degree_spec,
    grid2d,
    grid2d_with_diagonals,
    grid3d,
    planted_partition,
    random_bipartite,
    random_regular,
    rmat_graph,
    triangular_mesh,
    watts_strogatz,
)
from repro.graph.generators.degree_sequence import sample_degrees
from repro.graph.generators.rmat import ER_PARAMS, G_PARAMS, RMATParams
from repro.graph.stats import compute_stats


# ---------------------------------------------------------------- R-MAT
def test_rmat_params_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        RMATParams(0.5, 0.5, 0.5, 0.5)
    with pytest.raises(ValueError, match="non-negative"):
        RMATParams(-0.1, 0.5, 0.3, 0.3)


def test_rmat_deterministic():
    a = rmat_graph(8, 4.0, seed=42)
    b = rmat_graph(8, 4.0, seed=42)
    assert np.array_equal(a.col_indices, b.col_indices)
    c = rmat_graph(8, 4.0, seed=43)
    assert not np.array_equal(a.col_indices, c.col_indices)


def test_rmat_size():
    g = rmat_graph(10, 8.0, seed=1)
    assert g.num_vertices == 1024
    # dedup/self-loop removal trims a few percent of 2 * n * ef entries
    assert 0.8 * 2 * 1024 * 8 <= g.num_edges <= 2 * 1024 * 8


def test_rmat_skew_raises_variance():
    er = rmat_graph(11, 8.0, ER_PARAMS, seed=2)
    sk = rmat_graph(11, 8.0, G_PARAMS, seed=2)
    assert compute_stats(sk).variance > 3 * compute_stats(er).variance


def test_rmat_scale_bounds():
    with pytest.raises(ValueError):
        rmat_graph(0, 4.0)
    with pytest.raises(ValueError):
        rmat_graph(31, 4.0)


# ------------------------------------------------------------- random
def test_erdos_renyi_degree_target():
    g = erdos_renyi(2000, 10.0, seed=0)
    assert 8.5 <= g.avg_degree <= 10.5


def test_erdos_renyi_validates_n():
    with pytest.raises(ValueError):
        erdos_renyi(0, 4.0)


def test_random_regular_low_variance():
    g = random_regular(1000, 8, seed=0)
    s = compute_stats(g)
    assert s.variance < 1.0
    assert s.max_degree <= 8


def test_random_regular_parity_check():
    with pytest.raises(ValueError, match="even"):
        random_regular(5, 3)


def test_barabasi_albert_heavy_tail():
    g = barabasi_albert(800, 3, seed=0)
    s = compute_stats(g)
    assert s.max_degree > 5 * s.avg_degree


def test_barabasi_albert_validation():
    with pytest.raises(ValueError):
        barabasi_albert(3, 3)


def test_bipartite_structure():
    g = random_bipartite(50, 70, 4.0, seed=1)
    u, v = g.edge_endpoints()
    # every edge crosses the partition boundary at 50
    assert np.all((u < 50) != (v < 50))


def test_watts_strogatz_shapes():
    g = watts_strogatz(200, 4, 0.1, seed=0)
    assert g.num_vertices == 200
    assert 2.5 <= g.avg_degree <= 4.5
    with pytest.raises(ValueError, match="even"):
        watts_strogatz(100, 3, 0.1)


def test_planted_partition_density_contrast():
    g = planted_partition(300, 3, 0.2, 0.005, seed=0)
    blocks = np.arange(300) // 100
    u, v = g.edge_endpoints()
    same = (blocks[u] == blocks[v]).mean()
    assert same > 0.7  # intra-block edges dominate


def test_planted_partition_too_many_blocks():
    with pytest.raises(ValueError):
        planted_partition(3, 10, 0.5, 0.1)


# --------------------------------------------------------------- mesh
def test_grid2d_degrees():
    g = grid2d(5, 7)
    degs = g.degrees
    assert degs.min() == 2 and degs.max() == 4
    assert g.num_undirected_edges == 4 * 7 + 5 * 6


def test_grid2d_periodic_regular():
    g = grid2d(6, 6, periodic=True)
    assert g.min_degree == g.max_degree == 4


def test_grid3d_degrees():
    g = grid3d(4, 4, 4)
    assert g.max_degree == 6
    assert g.min_degree == 3  # corners


def test_grid3d_periodic_regular():
    g = grid3d(4, 4, 4, periodic=True)
    assert g.min_degree == g.max_degree == 6


def test_triangular_mesh_interior_degree():
    g = triangular_mesh(10, 10)
    assert g.max_degree == 6


def test_grid2d_with_diagonals_fraction():
    g0 = grid2d_with_diagonals(20, 20, 0.0, seed=1)
    g1 = grid2d_with_diagonals(20, 20, 1.0, seed=1)
    assert g1.num_undirected_edges - g0.num_undirected_edges == 19 * 19
    with pytest.raises(ValueError):
        grid2d_with_diagonals(4, 4, 1.5)


# ----------------------------------------------------- degree sequence
def test_degree_spec_validation():
    with pytest.raises(ValueError):
        DegreeSpec(5, 3, 4.0, 1.0)
    with pytest.raises(ValueError):
        DegreeSpec(1, 10, 20.0, 1.0)
    with pytest.raises(ValueError):
        DegreeSpec(1, 10, 5.0, -1.0)


def test_sample_degrees_respects_bounds():
    spec = DegreeSpec(4, 15, 7.6, 7.2)
    rng = np.random.default_rng(0)
    degs = sample_degrees(spec, 5000, rng)
    assert degs.min() >= 4 and degs.max() <= 15
    assert abs(degs.mean() - 7.6) < 0.5
    assert degs.sum() % 2 == 0


def test_configuration_model_realizes_most_degrees():
    spec = DegreeSpec(4, 15, 7.6, 7.2)
    g = graph_from_degree_spec(spec, 3000, seed=1)
    s = compute_stats(g)
    assert abs(s.avg_degree - 7.6) < 0.8  # small dedup deficit allowed
    g.validate()


def test_configuration_model_odd_sum_rejected():
    with pytest.raises(ValueError, match="even"):
        configuration_model(np.array([1, 1, 1]))
