"""The scheme registry: typed options, did-you-mean errors, docs sync."""

from pathlib import Path

import pytest

from repro.coloring.api import ENGINE_RECIPES, METHODS, color_graph, make_recipe
from repro.coloring.registry import (
    ENGINE_KEYWORDS,
    SCHEMES,
    SchemeInfo,
    execution_table_markdown,
    scheme_options,
    scheme_table_markdown,
    unknown_method_error,
    validate_options,
)
from repro.graph.generators import rmat_er


@pytest.fixture(scope="module")
def tiny_er():
    return rmat_er(scale=7, seed=5)


# ------------------------------------------------------------------ coverage
def test_registry_covers_every_method_key():
    assert set(SCHEMES) == set(METHODS)


def test_registry_rows_are_complete():
    for name, info in SCHEMES.items():
        assert isinstance(info, SchemeInfo)
        assert info.name == name
        assert info.kind in ("device", "host")
        assert info.summary
        # device methods an ExecutionContext can batch are marked 'device';
        # jp-gpu is device-priced but runs outside the engine loop
        if name in ENGINE_RECIPES:
            assert info.kind == "device"


def test_every_scheme_accepts_its_registered_defaults(tiny_er):
    """Passing each option explicitly at its default must be accepted —
    catches registry drift away from the real scheme signatures."""
    for method, info in SCHEMES.items():
        kwargs = {name: default for name, default, _ in info.option_rows()}
        result = color_graph(tiny_er, method, **kwargs)
        assert result.num_colors > 0, method


def test_scheme_options_lookup():
    opts = scheme_options("data-ldg")
    assert opts().block_size == 128
    assert opts().worklist_strategy == "scan"
    with pytest.raises(KeyError):
        scheme_options("nope")


# ----------------------------------------------------------- unknown options
def test_misspelled_option_gets_did_you_mean(tiny_er):
    with pytest.raises(TypeError, match=r"did you mean 'block_size'"):
        color_graph(tiny_er, "data-ldg", blocksize=256)


def test_unknown_option_lists_valid_options(tiny_er):
    with pytest.raises(TypeError) as exc:
        color_graph(tiny_er, "csrcolor", hashes=4)
    msg = str(exc.value)
    assert "'csrcolor' got unknown option(s) ['hashes']" in msg
    assert "num_hashes=3" in msg  # the valid-option listing with defaults
    assert "did you mean 'num_hashes'" in msg


def test_totally_unknown_option_still_lists_valid(tiny_er):
    with pytest.raises(TypeError, match="Valid options for 'sequential'"):
        color_graph(tiny_er, "sequential", frobnicate=1)


def test_engine_keywords_are_not_scheme_options():
    # the execution layer owns these; validation must ignore them
    for key in ENGINE_KEYWORDS:
        validate_options("data-ldg", {key: object()})
    validate_options("not-in-registry", {"whatever": 1})  # nothing to check


def test_make_recipe_validates_options():
    with pytest.raises(TypeError, match="did you mean 'worklist_strategy'"):
        make_recipe("data-base", worklist_stategy="atomic")


def test_context_run_validates_options(tiny_er):
    from repro.engine import ExecutionContext

    with pytest.raises(TypeError, match="unknown option"):
        ExecutionContext().run(tiny_er, "topo-base", blok_size=64)


# ------------------------------------------------------------ unknown method
def test_unknown_method_did_you_mean(tiny_er):
    with pytest.raises(ValueError, match="unknown method 'data-ldq'") as exc:
        color_graph(tiny_er, "data-ldq")
    assert "did you mean 'data-ldg'" in str(exc.value)


def test_unknown_method_error_without_close_match():
    err = unknown_method_error("zzz", METHODS)
    assert "choose from" in str(err)
    assert "did you mean" not in str(err)


# -------------------------------------------------------------------- docs
def test_api_docs_scheme_table_in_sync():
    """docs/API.md embeds the generated table verbatim (regenerate with
    ``python -m repro.coloring.registry``)."""
    doc = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    assert scheme_table_markdown() in doc.read_text(encoding="utf-8")


def test_api_docs_execution_table_in_sync():
    """docs/API.md embeds the generated execution-options table verbatim
    (regenerate with ``python -m repro.coloring.registry``)."""
    doc = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    assert execution_table_markdown() in doc.read_text(encoding="utf-8")


def test_execution_table_mentions_every_engine_keyword():
    table = execution_table_markdown()
    for keyword in ENGINE_KEYWORDS:
        assert f"| `{keyword}=" in table


def test_table_mentions_every_scheme():
    table = scheme_table_markdown()
    for name in SCHEMES:
        assert f"| `{name}` |" in table


# ---------------------------------------------------------------- re-exports
def test_registry_reexported_from_repro():
    import repro

    assert repro.SCHEMES is SCHEMES
    assert repro.scheme_options is scheme_options
