"""The Table I benchmark suite: calibration against paper statistics."""

import numpy as np
import pytest

from repro.graph.generators.suite import (
    SUITE,
    SUITE_ORDER,
    default_scale_div,
    load_graph,
    load_suite,
)
from repro.graph.stats import compute_stats

SMALL = 64  # fast scale for tests


def test_suite_order_matches_paper():
    assert SUITE_ORDER == (
        "rmat-er",
        "rmat-g",
        "thermal2",
        "atmosmodd",
        "Hamrle3",
        "G3_circuit",
    )


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown suite graph"):
        load_graph("does-not-exist")


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_graphs_are_simple_and_symmetric(name):
    load_graph(name, scale_div=SMALL).validate()


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_scaled_vertex_counts_proportional(name):
    g = load_graph(name, scale_div=SMALL)
    target = SUITE[name].paper.num_vertices / SMALL
    assert 0.5 * target <= g.num_vertices <= 2.0 * target


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_avg_degree_tracks_paper(name):
    g = load_graph(name, scale_div=SMALL)
    s = compute_stats(g)
    paper = SUITE[name].paper
    assert abs(s.avg_degree - paper.avg_degree) <= 0.25 * paper.avg_degree + 1.0


def test_variance_regimes_ordered_like_paper():
    """rmat-g >> rmat-er >> meshes: the suite's variance axis."""
    stats = {n: compute_stats(load_graph(n, scale_div=SMALL)) for n in SUITE_ORDER}
    assert stats["rmat-g"].variance > 5 * stats["rmat-er"].variance
    assert stats["rmat-er"].variance > stats["thermal2"].variance
    assert stats["atmosmodd"].variance < 1.0
    assert stats["G3_circuit"].variance < 1.5


def test_determinism():
    a = load_graph("Hamrle3", scale_div=SMALL, seed=9)
    b = load_graph("Hamrle3", scale_div=SMALL, seed=9)
    assert np.array_equal(a.col_indices, b.col_indices)


def test_load_suite_subset():
    graphs = load_suite(("thermal2", "rmat-er"), scale_div=SMALL)
    assert [g.name for g in graphs] == ["thermal2", "rmat-er"]


def test_default_scale_div_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
    monkeypatch.delenv("REPRO_SCALE_DIV", raising=False)
    assert default_scale_div() == 16
    monkeypatch.setenv("REPRO_SCALE_DIV", "8")
    assert default_scale_div() == 8
    monkeypatch.setenv("REPRO_FULL_SCALE", "1")
    assert default_scale_div() == 1


def test_bad_scale_div_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE_DIV", "0")
    with pytest.raises(ValueError):
        default_scale_div()


def test_atmosmodd_not_bipartite():
    """The stand-in must carry odd cycles or greedy trivially 2-colors it."""
    from repro.coloring.sequential import greedy_colors_only

    g = load_graph("atmosmodd", scale_div=SMALL)
    assert greedy_colors_only(g).max() >= 3


def test_cache_dir_roundtrip(tmp_path, monkeypatch):
    """REPRO_CACHE_DIR caches generated graphs on disk."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = load_graph("Hamrle3", scale_div=256)
    files = list(tmp_path.glob("*.npz"))
    assert len(files) == 1
    b = load_graph("Hamrle3", scale_div=256)  # served from cache
    assert np.array_equal(a.col_indices, b.col_indices)
    # different scale gets its own cache entry
    load_graph("Hamrle3", scale_div=128)
    assert len(list(tmp_path.glob("*.npz"))) == 2
