"""Cross-scheme correctness matrix: every scheme, every graph regime.

Speculative algorithms fail by leaving conflicts or uncolored vertices, so
the core guarantee — validate() passes — is asserted for the full scheme x
graph product, plus exact chromatic numbers on oracle graphs.
"""

import numpy as np
import pytest

from repro.coloring.api import METHODS, color_graph
from repro.coloring.sequential import greedy_colors_only
from tests.conftest import GRAPH_FIXTURES

ALL_SCHEMES = sorted(set(METHODS) - {"balanced-greedy"}) + ["balanced-greedy"]


@pytest.mark.parametrize("any_graph", GRAPH_FIXTURES, indirect=True)
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_scheme_proper_on_every_regime(any_graph, scheme):
    result = color_graph(any_graph, method=scheme)  # validate=True raises on bugs
    assert result.num_colors >= 1
    assert result.colors.min() >= 1


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_complete_graph_needs_n_colors(scheme, k5):
    assert color_graph(k5, method=scheme).num_colors == 5


def test_sequential_two_colors_even_cycle(c6):
    assert color_graph(c6, method="sequential").num_colors == 2


@pytest.mark.parametrize(
    "scheme", ["gm", "topo-base", "data-base", "3step-gm"]
)
def test_speculative_family_near_two_colors_even_cycle(scheme, c6):
    """Speculation may burn one extra color resolving same-round races
    (the 'slight difference' the paper notes under Fig. 6) but no more."""
    assert color_graph(c6, method=scheme).num_colors <= 3


@pytest.mark.parametrize(
    "scheme", ["sequential", "gm", "topo-base", "data-base", "3step-gm", "jp", "csrcolor"]
)
def test_odd_cycle_needs_three(scheme, c7):
    assert color_graph(c7, method=scheme).num_colors >= 3


@pytest.mark.parametrize("scheme", ["topo-base", "data-base", "topo-ldg", "data-ldg"])
def test_sgr_color_counts_near_sequential(scheme, small_er):
    """Fig. 6's claim: speculative schemes stay close to greedy quality."""
    seq = greedy_colors_only(small_er).max()
    got = color_graph(small_er, method=scheme).num_colors
    assert got <= seq + 3


def test_csrcolor_many_more_colors(small_er):
    """Fig. 6's other claim: the MIS scheme inflates the color count."""
    seq = greedy_colors_only(small_er).max()
    csr = color_graph(small_er, method="csrcolor").num_colors
    assert csr >= 3 * seq


@pytest.mark.parametrize("scheme", ["topo-base", "data-base", "csrcolor", "3step-gm"])
def test_schemes_deterministic(scheme, small_er):
    a = color_graph(small_er, method=scheme)
    b = color_graph(small_er, method=scheme)
    assert np.array_equal(a.colors, b.colors)
    assert a.total_time_us == b.total_time_us


def test_degree_plus_one_bound_all_greedy_family(small_rmat):
    bound = small_rmat.max_degree + 1
    for scheme in ("sequential", "gm", "topo-base", "data-base", "3step-gm"):
        assert color_graph(small_rmat, method=scheme).num_colors <= bound


def test_unknown_method_rejected(c6):
    with pytest.raises(ValueError, match="unknown method"):
        color_graph(c6, method="quantum")


def test_validate_flag_skips_check(c6):
    res = color_graph(c6, method="sequential", validate=False)
    assert res.num_colors == 2


def test_scheme_names_match_paper_legend():
    from repro.coloring.api import EVALUATED_SCHEMES

    assert EVALUATED_SCHEMES == (
        "sequential",
        "3step-gm",
        "topo-base",
        "topo-ldg",
        "data-base",
        "data-ldg",
        "csrcolor",
    )


def test_kwargs_forwarded(small_er):
    res = color_graph(small_er, method="data-base", block_size=64)
    assert res.extra["block_size"] == 64
    res = color_graph(small_er, method="csrcolor", num_hashes=2)
    assert res.extra["num_hashes"] == 2
