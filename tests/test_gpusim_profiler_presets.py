"""Profiler reports and device presets / scaling behavior."""

import numpy as np
import pytest

from repro.coloring import color_graph
from repro.gpusim import (
    Device,
    KEPLER_K20C,
    KEPLER_K40,
    KEPLER_SMALL,
    profile_report,
    summarize_profiles,
    timeline_report,
)


@pytest.fixture(scope="module")
def run_result():
    from repro.graph.generators import erdos_renyi

    # Large enough to fill every preset's resident capacity (the scaling
    # assertions are meaningless for grids smaller than the device).
    g = erdos_renyi(40_000, 8.0, seed=4)
    device = Device()
    result = color_graph(g, method="data-ldg", device=device)
    return g, device, result


# ----------------------------------------------------------------- summary
def test_summary_aggregates(run_result):
    _, _, result = run_result
    s = summarize_profiles(result.profiles)
    assert s.num_launches == len(result.profiles)
    assert s.total_time_us == pytest.approx(sum(p.time_us for p in result.profiles))
    assert 0 < s.avg_occupancy <= 1
    assert 0 <= s.avg_simd_efficiency <= 1
    assert sum(s.stalls.values()) == pytest.approx(1.0)
    assert s.dominant_bound in s.bound_histogram


def test_summary_empty_is_zero_run():
    # Zero-launch runs (empty graphs) report explicit zeros, not an error.
    s = summarize_profiles([])
    assert s.num_launches == 0
    assert s.total_time_us == 0.0
    assert s.total_dram_bytes == 0
    assert s.stalls == {} and s.bound_histogram == {}
    assert s.dominant_bound == "none"


def test_profile_report_renders(run_result):
    _, _, result = run_result
    text = profile_report(result.profiles)
    assert "data-color-0" in text
    assert "dominant bound" in text
    assert "launches" in text


def test_profile_report_top_filter(run_result):
    _, _, result = run_result
    text = profile_report(result.profiles, top=1)
    # only one kernel row: header + separator + 1 row + summary lines
    kernel_rows = [l for l in text.splitlines() if l.startswith("data-")]
    assert len(kernel_rows) == 1


def test_profile_report_no_profiles():
    assert "no kernel launches" in profile_report([])


def test_timeline_report(run_result):
    _, device, _ = run_result
    text = timeline_report(device)
    assert "kernel execution" in text
    assert "PCIe transfers" in text
    assert "K20c" in text


# ----------------------------------------------------------------- presets
def test_presets_are_distinct():
    assert KEPLER_K40.num_sms > KEPLER_K20C.num_sms > KEPLER_SMALL.num_sms
    assert KEPLER_K40.dram_bandwidth_gbs > KEPLER_SMALL.dram_bandwidth_gbs


def test_bigger_device_never_slower(run_result):
    g, _, k20_result = run_result
    small = color_graph(g, method="data-ldg", device=Device(KEPLER_SMALL))
    big = color_graph(g, method="data-ldg", device=Device(KEPLER_K40))
    assert small.total_time_us > k20_result.total_time_us
    assert big.total_time_us <= k20_result.total_time_us * 1.02
    # functional results do not depend on the device model
    assert np.array_equal(small.colors, big.colors)


def test_scaling_is_sublinear(run_result):
    """Latency-bound kernels cannot scale linearly with SM count."""
    g, _, _ = run_result
    small = color_graph(g, method="data-ldg", device=Device(KEPLER_SMALL))
    big = color_graph(g, method="data-ldg", device=Device(KEPLER_K40))
    sm_ratio = KEPLER_K40.num_sms / KEPLER_SMALL.num_sms
    assert small.total_time_us / big.total_time_us < sm_ratio * 1.5
