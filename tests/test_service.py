"""The asyncio coloring service: admission, coalescing, batching, sessions."""

import asyncio

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.engine import RunConfig
from repro.graph.builder import cycle_graph
from repro.service import (
    PRIORITIES,
    AdmissionError,
    ColoringService,
    RequestFailed,
    ServiceClient,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=8, seed=3)


@pytest.fixture(scope="module")
def g2():
    return rmat_er(scale=8, seed=4)


# ------------------------------------------------------------- lifecycle
def test_submit_before_start_is_structured_rejection(g):
    async def main():
        svc = ColoringService()
        with pytest.raises(AdmissionError) as exc:
            await svc.submit(g)
        assert exc.value.reason == "not-running"

    run(main())


def test_context_manager_starts_and_drains(g):
    async def main():
        async with ColoringService() as svc:
            assert svc.running
            result = await svc.submit(g)
            assert result.num_colors > 0
        assert not svc.running
        assert svc.stats["queue_depth"] == 0
        assert svc.stats["inflight"] == 0

    run(main())


def test_close_without_drain_fails_queued_requests(g, g2):
    async def main():
        svc = ColoringService()
        await svc.start()
        # Stall dispatch long enough to catch requests still queued.
        svc.batch_window_s = 0.2
        tasks = [
            asyncio.create_task(svc.submit(g)),
            asyncio.create_task(svc.submit(g2)),
        ]
        await asyncio.sleep(0)  # let them enqueue
        await svc.close(drain=False)
        done = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, AdmissionError) for r in done)

    run(main())


# ------------------------------------------------------------ coalescing
def test_fifty_concurrent_duplicates_one_engine_run(g):
    async def main():
        async with ColoringService() as svc:
            client = ServiceClient(svc)
            results = await client.color_many([g] * 50, priority="normal")
            stats = svc.stats
            return results, stats

    results, stats = run(main())
    assert len(results) == 50
    assert stats["engine_runs"] == 1  # the acceptance criterion
    assert stats["coalesced"] + stats["cache_hits"] == 49
    assert stats["coalesced"] > 0
    # every caller gets an independent result object
    assert len({id(r.colors) for r in results}) == 50
    followers = [r for r in results if r.extra.peek("coalesced")]
    assert followers and all(
        np.array_equal(f.colors, results[0].colors) for f in followers
    )


def test_service_colors_byte_identical_to_direct(g):
    async def main():
        async with ColoringService("data-ldg") as svc:
            return await svc.submit(g, "data-ldg")

    result = run(main())
    direct = color_graph(g, "data-ldg")
    assert np.array_equal(result.colors, direct.colors)
    assert result.scheme == direct.scheme


def test_coalescing_in_trace_and_repeat_submission_hits_cache(g):
    async def main():
        cfg = RunConfig(observe="trace")
        async with ColoringService(config=cfg) as svc:
            await asyncio.gather(*(svc.submit(g) for _ in range(5)))
            later = await svc.submit(g)  # in-flight long gone: cache path
            return svc, later

    svc, later = run(main())
    stats = svc.stats
    assert stats["engine_runs"] == 1
    assert stats["cache_hits"] >= 1
    assert later.cache_hit is True
    names = [s.name for s in svc.observation.tracer.roots]
    assert names.count("service.batch") == 1
    coalesce_marks = [
        s for s in svc.observation.tracer.roots
        if s.name == "service.request" and s.counters.get("coalesced")
    ]
    assert coalesce_marks  # coalescing is observable in the trace


def test_distinct_graphs_do_not_coalesce(g, g2):
    async def main():
        async with ColoringService() as svc:
            await asyncio.gather(svc.submit(g), svc.submit(g2))
            return svc.stats

    stats = run(main())
    assert stats["engine_runs"] == 2
    assert stats["coalesced"] == 0


def test_distinct_options_fork_the_key(g):
    async def main():
        async with ColoringService() as svc:
            await asyncio.gather(
                svc.submit(g, options={"block_size": 128}),
                svc.submit(g, options={"block_size": 256}),
            )
            return svc.stats

    stats = run(main())
    assert stats["engine_runs"] == 2


# -------------------------------------------------------------- admission
def test_queue_full_rejection_is_structured(g):
    async def main():
        svc = ColoringService(max_queue=4)
        await svc.start()
        svc.batch_window_s = 0.2  # hold the queue full
        graphs = [rmat_er(scale=5, seed=i) for i in range(4)]
        tasks = [asyncio.create_task(svc.submit(x, priority="batch"))
                 for x in graphs[:2]]
        await asyncio.sleep(0)
        with pytest.raises(AdmissionError) as exc:
            await svc.submit(graphs[2], priority="batch")
        assert exc.value.reason == "queue-full"
        assert exc.value.limit == 2  # batch share: 0.5 * 4
        assert exc.value.queue_depth >= 2
        # interactive share is the full queue: still admitted
        interactive = asyncio.create_task(
            svc.submit(graphs[3], priority="interactive")
        )
        await asyncio.gather(*tasks, interactive)
        await svc.close()
        assert svc.stats["rejected"] == 1

    run(main())


def test_unknown_priority_rejected(g):
    async def main():
        async with ColoringService() as svc:
            with pytest.raises(ValueError, match="priority"):
                await svc.submit(g, priority="urgent")

    run(main())
    assert PRIORITIES == ("interactive", "normal", "batch")


def test_engine_failure_surfaces_as_request_failed():
    bad = cycle_graph(6)

    async def main():
        async with ColoringService() as svc:
            with pytest.raises(RequestFailed):
                # unknown scheme option -> the job fails in the engine
                await svc.submit(bad, options={"no_such_option": 1})
            healthy = await svc.submit(bad)
            return healthy, svc.stats

    healthy, stats = run(main())
    assert healthy.num_colors > 0  # service survives a failed request
    assert stats["failed"] == 1


# ------------------------------------------------------- config threading
def test_run_config_threads_through(g, tmp_path):
    async def main():
        cfg = RunConfig(
            backend="cpusim", store="shm", cache=str(tmp_path / "rc"),
            mex="sort",
        )
        async with ColoringService("data-base", config=cfg) as svc:
            result = await svc.submit(g)
            assert svc._owns_store and svc._store.kind == "shm"
            return result, svc

    result, svc = run(main())
    assert svc._store is None  # owned arena released on close
    direct = color_graph(g, "data-base", backend="cpusim")
    assert np.array_equal(result.colors, direct.colors)
    assert (tmp_path / "rc").exists()  # disk cache actually used
    assert not list(
        __import__("pathlib").Path("/dev/shm").glob("reproshm_*")
    )


def test_worker_pool_batches(g, g2):
    async def main():
        cfg = RunConfig(workers=2)
        async with ColoringService(config=cfg) as svc:
            client = ServiceClient(svc)
            results = await client.color_many([g, g2, g, g2])
            return results, svc.stats

    results, stats = run(main())
    assert stats["engine_runs"] == 2
    assert np.array_equal(results[0].colors, color_graph(g, "data-ldg").colors)
    assert np.array_equal(results[1].colors, results[3].colors)


# ---------------------------------------------------------------- client
def test_client_return_exceptions(g):
    async def main():
        async with ColoringService(max_queue=2) as svc:
            svc.batch_window_s = 0.1
            client = ServiceClient(svc)
            graphs = [rmat_er(scale=5, seed=i) for i in range(4)]
            out = await client.color_many(
                    graphs, priority="normal", return_exceptions=True
                )
            return out

    out = run(main())
    assert any(isinstance(r, AdmissionError) for r in out)
    assert any(not isinstance(r, Exception) for r in out)


# ---------------------------------------------------------------- serve CLI
def test_cli_serve_check(capsys):
    from repro.cli import main

    rc = main([
        "serve", "--graph", "rmat-er", "--scale-div", "64",
        "--requests", "20", "--session-edits", "10", "--check",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CHECK OK" in out
    assert "coalesced" in out


# ------------------------------------------------- deadlines & breakers
def test_deadline_zero_rejected_at_admission(g):
    from repro.resilience import DeadlineExceeded

    async def main():
        async with ColoringService() as svc:
            with pytest.raises(DeadlineExceeded) as exc:
                await svc.submit(g, deadline_ms=0.0)
            assert exc.value.where == "admission"
            return svc.stats

    stats = run(main())
    assert stats["deadline_hits"] == 1
    assert stats["failed"] == 0  # structural rejection, not a failure


def test_deadline_expires_in_queue_attributed_to_dispatch(g):
    from repro.resilience import DeadlineExceeded

    async def main():
        async with ColoringService() as svc:
            svc.batch_window_s = 0.1  # guarantee >= 100 ms queued
            with pytest.raises(DeadlineExceeded) as exc:
                await svc.submit(g, deadline_ms=5.0)
            return exc.value, svc.stats

    err, stats = run(main())
    assert err.where == "dispatch"
    assert err.queued_ms > 0.0
    assert stats["deadline_hits"] == 1


def test_config_deadline_is_the_default_budget(g):
    from repro.resilience import DeadlineExceeded

    async def main():
        cfg = RunConfig(deadline_ms=5.0)
        async with ColoringService(config=cfg) as svc:
            svc.batch_window_s = 0.1
            with pytest.raises(DeadlineExceeded):
                await svc.submit(g)  # inherits config.deadline_ms
            # an explicit budget overrides the config default
            r = await svc.submit(g, deadline_ms=60_000.0)
            return r

    assert run(main()).num_colors > 0


def test_coalesced_follower_abandons_without_killing_leader(g):
    from repro.resilience import DeadlineExceeded

    async def main():
        async with ColoringService() as svc:
            svc.batch_window_s = 0.2
            leader = asyncio.create_task(svc.submit(g))
            await asyncio.sleep(0)  # leader enqueued, entry in flight
            with pytest.raises(DeadlineExceeded) as exc:
                await svc.submit(g, deadline_ms=30.0)
            assert exc.value.where == "coalesced-wait"
            result = await leader  # the leader still completes
            return result, svc.stats

    result, stats = run(main())
    assert result.num_colors > 0
    assert stats["coalesced"] == 1
    assert stats["deadline_hits"] == 1
    assert stats["cancelled"] == 0  # one waiter remained throughout


def test_last_waiter_abandoning_cancels_the_run(g):
    async def main():
        async with ColoringService() as svc:
            svc.batch_window_s = 0.3
            task = asyncio.create_task(svc.submit(g))
            await asyncio.sleep(0.05)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return svc.stats

    stats = run(main())
    assert stats["cancelled"] == 1


def test_dispatcher_crash_restarts_and_serves_next_request(g):
    async def main():
        cfg = RunConfig(faults="seed=1; dispatcher-crash: batch=0")
        async with ColoringService(config=cfg) as svc:
            with pytest.raises(RequestFailed, match="dispatcher crashed"):
                await svc.submit(g)
            result = await svc.submit(g)  # auto-restarted dispatcher
            return result, svc.stats

    result, stats = run(main())
    assert result.num_colors > 0
    assert stats["dispatcher_restarts"] == 1
    assert stats["completed"] == 1


def test_service_stats_expose_breaker_state(g):
    async def main():
        async with ColoringService() as svc:
            await svc.submit(g)
            return svc.stats

    stats = run(main())
    assert stats["breaker"]["state"] == "closed"
    assert stats["breaker"]["name"] == "service"
    assert stats["breaker"]["trips"] == 0


def test_double_close_is_a_no_op(g):
    async def main():
        svc = ColoringService()
        await svc.start()
        await svc.submit(g)
        await svc.close()
        await svc.close()  # second close: no-op, no raise
        return svc.stats

    stats = run(main())
    assert not stats["running"]
    assert stats["queue_depth"] == 0 and stats["inflight"] == 0
