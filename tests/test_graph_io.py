"""Graph I/O: MatrixMarket, edge lists, binary caches."""

import gzip

import numpy as np
import pytest

from repro.graph.builder import from_edges
from repro.graph.generators import erdos_renyi
from repro.graph.io.binary import cached, load_npz, save_npz
from repro.graph.io.edgelist import read_edgelist, write_edgelist
from repro.graph.io.matrix_market import (
    MatrixMarketError,
    read_matrix_market,
    write_matrix_market,
)


@pytest.fixture
def sample():
    return erdos_renyi(120, 5.0, seed=3, name="io-sample")


# ------------------------------------------------------------- MatrixMarket
def test_mtx_roundtrip(sample, tmp_path):
    path = tmp_path / "g.mtx"
    write_matrix_market(sample, path)
    back = read_matrix_market(path)
    assert back.num_vertices == sample.num_vertices
    assert np.array_equal(back.row_offsets, sample.row_offsets)
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_mtx_reads_general_real(tmp_path):
    path = tmp_path / "g.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 3 3\n"
        "1 2 0.5\n"
        "2 3 -1.0\n"
        "3 1 2.25\n"
    )
    g = read_matrix_market(path)
    assert g.num_vertices == 3
    assert g.num_undirected_edges == 3
    assert g.is_symmetric()


def test_mtx_drops_diagonal(tmp_path):
    path = tmp_path / "g.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 1\n3 1\n"
    )
    g = read_matrix_market(path)
    assert not g.has_self_loops()
    assert g.num_undirected_edges == 1


def test_mtx_gzip(tmp_path, sample):
    plain = tmp_path / "g.mtx"
    write_matrix_market(sample, plain)
    gz = tmp_path / "g.mtx.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    back = read_matrix_market(gz)
    assert back.num_edges == sample.num_edges


@pytest.mark.parametrize(
    "header,err",
    [
        ("nonsense\n1 1 0\n", "header"),
        ("%%MatrixMarket matrix array real general\n1 1 0\n", "coordinate"),
        ("%%MatrixMarket matrix coordinate real lower\n1 1 0\n", "symmetry"),
        ("%%MatrixMarket matrix coordinate blob general\n1 1 0\n", "field"),
        ("%%MatrixMarket matrix coordinate real general\n2 3 0\n", "square"),
        ("%%MatrixMarket matrix coordinate real general\nx y z\n", "size line"),
    ],
)
def test_mtx_malformed(tmp_path, header, err):
    path = tmp_path / "bad.mtx"
    path.write_text(header)
    with pytest.raises(MatrixMarketError, match=err):
        read_matrix_market(path)


def test_mtx_truncated_entries(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n"
    )
    with pytest.raises(MatrixMarketError, match="expected 5"):
        read_matrix_market(path)


# --------------------------------------------------------------- edge list
def test_edgelist_roundtrip(sample, tmp_path):
    path = tmp_path / "g.el"
    write_edgelist(sample, path)
    back = read_edgelist(path, num_vertices=sample.num_vertices)
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_edgelist_comments(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("# header\n0 1\n1 2\n")
    g = read_edgelist(path)
    assert g.num_undirected_edges == 2


# -------------------------------------------------------------- binary npz
def test_npz_roundtrip(sample, tmp_path):
    path = tmp_path / "g.npz"
    save_npz(sample, path)
    back = load_npz(path)
    assert back.name == "io-sample"
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_npz_version_check(sample, tmp_path):
    path = tmp_path / "g.npz"
    np.savez(
        path,
        row_offsets=sample.row_offsets,
        col_indices=sample.col_indices,
        name=np.array("x"),
        version=np.array(99),
    )
    with pytest.raises(ValueError, match="version"):
        load_npz(path)


def test_cached_builds_once(tmp_path):
    calls = []

    def build():
        calls.append(1)
        return from_edges([0], [1], num_vertices=2, name="cached")

    path = tmp_path / "sub" / "c.npz"
    g1 = cached(path, build)
    g2 = cached(path, build)
    assert len(calls) == 1
    assert g1.num_edges == g2.num_edges
    assert path.exists()


# ------------------------------------------------------------ csrbin (OOC)
from repro.graph.io.stream import (  # noqa: E402 - grouped with its tests
    edges_to_csr_bin,
    er_edge_stream,
    read_csr_bin,
    write_csr_bin,
)


@pytest.mark.parametrize("mmap", [True, False])
def test_csrbin_roundtrip(sample, tmp_path, mmap):
    path = tmp_path / "g.csrbin"
    write_csr_bin(sample, path)
    back = read_csr_bin(path, mmap=mmap)
    assert np.array_equal(back.row_offsets, sample.row_offsets)
    assert np.array_equal(back.col_indices, sample.col_indices)
    # Dtypes survive exactly — the container never casts.
    assert back.row_offsets.dtype == sample.row_offsets.dtype == np.int64
    assert back.col_indices.dtype == sample.col_indices.dtype == np.int32


def test_csrbin_digest_stable_across_save_load(sample, tmp_path):
    path = tmp_path / "g.csrbin"
    write_csr_bin(sample, path)
    assert read_csr_bin(path).content_digest() == sample.content_digest()
    assert (
        read_csr_bin(path, mmap=False).content_digest()
        == sample.content_digest()
    )


def test_csrbin_empty_graph(tmp_path):
    empty = from_edges([], [], num_vertices=4, name="empty")
    path = tmp_path / "e.csrbin"
    write_csr_bin(empty, path)
    back = read_csr_bin(path)
    assert back.num_vertices == 4
    assert back.num_edges == 0
    assert back.content_digest() == empty.content_digest()


def test_csrbin_rejects_corruption(sample, tmp_path):
    path = tmp_path / "g.csrbin"
    write_csr_bin(sample, path)

    bad_magic = tmp_path / "bad.csrbin"
    bad_magic.write_bytes(b"NOTACSRB" + path.read_bytes()[8:])
    with pytest.raises(ValueError, match="magic"):
        read_csr_bin(bad_magic)

    truncated = tmp_path / "trunc.csrbin"
    truncated.write_bytes(path.read_bytes()[:32])
    with pytest.raises(ValueError, match="truncated"):
        read_csr_bin(truncated)

    import struct

    bad_version = tmp_path / "ver.csrbin"
    raw = bytearray(path.read_bytes())
    raw[8:12] = struct.pack("<I", 99)
    bad_version.write_bytes(raw)
    with pytest.raises(ValueError, match="version"):
        read_csr_bin(bad_version)


def test_csrbin_validate_catches_broken_topology(sample, tmp_path):
    path = tmp_path / "g.csrbin"
    write_csr_bin(sample, path)
    raw = bytearray(path.read_bytes())
    # Corrupt one column index to an out-of-range vertex id.
    import struct

    c_off = len(raw) - 4
    raw[c_off:c_off + 4] = struct.pack("<i", sample.num_vertices + 7)
    path.write_bytes(raw)
    with pytest.raises(Exception):
        read_csr_bin(path, validate=True)
    # validate=False trusts the file (the attach fast path).
    g = read_csr_bin(path, validate=False)
    assert g.num_edges == sample.num_edges


def test_edges_to_csr_bin_matches_from_edges(tmp_path):
    rng = np.random.default_rng(17)
    n, m = 500, 3000
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)
    expect = from_edges(u, v, num_vertices=n, name="ref")

    path = tmp_path / "ooc.csrbin"
    # Feed the converter tiny chunks so every pass exercises chunking.
    chunks = [(u[i:i + 257], v[i:i + 257]) for i in range(0, m, 257)]
    info = edges_to_csr_bin(chunks, n, path, chunk_edges=64)
    back = read_csr_bin(path)
    assert info["num_edges"] == expect.num_edges
    assert np.array_equal(back.row_offsets, expect.row_offsets)
    assert np.array_equal(back.col_indices, expect.col_indices)
    assert back.content_digest() == expect.content_digest()
    assert not path.with_suffix(path.suffix + ".spill").exists()


def test_edges_to_csr_bin_from_stream_factory(tmp_path):
    n, raw = 300, 2000
    path = tmp_path / "er.csrbin"
    info = edges_to_csr_bin(
        lambda: er_edge_stream(n, raw, seed=9, chunk_edges=333), n, path
    )
    # Reference: materialize the same stream in memory.
    us, vs = zip(*er_edge_stream(n, raw, seed=9, chunk_edges=333))
    expect = from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=n, name="er"
    )
    back = read_csr_bin(path)
    assert info["raw_entries"] <= 2 * raw
    assert np.array_equal(back.row_offsets, expect.row_offsets)
    assert np.array_equal(back.col_indices, expect.col_indices)


def test_er_edge_stream_is_reiterable_and_chunk_stable(tmp_path):
    a = list(er_edge_stream(100, 1000, seed=4, chunk_edges=100))
    b = list(er_edge_stream(100, 1000, seed=4, chunk_edges=100))
    assert len(a) == 10
    for (ua, va), (ub, vb) in zip(a, b):
        assert np.array_equal(ua, ub) and np.array_equal(va, vb)


def test_edges_to_csr_bin_rejects_bad_chunks(tmp_path):
    path = tmp_path / "bad.csrbin"
    with pytest.raises(ValueError, match="out-of-range"):
        edges_to_csr_bin([(np.array([0]), np.array([99]))], 5, path)
    with pytest.raises(ValueError, match="length"):
        edges_to_csr_bin([(np.array([0, 1]), np.array([2]))], 5, path)
