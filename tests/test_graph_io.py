"""Graph I/O: MatrixMarket, edge lists, binary caches."""

import gzip

import numpy as np
import pytest

from repro.graph.builder import from_edges
from repro.graph.generators import erdos_renyi
from repro.graph.io.binary import cached, load_npz, save_npz
from repro.graph.io.edgelist import read_edgelist, write_edgelist
from repro.graph.io.matrix_market import (
    MatrixMarketError,
    read_matrix_market,
    write_matrix_market,
)


@pytest.fixture
def sample():
    return erdos_renyi(120, 5.0, seed=3, name="io-sample")


# ------------------------------------------------------------- MatrixMarket
def test_mtx_roundtrip(sample, tmp_path):
    path = tmp_path / "g.mtx"
    write_matrix_market(sample, path)
    back = read_matrix_market(path)
    assert back.num_vertices == sample.num_vertices
    assert np.array_equal(back.row_offsets, sample.row_offsets)
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_mtx_reads_general_real(tmp_path):
    path = tmp_path / "g.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 3 3\n"
        "1 2 0.5\n"
        "2 3 -1.0\n"
        "3 1 2.25\n"
    )
    g = read_matrix_market(path)
    assert g.num_vertices == 3
    assert g.num_undirected_edges == 3
    assert g.is_symmetric()


def test_mtx_drops_diagonal(tmp_path):
    path = tmp_path / "g.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 1\n3 1\n"
    )
    g = read_matrix_market(path)
    assert not g.has_self_loops()
    assert g.num_undirected_edges == 1


def test_mtx_gzip(tmp_path, sample):
    plain = tmp_path / "g.mtx"
    write_matrix_market(sample, plain)
    gz = tmp_path / "g.mtx.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    back = read_matrix_market(gz)
    assert back.num_edges == sample.num_edges


@pytest.mark.parametrize(
    "header,err",
    [
        ("nonsense\n1 1 0\n", "header"),
        ("%%MatrixMarket matrix array real general\n1 1 0\n", "coordinate"),
        ("%%MatrixMarket matrix coordinate real lower\n1 1 0\n", "symmetry"),
        ("%%MatrixMarket matrix coordinate blob general\n1 1 0\n", "field"),
        ("%%MatrixMarket matrix coordinate real general\n2 3 0\n", "square"),
        ("%%MatrixMarket matrix coordinate real general\nx y z\n", "size line"),
    ],
)
def test_mtx_malformed(tmp_path, header, err):
    path = tmp_path / "bad.mtx"
    path.write_text(header)
    with pytest.raises(MatrixMarketError, match=err):
        read_matrix_market(path)


def test_mtx_truncated_entries(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n"
    )
    with pytest.raises(MatrixMarketError, match="expected 5"):
        read_matrix_market(path)


# --------------------------------------------------------------- edge list
def test_edgelist_roundtrip(sample, tmp_path):
    path = tmp_path / "g.el"
    write_edgelist(sample, path)
    back = read_edgelist(path, num_vertices=sample.num_vertices)
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_edgelist_comments(tmp_path):
    path = tmp_path / "g.el"
    path.write_text("# header\n0 1\n1 2\n")
    g = read_edgelist(path)
    assert g.num_undirected_edges == 2


# -------------------------------------------------------------- binary npz
def test_npz_roundtrip(sample, tmp_path):
    path = tmp_path / "g.npz"
    save_npz(sample, path)
    back = load_npz(path)
    assert back.name == "io-sample"
    assert np.array_equal(back.col_indices, sample.col_indices)


def test_npz_version_check(sample, tmp_path):
    path = tmp_path / "g.npz"
    np.savez(
        path,
        row_offsets=sample.row_offsets,
        col_indices=sample.col_indices,
        name=np.array("x"),
        version=np.array(99),
    )
    with pytest.raises(ValueError, match="version"):
        load_npz(path)


def test_cached_builds_once(tmp_path):
    calls = []

    def build():
        calls.append(1)
        return from_edges([0], [1], num_vertices=2, name="cached")

    path = tmp_path / "sub" / "c.npz"
    g1 = cached(path, build)
    g2 = cached(path, build)
    assert len(calls) == 1
    assert g1.num_edges == g2.num_edges
    assert path.exists()
