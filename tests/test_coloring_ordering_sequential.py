"""Ordering heuristics and the sequential greedy baseline (Alg. 1)."""

import numpy as np
import pytest

from repro.coloring.ordering import (
    ORDERINGS,
    incidence_degree_order,
    largest_degree_first,
    natural_order,
    random_order,
    smallest_degree_last,
)
from repro.coloring.sequential import greedy_colors_only, greedy_sequential
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    from_edges,
    path_graph,
    star_graph,
)


# --------------------------------------------------------------- orderings
@pytest.mark.parametrize("name", sorted(ORDERINGS))
def test_orderings_are_permutations(name, small_er):
    order = ORDERINGS[name](small_er, seed=1)
    assert np.array_equal(np.sort(order), np.arange(small_er.num_vertices))


def test_natural_order_identity(c6):
    assert np.array_equal(natural_order(c6), np.arange(6))


def test_random_order_seeded(small_er):
    a = random_order(small_er, seed=5)
    b = random_order(small_er, seed=5)
    c = random_order(small_er, seed=6)
    assert np.array_equal(a, b) and not np.array_equal(a, c)


def test_largest_first_sorted_by_degree(star):
    order = largest_degree_first(star)
    assert order[0] == 0  # the hub


def test_smallest_last_color_bound():
    """SL guarantees <= 1 + degeneracy colors; a tree has degeneracy 1."""
    g = star_graph(20)
    order = smallest_degree_last(g)
    colors = greedy_colors_only(g, order)
    assert colors.max() == 2


def test_smallest_last_on_random(small_er):
    order = smallest_degree_last(small_er)
    assert np.array_equal(np.sort(order), np.arange(small_er.num_vertices))
    # degeneracy-ordered greedy never beats... never loses to worst case
    colors = greedy_colors_only(small_er, order)
    assert colors.max() <= small_er.max_degree + 1


def test_incidence_degree_valid(small_er):
    order = incidence_degree_order(small_er)
    assert np.array_equal(np.sort(order), np.arange(small_er.num_vertices))


# -------------------------------------------------------------- sequential
def test_greedy_complete_graph():
    g = complete_graph(7)
    assert greedy_colors_only(g).max() == 7


def test_greedy_cycles():
    assert greedy_colors_only(cycle_graph(8)).max() == 2
    assert greedy_colors_only(cycle_graph(9)).max() == 3


def test_greedy_path_and_star():
    assert greedy_colors_only(path_graph(10)).max() == 2
    assert greedy_colors_only(star_graph(10)).max() == 2


def test_greedy_bipartite_natural_order(small_bipartite):
    # left block first, then right: first-fit 2-colors it
    colors = greedy_colors_only(small_bipartite)
    assert colors.max() == 2


def test_greedy_is_proper(small_rmat):
    res = greedy_sequential(small_rmat)
    res.validate(small_rmat)


def test_greedy_bound(small_er):
    assert greedy_colors_only(small_er).max() <= small_er.max_degree + 1


def test_greedy_respects_order():
    """Crown-graph-style instance where order changes the count."""
    # path a-b-c-d: coloring b,c first (inner) can force 3 colors? No -
    # use the classic 2xK2 crossed example.
    g = from_edges([0, 1, 0, 2], [2, 3, 3, 1], num_vertices=4)  # C4
    natural = greedy_colors_only(g, np.array([0, 1, 2, 3]))
    bad = greedy_colors_only(g, np.array([0, 3, 1, 2]))
    assert natural.max() == 2
    assert bad.max() >= natural.max()


def test_greedy_fig2_example(tiny_known):
    colors = greedy_colors_only(tiny_known)
    assert colors.max() == 3  # the paper's Fig. 2 needs exactly 3


def test_greedy_sequential_times_positive(small_er):
    res = greedy_sequential(small_er)
    assert res.cpu_time_us > 0
    assert res.gpu_time_us == 0
    assert res.scheme == "sequential"


def test_greedy_sequential_ordering_kwarg(small_er):
    res = greedy_sequential(small_er, ordering="smallest-last")
    res.validate(small_er)
    assert res.scheme == "sequential-smallest-last"
    with pytest.raises(ValueError, match="unknown ordering"):
        greedy_sequential(small_er, ordering="nope")


def test_greedy_empty_graph(isolated):
    res = greedy_sequential(isolated)
    res.validate(isolated)
    assert res.num_colors == 1  # every isolated vertex takes color 1


def test_colormask_no_reinitialization_artifacts():
    """The id-stamped mask must not leak forbidden colors across vertices."""
    # two disjoint triangles: each must use colors {1,2,3} independently
    g = from_edges([0, 0, 1, 3, 3, 4], [1, 2, 2, 4, 5, 5], num_vertices=6)
    colors = greedy_colors_only(g)
    assert colors.max() == 3
    assert set(colors[:3]) == {1, 2, 3}
    assert set(colors[3:]) == {1, 2, 3}
