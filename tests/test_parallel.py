"""Process-pool scheduler: byte-identity, ordering, failures, retries.

The headline guarantee: ``color_many(..., workers=N)`` returns the same
colors and iteration counts as a serial run, for every scheme and every
ablation knob — proven against the same golden fingerprints the engine
refactor is held to (tests/test_engine_equivalence.py).  Timings are
exempt by design (each worker's device starts cold).
"""

import hashlib
import multiprocessing
import os

import numpy as np
import pytest

from repro import color_graph, color_many
from repro.parallel import (
    ColorJob,
    JobFailure,
    ProcessPoolScheduler,
    SerialScheduler,
    normalize_jobs,
    resolve_scheduler,
)
from repro.parallel.scheduler import run_jobs

from .test_engine_equivalence import GOLDEN, _graph

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="flaky-scheme injection relies on fork inheritance"
)


def _golden_jobs():
    """The full golden matrix as one heterogeneous batch."""
    cases = sorted(GOLDEN)
    jobs = [
        (_graph(gname), method, dict(kwargs)) for gname, method, kwargs in cases
    ]
    return cases, jobs


def test_workers_match_golden_suite():
    """workers=2 reproduces every golden (graph, scheme, knobs) cell."""
    cases, jobs = _golden_jobs()
    results = color_many(jobs, workers=2)
    assert len(results) == len(cases)
    for case, result in zip(cases, results):
        assert result, f"{case} failed: {result}"
        digest = hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]
        assert (digest, result.iterations, result.num_colors) == GOLDEN[case], case


def test_serial_scheduler_matches_plain_batch():
    graphs = [_graph("rmat-er"), _graph("rmat-g")]
    plain = color_many(graphs, "data-ldg")
    via_sched = color_many(graphs, "data-ldg", scheduler="serial")
    for a, b in zip(plain, via_sched):
        assert np.array_equal(a.colors, b.colors)
        assert a.iterations == b.iterations


def test_results_stream_in_submission_order():
    graphs = [_graph("rmat-er"), _graph("thermal2"), _graph("rmat-g")]
    results = color_many(graphs, "data-ldg", workers=2)
    direct = [color_graph(g, "data-ldg") for g in graphs]
    for got, want in zip(results, direct):
        assert np.array_equal(got.colors, want.colors)


def test_mixed_host_and_device_jobs():
    g = _graph("rmat-er")
    results = color_many([(g, "sequential"), (g, "data-ldg")], workers=2)
    assert all(results)
    assert results[0].scheme == "sequential"
    assert np.array_equal(results[0].colors, color_graph(g, "sequential").colors)
    assert np.array_equal(results[1].colors, color_graph(g, "data-ldg").colors)


def test_failure_surfaces_in_place_without_killing_batch():
    g = _graph("rmat-er")
    results = color_many(
        [g, (g, "no-such-method"), g], "data-ldg", workers=2
    )
    assert results[0] and results[2]
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert not failure  # falsy, so all(results) screens batches
    assert failure.index == 1
    assert failure.method == "no-such-method"
    assert "unknown method" in failure.error
    assert failure.attempts == 3  # 1 + default 2 retries


def test_serial_failure_surfaces_too():
    g = _graph("rmat-er")
    results = color_many([(g, "no-such-method"), g], "data-ldg")
    assert isinstance(results[0], JobFailure)
    assert results[0].attempts == 1  # serial default: no retries
    assert results[1]


# ---------------------------------------------------------------------------
# Retry / crash / timeout behavior (fork-inherited fault injection).
# ---------------------------------------------------------------------------
@fork_only
def test_retry_recovers_from_transient_failures(tmp_path, monkeypatch):
    from repro.coloring import api
    from repro.coloring.base import ColoringResult

    marker = tmp_path / "attempts"

    def flaky(graph, **kwargs):
        count = len(marker.read_text()) if marker.exists() else 0
        marker.write_text("x" * (count + 1))
        if count < 2:
            raise RuntimeError(f"transient #{count}")
        return ColoringResult(
            colors=np.ones(graph.num_vertices, dtype=np.int32), scheme="flaky"
        )

    monkeypatch.setitem(api.METHODS, "flaky", flaky)
    sched = ProcessPoolScheduler(workers=1, retries=2, backoff_s=0.0)
    results = run_jobs(
        [ColorJob(_graph("rmat-er"), "flaky", {})], scheduler=sched,
        validate=False,
    )
    assert results[0], results[0]
    assert results[0].scheme == "flaky"
    assert len(marker.read_text()) == 3


@fork_only
def test_worker_crash_becomes_structured_failure(monkeypatch):
    from repro.coloring import api

    def die(graph, **kwargs):
        os._exit(3)

    monkeypatch.setitem(api.METHODS, "die", die)
    sched = ProcessPoolScheduler(workers=1, retries=1, backoff_s=0.0)
    results = run_jobs(
        [ColorJob(_graph("rmat-er"), "die", {})], scheduler=sched,
        validate=False,
    )
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert "BrokenProcessPool" in failure.error
    assert failure.attempts == 2


@fork_only
def test_hung_worker_times_out(monkeypatch):
    import time as _time

    from repro.coloring import api

    def hang(graph, **kwargs):
        _time.sleep(5.0)

    monkeypatch.setitem(api.METHODS, "hang", hang)
    sched = ProcessPoolScheduler(
        workers=1, retries=0, backoff_s=0.0, timeout_s=0.3
    )
    results = run_jobs(
        [ColorJob(_graph("rmat-er"), "hang", {})], scheduler=sched,
        validate=False,
    )
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert "Timeout" in failure.error


# ---------------------------------------------------------------------------
# Observation threading.
# ---------------------------------------------------------------------------
def test_worker_subtraces_merge_into_one_exportable_trace():
    graphs = [_graph("rmat-er"), _graph("rmat-g")]
    results = color_many(graphs, "data-ldg", workers=2, observe="trace")
    obs = results[0].observation
    assert obs is results[1].observation  # one batch-wide observation
    tracer = obs.tracer
    workers = [s for s in tracer.roots if s.category == "worker"]
    assert len(workers) == 2
    assert [len(w.find("run")) for w in workers] == [1, 1]
    # Monotone, re-based timestamps: the Chrome exporter's invariant.
    assert workers[0].start_us <= workers[0].end_us <= workers[1].start_us
    for span, _ in tracer.walk():
        assert span.end_us is not None and span.end_us >= span.start_us
    events = obs.chrome_trace()["traceEvents"]
    assert events


def test_worker_rounds_replay_into_batch_recorder():
    graphs = [_graph("rmat-er"), _graph("rmat-g")]
    serial = color_many(graphs, "data-ldg", observe="rounds")
    parallel = color_many(graphs, "data-ldg", workers=2, observe="rounds")
    n_serial = len(serial[0].observation.recorder.rounds)
    n_parallel = len(parallel[0].observation.recorder.rounds)
    assert n_parallel == n_serial > 0


# ---------------------------------------------------------------------------
# Plumbing: normalize_jobs, resolve_scheduler, input validation.
# ---------------------------------------------------------------------------
def test_normalize_jobs_spellings():
    g = _graph("rmat-er")
    jobs = normalize_jobs(
        [g, (g,), (g, "csrcolor"), (g, None, {"block_size": 64}),
         ColorJob(g, options={"block_size": 32})],
        default_method="data-ldg", default_options={"block_size": 128},
    )
    assert [j.method for j in jobs] == [
        "data-ldg", "data-ldg", "csrcolor", "data-ldg", "data-ldg"
    ]
    assert [j.options["block_size"] for j in jobs] == [128, 128, 128, 64, 32]


def test_normalize_jobs_rejects_garbage():
    g = _graph("rmat-er")
    with pytest.raises(TypeError, match="cannot interpret"):
        normalize_jobs([42], default_method="data-ldg")
    with pytest.raises(TypeError, match="4 elements"):
        normalize_jobs([(g, "x", {}, "extra")], default_method="data-ldg")


def test_resolve_scheduler():
    assert isinstance(resolve_scheduler(None, None), SerialScheduler)
    assert isinstance(resolve_scheduler(None, 1), SerialScheduler)
    sched = resolve_scheduler(None, 3)
    assert isinstance(sched, ProcessPoolScheduler) and sched.workers == 3
    assert isinstance(resolve_scheduler("serial"), SerialScheduler)
    assert isinstance(resolve_scheduler("process", 2), ProcessPoolScheduler)
    custom = SerialScheduler()
    assert resolve_scheduler(custom) is custom
    with pytest.raises(ValueError, match="unknown scheduler"):
        resolve_scheduler("threads")
    with pytest.raises(TypeError, match="as a scheduler"):
        resolve_scheduler(42)


def test_process_scheduler_rejects_backend_instances():
    from repro.engine.backend import resolve_backend

    sched = ProcessPoolScheduler(workers=2)
    with pytest.raises(TypeError, match="picklable backend spec"):
        sched.execute(
            [ColorJob(_graph("rmat-er"), "data-ldg", {})],
            backend=resolve_backend("cpusim"),
        )


def test_workers_with_named_backend():
    g = _graph("rmat-er")
    serial = color_graph(g, "data-ldg", backend="cpusim")
    [parallel] = color_many([g], "data-ldg", backend="cpusim", workers=2)
    assert np.array_equal(serial.colors, parallel.colors)


# ------------------------------------------------------------ graph stores
def _shm_entries():
    from repro.graph.store import SHM_PREFIX

    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith(SHM_PREFIX)}
    except FileNotFoundError:
        return set()


@pytest.mark.parametrize("store", ["shm", "mmap"])
def test_workers_with_store_match_golden_suite(store):
    """Arena-backed workers reproduce every golden cell, and leak nothing."""
    before = _shm_entries()
    cases, jobs = _golden_jobs()
    results = color_many(jobs, workers=2, store=store)
    for case, result in zip(cases, results):
        assert result, f"{case} failed: {result}"
        digest = hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]
        assert (digest, result.iterations, result.num_colors) == GOLDEN[case], case
    assert _shm_entries() == before, "run_jobs leaked shared-memory segments"


def test_store_with_serial_scheduler():
    g = _graph("rmat-er")
    serial = color_many([g, g], "data-ldg")
    arena = color_many([g, g], "data-ldg", scheduler="serial", store="shm")
    for a, b in zip(serial, arena):
        assert np.array_equal(a.colors, b.colors)
        assert a.iterations == b.iterations


def test_store_instance_deduplicates_across_jobs():
    from repro.graph.store import SharedMemoryStore

    g = _graph("rmat-er")
    with SharedMemoryStore() as store:
        results = color_many(
            [(g, "data-ldg"), (g, "topo-ldg"), (g, "csrcolor")],
            workers=2, store=store,
        )
        assert all(results)
        # Three jobs, one unique topology: one segment, not three.
        assert store.placements == 1
        assert store.stats()["graphs"] == 1


def test_worker_graph_lru_bounds_retention():
    from repro.parallel.scheduler import _GraphLRU

    evicted = []

    class _Ctx:
        def evict(self, graph):
            evicted.append(graph)

    lru = _GraphLRU(2)
    ctx_map = {"ctx": _Ctx()}
    a, b, c = object(), object(), object()
    assert lru.get_or_add("a", lambda: a, ctx_map) is a
    assert lru.get_or_add("b", lambda: b, ctx_map) is b
    # Refresh "a" so "b" is now the LRU entry.
    assert lru.get_or_add("a", lambda: object(), ctx_map) is a
    assert lru.get_or_add("c", lambda: c, ctx_map) is c
    assert evicted == [b], "LRU must evict the least-recent graph via ctx"
    assert len(lru) == 2


def test_store_cache_keying_is_arena_invariant(tmp_path):
    """ResultCache hits across stores: the digest hashes bytes, not pages."""
    from repro.parallel import ResultCache

    g = _graph("rmat-er")
    cache = ResultCache(directory=tmp_path / "cache")
    first = color_many([g], "data-ldg", cache=cache, store="shm", workers=2)
    second = color_many([g], "data-ldg", cache=cache, store="mmap")
    third = color_many([g], "data-ldg", cache=cache)
    assert np.array_equal(first[0].colors, second[0].colors)
    assert np.array_equal(first[0].colors, third[0].colors)
    stats = cache.stats()
    assert stats["hits"] >= 2, f"arena change must not miss the cache: {stats}"
