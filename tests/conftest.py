"""Shared fixtures: small deterministic graphs covering distinct regimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    path_graph,
    star_graph,
)
from repro.graph.generators import (
    erdos_renyi,
    grid2d,
    random_bipartite,
    rmat_graph,
    triangular_mesh,
)
from repro.graph.generators.rmat import G_PARAMS


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def c6():
    return cycle_graph(6)


@pytest.fixture
def c7():
    return cycle_graph(7)


@pytest.fixture
def p10():
    return path_graph(10)


@pytest.fixture
def star():
    return star_graph(8)


@pytest.fixture
def isolated():
    return empty_graph(12)


@pytest.fixture
def small_er():
    """~500 vertices, avg degree 8 — random regime."""
    return erdos_renyi(500, 8.0, seed=11)


@pytest.fixture
def small_rmat():
    """Skewed degree distribution — hub regime."""
    return rmat_graph(9, 8.0, G_PARAMS, seed=3, name="rmat-test")


@pytest.fixture
def small_mesh():
    """2D grid — the natural-order mesh regime (worst for speculation)."""
    return grid2d(24, 24)


@pytest.fixture
def small_trimesh():
    return triangular_mesh(16, 16)


@pytest.fixture
def small_bipartite():
    """2-colorable oracle graph."""
    return random_bipartite(200, 200, 6.0, seed=5)


@pytest.fixture
def tiny_known():
    """The Fig. 2 example graph: chromatic number exactly 3."""
    # 0-1, 0-2, 1-2 triangle plus pendant structure.
    return from_edges(
        np.array([0, 0, 1, 1, 2, 3]),
        np.array([1, 2, 2, 3, 4, 4]),
        num_vertices=5,
        name="fig2",
    )


#: All graph fixtures the cross-scheme properness matrix runs on.
GRAPH_FIXTURES = [
    "k5",
    "c6",
    "c7",
    "star",
    "isolated",
    "small_er",
    "small_rmat",
    "small_mesh",
    "small_bipartite",
]


@pytest.fixture
def any_graph(request):
    """Indirect fixture: parametrize over GRAPH_FIXTURES by name."""
    return request.getfixturevalue(request.param)
