"""Degree statistics (Table I machinery) and partitioning for 3-step GM."""

import numpy as np
import pytest

from repro.graph.builder import complete_graph, empty_graph, from_edges
from repro.graph.generators import erdos_renyi, grid2d
from repro.graph.partition import Partition, block_partition, boundary_vertices
from repro.graph.stats import compute_stats, degree_histogram, table1_row


# ------------------------------------------------------------------ stats
def test_stats_known_graph():
    s = compute_stats(complete_graph(6))
    assert s.num_vertices == 6
    assert s.num_edges == 30
    assert s.min_degree == s.max_degree == 5
    assert s.avg_degree == 5.0
    assert s.variance == 0.0


def test_stats_empty():
    s = compute_stats(empty_graph(0))
    assert s.num_vertices == 0 and s.avg_degree == 0.0


def test_degree_histogram_sums_to_n():
    g = erdos_renyi(300, 6.0, seed=1)
    hist = degree_histogram(g)
    assert hist.sum() == g.num_vertices
    assert hist.size == g.max_degree + 1


def test_table1_row_format():
    row = table1_row(complete_graph(4), spd=True, application="Test")
    assert "K4" in row and "yes" in row and "Test" in row


def test_stats_as_row_rounding():
    s = compute_stats(erdos_renyi(100, 5.0, seed=0))
    row = s.as_row()
    assert isinstance(row[5], float) and row[5] == round(s.avg_degree, 2)


# -------------------------------------------------------------- partition
def test_block_partition_sizes():
    g = erdos_renyi(100, 4.0, seed=0)
    p = block_partition(g, 7)
    assert p.num_parts == 7
    assert p.sizes().sum() == 100
    assert p.sizes().max() - p.sizes().min() <= 1


def test_block_partition_contiguous():
    g = erdos_renyi(50, 4.0, seed=0)
    p = block_partition(g, 5)
    assert np.all(np.diff(p.assignment) >= 0)


def test_partition_members():
    g = erdos_renyi(20, 3.0, seed=0)
    p = block_partition(g, 4)
    members = np.concatenate([p.members(i) for i in range(4)])
    assert np.array_equal(np.sort(members), np.arange(20))


def test_partition_validation():
    with pytest.raises(ValueError, match=">= 1"):
        block_partition(erdos_renyi(10, 2.0), 0)
    with pytest.raises(ValueError, match=">= num_parts"):
        Partition(np.array([0, 5], dtype=np.int32), 2)


def test_boundary_vertices_grid():
    # 4x4 grid split into two 8-vertex halves: the middle rows touch.
    g = grid2d(4, 4)
    p = block_partition(g, 2)
    boundary = boundary_vertices(g, p)
    # vertices 4..7 (end of part 0) and 8..11 (start of part 1) are boundary
    assert boundary[4:12].all()
    assert not boundary[0:4].any()


def test_boundary_single_partition_empty():
    g = erdos_renyi(40, 4.0, seed=2)
    p = block_partition(g, 1)
    assert not boundary_vertices(g, p).any()


def test_boundary_complete_graph_all():
    g = complete_graph(10)
    p = block_partition(g, 5)
    assert boundary_vertices(g, p).all()


def test_boundary_isolated_vertices_not_boundary():
    g = from_edges([0], [1], num_vertices=4)
    p = Partition(np.array([0, 1, 0, 1], dtype=np.int32), 2)
    b = boundary_vertices(g, p)
    assert b[0] and b[1] and not b[2] and not b[3]
