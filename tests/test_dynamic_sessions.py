"""Upgraded dynamic coloring: typed surface, batch repair, sessions."""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import color_graph, rmat_er
from repro.coloring.base import ColoringResult
from repro.coloring.dynamic import DynamicColoring, normalize_edits
from repro.coloring.sequential import greedy_colors_only
from repro.deprecation import _reset_for_tests
from repro.graph.builder import complete_graph, cycle_graph
from repro.service import ColoringService


@pytest.fixture(scope="module")
def small_er():
    return rmat_er(scale=7, seed=11)


# ----------------------------------------------------------- typed surface
def test_constructor_accepts_coloring_result(small_er):
    seeded = color_graph(small_er, "data-ldg")
    dyn = DynamicColoring(small_er, seeded, method="data-ldg")
    assert np.array_equal(dyn.colors(), seeded.colors)
    dyn.validate()


def test_result_is_versioned_typed_surface(small_er):
    dyn = DynamicColoring(small_er)
    res = dyn.result()
    assert isinstance(res, ColoringResult)
    assert res.scheme == "dynamic:sequential"
    d = res.to_dict(schema_version=1)
    assert d["schema_version"] == 1
    assert d["num_colors"] == dyn.num_colors
    report = res.extra.peek("dynamic")
    assert report["version"] == 0 and report["op"] == "snapshot"


def test_apply_returns_result_and_bumps_version(small_er):
    dyn = DynamicColoring(small_er)
    res = dyn.apply([("add_vertex",), ("add_vertex",)])
    assert isinstance(res, ColoringResult)
    assert res.iterations == dyn.version == 1
    report = res.extra.peek("dynamic")
    assert report["added"] == [small_er.num_vertices, small_er.num_vertices + 1]
    assert dyn.num_vertices == small_er.num_vertices + 2


def test_bare_array_constructor_shape_is_deprecated(small_er):
    fresh = greedy_colors_only(small_er)
    _reset_for_tests("dynamic-colors-array")
    with pytest.warns(DeprecationWarning, match="typed surface"):
        dyn = DynamicColoring(small_er, fresh)
    dyn.validate()
    _reset_for_tests("dynamic-colors-array")
    with pytest.warns(DeprecationWarning, match="typed surface"):
        DynamicColoring(small_er, colors=fresh.copy())
    _reset_for_tests("dynamic-colors-array")
    with pytest.warns(DeprecationWarning, match="typed surface"):
        dyn.adopt(fresh.copy())


def test_normalize_edits_validates_up_front():
    with pytest.raises(ValueError, match="unknown edit"):
        normalize_edits([("frobnicate", 1, 2)])
    with pytest.raises(ValueError, match="two endpoints"):
        normalize_edits([("insert", 1)])
    with pytest.raises(ValueError, match="no operands"):
        normalize_edits([("add_vertex", 9)])
    assert normalize_edits([("insert", np.int64(1), 2)]) == [("insert", 1, 2)]


# ------------------------------------------------------ delete improvement
def test_delete_improvement_reaches_neighbors_of_endpoints():
    """Regression: the one-hop cascade.  Triangle colored [1, 2, 3];
    deleting (0, 1) lets vertex 1 drop to color 1, which in turn frees
    vertex 2 (a *neighbor* of the improved endpoint) to drop to color 2.
    The old endpoint-only improvement left vertex 2 stranded at 3."""
    tri = complete_graph(3)
    dyn = DynamicColoring(
        tri,
        ColoringResult(colors=np.array([1, 2, 3], dtype=np.int32), scheme="x"),
    )
    dyn.delete(0, 1)
    dyn.validate()
    assert dyn.colors().tolist() == [1, 1, 2]
    assert dyn.num_colors == 2  # endpoint-only improvement leaves 3


def test_delete_without_improve_keeps_colors():
    tri = complete_graph(3)
    dyn = DynamicColoring(
        tri,
        ColoringResult(colors=np.array([1, 2, 3], dtype=np.int32), scheme="x"),
    )
    dyn.delete(0, 1, improve=False)
    assert dyn.colors().tolist() == [1, 2, 3]


# ----------------------------------------------------------- batch repair
def test_apply_batch_repairs_all_clashes_at_once(small_er):
    dyn = DynamicColoring(small_er)
    rng = np.random.default_rng(0)
    n = small_er.num_vertices
    batch = []
    seen = set()
    for _ in range(40):
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v or (u, v) in seen or (v, u) in seen or dyn.has_edge(u, v):
            continue
        seen.add((u, v))
        batch.append(("insert", u, v))
    res = dyn.apply(batch)
    dyn.validate()
    report = res.extra.peek("dynamic")
    assert report["edits"] == len(batch)
    assert report["repaired"] >= 0


def test_apply_mixed_batch(small_er):
    dyn = DynamicColoring(small_er)
    nbr = int(small_er.neighbors(0)[0])
    res = dyn.apply([
        ("add_vertex",),
        ("delete", 0, nbr),
        ("insert", 0, small_er.num_vertices),  # wire in the new vertex
    ])
    dyn.validate()
    assert dyn.has_edge(0, small_er.num_vertices)
    assert not dyn.has_edge(0, nbr)
    assert res.extra.peek("dynamic")["version"] == 1


# ------------------------------------------------- compaction and recolor
def test_max_drift_triggers_compaction():
    dyn = DynamicColoring(max_drift=0)
    for _ in range(8):
        dyn.add_vertex()
    # growing a clique edge by edge forces the palette up every round;
    # max_drift=0 must recolor (compact) whenever it exceeds baseline
    res = None
    for u in range(8):
        for v in range(u + 1, 8):
            res = dyn.apply([("insert", u, v)])
    dyn.validate()
    assert dyn.num_colors == 8
    assert dyn.baseline_colors == 8
    report = res.extra.peek("dynamic")
    assert report["compactions"] >= 1


def test_recolor_resets_baseline(small_er):
    dyn = DynamicColoring(small_er)
    before = dyn.baseline_colors
    res = dyn.recolor()
    assert isinstance(res, ColoringResult)
    assert dyn.baseline_colors == dyn.num_colors <= before
    assert np.array_equal(dyn.colors(), greedy_colors_only(small_er))


def test_adopt_typed_result(small_er):
    dyn = DynamicColoring(small_er)
    fresh = color_graph(small_er, "data-ldg")
    dyn.adopt(fresh)
    assert np.array_equal(dyn.colors(), fresh.colors)
    assert dyn.baseline_colors == fresh.num_colors
    with pytest.raises(ValueError, match="one entry per vertex"):
        dyn.adopt(
            ColoringResult(colors=np.ones(3, dtype=np.int32), scheme="x")
        )


# ------------------------------------------------------- property: safety
@settings(max_examples=20, deadline=None)
@given(
    edits=st.lists(
        st.tuples(st.integers(0, 17), st.integers(0, 17)), max_size=50
    ),
    drift=st.sampled_from([None, 0, 1, 3]),
)
def test_random_edit_streams_stay_proper_and_bounded(edits, drift):
    """The session safety invariants, for any edit stream: every
    intermediate coloring proper, and (drift armed) the palette never
    ends an op more than ``max_drift`` above the recolor baseline."""
    dyn = DynamicColoring(max_drift=drift)
    for _ in range(18):
        dyn.add_vertex()
    for u, v in edits:
        if u == v:
            continue
        op = "delete" if dyn.has_edge(u, v) else "insert"
        dyn.apply([(op, u, v)])
        dyn.validate()  # proper after *every* op
        if drift is not None:
            assert dyn.num_colors <= dyn.baseline_colors + drift


def test_seeded_streams_within_one_color_of_scratch():
    """Deterministic seeded streams: a drift-armed (``max_drift=1``)
    session ends within +1 color of a from-scratch greedy recolor of
    the final graph.  (+1 is not a worst-case theorem for online
    repair — the compaction policy is what keeps real streams tight;
    these fixed seeds pin the behavior.)"""
    for seed in range(25):
        rng = np.random.default_rng(seed)
        dyn = DynamicColoring(max_drift=1)
        for _ in range(20):
            dyn.add_vertex()
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(0, 20, size=2))
            if u == v:
                continue
            op = "delete" if dyn.has_edge(u, v) else "insert"
            dyn.apply([(op, u, v)])
            dyn.validate()
        g = dyn.to_graph()
        scratch = int(greedy_colors_only(g).max()) if g.num_edges else 1
        assert dyn.num_colors <= scratch + 1, f"seed {seed}"


# ------------------------------------------------------- service sessions
def test_service_session_edit_stream_proper_and_compact_identical():
    async def main():
        g = rmat_er(scale=6, seed=2)
        async with ColoringService("data-ldg") as svc:
            sess = await svc.session(g, max_drift=1)
            rng = np.random.default_rng(3)
            n = g.num_vertices
            for _ in range(40):
                u, v = (int(x) for x in rng.integers(0, n, size=2))
                if u == v:
                    continue
                if sess._dyn.has_edge(u, v):
                    res = await sess.delete(u, v)
                else:
                    res = await sess.insert(u, v)
                assert isinstance(res, ColoringResult)
                sess._dyn.validate()  # every intermediate proper
            compacted = await sess.compact()
            final_graph = sess._dyn.to_graph()
            final = await sess.close()
            return svc, compacted, final, final_graph

    svc, compacted, final, final_graph = run_async(main())
    # compaction routes through the service and adopts the engine's
    # coloring: byte-identical to a direct from-scratch run
    direct = color_graph(final_graph, "data-ldg", validate=False)
    assert np.array_equal(final.colors, direct.colors)
    assert compacted.extra.peek("dynamic")["op"] == "compact"
    assert svc.stats["session_ops"] >= 30
    assert svc.stats["compactions"] >= 1
    assert svc.stats["sessions"] == 1


def test_session_add_vertex_and_closed_rejection():
    async def main():
        g = cycle_graph(8)
        async with ColoringService() as svc:
            sess = await svc.session(g)
            res = await sess.add_vertex()
            vid = res.extra.peek("dynamic")["added"][-1]
            assert vid == 8
            await sess.insert(vid, 0)
            assert sess.num_vertices == 9
            await sess.close()
            with pytest.raises(RuntimeError, match="closed"):
                await sess.insert(1, 3)

    run_async(main())


def run_async(coro):
    return asyncio.run(coro)
