"""The fault-injection layer: plans, injectors, and engine-level sites.

The defining property of the whole layer: every decision hashes
``(seed, site, key)``, so a plan replays the *same* fault sequence on
every run — and because the simulation itself is deterministic, a run
healed by a degradation chain is byte-identical to a never-faulted run.
"""

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.engine import AuditError, ExecutionContext
from repro.faults import (
    DegradationLog,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HealthPolicy,
    Robustness,
    TransientKernelError,
    resolve_faults,
    resolve_health,
    resolve_robustness,
)


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=8, seed=7)


# ---------------------------------------------------------------------------
# Plan grammar + validation.
# ---------------------------------------------------------------------------
def test_parse_grammar():
    plan = FaultPlan.parse(
        "seed=7; worker-crash: job=0, attempt=1; job-error: p=0.25; "
        "worker-hang: param=2.5, max_fires=3"
    )
    assert plan.seed == 7
    crash, err, hang = plan.specs
    assert crash.site == "worker-crash"
    assert dict(crash.when) == {"job": 0, "attempt": 1}  # ints coerced
    assert err.probability == 0.25 and err.when == ()
    assert hang.param == 2.5 and hang.max_fires == 3


def test_parse_rejects_garbage():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan.parse("seed=1; flux-capacitor: p=1")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("job-error: whoops")


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec(site="nope")
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(site="job-error", probability=1.5)
    with pytest.raises(ValueError, match="max_fires"):
        FaultSpec(site="job-error", max_fires=0)


def test_resolve_faults_spellings():
    assert resolve_faults(None) is None
    plan = FaultPlan(seed=3)
    assert resolve_faults(plan) is plan
    parsed = resolve_faults("seed=3; job-error: job=1")
    assert parsed.seed == 3 and parsed.specs[0].site == "job-error"
    from_dict = resolve_faults(
        {"seed": 3, "specs": [{"site": "job-error", "when": {"job": 1}}]}
    )
    assert from_dict == parsed
    with pytest.raises(TypeError, match="as a fault plan"):
        resolve_faults(42)


def test_resolve_health_spellings():
    assert resolve_health(None) == HealthPolicy()
    assert resolve_health("strict").degrade is False
    off = resolve_health("off")
    assert not off.invariants and not off.audit and off.no_progress_window == 0
    with pytest.raises(ValueError, match="unknown health policy"):
        resolve_health("paranoid")
    with pytest.raises(TypeError, match="as a health policy"):
        resolve_health(42)
    with pytest.raises(ValueError, match="no_progress_window"):
        HealthPolicy(no_progress_window=-1)


def test_resolve_robustness_bundle_passthrough():
    assert resolve_robustness(None, None) is None
    rb = Robustness()
    assert resolve_robustness(rb, None) is rb
    with pytest.raises(ValueError, match="not both"):
        resolve_robustness(rb, "strict")
    built = resolve_robustness("seed=1; job-error: p=0.5", "strict")
    assert built.plan.seed == 1 and built.policy.degrade is False
    health_only = resolve_robustness(None, "off")
    assert health_only.injector is None and not health_only.policy.audit


# ---------------------------------------------------------------------------
# Deterministic decisions.
# ---------------------------------------------------------------------------
def test_chance_and_victim_are_pure_functions_of_seed_site_key():
    a, b = FaultPlan(seed=9), FaultPlan(seed=9)
    key = {"job": 3, "attempt": 2}
    assert a.chance("job-error", key) == b.chance("job-error", key)
    assert a.index_for("buffer-bitflip", 1000, key) == \
        b.index_for("buffer-bitflip", 1000, key)
    # ...and they move when any ingredient moves.
    assert a.chance("job-error", key) != FaultPlan(seed=10).chance("job-error", key)
    assert a.chance("job-error", key) != a.chance("worker-crash", key)
    assert a.chance("job-error", key) != a.chance("job-error", {"job": 4, "attempt": 2})


def test_injector_when_filter_budget_and_probability():
    plan = FaultPlan(seed=0, specs=(
        FaultSpec(site="job-error", when=(("job", 0),), max_fires=2),
        FaultSpec(site="worker-crash", probability=0.0),
    ))
    inj = FaultInjector(plan)
    assert inj.fire("job-error", job=1, attempt=1) is None  # when mismatch
    assert inj.fire("job-error", job=0, attempt=1) is not None
    assert inj.fire("job-error", job=0, attempt=2) is not None
    assert inj.fire("job-error", job=0, attempt=3) is None  # budget spent
    assert inj.fire("worker-crash", job=0, attempt=1) is None  # p=0 never fires
    report = inj.report()
    assert [r["site"] for r in report] == ["job-error", "job-error"]
    assert report[0]["key"] == {"attempt": 1, "job": 0}

    # Absorbing a worker-side report folds records into this injector.
    other = FaultInjector(plan)
    other.absorb(report)
    assert len(other.report()) == 2


def test_injector_fire_sequence_replays_identically():
    plan = FaultPlan.parse("seed=4; job-error: p=0.5")

    def sequence():
        inj = FaultInjector(plan)
        return [
            inj.fire("job-error", job=j, attempt=a) is not None
            for j in range(8) for a in (1, 2)
        ]

    first = sequence()
    assert first == sequence()
    assert any(first) and not all(first)  # p=0.5 actually splits


def test_degradation_log_dedupes_and_absorbs():
    log = DegradationLog()
    mex_event = log.record("mex", "bitmask", "sort", "word-budget-overflow")
    log.record("mex", "bitmask", "sort", "word-budget-overflow", "again")
    cache_event = log.record("cache", "disk-hit", "miss", "corrupt-entry")
    assert len(log) == 2
    report = log.report()
    assert report[0]["count"] == 2 and report[1]["chain"] == "cache"
    other = DegradationLog()
    other.absorb(report)
    assert other.count(mex_event) == 2 and other.count(cache_event) == 1


# ---------------------------------------------------------------------------
# Engine-level sites: injected faults heal byte-identically.
# ---------------------------------------------------------------------------
def test_kernel_transient_rerun_is_byte_identical(g):
    healthy = color_graph(g, "topo-base")
    hurt = color_graph(
        g, "topo-base",
        faults="seed=3; kernel-transient: kernel=topo-color-0, max_fires=1",
    )
    assert np.array_equal(healthy.colors, hurt.colors)
    assert healthy.iterations == hurt.iterations
    rep = hurt.robustness
    assert [f["site"] for f in rep["fired"]] == ["kernel-transient"]
    assert [d["chain"] for d in rep["degradations"]] == ["engine"]
    assert rep["degradations"][0]["reason"] == "TransientKernelError"


def test_result_corrupt_caught_by_audit_then_healed(g):
    healthy = color_graph(g, "data-ldg")
    hurt = color_graph(
        g, "data-ldg", faults="seed=5; result-corrupt: max_fires=1, param=3",
    )
    assert np.array_equal(healthy.colors, hurt.colors)
    assert hurt.robustness["degradations"][0]["reason"] in (
        "AuditError", "ColoringError",
    )


def test_buffer_bitflip_healed(g):
    healthy = color_graph(g, "data-ldg")
    hurt = color_graph(
        g, "data-ldg",
        faults="seed=6; buffer-bitflip: round=0, max_fires=1, param=7",
    )
    assert np.array_equal(healthy.colors, hurt.colors)


def test_strict_policy_raises_instead_of_healing(g):
    with pytest.raises((AuditError, Exception)) as info:
        color_graph(
            g, "data-ldg",
            faults="seed=5; result-corrupt: max_fires=1",
            health="strict",
        )
    assert "audit" in str(info.value).lower() or "conflict" in str(info.value).lower()


def test_strict_kernel_transient_propagates(g):
    with pytest.raises(TransientKernelError):
        color_graph(
            g, "topo-base",
            faults="seed=3; kernel-transient: kernel=topo-color-0",
            health="strict",
        )


def test_off_policy_disables_the_audit(g):
    ctx = ExecutionContext(
        faults="seed=5; result-corrupt: max_fires=1, param=3", health="off",
    )
    result = ctx.run(g, "data-ldg", validate=False)
    healthy = color_graph(g, "data-ldg")
    assert not np.array_equal(result.colors, healthy.colors)  # corruption kept


def test_clock_stall_prices_time_but_not_colors(g):
    healthy = color_graph(g, "data-ldg")
    stalled = color_graph(
        g, "data-ldg",
        faults="seed=2; clock-stall: kernel=data-color-0, max_fires=1",
    )
    assert np.array_equal(healthy.colors, stalled.colors)
    assert stalled.transfer_time_us > healthy.transfer_time_us


def test_rerun_budget_exhaustion_raises(g):
    # Every attempt's finalize is corrupted (no max_fires), so the
    # default 2 reruns cannot heal it.
    with pytest.raises(Exception, match="(?i)audit|conflict"):
        color_graph(g, "data-ldg", faults="seed=5; result-corrupt:")


def test_report_lands_on_the_typed_property(g):
    result = color_graph(g, "data-ldg", health="default")
    assert result.robustness == {
        "plan": [], "seed": None, "fired": [], "degradations": [],
    }
    assert color_graph(g, "data-ldg").robustness is None


def test_job_error_exception_is_a_fault_injected():
    assert issubclass(TransientKernelError, FaultInjected)
    assert issubclass(FaultInjected, RuntimeError)


def test_context_conflict_rejected(g):
    with pytest.raises(ValueError, match="alongside context="):
        color_graph(g, "data-ldg", context=ExecutionContext(), faults="seed=1")


def test_plan_is_picklable_and_frozen():
    import pickle

    plan = FaultPlan.parse("seed=7; job-error: p=0.25, job=3")
    assert pickle.loads(pickle.dumps(plan)) == plan
    with pytest.raises(Exception):
        plan.seed = 9
