"""Shared kernel machinery: mex, segment expansion, conflicts, wave visibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.kernels import (
    detect_conflicts,
    expand_segments,
    min_excluded_colors,
    speculative_color_step,
    speculative_color_waved,
)
from repro.graph.builder import cycle_graph, path_graph
from repro.graph.generators import erdos_renyi


# ---------------------------------------------------------------- segments
def test_expand_segments_basic(c6):
    seg, step, edge_idx = expand_segments(c6, np.array([2, 4]))
    assert list(seg) == [0, 0, 1, 1]
    assert list(step) == [0, 1, 0, 1]
    assert np.array_equal(c6.col_indices[edge_idx], np.concatenate([c6.neighbors(2), c6.neighbors(4)]))


def test_expand_segments_empty(c6):
    seg, step, edge_idx = expand_segments(c6, np.empty(0, dtype=np.int64))
    assert seg.size == step.size == edge_idx.size == 0


def test_expand_segments_isolated(isolated):
    seg, _, _ = expand_segments(isolated, np.arange(5))
    assert seg.size == 0


# --------------------------------------------------------------------- mex
def _mex_reference(seg_ids, colors, n):
    out = np.ones(n, dtype=np.int64)
    for s in range(n):
        used = set(colors[seg_ids == s].tolist()) - {0}
        c = 1
        while c in used:
            c += 1
        out[s] = c
    return out


def test_mex_simple():
    seg = np.array([0, 0, 0, 1, 1])
    cols = np.array([1, 2, 4, 2, 3])
    assert list(min_excluded_colors(seg, cols, 2)) == [3, 1]


def test_mex_ignores_uncolored():
    seg = np.array([0, 0])
    cols = np.array([0, 0])
    assert list(min_excluded_colors(seg, cols, 1)) == [1]


def test_mex_empty_segments():
    out = min_excluded_colors(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 3)
    assert list(out) == [1, 1, 1]
    assert min_excluded_colors(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0).size == 0


def test_mex_duplicates_collapse():
    seg = np.array([0, 0, 0, 0])
    cols = np.array([1, 1, 1, 2])
    assert list(min_excluded_colors(seg, cols, 1)) == [3]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 12)), min_size=0, max_size=80
    )
)
def test_mex_matches_reference(pairs):
    seg = np.array(sorted(p[0] for p in pairs), dtype=np.int64)
    cols = np.array([p[1] for p in sorted(pairs, key=lambda p: p[0])], dtype=np.int64)
    got = min_excluded_colors(seg, cols, 8)
    want = _mex_reference(seg, cols, 8)
    assert np.array_equal(got, want)


# ----------------------------------------------------------- color step
def test_speculative_step_reads_snapshot(k5):
    colors = np.zeros(5, dtype=np.int32)
    fresh = speculative_color_step(k5, colors, np.arange(5))
    # all-uncolored snapshot: everyone picks 1 (the speculation hazard)
    assert np.all(fresh == 1)


def test_speculative_step_respects_existing_colors(c6):
    colors = np.array([1, 0, 1, 0, 1, 0], dtype=np.int32)
    fresh = speculative_color_step(c6, colors, np.array([1, 3, 5]))
    assert np.all(fresh == 2)


# ---------------------------------------------------------------- conflicts
def test_detect_conflicts_min_id_loses(c6):
    colors = np.array([1, 1, 2, 3, 2, 3], dtype=np.int32)  # edge (0,1) clashes
    losers = detect_conflicts(c6, colors, np.arange(6))
    assert list(losers) == [0]


def test_detect_conflicts_none_on_proper(c6):
    colors = np.array([1, 2, 1, 2, 1, 2], dtype=np.int32)
    assert detect_conflicts(c6, colors, np.arange(6)).size == 0


def test_detect_conflicts_scope_restricts(c6):
    colors = np.ones(6, dtype=np.int32)
    losers = detect_conflicts(c6, colors, np.array([2, 3]))
    # 2 loses to 3; 3 loses to 4 (outside scope but still a larger neighbor)
    assert list(losers) == [2, 3]


def test_detect_conflicts_uncolored_ignored(c6):
    colors = np.zeros(6, dtype=np.int32)
    assert detect_conflicts(c6, colors, np.arange(6)).size == 0


def test_detect_conflicts_chain():
    g = path_graph(4)
    colors = np.ones(4, dtype=np.int32)
    losers = detect_conflicts(g, colors, np.arange(4))
    assert list(losers) == [0, 1, 2]  # only the path's last vertex survives


# ------------------------------------------------------------ wave model
def test_waved_single_window_equals_snapshot(k5):
    colors_a = np.zeros(5, dtype=np.int32)
    speculative_color_waved(k5, colors_a, np.arange(5), resident_threads=1000)
    colors_b = np.zeros(5, dtype=np.int32)
    colors_b[np.arange(5)] = speculative_color_step(k5, colors_b, np.arange(5))
    assert np.array_equal(colors_a, colors_b)


def test_waved_tiny_window_is_sequential(k5):
    """Window of one thread = sequential greedy = no conflicts at all."""
    colors = np.zeros(5, dtype=np.int32)
    speculative_color_waved(k5, colors, np.arange(5), resident_threads=1)
    assert sorted(colors.tolist()) == [1, 2, 3, 4, 5]
    assert detect_conflicts(k5, colors, np.arange(5)).size == 0


def test_waved_commits_between_windows():
    g = cycle_graph(8)
    colors = np.zeros(8, dtype=np.int32)
    speculative_color_waved(g, colors, np.arange(8), resident_threads=4)
    # window 2 must have seen window 1's colors: vertex 4 adjacent to 3
    assert colors[4] != colors[3]


def test_waved_thread_ids_windowing():
    g = cycle_graph(8)
    colors = np.zeros(8, dtype=np.int32)
    # active vertices 4..7 sit in thread window [4..7] -> second window of 4
    out = speculative_color_waved(
        g, colors, np.arange(4, 8), resident_threads=4, thread_ids=np.arange(4, 8)
    )
    assert out.size == 4


def test_waved_validates_inputs(c6):
    with pytest.raises(ValueError, match="positive"):
        speculative_color_waved(c6, np.zeros(6, dtype=np.int32), np.arange(6), 0)
    with pytest.raises(ValueError, match="sorted"):
        speculative_color_waved(
            c6, np.zeros(6, dtype=np.int32), np.arange(6), 4,
            thread_ids=np.array([3, 1, 2, 0, 4, 5]),
        )


def test_waved_smaller_window_fewer_conflicts():
    g = erdos_renyi(400, 10.0, seed=2)
    conflicts = []
    for window in (400, 32, 1):
        colors = np.zeros(g.num_vertices, dtype=np.int32)
        speculative_color_waved(g, colors, np.arange(g.num_vertices), window)
        conflicts.append(detect_conflicts(g, colors, np.arange(g.num_vertices)).size)
    assert conflicts[0] >= conflicts[1] >= conflicts[2]
    assert conflicts[2] == 0
