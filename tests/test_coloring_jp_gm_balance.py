"""JP/GM reference algorithms and the balancing extensions."""

import numpy as np

from repro.coloring.balance import balanced_greedy, rebalance_colors
from repro.coloring.base import ColoringResult, color_class_sizes, count_conflicts
from repro.coloring.gm import color_gm
from repro.coloring.jp import color_jp, color_jp_lf, local_maxima
from repro.coloring.sequential import greedy_colors_only
from repro.graph.builder import complete_graph, cycle_graph, star_graph


# ----------------------------------------------------------------------- GM
def test_gm_matches_greedy_family_quality(small_er):
    gm = color_gm(small_er)
    gm.validate(small_er)
    assert gm.num_colors <= greedy_colors_only(small_er).max() + 3


def test_gm_converges_on_clique():
    res = color_gm(complete_graph(20))
    assert res.num_colors == 20
    assert res.iterations <= 20


# ----------------------------------------------------------------------- JP
def test_local_maxima_is_independent(small_er):
    rng = np.random.default_rng(0)
    pr = rng.random(small_er.num_vertices)
    mis = local_maxima(small_er, np.arange(small_er.num_vertices), pr)
    members = set(mis.tolist())
    u, v = small_er.edge_endpoints()
    assert not any(a in members and b in members for a, b in zip(u.tolist(), v.tolist()))


def test_local_maxima_tie_break_deterministic(c6):
    pr = np.zeros(6)  # all tied: highest id in each neighborhood wins
    mis = local_maxima(c6, np.arange(6), pr)
    assert mis.size >= 1
    assert 5 in mis  # the globally largest id always wins


def test_local_maxima_ignores_inactive(c6):
    pr = np.array([0.9, 1.0, 0.1, 0.2, 0.3, 0.4])
    # with vertex 1 inactive, vertex 0 becomes a local max
    mis = local_maxima(c6, np.array([0, 2, 3, 4, 5]), pr)
    assert 0 in mis


def test_jp_alg3_colors_equal_rounds(small_er):
    res = color_jp(small_er, seed=1)
    res.validate(small_er)
    assert res.num_colors == res.iterations  # Alg. 3 colors by round number


def test_jp_mex_beats_alg3(small_er):
    alg3 = color_jp(small_er, seed=1)
    mex = color_jp(small_er, seed=1, use_mex=True)
    mex.validate(small_er)
    assert mex.num_colors <= alg3.num_colors


def test_jp_lf_quality(small_er):
    res = color_jp_lf(small_er)
    res.validate(small_er)
    # PLF tracks greedy quality closely
    assert res.num_colors <= greedy_colors_only(small_er).max() + 2


def test_jp_seeded(small_er):
    a = color_jp(small_er, seed=3)
    b = color_jp(small_er, seed=3)
    assert np.array_equal(a.colors, b.colors)


# -------------------------------------------------------------- balancing
def test_balanced_greedy_proper(small_er):
    res = balanced_greedy(small_er)
    res.validate(small_er)


def test_balanced_greedy_improves_balance_on_star():
    g = star_graph(50)
    plain = ColoringResult(colors=greedy_colors_only(g), scheme="seq")
    bal = balanced_greedy(g)
    # star: greedy puts all 50 leaves in one class; balance can't improve
    # (hub interferes with everything) but must stay proper & <= 2 colors+
    assert bal.num_colors <= 3


def test_rebalance_keeps_properness_and_count(small_er):
    colors = greedy_colors_only(small_er)
    out = rebalance_colors(small_er, colors, max_passes=3)
    assert count_conflicts(small_er, out) == 0
    assert out.max() <= colors.max()


def test_rebalance_reduces_spread():
    g = cycle_graph(40)
    # pathological proper coloring: alternate 1/2 except one vertex forced 3
    colors = np.array([1, 2] * 20, dtype=np.int32)
    colors[0] = 3
    before = color_class_sizes(colors)
    out = rebalance_colors(g, colors)
    after = color_class_sizes(out)
    assert count_conflicts(g, out) == 0
    assert after.max() - after[after > 0].min() <= before.max() - before[before > 0].min()


def test_rebalance_handles_trivial():
    g = cycle_graph(4)
    colors = np.array([1, 1, 1, 1], dtype=np.int32)  # improper input tolerated?
    # rebalance only moves to permissible classes; single color can't move
    out = rebalance_colors(g, colors)
    assert out.max() == 1
    empty = rebalance_colors(g, np.array([1, 2, 1, 2], dtype=np.int32))
    assert count_conflicts(g, empty) == 0
