"""Extensions: distance-2 coloring, dynamic recoloring, warp load balancing,
Jacobian compression."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import color_graph
from repro.coloring.distance2 import (
    color_distance2_gpu,
    count_d2_conflicts,
    greedy_distance2,
    two_hop_pairs,
    validate_distance2,
)
from repro.coloring.dynamic import DynamicColoring
from repro.coloring.kernels import warp_lb_layout
from repro.graph.builder import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.generators import grid2d, rmat_graph
from repro.graph.generators.rmat import G_PARAMS


# -------------------------------------------------------------- distance-2
def test_two_hop_pairs_path():
    g = path_graph(5)
    seg, targets = two_hop_pairs(g, np.array([2]))
    reach = set(targets.tolist()) - {2}
    assert reach == {0, 1, 3, 4}


def test_d2_star_needs_n_colors():
    """All leaves of a star are pairwise at distance 2."""
    g = star_graph(9)
    r = greedy_distance2(g)
    validate_distance2(g, r)
    assert r.num_colors == 10


def test_d2_cycle():
    g = cycle_graph(9)
    r = greedy_distance2(g)
    validate_distance2(g, r)
    assert r.num_colors >= 3  # any C_n, n not divisible by 3, needs > 3... >= 3


def test_d2_grid_bound():
    g = grid2d(10, 10)
    r = greedy_distance2(g)
    validate_distance2(g, r)
    # 5-point stencil distance-2 neighborhood has <= 12 members
    assert r.num_colors <= 13


def test_d2_counts_conflicts():
    g = path_graph(3)
    bad = np.array([1, 2, 1], dtype=np.int32)  # 0 and 2 are distance 2
    assert count_d2_conflicts(g, bad) == 1
    good = np.array([1, 2, 3], dtype=np.int32)
    assert count_d2_conflicts(g, good) == 0


def test_d2_is_stricter_than_d1(small_er):
    d1 = color_graph(small_er, method="sequential")
    d2 = greedy_distance2(small_er)
    assert d2.num_colors >= d1.num_colors


def test_d2_gpu_proper(small_er):
    r = color_distance2_gpu(small_er)
    validate_distance2(small_er, r)
    assert r.gpu_time_us > 0
    assert r.num_kernel_launches >= 2


def test_d2_gpu_deterministic(small_mesh):
    a = color_distance2_gpu(small_mesh)
    b = color_distance2_gpu(small_mesh)
    assert np.array_equal(a.colors, b.colors)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 25), m=st.integers(0, 50), seed=st.integers(0, 5))
def test_d2_gpu_proper_random(n, m, seed):
    from repro.graph.builder import from_edges

    rng = np.random.default_rng(seed)
    g = from_edges(
        rng.integers(0, n, m), rng.integers(0, n, m), num_vertices=n
    )
    validate_distance2(g, color_distance2_gpu(g))


# ----------------------------------------------------------------- dynamic
def test_dynamic_from_scratch():
    dyn = DynamicColoring()
    a, b, c = dyn.add_vertex(), dyn.add_vertex(), dyn.add_vertex()
    dyn.insert(a, b)
    dyn.insert(b, c)
    dyn.insert(a, c)
    dyn.validate()
    assert dyn.num_colors == 3


def test_dynamic_insert_repairs_clash(c6):
    dyn = DynamicColoring(c6)
    assert dyn.num_colors == 2
    changed = dyn.insert(0, 2)  # chord creates an odd cycle
    assert changed in (0, 2)
    dyn.validate()
    assert dyn.num_colors == 3


def test_dynamic_insert_no_clash_no_recolor(c6):
    dyn = DynamicColoring(c6)
    before = dyn.colors().copy()
    assert dyn.insert(0, 3) is None  # colors already differ (1 vs 2)
    assert np.array_equal(dyn.colors(), before)


def test_dynamic_duplicate_insert_noop(c6):
    dyn = DynamicColoring(c6)
    assert dyn.insert(0, 1) is None
    assert dyn.degree(0) == 2


def test_dynamic_delete_improves():
    g = complete_graph(4)
    dyn = DynamicColoring(g)
    assert dyn.num_colors == 4
    dyn.delete(2, 3)
    dyn.validate()
    assert dyn.num_colors == 3  # one endpoint shrank


def test_dynamic_delete_missing_edge(c6):
    dyn = DynamicColoring(c6)
    with pytest.raises(KeyError):
        dyn.delete(0, 3)


def test_dynamic_rejects_self_loop(c6):
    dyn = DynamicColoring(c6)
    with pytest.raises(ValueError):
        dyn.insert(2, 2)
    with pytest.raises(IndexError):
        dyn.insert(0, 99)


def test_dynamic_to_graph_roundtrip(small_er):
    dyn = DynamicColoring(small_er)
    back = dyn.to_graph()
    assert np.array_equal(back.col_indices, small_er.col_indices)


def test_dynamic_rejects_improper_seed(c6):
    # Bare-array seeding is deprecated (tests/test_dynamic_sessions.py
    # covers the shim warning); here only the properness check matters.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(Exception):
            DynamicColoring(c6, colors=np.ones(6, dtype=np.int32))


@settings(max_examples=15, deadline=None)
@given(edits=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
def test_dynamic_random_edit_sequences_stay_proper(edits):
    dyn = DynamicColoring()
    for _ in range(20):
        dyn.add_vertex()
    for u, v in edits:
        if u == v:
            continue
        if dyn.has_edge(u, v):
            dyn.delete(u, v)
        else:
            dyn.insert(u, v)
    dyn.validate()
    # the maintained coloring respects the greedy bound on the final graph
    g = dyn.to_graph()
    assert dyn.num_colors <= g.max_degree + 1 or g.num_edges == 0


# ----------------------------------------------------- warp load balancing
def test_warp_lb_layout_splits_by_degree():
    g = rmat_graph(9, 8.0, G_PARAMS, seed=3)
    active = np.arange(g.num_vertices, dtype=np.int64)
    layout = warp_lb_layout(g, active, 32)
    assert set(layout.light_ids) | set(layout.heavy_ids) == set(active.tolist())
    assert np.all(g.degrees[layout.heavy_ids] >= 32)
    assert np.all(g.degrees[layout.light_ids] < 32)
    assert layout.heavy_base % 32 == 0
    assert layout.num_threads == layout.heavy_base + 32 * layout.heavy_ids.size


def test_lb_same_colors_as_base(small_rmat):
    base = color_graph(small_rmat, method="data-base")
    lb = color_graph(small_rmat, method="data-lb")
    assert np.array_equal(base.colors, lb.colors)  # mapping is cost-only


def test_lb_helps_on_hub_graphs():
    g = rmat_graph(12, 10.0, G_PARAMS, seed=5)
    base = color_graph(g, method="data-base")
    lb = color_graph(g, method="data-lb")
    assert lb.total_time_us < base.total_time_us


def test_lb_scheme_name_and_extra(small_rmat):
    r = color_graph(small_rmat, method="data-ldg-lb")
    assert r.scheme == "data-ldg-lb"
    assert r.extra["load_balance"] is True


def test_lb_no_heavy_vertices_degrades_gracefully(small_mesh):
    # mesh max degree < 32: the lb path must behave like the base mapping
    base = color_graph(small_mesh, method="data-base")
    lb = color_graph(small_mesh, method="data-lb")
    assert np.array_equal(base.colors, lb.colors)


# ----------------------------------------------------- jacobian compression
def test_column_intersection_graph():
    import scipy.sparse as sp

    pattern = sp.csr_array(np.array([[1, 1, 0], [0, 1, 1], [0, 0, 1]]))
    g = __import__("repro.apps.jacobian", fromlist=["column_intersection_graph"]) \
        .column_intersection_graph(pattern)
    u, v = g.edge_endpoints()
    pairs = {(min(a, b), max(a, b)) for a, b in zip(u.tolist(), v.tolist())}
    assert pairs == {(0, 1), (1, 2)}


def test_jacobian_compression_and_recovery():
    import scipy.sparse as sp
    from repro.apps.jacobian import compress_jacobian, recover_jacobian

    rng = np.random.default_rng(9)
    A = sp.random_array((100, 70), density=0.04, random_state=9, format="csr")
    A.data[:] = rng.random(A.nnz) + 0.5
    pattern = sp.csr_array(A)
    comp = compress_jacobian(pattern)
    assert comp.num_groups < comp.num_columns  # actual compression
    prods = pattern @ comp.seed_matrix()
    rec = recover_jacobian(prods, pattern, comp)
    assert np.allclose(rec.toarray(), pattern.toarray())


def test_jacobian_groups_structurally_orthogonal():
    import scipy.sparse as sp
    from repro.apps.jacobian import compress_jacobian

    pattern = sp.csr_array(
        sp.random_array((60, 40), density=0.06, random_state=4)
    )
    comp = compress_jacobian(pattern)
    # within a group, no two columns share a row
    csc = pattern.tocsc()
    for grp in range(comp.num_groups):
        cols = np.flatnonzero(comp.groups == grp)
        rows = np.concatenate(
            [csc.indices[csc.indptr[c]: csc.indptr[c + 1]] for c in cols]
        ) if cols.size else np.empty(0)
        assert rows.size == np.unique(rows).size


def test_jacobian_seed_matrix_shape():
    import scipy.sparse as sp
    from repro.apps.jacobian import compress_jacobian

    pattern = sp.csr_array(sp.eye_array(10).tocsr())
    comp = compress_jacobian(pattern)
    assert comp.num_groups == 1  # identity columns never intersect
    assert comp.seed_matrix().shape == (10, 1)
    assert comp.compression_ratio == 10.0
