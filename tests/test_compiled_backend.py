"""backend='compiled': byte-identity, tier fallback, RunConfig, cache keys.

The compiled backend's contract is *wall-clock only*: colors, iteration
counts, and every simulated timing figure must be byte-identical to the
``gpusim`` reference no matter which JIT tier (numba / C / NumPy
fallback) ends up executing the loop bodies.  These tests hold it to
that, and cover the unified ``config=`` surface the backend ships with.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro import (
    ExecutionContext,
    ResultCache,
    RunConfig,
    color_graph,
    color_many,
    color_sharded,
    compiledsim,
    from_edges,
    rmat_er,
)
from repro.compiledsim import CompiledTierError, runtime
from repro.engine.backend import BACKENDS, CompiledSimBackend, resolve_backend
from repro.engine.config import normalize_config
from repro.parallel import color_streamed
from repro.parallel.cache import backend_fingerprint, job_cache_key

TIMING_FIELDS = (
    "iterations", "num_colors", "gpu_time_us", "cpu_time_us",
    "transfer_time_us", "num_kernel_launches",
)


@pytest.fixture(scope="module")
def medium():
    return rmat_er(scale=11, seed=7)


@pytest.fixture(scope="module")
def small():
    return rmat_er(scale=8, seed=3)


def _assert_identical(ref, res):
    assert np.array_equal(ref.colors, res.colors)
    for field in TIMING_FIELDS:
        assert getattr(ref, field) == getattr(res, field), field
    assert ref.total_time_us == res.total_time_us


# ----------------------------------------------------------------------
# byte-identity vs the gpusim reference
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "method",
    ["data-ldg", "data-base", "topo-ldg", "topo-base", "csrcolor",
     "3step-gm", "data-lb", "data-ldg-lb"],
)
def test_compiled_matches_gpusim_exactly(medium, method):
    ref = color_graph(medium, method)
    res = color_graph(medium, method, backend="compiled")
    _assert_identical(ref, res)


@pytest.mark.parametrize("method", ["data-ldg", "topo-ldg"])
def test_compiled_on_degenerate_graphs(method):
    cases = [
        from_edges([], [], num_vertices=0, name="empty"),
        from_edges([], [], num_vertices=1, name="isolated"),
        from_edges([0] * 6, list(range(1, 7)), name="star"),
        from_edges(*np.triu_indices(9, k=1), name="k9"),
        from_edges([0, 1, 2], [1, 2, 0], num_vertices=64, name="sparse"),
    ]
    for graph in cases:
        ref = color_graph(graph, method)
        res = color_graph(graph, method, backend="compiled")
        _assert_identical(ref, res)
        assert res.colors.dtype == ref.colors.dtype


def test_compiled_backend_instance_and_registry(medium):
    assert "compiled" in BACKENDS
    backend = resolve_backend("compiled")
    assert isinstance(backend, CompiledSimBackend)
    assert backend.name == "compiled"
    assert backend.tier in ("numba", "cc", "numpy")
    res = color_graph(medium, "data-ldg", backend=backend)
    _assert_identical(color_graph(medium, "data-ldg"), res)


def test_compiled_sharded_and_streamed_match(medium):
    ref = color_sharded(medium, "data-ldg", num_shards=3)
    res = color_sharded(medium, "data-ldg", num_shards=3, backend="compiled")
    assert np.array_equal(ref.colors, res.colors)
    assert ref.iterations == res.iterations

    ref_s = color_streamed(medium, "data-ldg", num_windows=3)
    res_s = color_streamed(
        medium, "data-ldg", num_windows=3, backend="compiled"
    )
    assert np.array_equal(ref_s.colors, res_s.colors)


def test_compiled_color_many_parallel_matches(small):
    # Compare against the gpusim *parallel* run: serial batches share one
    # context (warm device-cache state prices the second graph slightly
    # differently), so like-for-like is workers=2 vs workers=2.
    graphs = [small, rmat_er(scale=8, seed=5)]
    reference = color_many(graphs, "data-ldg", workers=2)
    compiled = color_many(graphs, "data-ldg", backend="compiled", workers=2)
    for ref, res in zip(reference, compiled):
        assert np.array_equal(ref.colors, res.colors)
        assert ref.total_time_us == res.total_time_us


# ----------------------------------------------------------------------
# tier resolution and the NumPy fallback
# ----------------------------------------------------------------------

@pytest.fixture
def reset_tiers(monkeypatch):
    """Run a test against a clean tier memo, restoring it afterwards."""
    runtime._reset_for_tests()
    yield monkeypatch
    runtime._reset_for_tests()


def test_fallback_warns_once_with_identical_results(medium, reset_tiers):
    reset_tiers.setenv("REPRO_COMPILED_DISABLE", "numba,cc")
    ref = color_graph(medium, "data-ldg")
    with pytest.warns(RuntimeWarning, match="falling back to the pure-NumPy"):
        res = color_graph(medium, "data-ldg", backend="compiled")
    _assert_identical(ref, res)
    # One-time: a second run under the same fallback stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        res2 = color_graph(medium, "data-ldg", backend="compiled")
    _assert_identical(ref, res2)


def test_disabled_tiers_resolve_to_numpy(reset_tiers):
    reset_tiers.setenv("REPRO_COMPILED_DISABLE", "numba,cc")
    with pytest.warns(RuntimeWarning):
        tier = compiledsim.warmup()
    assert tier == "numpy"
    assert runtime.current_tier() == "numpy"


def test_explicit_tier_unavailable_raises(reset_tiers):
    reset_tiers.setenv("REPRO_COMPILED_DISABLE", "numba,cc")
    with pytest.raises(CompiledTierError, match="jit='cc'"):
        CompiledSimBackend(jit="cc")


def test_explicit_numpy_tier_is_silent(medium, reset_tiers):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = CompiledSimBackend(jit="numpy")
    assert backend.tier == "numpy"
    _assert_identical(
        color_graph(medium, "data-ldg"),
        color_graph(medium, "data-ldg", backend=backend),
    )


def test_unknown_jit_tier_rejected():
    with pytest.raises(ValueError, match="unknown jit tier"):
        CompiledSimBackend(jit="fastest")


def test_warmup_resolves_and_reports_a_real_tier():
    tier = compiledsim.warmup()
    assert tier in ("numba", "cc", "numpy")
    assert runtime.current_tier() == tier


def test_dispatch_declines_outside_scope():
    # Outside an active run scope every dispatch hook returns None, so
    # plain NumPy callers never accidentally route through the JIT.
    from repro.compiledsim import dispatch

    seg = np.zeros(4, dtype=np.int64)
    cols = np.ones(4, dtype=np.int32)
    assert not dispatch.active()
    assert dispatch.mex_sorted(seg, cols, 1) is None


# ----------------------------------------------------------------------
# RunConfig: the unified typed execution-option surface
# ----------------------------------------------------------------------

def test_runconfig_is_frozen_and_replace_derives():
    cfg = RunConfig(backend="compiled", workers=2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.backend = "gpusim"
    derived = cfg.replace(workers=None, observe="rounds")
    assert derived.backend == "compiled"
    assert derived.workers is None and derived.observe == "rounds"
    assert cfg.workers == 2  # original untouched


def test_runconfig_replace_rejects_unknown_fields():
    with pytest.raises(TypeError, match="backend_opt"):
        RunConfig().replace(backend_opt={})


def test_runconfig_as_kwargs_drops_defaults():
    assert RunConfig().as_kwargs() == {}
    assert RunConfig(backend="compiled").as_kwargs() == {
        "backend": "compiled"
    }


def test_runconfig_from_mapping_did_you_mean():
    cfg = RunConfig.from_mapping({"backend": "gpusim", "workers": 4})
    assert cfg.backend == "gpusim" and cfg.workers == 4
    with pytest.raises(TypeError, match="did you mean 'backend'"):
        RunConfig.from_mapping({"backned": "gpusim"})


def test_config_equals_legacy_kwargs(medium):
    legacy = color_graph(medium, "data-ldg", backend="compiled")
    via_config = color_graph(
        medium, "data-ldg", config=RunConfig(backend="compiled")
    )
    via_mapping = color_graph(
        medium, "data-ldg", config={"backend": "compiled"}
    )
    _assert_identical(legacy, via_config)
    _assert_identical(legacy, via_mapping)


def test_config_conflict_with_kwarg_raises(medium):
    with pytest.raises(TypeError, match=r"got 'backend' both ways"):
        color_graph(
            medium, "data-ldg",
            backend="gpusim", config=RunConfig(backend="compiled"),
        )


def test_config_unsupported_field_names_entry_point(medium):
    # color_streamed has no cache= — the error names the entry point,
    # the field, and the escape hatch.
    cfg = RunConfig(backend="compiled", cache=ResultCache())
    with pytest.raises(TypeError, match=r"color_streamed\(\) does not take"):
        color_streamed(medium, "data-ldg", num_windows=2, config=cfg)
    with pytest.raises(TypeError, match=r"config\.replace\(cache=None\)"):
        color_streamed(medium, "data-ldg", num_windows=2, config=cfg)


def test_config_accepted_by_context_and_batch_apis(medium):
    ref = color_graph(medium, "data-ldg")
    ctx = ExecutionContext(config=RunConfig(backend="compiled"))
    _assert_identical(ref, ctx.run(medium, "data-ldg"))

    [batch] = color_many([medium], "data-ldg", config=RunConfig())
    _assert_identical(ref, batch)

    sharded = color_sharded(
        medium, "data-ldg", num_shards=2,
        config=RunConfig(backend="compiled"),
    )
    sharded_ref = color_sharded(medium, "data-ldg", num_shards=2)
    assert np.array_equal(sharded.colors, sharded_ref.colors)


def test_normalize_config_passthrough_without_config():
    explicit = {"backend": "gpusim", "workers": None}
    assert normalize_config("f", None, explicit) == explicit


# ----------------------------------------------------------------------
# cache keys: config spelling and backend must not fork entries
# ----------------------------------------------------------------------

def test_compiled_shares_cache_fingerprint_with_gpusim():
    assert backend_fingerprint("compiled") == backend_fingerprint("gpusim")
    # The jit tier is wall-clock-only, so it can't fork keys either.
    assert backend_fingerprint("compiled", {"jit": "numpy"}) == \
        backend_fingerprint("gpusim")
    assert backend_fingerprint(CompiledSimBackend(jit="numpy")) == \
        backend_fingerprint(resolve_backend("gpusim"))
    assert backend_fingerprint("cpusim") != backend_fingerprint("gpusim")


def test_job_cache_key_invariant_across_spellings(small):
    base = job_cache_key(small, "data-ldg", {}, None)
    assert job_cache_key(small, "data-ldg", {}, "gpusim") == base
    assert job_cache_key(small, "data-ldg", {}, "compiled") == base
    assert job_cache_key(small, "data-ldg", {}, "cpusim") != base


def test_compiled_run_hits_gpusim_cache_entry(small):
    cache = ResultCache()
    first = color_graph(small, "data-ldg", cache=cache)
    assert cache.misses == 1
    hit = color_graph(small, "data-ldg", cache=cache, backend="compiled")
    assert cache.hits == 1
    assert np.array_equal(first.colors, hit.colors)
    via_config = color_graph(
        small, "data-ldg", config=RunConfig(backend="compiled", cache=cache)
    )
    assert cache.hits == 2
    assert np.array_equal(first.colors, via_config.colors)


# ----------------------------------------------------------------------
# registry aliases and entry-point-tagged errors
# ----------------------------------------------------------------------

def test_method_aliases_resolve_everywhere(small):
    ref = color_graph(small, "data-ldg")
    assert np.array_equal(
        ref.colors, color_graph(small, "data_ldg").colors
    )
    assert np.array_equal(
        ref.colors, color_many([small], "data_ldg")[0].colors
    )


@pytest.mark.parametrize(
    ("call", "prefix"),
    [
        (lambda g: color_graph(g, "data-lgd"), "color_graph"),
        (lambda g: color_many([g], "data-lgd"), "color_many"),
        (lambda g: color_streamed(g, "data-lgd", num_windows=2),
         "color_streamed"),
    ],
)
def test_unknown_method_errors_name_their_entry_point(small, call, prefix):
    with pytest.raises(ValueError, match=rf"{prefix}\(\): unknown method"):
        call(small)
    with pytest.raises(ValueError, match=r"did you mean 'data-ldg'"):
        call(small)


def test_backend_opts_thread_through_color_graph(medium):
    res = color_graph(
        medium, "data-ldg", backend="compiled",
        backend_opts={"jit": "numpy"},
    )
    _assert_identical(color_graph(medium, "data-ldg"), res)
    with pytest.raises(TypeError, match="backend_opts"):
        color_graph(
            medium, "data-ldg",
            backend=resolve_backend("gpusim"), backend_opts={"seed": 1},
        )
