"""Graph storage arenas: placement, handles, attach, lifecycle.

The contract under test (see ``src/repro/graph/store.py``): a stored
graph is byte-identical to its source no matter the arena, handles are
small and picklable, and closing a store releases every arena it created
(no leaked ``/dev/shm`` segments, no leaked temp directories).
"""

import pickle

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.graph.store import (
    SHM_PREFIX,
    GraphHandle,
    HeapStore,
    MmapStore,
    SharedMemoryStore,
    attach,
    resolve_store,
)
from repro.parallel.jobs import ColorJob


@pytest.fixture
def sample():
    return erdos_renyi(150, 6.0, seed=11, name="store-sample")


def _shm_entries():
    import os

    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # non-Linux: nothing to leak-check
        return set()


def _assert_same_topology(a, b):
    assert np.array_equal(a.row_offsets, b.row_offsets)
    assert np.array_equal(a.col_indices, b.col_indices)
    assert a.row_offsets.dtype == b.row_offsets.dtype
    assert a.col_indices.dtype == b.col_indices.dtype


# ----------------------------------------------------------------- arenas
@pytest.mark.parametrize("kind", ["heap", "shm", "mmap"])
def test_publish_attach_roundtrip(sample, kind):
    with resolve_store(kind) as store:
        placed, handle = store.publish(sample)
        _assert_same_topology(placed, sample)
        assert placed.content_digest() == sample.content_digest()

        attached = handle.attach()
        _assert_same_topology(attached, sample)
        # The digest memo travels: attaching never re-hashes.
        assert attached._content_digest == sample.content_digest()
        assert handle.kind == kind
        assert handle.num_vertices == sample.num_vertices
        assert handle.num_edges == sample.num_edges


@pytest.mark.parametrize("kind", ["shm", "mmap"])
def test_placed_graph_views_arena_not_copy(sample, kind):
    with resolve_store(kind) as store:
        placed = store.place(sample)
        assert not placed.row_offsets.flags.owndata
        assert placed.row_offsets is not sample.row_offsets
        # Arena-backed graphs are still frozen CSRGraphs.
        assert isinstance(placed, CSRGraph)
        with pytest.raises(ValueError):
            placed.col_indices[0] = 99


@pytest.mark.parametrize("kind", ["shm", "mmap"])
def test_place_deduplicates_by_digest(sample, kind):
    clone = from_edges(
        *sample.edge_endpoints(), num_vertices=sample.num_vertices,
        name="same-topology-different-object",
    )
    assert clone.content_digest() == sample.content_digest()
    with resolve_store(kind) as store:
        first = store.place(sample)
        second = store.place(clone)
        assert second is first
        assert store.placements == 1
        assert store.reuses == 1
        assert store.stats()["graphs"] == 1


@pytest.mark.parametrize("kind", ["shm", "mmap"])
def test_handles_are_small_and_picklable(sample, kind):
    with resolve_store(kind) as store:
        _, handle = store.publish(sample)
        blob = pickle.dumps(handle)
        # The whole point: a handle ships in bytes, not O(graph).
        assert len(blob) < 1024
        back = pickle.loads(blob)
        assert back == handle
        _assert_same_topology(back.attach(), sample)
        assert handle.nbytes() == sample.memory_bytes()


def test_heap_handle_embeds_graph(sample):
    store = HeapStore()
    placed, handle = store.publish(sample)
    assert placed is sample
    assert handle.graph is sample
    assert attach(handle) is sample
    store.close()


@pytest.mark.parametrize("kind", ["shm", "mmap"])
def test_empty_graph_roundtrip(kind):
    empty = from_edges(
        np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=5,
        name="empty",
    )
    with resolve_store(kind) as store:
        _, handle = store.publish(empty)
        attached = handle.attach()
        assert attached.num_vertices == 5
        assert attached.num_edges == 0
        assert attached.content_digest() == empty.content_digest()


# -------------------------------------------------------------- lifecycle
def test_shm_store_unlinks_segments_on_close(sample):
    before = _shm_entries()
    store = SharedMemoryStore()
    placed, handle = store.publish(sample)
    assert _shm_entries() - before, "publish should create a reproshm_ segment"
    store.close()
    assert _shm_entries() == before, "close() must unlink every segment"
    # Idempotent.
    store.close()
    with pytest.raises(RuntimeError):
        store.place(erdos_renyi(10, 2.0, seed=1))


def test_mmap_store_removes_owned_directory(sample):
    store = MmapStore()
    directory = store.directory
    _, handle = store.publish(sample)
    assert directory.exists()
    store.close()
    assert not directory.exists()


def test_mmap_store_keeps_caller_directory(sample, tmp_path):
    store = MmapStore(directory=tmp_path)
    _, handle = store.publish(sample)
    container = tmp_path / f"{sample.content_digest()[:24]}.csrbin"
    assert container.exists()
    store.close()
    assert container.exists(), "caller-provided directories are theirs"

    # A second store on the same directory trusts the existing container.
    with MmapStore(directory=tmp_path) as again:
        placed = again.place(sample)
        _assert_same_topology(placed, sample)


def test_store_context_manager_closes(sample):
    before = _shm_entries()
    with SharedMemoryStore() as store:
        store.publish(sample)
        assert _shm_entries() - before
    assert _shm_entries() == before


def test_handle_requires_placement(sample):
    with SharedMemoryStore() as store:
        with pytest.raises(KeyError):
            store.handle(sample)


# ------------------------------------------------------------- resolution
def test_resolve_store_spellings(tmp_path):
    assert isinstance(resolve_store(None), HeapStore)
    assert isinstance(resolve_store("heap"), HeapStore)
    with resolve_store("shm") as s:
        assert isinstance(s, SharedMemoryStore)
    with resolve_store("mmap") as m:
        assert isinstance(m, MmapStore)
    with resolve_store(f"mmap:{tmp_path}") as md:
        assert md.directory == tmp_path
    inst = HeapStore()
    assert resolve_store(inst) is inst
    with pytest.raises(ValueError):
        resolve_store("ramdisk")
    with pytest.raises(TypeError):
        resolve_store(42)


def test_attach_rejects_bad_handles(sample):
    with pytest.raises(ValueError):
        attach(GraphHandle(
            kind="tape", name="x", digest="d", num_vertices=1, num_edges=0,
        ))
    with pytest.raises(ValueError):
        attach(GraphHandle(
            kind="heap", name="x", digest="d", num_vertices=1, num_edges=0,
        ))


# ------------------------------------------------------- job integration
def test_color_job_pickling_drops_graph_for_arena_handles(sample):
    with SharedMemoryStore() as store:
        placed, handle = store.publish(sample)
        job = ColorJob(placed, "data-ldg", {}, handle=handle)
        blob = pickle.dumps(job)
        assert len(blob) < 2048, "arena-backed jobs must not pickle topology"
        back = pickle.loads(blob)
        assert back.graph is None
        assert back.handle == handle
        assert back.graph_name() == sample.name

        heap_job = ColorJob(sample, "data-ldg", {})
        heap_back = pickle.loads(pickle.dumps(heap_job))
        assert heap_back.graph is not None
        _assert_same_topology(heap_back.graph, sample)
