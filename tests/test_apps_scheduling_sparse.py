"""Applications: chromatic scheduling and coloring-driven sparse solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.scheduling import ChromaticScheduler
from repro.apps.sparse import (
    MulticolorGaussSeidel,
    graph_laplacian,
    triangular_levels,
)
from repro.graph.builder import cycle_graph, path_graph
from repro.graph.generators import grid2d


# -------------------------------------------------------------- scheduling
def test_classes_are_independent_sets(small_er):
    sch = ChromaticScheduler(small_er, method="sequential")
    u, v = small_er.edge_endpoints()
    for cls in sch.color_classes:
        members = set(cls.tolist())
        assert not any(
            a in members and b in members for a, b in zip(u.tolist(), v.tolist())
        )


def test_classes_partition_vertices(small_er):
    sch = ChromaticScheduler(small_er, method="sequential")
    allv = np.concatenate(sch.color_classes)
    assert np.array_equal(np.sort(allv), np.arange(small_er.num_vertices))


def test_sweep_sees_earlier_classes():
    """Within a sweep, later classes read earlier classes' fresh values."""
    g = path_graph(6)
    sch = ChromaticScheduler(g, method="sequential")
    state = np.zeros(6)

    def update(cls, st, gr):
        # each vertex becomes 1 + max over neighbors
        out = np.empty(cls.size)
        for i, v in enumerate(cls):
            out[i] = st[gr.neighbors(v)].max(initial=0.0) + 1
        return out

    sch.sweep(state, update)
    # Gauss-Seidel propagation: at least one vertex saw a fresh value > 1
    assert state.max() >= 2


def test_sweep_rejects_bad_state(c6):
    sch = ChromaticScheduler(c6, method="sequential")
    with pytest.raises(ValueError, match="one entry per vertex"):
        sch.sweep(np.zeros(3), lambda c, s, g: s[c])


def test_stats(small_mesh):
    sch = ChromaticScheduler(small_mesh, method="sequential")
    st = sch.stats()
    assert st.num_colors == sch.coloring.num_colors
    assert st.critical_path == st.num_colors
    assert 0 < st.parallel_efficiency <= 1.0
    assert st.avg_parallelism == pytest.approx(
        small_mesh.num_vertices / st.num_colors
    )


def test_scheduler_accepts_existing_coloring(c6):
    from repro.coloring import color_graph

    res = color_graph(c6, method="sequential")
    sch = ChromaticScheduler(c6, coloring=res)
    assert sch.coloring is res


def test_run_multiple_sweeps(c6):
    sch = ChromaticScheduler(c6, method="sequential")
    state = np.zeros(6)
    sch.run(state, lambda cls, st, gr: st[cls] + 1.0, sweeps=5)
    assert np.all(state == 5.0)


# ------------------------------------------------------------------ sparse
def test_laplacian_spd(small_mesh):
    lap = graph_laplacian(small_mesh, shift=0.1)
    x = np.random.default_rng(0).random(small_mesh.num_vertices)
    assert x @ (lap @ x) > 0
    assert (lap != lap.T).nnz == 0


def test_multicolor_gs_converges_to_solution():
    g = grid2d(12, 12)
    lap = graph_laplacian(g, shift=1.0)
    rng = np.random.default_rng(1)
    x_true = rng.random(g.num_vertices)
    b = lap @ x_true
    gs = MulticolorGaussSeidel(lap, method="sequential")
    x, report = gs.solve(b, sweeps=500, tol=1e-12)
    assert report.converged
    assert np.allclose(x, x_true, atol=1e-4)


def test_gs_phases_equal_colors():
    g = grid2d(8, 8)
    gs = MulticolorGaussSeidel(graph_laplacian(g, shift=1.0), method="sequential")
    _, report = gs.solve(np.ones(64), sweeps=5)
    assert report.parallel_phases_per_sweep == report.num_colors == 2


def test_gs_classes_row_independent():
    g = cycle_graph(10)
    gs = MulticolorGaussSeidel(graph_laplacian(g, shift=1.0), method="sequential")
    u, v = gs.graph.edge_endpoints()
    for cls in gs.classes:
        members = set(cls.tolist())
        assert not any(a in members and b in members for a, b in zip(u, v))


def test_gs_rejects_zero_diagonal():
    mat = sp.csr_array(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        MulticolorGaussSeidel(mat)


def test_gs_rejects_rectangular():
    with pytest.raises(ValueError, match="square"):
        MulticolorGaussSeidel(sp.csr_array(np.ones((2, 3))))


def test_gs_residual_decreases_on_spd():
    """GS on SPD contracts the A-norm of the error; the residual 2-norm may
    wiggle locally but must fall decisively over windows of sweeps."""
    g = grid2d(10, 10)
    lap = graph_laplacian(g, shift=0.5)
    gs = MulticolorGaussSeidel(lap, method="sequential")
    _, report = gs.solve(np.ones(100), sweeps=30)
    norms = report.residual_norms
    assert norms[-1] < 0.1 * norms[0]
    assert all(norms[i + 5] < norms[i] for i in range(0, len(norms) - 5, 5))


# -------------------------------------------------------- triangular levels
def test_triangular_levels_respect_dependencies():
    # chain: row i depends on i-1 -> n levels
    n = 5
    dense = np.tril(np.ones((n, n)))
    levels = triangular_levels(sp.csr_array(dense))
    assert len(levels) == n


def test_triangular_levels_diagonal_is_one_level():
    n = 6
    levels = triangular_levels(sp.csr_array(sp.eye_array(n).tocsr()))
    assert len(levels) == 1
    assert levels[0].size == n


def test_triangular_levels_cover_all_rows():
    g = grid2d(6, 6)
    lap = graph_laplacian(g, shift=1.0)
    lower = sp.csr_array(sp.tril(lap, format="csr"))
    levels = triangular_levels(lower)
    allrows = np.concatenate(levels)
    assert np.array_equal(np.sort(allrows), np.arange(36))
    # every dependency goes to a strictly earlier level
    level_of = np.empty(36, dtype=int)
    for i, lv in enumerate(levels):
        level_of[lv] = i
    indptr, indices = lower.indptr, lower.indices
    for i in range(36):
        deps = indices[indptr[i] : indptr[i + 1]]
        deps = deps[deps < i]
        if deps.size:
            assert level_of[deps].max() < level_of[i]
