"""CSRGraph storage invariants and structural predicates."""

import numpy as np
import pytest

from repro.graph.builder import complete_graph, cycle_graph, from_edges
from repro.graph.csr import CSRGraph


def test_basic_counts(k5):
    assert k5.num_vertices == 5
    assert k5.num_edges == 20  # directed adjacency entries
    assert k5.num_undirected_edges == 10
    assert k5.avg_degree == 4.0
    assert k5.max_degree == 4
    assert k5.min_degree == 4


def test_degrees_match_offsets(small_er):
    degs = small_er.degrees
    assert degs.sum() == small_er.num_edges
    assert np.array_equal(degs, np.diff(small_er.row_offsets))


def test_neighbors_sorted_and_valid(small_er):
    for v in (0, 1, small_er.num_vertices - 1):
        nbrs = small_er.neighbors(v)
        assert np.all(np.diff(nbrs) > 0), "builder sorts and dedups adjacency"
        assert nbrs.size == small_er.degree(v)
        assert v not in nbrs


def test_arrays_are_frozen(k5):
    with pytest.raises((ValueError, RuntimeError)):
        k5.col_indices[0] = 3
    with pytest.raises((ValueError, RuntimeError)):
        k5.row_offsets[0] = 1


def test_rejects_bad_offsets():
    with pytest.raises(ValueError, match="must be 0"):
        CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRGraph(np.array([0, 3, 2, 4]), np.arange(4, dtype=np.int32) % 3)
    with pytest.raises(ValueError, match="must equal"):
        CSRGraph(np.array([0, 2]), np.array([0, 0, 0], dtype=np.int32))


def test_rejects_out_of_range_targets():
    with pytest.raises(ValueError, match="out-of-range"):
        CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))
    with pytest.raises(ValueError, match="out-of-range"):
        CSRGraph(np.array([0, 1]), np.array([-1], dtype=np.int32))


def test_rejects_empty_offsets():
    with pytest.raises(ValueError, match="at least one"):
        CSRGraph(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32))


def test_edge_sources_expand_csr(c6):
    src = c6.edge_sources()
    assert src.size == c6.num_edges
    # each cycle vertex owns exactly two adjacency entries
    assert np.array_equal(np.bincount(src), np.full(6, 2))


def test_is_symmetric_detects_asymmetry():
    g = CSRGraph(np.array([0, 1, 1]), np.array([1], dtype=np.int32))
    assert not g.is_symmetric()
    sym = from_edges([0], [1], num_vertices=2)
    assert sym.is_symmetric()


def test_self_loop_and_duplicate_detection():
    loop = CSRGraph(np.array([0, 1]), np.array([0], dtype=np.int32))
    assert loop.has_self_loops()
    with pytest.raises(ValueError, match="self-loops"):
        loop.validate()
    dup = CSRGraph(np.array([0, 2, 3]), np.array([1, 1, 0], dtype=np.int32))
    assert dup.has_duplicate_edges()
    with pytest.raises(ValueError, match="duplicate"):
        dup.validate()


def test_validate_passes_clean_graph(small_er):
    small_er.validate()


def test_to_scipy_roundtrip(small_er):
    mat = small_er.to_scipy()
    assert mat.shape == (small_er.num_vertices,) * 2
    assert mat.nnz == small_er.num_edges
    assert (mat != mat.T).nnz == 0  # symmetric


def test_to_networkx(c6):
    nx_graph = c6.to_networkx()
    assert nx_graph.number_of_nodes() == 6
    assert nx_graph.number_of_edges() == 6


def test_subgraph_mask_induced(k5):
    sub = k5.subgraph_mask(np.array([True, True, True, False, False]))
    assert sub.num_vertices == 3
    assert sub.num_undirected_edges == 3  # K3


def test_subgraph_mask_renumbers(c6):
    sub = c6.subgraph_mask(np.array([True, False, True, True, False, True]))
    # surviving edges of C6 among {0,2,3,5}: (2,3) and (5,0)
    assert sub.num_vertices == 4
    assert sub.num_undirected_edges == 2


def test_subgraph_mask_shape_check(c6):
    with pytest.raises(ValueError, match="one entry per vertex"):
        c6.subgraph_mask(np.array([True, False]))


def test_memory_bytes(k5):
    assert k5.memory_bytes() == k5.row_offsets.nbytes + k5.col_indices.nbytes


def test_empty_graph_properties(isolated):
    assert isolated.num_vertices == 12
    assert isolated.num_edges == 0
    assert isolated.max_degree == 0
    assert isolated.avg_degree == 0.0
    isolated.validate()


def test_repr_contains_name(small_er):
    assert "er-n500" in repr(small_er)


def test_complete_graph_chromatic_structure():
    k8 = complete_graph(8)
    assert k8.num_undirected_edges == 28
    assert k8.min_degree == k8.max_degree == 7


def test_cycle_parity():
    even, odd = cycle_graph(8), cycle_graph(9)
    assert even.num_undirected_edges == 8
    assert odd.num_undirected_edges == 9
