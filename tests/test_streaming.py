"""Out-of-core streaming: window planning, identity to sharded, budgets.

The guarantees under test (see ``src/repro/parallel/streaming.py``):
``plan_windows(num_windows=k)`` cuts the exact vertex blocks
``block_partition`` does, a window's induced subgraph matches
``subgraph_mask`` on that block, and ``color_streamed`` produces
byte-identical colors to ``color_sharded`` at the same piece count —
including when the backing graph is an mmap'd container that never
enters private memory.
"""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.generators import erdos_renyi
from repro.graph.io import read_csr_bin, write_csr_bin
from repro.graph.partition import block_partition
from repro.parallel import color_sharded, color_streamed, plan_windows, window_subgraph


@pytest.fixture
def sample():
    return erdos_renyi(400, 8.0, seed=5, name="stream-sample")


# ---------------------------------------------------------------- planning
def test_plan_windows_matches_block_partition(sample):
    for k in (1, 3, 7):
        bounds = plan_windows(sample, num_windows=k)
        part = block_partition(sample, k)
        for p in range(k):
            members = part.members(p)
            assert members.min() == bounds[p]
            assert members.max() == bounds[p + 1] - 1
        assert bounds[0] == 0 and bounds[-1] == sample.num_vertices


def test_plan_windows_budget_mode(sample):
    whole = plan_windows(sample, memory_budget_mb=1024.0)
    assert len(whole) == 2  # one window: the graph fits easily

    tight = plan_windows(sample, memory_budget_mb=0.01)
    assert len(tight) > 2  # must cut pieces
    assert tight[-1] == sample.num_vertices


def test_plan_windows_argument_validation(sample):
    with pytest.raises(ValueError):
        plan_windows(sample)
    with pytest.raises(ValueError):
        plan_windows(sample, num_windows=2, memory_budget_mb=1.0)
    with pytest.raises(ValueError):
        plan_windows(sample, memory_budget_mb=0.0)
    # More windows than vertices clamps instead of emitting empties.
    bounds = plan_windows(sample, num_windows=10 * sample.num_vertices)
    assert len(bounds) - 1 == sample.num_vertices


def test_window_subgraph_matches_subgraph_mask(sample):
    bounds = plan_windows(sample, num_windows=4)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        lo, hi = int(lo), int(hi)
        mask = np.zeros(sample.num_vertices, dtype=bool)
        mask[lo:hi] = True
        expect = sample.subgraph_mask(mask)
        got = window_subgraph(sample, lo, hi)
        assert np.array_equal(got.row_offsets, expect.row_offsets)
        assert np.array_equal(got.col_indices, expect.col_indices)


# ---------------------------------------------------------------- coloring
def test_streamed_matches_sharded(sample):
    for k in (2, 5):
        sharded = color_sharded(sample, num_shards=k)
        streamed = color_streamed(sample, num_windows=k)
        assert np.array_equal(streamed.colors, sharded.colors)
        assert streamed.iterations == sharded.iterations
        assert streamed.num_colors == sharded.num_colors


def test_streamed_budget_mode_is_valid_and_bounded(sample):
    budget_mb = sample.memory_bytes() / 2**20 / 6
    result = color_streamed(sample, memory_budget_mb=budget_mb)
    stats = result.shard_stats
    assert stats["mode"] == "stream"
    assert stats["num_shards"] > 1
    assert stats["peak_window_bytes"] < sample.memory_bytes()
    # validate=True already ran the windowed checker; double-check here.
    result.validate(sample)


def test_streamed_from_mmap_container(sample, tmp_path):
    path = tmp_path / "stream.csrbin"
    write_csr_bin(sample, path)
    disk = read_csr_bin(path, mmap=True, validate=False, name=sample.name)

    heap = color_streamed(sample, num_windows=3)
    ooc = color_streamed(disk, num_windows=3)
    assert np.array_equal(ooc.colors, heap.colors)
    assert ooc.iterations == heap.iterations


def test_streamed_single_window_equals_direct_run(sample):
    from repro import color_graph

    direct = color_graph(sample, "data-ldg")
    streamed = color_streamed(sample, num_windows=1)
    assert np.array_equal(streamed.colors, direct.colors)
    assert streamed.shard_stats["resolution_rounds"] == 0


def test_streamed_empty_and_tiny_graphs():
    empty = from_edges(
        np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=0,
        name="empty",
    )
    res = color_streamed(empty, num_windows=3)
    assert res.colors.size == 0

    lone = from_edges(
        np.array([0], dtype=np.int64), np.array([1], dtype=np.int64),
        num_vertices=3, name="edge+isolate",
    )
    res = color_streamed(lone, num_windows=3)
    assert res.num_colors >= 2 or res.colors.min() >= 1
    res.validate(lone)


def test_color_sharded_stream_delegation(sample):
    via_flag = color_sharded(sample, num_shards=4, stream=True)
    direct = color_streamed(sample, num_windows=4)
    assert np.array_equal(via_flag.colors, direct.colors)
    assert via_flag.shard_stats["mode"] == "stream"

    via_budget = color_sharded(
        sample, memory_budget_mb=sample.memory_bytes() / 2**20 / 4
    )
    assert via_budget.shard_stats["mode"] == "stream"
    via_budget.validate(sample)


def test_streamed_observe_trace(sample):
    result = color_streamed(sample, num_windows=3, observe="trace")
    tracer = result.observation.tracer
    names = [s.name for s in tracer.spans("run")]
    assert any(name.startswith("streamed:") for name in names)
