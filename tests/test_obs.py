"""Observability: span tracing, exporters, and the observe= surface."""

import json

import numpy as np
import pytest

from repro.coloring.api import color_graph
from repro.engine import ExecutionContext
from repro.gpusim import KEPLER_K20C
from repro.graph.builder import from_edges
from repro.graph.generators import rmat_er
from repro.metrics.recorder import Recorder
from repro.obs import (
    Observation,
    Span,
    Tracer,
    chrome_trace,
    flame_summary,
    jsonl_events,
    resolve_observe,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(scope="module")
def small_er():
    return rmat_er(scale=8, seed=3)


@pytest.fixture()
def traced_topo(small_er):
    result = color_graph(small_er, "topo-base", observe="trace")
    return result, result.observation


# ---------------------------------------------------------------- tracer core
def test_tracer_clock_and_nesting():
    t = Tracer()
    outer = t.begin("outer", "phase")
    t.event("a", "kernel", duration_us=5.0)
    with t.span("inner", "phase") as inner:
        t.event("b", "kernel", duration_us=3.0)
    t.end(outer)
    assert t.now_us == pytest.approx(8.0)
    assert outer.duration_us == pytest.approx(8.0)
    assert inner.start_us == pytest.approx(5.0)
    assert inner.duration_us == pytest.approx(3.0)
    assert [s.name for s, _ in t.walk()] == ["outer", "a", "inner", "b"]
    assert outer.total("launches") == 0  # counter absent everywhere


def test_tracer_end_closes_abandoned_children():
    t = Tracer()
    outer = t.begin("outer", "run")
    t.begin("left-open", "round")
    t.end(outer)  # closes the abandoned round too
    assert all(s.end_us is not None for s, _ in t.walk())
    with pytest.raises(RuntimeError):
        t.end()


# ------------------------------------------------------------- span tree shape
def test_topo_span_tree_shape_and_counters(small_er, traced_topo):
    result, obs = traced_topo
    runs = obs.tracer.runs()
    assert len(runs) == 1
    run = runs[0]
    assert run.counters["scheme"] == "topo-base"
    assert run.counters["vertices"] == small_er.num_vertices
    assert run.counters["iterations"] == result.iterations
    assert run.counters["colors"] == result.num_colors
    rounds = [c for c in run.children if c.category == "round"]
    assert len(rounds) == result.iterations
    # every working round launches color + conflict kernels and one 4-byte
    # flag readback, in that order
    for r in rounds[:-1]:
        names = [c.category for c in r.children]
        assert names == ["kernel", "kernel", "dtoh"]
        assert r.children[0].name.startswith("topo-color")
        assert r.children[1].name.startswith("topo-conflict")
        assert r.children[2].counters["nbytes"] == 4
    # the terminating round finds no work: just the flag readback
    assert [c.category for c in rounds[-1].children] == ["dtoh"]
    assert rounds[-1].counters["active"] == 0
    assert rounds[-1].counters["conflicts"] == 0
    # counter totals over the tree match the run's aggregate accounting
    assert run.total("launches") == result.num_kernel_launches
    assert run.duration_us == pytest.approx(result.total_time_us)
    overhead = KEPLER_K20C.kernel_launch_overhead_us
    assert run.total("kernel_us") == pytest.approx(
        result.gpu_time_us - result.num_kernel_launches * overhead
    )


def test_datadriven_span_counters_track_worklist(small_er):
    result = color_graph(small_er, "data-ldg", observe="trace")
    run = result.observation.tracer.runs()[0]
    rounds = [c for c in run.children if c.category == "round"]
    assert len(rounds) == result.iterations
    # first round processes the full vertex set; actives shrink monotonically
    actives = [r.counters["active"] for r in rounds]
    assert actives[0] == small_er.num_vertices
    assert all(a >= b for a, b in zip(actives, actives[1:]))
    # conflicts this round == active next round (the worklist handoff)
    conflicts = [r.counters["conflicts"] for r in rounds]
    assert actives[1:] == conflicts[:-1]
    assert conflicts[-1] == 0


def test_cpusim_backend_traces_kernels(small_er):
    result = color_graph(small_er, "data-base", backend="cpusim", observe="trace")
    tracer = result.observation.tracer
    kernels = tracer.spans("kernel")
    assert len(kernels) == result.num_kernel_launches
    assert all(k.counters["instructions"] > 0 for k in kernels)
    run = tracer.runs()[0]
    assert run.counters["backend"] == "cpusim"
    assert run.duration_us == pytest.approx(result.cpu_time_us)


def test_host_scheme_gets_synthetic_run_span(small_er):
    result = color_graph(small_er, "sequential", observe="trace")
    run = result.observation.tracer.runs()[0]
    assert run.counters["backend"] == "host"
    assert run.duration_us == pytest.approx(result.total_time_us)
    assert run.counters["colors"] == result.num_colors


def test_context_cache_and_pool_events(small_er):
    ctx = ExecutionContext(observe="trace")
    ctx.run(small_er, "data-ldg")
    ctx.run(small_er, "data-ldg")
    cache = [s for s in ctx.tracer.spans("cache") if s.name.startswith("upload")]
    assert [c.counters["hit"] for c in cache] == [0, 1]  # second run reuses
    pools = [s for s in ctx.tracer.spans("cache") if s.name == "buffer-pool"]
    assert len(pools) == 2
    assert pools[1].counters["hits"] > 0  # worklists recycled on run 2
    assert len(ctx.tracer.runs()) == 2


# ------------------------------------------------------------------ exporters
def test_chrome_trace_is_valid_and_monotone(traced_topo, tmp_path):
    _, obs = traced_topo
    path = write_chrome_trace(obs.tracer, tmp_path / "trace.json")
    data = json.loads(path.read_text(encoding="utf-8"))
    events = data["traceEvents"]
    assert events, "trace must not be empty"
    for e in events:
        assert e["ph"] == "X"
        assert e["dur"] >= 0
        assert isinstance(e["args"], dict)
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts), "pre-order timestamps must be monotone"
    # round-trips through json without numpy leftovers
    json.dumps(data)


def test_jsonl_export_one_object_per_span(traced_topo, tmp_path):
    _, obs = traced_topo
    path = write_jsonl(obs.tracer, tmp_path / "events.jsonl")
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == len(obs.tracer)
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["category"] in ("cache", "alloc", "htod", "run")
    assert all(p["duration_us"] >= 0 for p in parsed)
    assert list(jsonl_events(obs.tracer))[0]["depth"] == 0


def test_flame_summary_attributes_leaf_time(traced_topo):
    _, obs = traced_topo
    text = flame_summary(obs.tracer)
    assert "topo-color" in text and "topo-conflict" in text
    assert "dtoh" in text
    assert "runs:" in text
    top = flame_summary(obs.tracer, top=1)
    assert len(top.splitlines()) < len(text.splitlines())


# ---------------------------------------------------- equivalence under observation
def test_observation_does_not_perturb_results(small_er):
    for method in ("topo-base", "data-ldg", "csrcolor", "3step-gm"):
        plain = color_graph(small_er, method)
        traced = color_graph(small_er, method, observe="trace")
        recorded = color_graph(small_er, method, observe="rounds")
        assert np.array_equal(plain.colors, traced.colors)
        assert np.array_equal(plain.colors, recorded.colors)
        assert plain.iterations == traced.iterations == recorded.iterations
        assert plain.total_time_us == pytest.approx(traced.total_time_us)
        # observe=None attaches nothing
        assert "observation" not in plain.extra


# ------------------------------------------------------------ observe= resolution
def test_resolve_observe_forms():
    assert not resolve_observe(None).active
    tr = Tracer()
    assert resolve_observe(tr).tracer is tr
    rec = Recorder()
    assert resolve_observe(rec).recorder is rec
    obs = Observation(tracer=tr)
    assert resolve_observe(obs) is obs
    assert resolve_observe("trace").tracer is not None
    assert resolve_observe("profile").mode == "profile"
    assert resolve_observe("rounds").recorder is not None
    with pytest.raises(ValueError, match="unknown observe shorthand"):
        resolve_observe("spans")
    with pytest.raises(TypeError):
        resolve_observe(42)


def test_observe_recorder_collects_rounds(small_er):
    result = color_graph(small_er, "data-base", observe="rounds")
    rec = result.observation.recorder
    assert len(rec.rounds) == result.iterations
    assert rec.rounds[0].active == small_er.num_vertices


def test_observe_shared_tracer_across_calls(small_er):
    tracer = Tracer()
    color_graph(small_er, "topo-base", observe=tracer)
    color_graph(small_er, "data-ldg", observe=tracer)
    assert [r.counters["scheme"] for r in tracer.runs()] == [
        "topo-base", "data-ldg",
    ]


def test_observe_rejected_alongside_context(small_er):
    ctx = ExecutionContext()
    with pytest.raises(ValueError, match="observe"):
        color_graph(small_er, "data-ldg", context=ctx, observe="trace")


def test_observation_without_tracer_refuses_trace_views():
    obs = Observation(recorder=Recorder())
    with pytest.raises(ValueError, match="no tracer"):
        obs.chrome_trace()


# ------------------------------------------------- retired recorder= keyword
def test_recorder_keyword_removed(small_er):
    """The PR 2 shim completed its cycle: recorder= now raises with the
    migration target instead of warning."""
    rec = Recorder()
    with pytest.raises(TypeError, match="observe="):
        ExecutionContext(recorder=rec)
    with pytest.raises(TypeError, match="removed"):
        color_graph(small_er, "data-base", recorder=rec)
    from repro.engine import color_many

    with pytest.raises(TypeError, match="observe="):
        color_many([small_er], "data-base", recorder=rec)
    # The supported spelling still routes rounds into the recorder.
    result = color_graph(small_er, "data-base", observe=rec)
    assert result.observation.recorder is rec
    assert len(rec.rounds) == result.iterations


# ------------------------------------------------------------------- CLI
def test_cli_trace_subcommand(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    rc = main([
        "trace", "rmat-er", "data-ldg", "--scale-div", "256",
        "--out", str(out), "--jsonl", str(jsonl),
    ])
    assert rc == 0
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["traceEvents"]
    assert any(e["cat"] == "kernel" for e in data["traceEvents"])
    assert jsonl.exists()
    captured = capsys.readouterr().out
    assert "flame summary" in captured
    assert "chrome://tracing" in captured


def test_cli_color_observe_flags(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.json"
    rc = main([
        "color", "--graph", "rmat-er", "--method", "data-ldg",
        "--scale-div", "256", "--trace-out", str(out),
    ])
    assert rc == 0
    assert json.loads(out.read_text(encoding="utf-8"))["traceEvents"]
    rc = main([
        "color", "--graph", "rmat-er", "--method", "data-base",
        "--scale-div", "256", "--observe", "rounds",
    ])
    assert rc == 0
    assert "per-round trace:" in capsys.readouterr().out


# ----------------------------------------------------------------- edge cases
def test_empty_graph_traces_cleanly():
    g = from_edges([], [], num_vertices=0, name="empty")
    result = color_graph(g, "data-ldg", observe="trace")
    run = result.observation.tracer.runs()[0]
    assert run.counters["iterations"] == 0
    assert result.num_kernel_launches == 0


def test_span_repr_and_find(traced_topo):
    _, obs = traced_topo
    run = obs.tracer.runs()[0]
    assert "run" in repr(run)
    assert all(isinstance(s, Span) for s in run.find("kernel"))
    dump = chrome_trace(obs.tracer)
    assert dump["otherData"]["source"].startswith("repro.obs")
