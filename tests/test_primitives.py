"""GPU primitives: scans, reductions, compaction, worklists, hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import Device
from repro.primitives.compact import charge_compaction, compact_indices
from repro.primitives.hashing import hash_family, murmur3_finalize, splitmix64
from repro.primitives.reduce import block_reduce_cost, count_nonzero, device_reduce
from repro.primitives.scan import (
    blelloch_cost,
    exclusive_scan,
    hillis_steele_cost,
    inclusive_scan,
    segmented_exclusive_scan,
)
from repro.primitives.worklist import DoubleBufferedWorklist


# -------------------------------------------------------------------- scan
def test_exclusive_scan_basic():
    assert list(exclusive_scan(np.array([3, 1, 7, 0, 4, 1, 6, 3]))) == [
        0, 3, 4, 11, 11, 15, 16, 22,
    ]


def test_exclusive_scan_empty():
    assert exclusive_scan(np.array([])).size == 0


def test_inclusive_scan():
    assert list(inclusive_scan(np.array([1, 2, 3]))) == [1, 3, 6]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 100), max_size=200))
def test_exclusive_scan_matches_cumsum(values):
    arr = np.asarray(values, dtype=np.int64)
    out = exclusive_scan(arr)
    expected = np.concatenate([[0], np.cumsum(arr)[:-1]]) if arr.size else out
    assert np.array_equal(out, expected)


def test_segmented_scan_restarts():
    vals = np.array([1, 2, 3, 4, 5])
    segs = np.array([0, 0, 1, 1, 1])
    assert list(segmented_exclusive_scan(vals, segs)) == [0, 1, 0, 3, 7]


def test_segmented_scan_validation():
    with pytest.raises(ValueError, match="non-decreasing"):
        segmented_exclusive_scan(np.array([1, 2]), np.array([1, 0]))
    with pytest.raises(ValueError, match="parallel"):
        segmented_exclusive_scan(np.array([1]), np.array([0, 0]))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 20)), min_size=1, max_size=100))
def test_segmented_scan_property(pairs):
    pairs.sort(key=lambda p: p[0])
    segs = np.array([p[0] for p in pairs])
    vals = np.array([p[1] for p in pairs])
    out = segmented_exclusive_scan(vals, segs)
    # brute force
    expected = np.zeros(len(pairs), dtype=np.int64)
    for i in range(1, len(pairs)):
        expected[i] = expected[i - 1] + vals[i - 1] if segs[i] == segs[i - 1] else 0
    assert np.array_equal(out, expected)


def test_scan_costs_shape():
    b = blelloch_cost(128)
    h = hillis_steele_cost(128)
    assert b.barriers == 2  # CUB warp-shuffle hybrid
    assert h.barriers == 7  # log2(128) steps
    assert b.instructions_per_thread > 0
    with pytest.raises(ValueError):
        blelloch_cost(0)
    with pytest.raises(ValueError):
        hillis_steele_cost(-1)


# ------------------------------------------------------------------ reduce
def test_device_reduce_ops():
    v = np.array([3, -1, 7, 2])
    assert device_reduce(v, "sum") == 11
    assert device_reduce(v, "max") == 7
    assert device_reduce(v, "min") == -1
    assert device_reduce(v, "any") is True
    with pytest.raises(ValueError):
        device_reduce(v, "mean")


def test_count_nonzero():
    assert count_nonzero(np.array([0, 1, 0, 2])) == 2


def test_block_reduce_cost():
    c = block_reduce_cost(256)
    assert c.barriers == 8
    with pytest.raises(ValueError):
        block_reduce_cost(0)


# ----------------------------------------------------------------- compact
def test_compact_indices():
    flags = np.array([True, False, True, True, False])
    assert list(compact_indices(flags)) == [0, 2, 3]


@pytest.mark.parametrize("use_scan", [True, False])
def test_charge_compaction_functional(use_scan):
    dev = Device()
    tb = dev.builder(256, name="compact")
    out = dev.alloc(256, np.int32)
    tail = dev.alloc(1, np.int32, fill=0)
    rng = np.random.default_rng(0)
    flags = rng.random(256) < 0.3
    selected = charge_compaction(tb, flags, out, tail, use_scan=use_scan)
    assert np.array_equal(selected, np.flatnonzero(flags))
    trace = tb.build()
    if use_scan:
        # one atomic per non-empty block (2 blocks of 128)
        assert trace.atomic_addresses.size <= 2
    else:
        assert trace.atomic_addresses.size == int(flags.sum())


def test_atomic_strategy_costs_more_atomics():
    dev = Device()
    flags = np.ones(512, dtype=bool)
    out = dev.alloc(512, np.int32)
    tail = dev.alloc(1, np.int32, fill=0)
    tb_scan = dev.builder(512)
    charge_compaction(tb_scan, flags, out, tail, use_scan=True)
    tb_atomic = dev.builder(512)
    charge_compaction(tb_atomic, flags, out, tail, use_scan=False)
    assert (
        tb_atomic.build().atomic_addresses.size
        > 10 * tb_scan.build().atomic_addresses.size
    )


# ---------------------------------------------------------------- worklist
def test_worklist_lifecycle():
    dev = Device()
    wl = DoubleBufferedWorklist(dev, capacity=16)
    wl.initialize(np.array([3, 5, 7]))
    assert len(wl) == 3
    assert list(wl.items()) == [3, 5, 7]
    wl.publish(np.array([5]))
    wl.swap()
    assert list(wl.items()) == [5]
    wl.publish(np.empty(0, dtype=np.int64))
    wl.swap()
    assert len(wl) == 0


def test_worklist_swap_is_pointer_swap():
    dev = Device()
    wl = DoubleBufferedWorklist(dev, capacity=8)
    wl.initialize(np.array([1]))
    in_before, out_before = wl.in_buffer, wl.out_buffer
    wl.swap()
    assert wl.in_buffer is out_before
    assert wl.out_buffer is in_before


def test_worklist_overflow():
    dev = Device()
    wl = DoubleBufferedWorklist(dev, capacity=2)
    with pytest.raises(ValueError, match="overflow"):
        wl.initialize(np.array([1, 2, 3]))
    with pytest.raises(ValueError, match="overflow"):
        wl.publish(np.array([1, 2, 3]))
    with pytest.raises(ValueError, match="positive"):
        DoubleBufferedWorklist(dev, capacity=0)


# ----------------------------------------------------------------- hashing
def test_murmur_deterministic_and_seed_sensitive():
    x = np.arange(100, dtype=np.uint32)
    a = murmur3_finalize(x, seed=1)
    b = murmur3_finalize(x, seed=1)
    c = murmur3_finalize(x, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_murmur_avalanche_quality():
    """Consecutive inputs should produce ~uniform high-bit distribution."""
    h = murmur3_finalize(np.arange(10_000, dtype=np.uint32))
    top_bit = (h >> 31).astype(np.float64)
    assert 0.45 < top_bit.mean() < 0.55


def test_splitmix64_mixes():
    h = splitmix64(np.arange(1000, dtype=np.uint64))
    assert np.unique(h).size == 1000


def test_hash_family_shape_and_independence():
    fam = hash_family(np.arange(500), 4, seed=3)
    assert fam.shape == (4, 500)
    # rows must differ (independent orderings)
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(fam[i], fam[j])
    with pytest.raises(ValueError):
        hash_family(np.arange(5), 0)


# ------------------------------------------------------------- edge cases
def test_scan_single_element():
    assert list(exclusive_scan(np.array([7]))) == [0]
    assert list(inclusive_scan(np.array([7]))) == [7]


def test_inclusive_scan_empty():
    assert inclusive_scan(np.array([], dtype=np.int64)).size == 0


def test_compact_indices_degenerate():
    assert compact_indices(np.zeros(0, dtype=bool)).size == 0
    assert list(compact_indices(np.array([True]))) == [0]
    assert compact_indices(np.array([False])).size == 0


@pytest.mark.parametrize("use_scan", [True, False])
def test_charge_compaction_zero_length(use_scan):
    """A round with an empty launch domain charges nothing and selects nothing."""
    dev = Device()
    tb = dev.builder(1, name="compact-empty")
    out = dev.alloc(4, np.int32)
    tail = dev.alloc(1, np.int32, fill=0)
    selected = charge_compaction(
        tb, np.zeros(0, dtype=bool), out, tail, use_scan=use_scan
    )
    assert selected.size == 0
    assert tb.build().atomic_addresses.size == 0


@pytest.mark.parametrize("use_scan", [True, False])
@pytest.mark.parametrize("flag", [True, False])
def test_charge_compaction_single_element(use_scan, flag):
    dev = Device()
    tb = dev.builder(1, name="compact-one")
    out = dev.alloc(4, np.int32)
    tail = dev.alloc(1, np.int32, fill=0)
    selected = charge_compaction(
        tb, np.array([flag]), out, tail, use_scan=use_scan
    )
    assert list(selected) == ([0] if flag else [])
    assert tb.build().atomic_addresses.size == (1 if flag else 0)


def test_worklist_empty_round():
    """An empty in-queue round: no items, swap keeps both queues empty."""
    dev = Device()
    wl = DoubleBufferedWorklist(dev, capacity=4)
    wl.initialize(np.empty(0, dtype=np.int64))
    assert len(wl) == 0
    assert wl.items().size == 0
    assert int(wl.tail_in.data[0]) == 0
    wl.swap()
    assert len(wl) == 0 and wl.items().size == 0


def test_worklist_all_vertices_conflict_round():
    """Worst-case round: every processed vertex re-enters the worklist."""
    dev = Device()
    n = 8
    wl = DoubleBufferedWorklist(dev, capacity=n)
    everyone = np.arange(n, dtype=np.int64)
    wl.initialize(everyone)
    wl.publish(everyone)  # all conflict: out queue fills to capacity
    assert int(wl.tail_out.data[0]) == n
    wl.swap()
    assert len(wl) == n
    assert np.array_equal(wl.items(), everyone)
    assert int(wl.tail_out.data[0]) == 0  # fresh out queue for the next round


def test_worklist_reset_and_release_recycle_buffers():
    dev = Device()
    dev.enable_pool()
    wl = DoubleBufferedWorklist(dev, capacity=8)
    wl.initialize(np.array([1, 2]))
    wl.reset()
    assert len(wl) == 0
    assert int(wl.tail_in.data[0]) == 0
    bases = {wl.in_buffer.base, wl.out_buffer.base, wl.tail_in.base, wl.tail_out.base}
    wl.release()
    assert dev.pool_misses == 4  # the four original allocations
    wl2 = DoubleBufferedWorklist(dev, capacity=8)
    assert dev.pool_hits == 4  # ...all recycled by the next worklist
    assert {
        wl2.in_buffer.base, wl2.out_buffer.base, wl2.tail_in.base, wl2.tail_out.base
    } == bases  # same simulated addresses, no fresh address space
