"""Mycielski graphs: triangle-free, unbounded chromatic number."""

import numpy as np
import pytest

from repro.coloring import color_graph
from repro.coloring.dsatur import chromatic_number, max_clique_lower_bound
from repro.graph import mycielski_graph


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_chromatic_number_is_k(k):
    assert chromatic_number(mycielski_graph(k)) == k


def test_m3_is_c5():
    g = mycielski_graph(3)
    assert g.num_vertices == 5
    assert g.num_undirected_edges == 5
    assert np.all(g.degrees == 2)


def test_m4_is_grotzsch():
    g = mycielski_graph(4)
    assert g.num_vertices == 11
    assert g.num_undirected_edges == 20


@pytest.mark.parametrize("k", [3, 4, 5])
def test_triangle_free(k):
    """Clique number stays 2 while chi grows — the Mycielski point."""
    g = mycielski_graph(k)
    # no triangle: for every edge (u,v), adj(u) and adj(v) are disjoint
    for v in range(g.num_vertices):
        nbrs = set(g.neighbors(v).tolist())
        for w in g.neighbors(v):
            assert not (nbrs & set(g.neighbors(int(w)).tolist())), (k, v, int(w))
    assert max_clique_lower_bound(g) == 2


def test_validation():
    with pytest.raises(ValueError):
        mycielski_graph(1)


@pytest.mark.parametrize("scheme", ["sequential", "dsatur", "topo-base", "data-base"])
def test_heuristics_proper_on_mycielski(scheme):
    g = mycielski_graph(5)
    result = color_graph(g, method=scheme)  # validates
    assert result.num_colors >= 5  # cannot beat chi


def test_clique_bound_gap_demonstrated():
    """The clique lower bound is provably loose here (gap k - 2)."""
    g = mycielski_graph(5)
    assert chromatic_number(g) - max_clique_lower_bound(g) == 3
