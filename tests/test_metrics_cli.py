"""Metrics utilities and the command-line interface."""

import pytest

from repro.cli import main, resolve_graph
from repro.metrics.recorder import Recorder
from repro.metrics.speedup import geomean, normalize_to_baseline, speedup
from repro.metrics.table import format_float, format_table


# ------------------------------------------------------------------- table
def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["bb", 20]])
    lines = out.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert "-" in lines[1]
    assert len(lines) == 4


def test_format_table_title_and_digits():
    out = format_table(["x"], [[3.14159]], title="T", digits=3)
    assert out.startswith("T\n")
    assert "3.142" in out


def test_format_table_row_length_check():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [[1]])


def test_format_float():
    assert format_float(True) == "yes"
    assert format_float(3) == "3"
    assert format_float(3.14159) == "3.14"
    assert format_float("x") == "x"


# ---------------------------------------------------------------- recorder
def test_recorder_filtering():
    r = Recorder()
    r.add("fig7", "g1", "topo", "speedup", 2.0)
    r.add("fig7", "g1", "data", "speedup", 3.0)
    r.add("fig6", "g1", "topo", "colors", 12)
    assert len(r.values(experiment="fig7")) == 2
    assert r.values(scheme="data")[0].value == 3.0
    assert r.values(metric="colors")[0].experiment == "fig6"


def test_recorder_pivot():
    r = Recorder()
    r.add("fig7", "g1", "topo", "speedup", 2.0)
    r.add("fig7", "g2", "topo", "speedup", 1.5)
    out = r.pivot("speedup", experiment="fig7")
    assert "g1" in out and "g2" in out and "topo" in out


def test_recorder_json_roundtrip(tmp_path):
    r = Recorder()
    r.add("fig1", "g", "s", "m", 1.25, note="x")
    path = tmp_path / "rec.json"
    r.save_json(path)
    back = Recorder.load_json(path)
    assert back.records == r.records


# ----------------------------------------------------------------- speedup
def test_speedup_math():
    assert speedup(10.0, 5.0) == 2.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_normalize_to_baseline():
    out = normalize_to_baseline({"seq": 10.0, "gpu": 2.0}, "seq")
    assert out["gpu"] == 5.0 and out["seq"] == 1.0
    with pytest.raises(KeyError):
        normalize_to_baseline({"a": 1.0}, "b")


# --------------------------------------------------------------------- CLI
def test_cli_color(capsys):
    assert main(["color", "--graph", "rmat-er", "--scale-div", "256",
                 "--method", "sequential"]) == 0
    assert "sequential" in capsys.readouterr().out


def test_cli_compare(capsys):
    assert main(["compare", "--graph", "G3_circuit", "--scale-div", "256"]) == 0
    out = capsys.readouterr().out
    assert "csrcolor" in out and "speedup" in out


def test_cli_suite(capsys):
    assert main(["suite", "--scale-div", "256"]) == 0
    out = capsys.readouterr().out
    for name in ("rmat-er", "thermal2", "Hamrle3"):
        assert name in out


def test_cli_sweep(capsys):
    assert main(["sweep", "--graph", "rmat-er", "--scale-div", "256",
                 "--method", "data-base"]) == 0
    assert "block_size" in capsys.readouterr().out


def test_cli_generate_and_reload(tmp_path, capsys):
    out_path = tmp_path / "g.npz"
    assert main(["generate", "--graph", "rmat-er", "--scale-div", "256",
                 "--out", str(out_path)]) == 0
    g = resolve_graph(str(out_path))
    assert g.num_vertices == 4096


def test_resolve_graph_errors():
    with pytest.raises(SystemExit, match="unknown graph"):
        resolve_graph("no-such-thing")


def test_resolve_graph_mtx(tmp_path):
    from repro.graph.generators import erdos_renyi
    from repro.graph.io.matrix_market import write_matrix_market

    g = erdos_renyi(50, 4.0, seed=1)
    p = tmp_path / "g.mtx"
    write_matrix_market(g, p)
    back = resolve_graph(str(p))
    assert back.num_vertices == 50


def test_resolve_graph_edgelist(tmp_path):
    p = tmp_path / "g.el"
    p.write_text("0 1\n1 2\n")
    assert resolve_graph(str(p)).num_undirected_edges == 2


def test_cli_profile(capsys):
    assert main(["profile", "--graph", "rmat-er", "--scale-div", "256",
                 "--method", "data-ldg", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "dominant bound" in out and "device timeline" in out


def test_cli_profile_cpu_scheme(capsys):
    assert main(["profile", "--graph", "rmat-er", "--scale-div", "256",
                 "--method", "sequential"]) == 0
    assert "no simulated kernels" in capsys.readouterr().out


def test_cli_verify_roundtrip(tmp_path, capsys):
    from repro.coloring import color_graph
    from repro.coloring.base import save_result
    from repro.graph.generators import load_graph

    g = load_graph("G3_circuit", scale_div=256)
    res = color_graph(g, method="sequential")
    path = tmp_path / "colors.npz"
    save_result(res, path)
    assert main(["verify", "--graph", "G3_circuit", "--scale-div", "256",
                 "--colors", str(path)]) == 0
    assert "OK" in capsys.readouterr().out
