"""Chaos suite: scheduler contracts under seed-driven fault injection.

Two properties carry the whole suite:

* **Structure** — whatever a plan throws at a batch, every job lands at
  its submission position exactly once, as a ``ColoringResult`` or a
  structured ``JobFailure`` — never lost, never duplicated.
* **Determinism** — the same plan replays the same fault sequence, the
  same degradations, and the same colorings, run after run.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.coloring.base import ColoringResult
from repro.faults import resolve_robustness
from repro.parallel import (
    BACKOFF_CAP_S,
    ColorJob,
    JobFailure,
    ProcessPoolScheduler,
    ResultCache,
    SerialScheduler,
    backoff_delay,
)
from repro.parallel.scheduler import run_jobs

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="pool chaos tests rely on cheap fork workers"
)


@pytest.fixture(scope="module")
def jobs():
    return [
        ColorJob(rmat_er(scale=8, seed=s), "data-ldg", {}) for s in (21, 22, 23)
    ]


@pytest.fixture(scope="module")
def healthy(jobs):
    return [color_graph(j.graph, j.method) for j in jobs]


def _outcome_fingerprint(results):
    """A comparable, order-preserving view of a batch outcome."""
    out = []
    for r in results:
        if isinstance(r, JobFailure):
            out.append(("fail", r.index, r.attempts, r.error))
        else:
            out.append(("ok", r.colors.tobytes(), r.iterations))
    return out


# ---------------------------------------------------------------------------
# Structure: submission order, no lost/duplicated slots, typed failures.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_every_seed_keeps_batch_structure(jobs, healthy, seed):
    plan = f"seed={seed}; job-error: p=0.6"
    results = run_jobs(
        jobs, scheduler=SerialScheduler(), faults=plan, health="strict",
    )
    assert len(results) == len(jobs)
    for i, r in enumerate(results):
        assert isinstance(r, (ColoringResult, JobFailure)), r
        if isinstance(r, JobFailure):
            assert r.index == i
            assert "job-error" in r.error or "FaultInjected" in r.error
        else:
            assert np.array_equal(r.colors, healthy[i].colors)


def test_some_seed_actually_fails_and_some_passes(jobs):
    verdicts = set()
    for seed in range(5):
        results = run_jobs(
            jobs, scheduler=SerialScheduler(),
            faults=f"seed={seed}; job-error: p=0.6", health="strict",
        )
        verdicts.update(isinstance(r, JobFailure) for r in results)
    assert verdicts == {True, False}  # the chaos is not a no-op or a wipeout


# ---------------------------------------------------------------------------
# Determinism: identical double runs — outcomes, fired faults, degradations.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", (0, 3))
def test_serial_double_run_is_identical(jobs, seed):
    def once():
        rb = resolve_robustness(f"seed={seed}; job-error: p=0.5", "strict")
        results = run_jobs(jobs, scheduler=SerialScheduler(retries=1), faults=rb)
        return _outcome_fingerprint(results), rb.report()

    first, second = once(), once()
    assert first[0] == second[0]
    assert first[1] == second[1]


@fork_only
def test_pool_double_run_is_identical_on_deterministic_sites(jobs):
    # job-error decisions key on (job, attempt): independent of pool
    # scheduling races, so even the pool replays exactly.
    def once():
        rb = resolve_robustness("seed=9; job-error: p=0.5", "strict")
        results = run_jobs(
            jobs,
            scheduler=ProcessPoolScheduler(2, retries=1, backoff_s=0.0),
            backend="gpusim", faults=rb,
        )
        return _outcome_fingerprint(results), rb.report()

    first, second = once(), once()
    assert first[0] == second[0]
    assert first[1] == second[1]


# ---------------------------------------------------------------------------
# Crash / hang chaos against the pool.
# ---------------------------------------------------------------------------
@fork_only
def test_worker_crash_heals_byte_identically(jobs, healthy):
    rb = resolve_robustness("seed=11; worker-crash: job=0, attempt=1", None)
    results = run_jobs(
        jobs,
        scheduler=ProcessPoolScheduler(2, retries=2, backoff_s=0.0),
        backend="gpusim", faults=rb,
    )
    assert all(not isinstance(r, JobFailure) for r in results)
    for r, h in zip(results, healthy):
        assert np.array_equal(r.colors, h.colors)
    assert "worker-crash" in [f["site"] for f in rb.report()["fired"]]


@fork_only
def test_worker_hang_is_bounded_by_workers_not_jobs(jobs, healthy):
    # One worker sleeps 30 simulated-wall seconds; the timeout plus pool
    # recycling must finish the whole batch in a few seconds, not 30.
    rb = resolve_robustness(
        "seed=12; worker-hang: job=0, attempt=1, param=30", None
    )
    sched = ProcessPoolScheduler(2, retries=1, backoff_s=0.0, timeout_s=1.0)
    start = time.monotonic()
    results = run_jobs(jobs, scheduler=sched, backend="gpusim", faults=rb)
    elapsed = time.monotonic() - start
    assert elapsed < 20.0
    assert sched.pools_recycled >= 1
    assert all(not isinstance(r, JobFailure) for r in results)
    for r, h in zip(results, healthy):
        assert np.array_equal(r.colors, h.colors)
    assert "worker-hang" in [f["site"] for f in rb.report()["fired"]]


# ---------------------------------------------------------------------------
# Retry-then-succeed: caching and observation still behave.
# ---------------------------------------------------------------------------
def test_retry_then_succeed_reports_cache_and_observation(jobs, healthy):
    cache = ResultCache()
    results = run_jobs(
        [jobs[0]], scheduler=SerialScheduler(retries=1),
        faults="seed=1; job-error: job=0, attempt=1",
        observe="trace", cache=cache,
    )
    (result,) = results
    assert not isinstance(result, JobFailure)
    assert not result.cache_hit  # computed this run (after one retry)
    assert result.observation is not None
    assert result.observation.tracer is not None
    assert np.array_equal(result.colors, healthy[0].colors)
    assert cache.stores == 1

    (hit,) = run_jobs([jobs[0]], scheduler=SerialScheduler(), cache=cache)
    assert hit.cache_hit
    assert np.array_equal(hit.colors, healthy[0].colors)
    assert hit.robustness is None  # fault reports never ride cache entries


def test_failure_attempts_accounting(jobs):
    (failure,) = run_jobs(
        [jobs[0]], scheduler=SerialScheduler(retries=1),
        faults="seed=1; job-error: job=0", health="strict",
    )
    assert isinstance(failure, JobFailure)
    assert failure.attempts == 2  # retries=1 → two attempts, both injected


# ---------------------------------------------------------------------------
# Backoff: exponential, capped, deterministically jittered.
# ---------------------------------------------------------------------------
def test_backoff_delay_shape():
    assert backoff_delay(0.0, 5) == 0.0
    assert backoff_delay(-1.0, 5) == 0.0
    for i in range(12):
        d = backoff_delay(0.1, i, seed=7)
        raw = min(0.1 * 2**i, BACKOFF_CAP_S)
        assert 0.5 * raw <= d <= raw
    # Deep rounds saturate at the documented cap (jitter may halve it).
    assert backoff_delay(0.1, 50, seed=7) <= BACKOFF_CAP_S


def test_backoff_delay_deterministic_per_seed():
    a = [backoff_delay(0.05, i, seed=3) for i in range(6)]
    b = [backoff_delay(0.05, i, seed=3) for i in range(6)]
    c = [backoff_delay(0.05, i, seed=4) for i in range(6)]
    assert a == b
    assert a != c
