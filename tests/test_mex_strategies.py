"""Property tests: bitmask mex ≡ sort mex ≡ naive reference, all regimes.

The bitmask kernel is the default hot path; the sort kernel is the
historical formulation kept as its wide-palette fallback.  Both must be
byte-identical to each other and to a per-segment Python reference across
empty segments, zero (uncolored) entries, palettes past one and two words
(>64 and >128 colors), every fallback crossover, and the unsorted-segment
stream distance-2 feeds them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.base import COLOR_DTYPE
from repro.coloring.kernels import (
    DEFAULT_MEX_WORDS,
    _mex_bitmask,
    _mex_sort,
    _parse_mex_strategy,
    mex_strategy,
    min_excluded_colors,
    set_mex_strategy,
)


def _mex_reference(seg_ids, colors, n):
    """Naive per-segment Python mex (ground truth)."""
    out = np.ones(n, dtype=np.int64)
    for s in range(n):
        used = set(colors[seg_ids == s].tolist()) - {0}
        c = 1
        while c in used:
            c += 1
        out[s] = c
    return out


STRATEGIES = ("sort", "bitmask", "bitmask:1", "bitmask:2", "bitmask:64")


def _assert_all_strategies_match(seg, cols, n):
    want = _mex_reference(seg, cols, n)
    for spec in STRATEGIES:
        with mex_strategy(spec):
            got = min_excluded_colors(seg, cols, n)
        assert got.dtype == COLOR_DTYPE, spec
        assert np.array_equal(got, want), f"{spec}: {got} != {want}"


# ------------------------------------------------------------- properties
@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        # Colors up to 200 exercise >64 and >128 palettes (3+ words) and,
        # against bitmask:1 / bitmask:2, both sides of the fallback
        # crossover in one run.
        st.tuples(st.integers(0, 9), st.integers(0, 200)),
        min_size=0,
        max_size=120,
    )
)
def test_strategies_agree_sorted_segments(pairs):
    pairs = sorted(pairs, key=lambda p: p[0])
    seg = np.array([p[0] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs], dtype=np.int64)
    _assert_all_strategies_match(seg, cols, 10)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 150)),
        min_size=1,
        max_size=80,
    ),
    st.randoms(use_true_random=False),
)
def test_strategies_agree_unsorted_segments(pairs, rng):
    # Unsorted seg ids (distance-2's concatenated two-hop stream): the
    # bitmask kernel must detect this and take its exact fallback.
    rng.shuffle(pairs)
    seg = np.array([p[0] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs], dtype=np.int64)
    _assert_all_strategies_match(seg, cols, 8)


@settings(max_examples=40, deadline=None)
@given(st.integers(60, 140), st.integers(1, 4))
def test_dense_prefix_crosses_word_boundaries(prefix_len, words):
    # A segment holding exactly colors 1..k answers k+1 — the all-bits-set
    # early words and the lowest-zero-bit extraction around 64/128.
    seg = np.zeros(prefix_len, dtype=np.int64)
    cols = np.arange(1, prefix_len + 1, dtype=np.int64)
    want = _mex_reference(seg, cols, 1)
    got = _mex_bitmask(seg, cols, 1, max_words=words)
    assert np.array_equal(got, want)
    assert np.array_equal(_mex_sort(seg, cols, 1), want)


# ---------------------------------------------------------------- edges
def test_empty_stream_all_strategies():
    empty = np.empty(0, dtype=np.int64)
    for spec in STRATEGIES:
        with mex_strategy(spec):
            assert list(min_excluded_colors(empty, empty, 3)) == [1, 1, 1]
            assert min_excluded_colors(empty, empty, 0).size == 0


def test_all_zero_colors():
    seg = np.array([0, 0, 2], dtype=np.int64)
    cols = np.zeros(3, dtype=np.int64)
    _assert_all_strategies_match(seg, cols, 3)


def test_absent_segments_get_color_one():
    seg = np.array([1, 1], dtype=np.int64)
    cols = np.array([1, 2], dtype=np.int64)
    _assert_all_strategies_match(seg, cols, 4)


def test_fallback_crossover_exact_boundary():
    # 64 colors fit one word; 65 colors need two.  bitmask:1 must fall
    # back on the second case and still agree.
    for cmax in (63, 64, 65, 128, 129):
        seg = np.zeros(cmax, dtype=np.int64)
        cols = np.arange(1, cmax + 1, dtype=np.int64)
        want = _mex_reference(seg, cols, 1)
        for words in (1, 2, 3):
            assert np.array_equal(_mex_bitmask(seg, cols, 1, words), want)


# ------------------------------------------------------------- strategy API
def test_parse_strategy_spellings():
    assert _parse_mex_strategy("sort") == ("sort", 0)
    assert _parse_mex_strategy("bitmask") == ("bitmask", DEFAULT_MEX_WORDS)
    assert _parse_mex_strategy("bitmask:3") == ("bitmask", 3)
    assert _parse_mex_strategy(("bitmask", 5)) == ("bitmask", 5)


def test_parse_strategy_rejects_unknown():
    with pytest.raises(ValueError, match="unknown mex strategy"):
        _parse_mex_strategy("radix")
    with pytest.raises(ValueError, match=">= 1"):
        _parse_mex_strategy("bitmask:0")


def test_context_manager_restores_previous():
    before = set_mex_strategy("bitmask")  # normalize, remember default
    try:
        with mex_strategy("sort"):
            with mex_strategy("bitmask:2"):
                pass
            # Inner exit restored the outer override, not the default.
            seg = np.array([0], dtype=np.int64)
            assert min_excluded_colors(seg, np.array([1]), 1)[0] == 2
        assert set_mex_strategy("bitmask") == ("bitmask", DEFAULT_MEX_WORDS)
    finally:
        set_mex_strategy(before)


def test_color_graph_mex_option_byte_identical():
    from repro.coloring.api import color_graph
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(300, 0.05, seed=7)
    base = color_graph(g, "data-ldg")
    for spec in ("sort", "bitmask:1"):
        alt = color_graph(g, "data-ldg", mex=spec)
        assert np.array_equal(alt.colors, base.colors)
        assert alt.iterations == base.iterations
        assert alt.gpu_time_us == base.gpu_time_us
