"""Applications: register allocation and WLAN channel planning."""

import numpy as np
import pytest

from repro.apps.frequency import AccessPointField, plan_channels
from repro.apps.register_alloc import (
    LiveInterval,
    allocate_registers,
    build_interference_graph,
)


# ---------------------------------------------------------- register alloc
def test_live_interval_validation():
    with pytest.raises(ValueError, match="empty"):
        LiveInterval(0, 5, 5)


def test_interval_overlap():
    a = LiveInterval(0, 0, 10)
    b = LiveInterval(1, 9, 12)
    c = LiveInterval(2, 10, 12)
    assert a.overlaps(b) and not a.overlaps(c)


def test_interference_graph_matches_brute_force():
    rng = np.random.default_rng(4)
    starts = rng.integers(0, 50, 40)
    ivs = [LiveInterval(i, int(s), int(s) + int(rng.integers(1, 15))) for i, s in enumerate(starts)]
    g = build_interference_graph(ivs)
    u, v = g.edge_endpoints()
    got = {(min(a, b), max(a, b)) for a, b in zip(u.tolist(), v.tolist())}
    want = {
        (i, j)
        for i in range(40)
        for j in range(i + 1, 40)
        if ivs[i].overlaps(ivs[j])
    }
    assert got == want


def test_interference_vregs_must_be_dense():
    with pytest.raises(ValueError, match="0..n-1"):
        build_interference_graph([LiveInterval(5, 0, 2)])


def test_interference_empty():
    g = build_interference_graph([])
    assert g.num_vertices == 0


def test_allocation_no_spill_when_enough_registers():
    ivs = [LiveInterval(i, i, i + 2) for i in range(10)]  # chain overlap
    res = allocate_registers(ivs, 4)
    assert res.num_spilled == 0
    assert res.colors_used <= 2  # only adjacent intervals interfere


def test_allocation_spills_when_pressure_exceeds():
    # 6 fully-overlapping intervals into 3 registers -> 3 spills
    ivs = [LiveInterval(i, 0, 10) for i in range(6)]
    res = allocate_registers(ivs, 3)
    assert res.num_spilled == 3
    assert res.colors_used <= 3
    assert (res.assignment >= 0).sum() == 3


def test_allocation_verifies_no_shared_register():
    rng = np.random.default_rng(7)
    ivs = [LiveInterval(i, int(s), int(s) + 8) for i, s in enumerate(rng.integers(0, 60, 50))]
    res = allocate_registers(ivs, 5)
    res.verify(build_interference_graph(ivs))  # raises on violation


def test_allocation_needs_a_register():
    with pytest.raises(ValueError):
        allocate_registers([LiveInterval(0, 0, 1)], 0)


def test_spilled_marked_minus_one():
    ivs = [LiveInterval(i, 0, 10) for i in range(4)]
    res = allocate_registers(ivs, 2)
    assert np.all(res.assignment[res.spilled] == -1)


# ------------------------------------------------------------- frequencies
def test_field_validation():
    with pytest.raises(ValueError):
        AccessPointField.random(0, 0.1)
    with pytest.raises(ValueError):
        AccessPointField.random(10, 2.0)


def test_interference_graph_radius():
    pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]])
    field = AccessPointField(positions=pts, radius=0.1)
    g = field.interference_graph()
    assert g.num_undirected_edges == 1  # only the close pair


def test_plan_has_no_violations():
    field = AccessPointField.random(300, 0.07, seed=2)
    plan = plan_channels(field)
    assert plan.max_cochannel_distance_violations == 0
    assert plan.num_channels >= 1


def test_sparser_field_needs_fewer_channels():
    dense = plan_channels(AccessPointField.random(300, 0.12, seed=3))
    sparse = plan_channels(AccessPointField.random(300, 0.03, seed=3))
    assert sparse.num_channels <= dense.num_channels


def test_fits_80211_flag():
    lone = plan_channels(AccessPointField.random(5, 0.01, seed=1))
    assert lone.fits_80211
