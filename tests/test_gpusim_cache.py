"""Cache models: exact LRU reference, vectorized approximation, analytic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import (
    CacheConfig,
    SetAssociativeCache,
    analytic_hits,
    reuse_distance_hits,
)


# ------------------------------------------------------------- exact LRU
def test_cache_config_validation():
    with pytest.raises(ValueError, match="whole number"):
        CacheConfig(size_bytes=1000, line_bytes=128)
    with pytest.raises(ValueError, match="divide evenly"):
        CacheConfig(size_bytes=3 * 128, line_bytes=128, ways=2)


def test_exact_lru_hit_after_touch():
    c = SetAssociativeCache(CacheConfig(4 * 128, 128, ways=4))
    assert not c.access(1)
    assert c.access(1)
    assert c.hit_rate == 0.5


def test_exact_lru_eviction_order():
    c = SetAssociativeCache(CacheConfig(2 * 128, 128, ways=2))
    c.access(0)
    c.access(2)  # same set (2 sets? no: 2 lines/2 ways = 1 set)
    c.access(4)  # evicts 0 (LRU)
    assert not c.access(0)
    assert c.access(4)


def test_exact_lru_touch_refreshes_recency():
    c = SetAssociativeCache(CacheConfig(2 * 128, 128, ways=2))
    c.access(0)
    c.access(1)
    c.access(0)  # refresh 0
    c.access(2)  # evicts 1, not 0
    assert c.access(0)
    assert not c.access(1)


def test_exact_set_mapping():
    cfg = CacheConfig(4 * 128, 128, ways=1)  # 4 direct-mapped sets
    c = SetAssociativeCache(cfg)
    c.access(0)
    c.access(4)  # same set as 0 -> evicts
    assert not c.access(0)


def test_run_returns_mask():
    c = SetAssociativeCache(CacheConfig(8 * 128, 128, ways=8))
    mask = c.run(np.array([1, 2, 1, 2]))
    assert list(mask) == [False, False, True, True]


# ------------------------------------------------- reuse-distance approx
def test_reuse_distance_empty_and_zero_capacity():
    assert reuse_distance_hits(np.array([], dtype=np.int64), 10).size == 0
    assert not reuse_distance_hits(np.array([1, 1, 1]), 0).any()


def test_reuse_distance_compulsory_misses():
    hits = reuse_distance_hits(np.arange(100), 1000)
    assert not hits.any()


def test_reuse_distance_fits_capacity_all_reuses_hit():
    stream = np.tile(np.arange(16), 10)
    hits = reuse_distance_hits(stream, 64)
    assert hits.sum() == stream.size - 16


def test_reuse_distance_thrashing_misses():
    # 1000 distinct lines cycled: capacity 10 -> reuse distance 1000 >> cap
    stream = np.tile(np.arange(1000), 3)
    hits = reuse_distance_hits(stream, 10)
    assert hits.mean() < 0.05


def test_reuse_distance_short_range_hits_long_range_misses():
    # pairs (x, x) back to back always hit; far reuses of the same line miss
    base = np.arange(5000)
    stream = np.repeat(base, 2)  # immediate reuse
    hits = reuse_distance_hits(stream, 32)
    assert hits.sum() == 5000  # every second access hits


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 63), min_size=10, max_size=400),
    st.sampled_from([8, 16, 64]),
)
def test_reuse_distance_tracks_exact_lru(stream, capacity):
    """The approximation's hit count stays within a coarse band of a
    fully-associative LRU of the same capacity (property, not equality —
    it is an expected-stack-distance model)."""
    stream = np.asarray(stream, dtype=np.int64)
    exact = SetAssociativeCache(
        CacheConfig(capacity * 128, 128, ways=capacity)  # fully associative
    ).run(stream)
    approx = reuse_distance_hits(stream, capacity)
    # compulsory misses agree exactly
    first = np.zeros(stream.size, dtype=bool)
    seen = set()
    for i, x in enumerate(stream.tolist()):
        first[i] = x not in seen
        seen.add(x)
    assert not approx[first].any()
    assert abs(int(exact.sum()) - int(approx.sum())) <= max(4, 0.3 * stream.size)


def test_reuse_distance_exact_match_when_fits():
    """When the working set fits, both models agree exactly."""
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 30, size=500)
    exact = SetAssociativeCache(CacheConfig(64 * 128, 128, ways=64)).run(stream)
    approx = reuse_distance_hits(stream, 64)
    assert np.array_equal(exact, approx)


# ----------------------------------------------------------------- analytic
def test_analytic_edge_cases():
    assert analytic_hits(0, 0, 10) == 0
    assert analytic_hits(100, 0, 10) == 0


def test_analytic_fits_capacity():
    assert analytic_hits(1000, 50, 100) == 950


def test_analytic_steady_state_ratio():
    # footprint 200, capacity 100 -> half the reuses hit
    assert analytic_hits(1200, 200, 100) == 500


def test_analytic_monotone_in_capacity():
    vals = [analytic_hits(10_000, 1000, c) for c in (10, 100, 500, 1000, 2000)]
    assert vals == sorted(vals)
