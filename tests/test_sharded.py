"""Partition-sharded coloring: validity, stats, tracing, failure modes."""

import numpy as np
import pytest

from repro import color_graph, color_sharded, rmat_er
from repro.coloring.base import ColoringError, count_conflicts
from repro.parallel import ShardedColoringError


@pytest.fixture(scope="module")
def medium():
    return rmat_er(scale=11, seed=7)


def test_sharded_is_checker_valid_on_100k_rmat():
    """The acceptance case: a 100k+-vertex R-MAT, sharded, checker-verified."""
    graph = rmat_er(scale=17, seed=3)
    assert graph.num_vertices >= 100_000
    result = color_sharded(graph, "data-ldg", num_shards=4)
    result.validate(graph)  # ColoringError on any conflict/gap
    assert count_conflicts(graph, result.colors) == 0
    stats = result.shard_stats
    assert stats["num_shards"] == 4
    assert len(stats["shards"]) == 4
    assert sum(s["vertices"] for s in stats["shards"]) == graph.num_vertices
    assert stats["resolution_rounds"] >= 1  # cross-shard conflicts existed
    # Color count stays in the same regime as an unsharded run.
    direct = color_graph(graph, "data-ldg")
    assert result.num_colors <= 2 * direct.num_colors + 4


def test_single_shard_equals_direct_coloring(medium):
    result = color_sharded(medium, "data-ldg", num_shards=1)
    direct = color_graph(medium, "data-ldg")
    assert np.array_equal(result.colors, direct.colors)
    assert result.shard_stats["resolution_rounds"] == 0
    assert result.shard_stats["boundary_vertices"] == 0


def test_workers_do_not_change_the_coloring(medium):
    serial = color_sharded(medium, "data-ldg", num_shards=4)
    parallel = color_sharded(medium, "data-ldg", num_shards=4, workers=2)
    assert np.array_equal(serial.colors, parallel.colors)
    assert serial.iterations == parallel.iterations


def test_host_scheme_shards_too(medium):
    result = color_sharded(medium, "sequential", num_shards=3)
    result.validate(medium)
    assert result.scheme == "sharded(sequential)x3"


def test_makespan_timing_model(medium):
    result = color_sharded(medium, "data-ldg", num_shards=4)
    totals = [s["total_time_us"] for s in result.shard_stats["shards"]]
    # Concurrent shards: per-component maxima, so the total sits between
    # the slowest shard and the serial sum.
    assert max(totals) - 1e-9 <= result.total_time_us <= sum(totals) + 1e-9
    assert result.num_kernel_launches > 0


def test_trace_contains_shard_and_resolution_spans(medium):
    result = color_sharded(medium, "data-ldg", num_shards=4, observe="trace")
    tracer = result.observation.tracer
    [root] = tracer.roots
    assert root.category == "run" and root.name.startswith("sharded:")
    assert root.counters["shards"] == 4
    workers = [s for s in root.children if s.category == "worker"]
    assert len(workers) == 4  # one merged subtrace per shard job
    [resolve] = root.find("resolve")
    assert resolve.counters["rounds"] == result.shard_stats["resolution_rounds"]
    assert resolve.counters["remaining_conflicts"] == 0
    for span, _ in tracer.walk():
        assert span.end_us is not None


def test_fallback_sweep_guarantees_termination(medium):
    # Forcing zero Jacobi rounds exercises the sequential fallback path.
    result = color_sharded(
        medium, "data-ldg", num_shards=4, max_resolution_rounds=0
    )
    result.validate(medium)
    assert result.shard_stats["fallback"] is True


def test_unknown_method_fails_fast_with_shared_error(medium):
    # The registry resolver runs before any shard job is built, so a bad
    # method surfaces the same fail-fast error (with did-you-mean) as
    # color_graph and the CLI — not as per-shard JobFailures.  The
    # structured ShardedColoringError path is covered by
    # test_degradation.py with genuinely failing jobs.
    with pytest.raises(ValueError, match=r"color_sharded\(\): unknown method"):
        color_sharded(medium, "no-such-method", num_shards=2)
    with pytest.raises(ValueError, match=r"did you mean 'data-ldg'"):
        color_sharded(medium, "data-lgd", num_shards=2)


def test_num_shards_validation(medium):
    with pytest.raises(ValueError, match="num_shards"):
        color_sharded(medium, num_shards=0)


def test_more_shards_than_vertices_is_capped():
    tiny = rmat_er(scale=4, seed=1)
    result = color_sharded(tiny, "data-ldg", num_shards=10_000)
    result.validate(tiny)
    assert result.shard_stats["num_shards"] <= tiny.num_vertices


def test_validation_failure_propagates(medium, monkeypatch):
    # The sharded result is still checker-gated: cripple the repair mex so
    # boundary conflicts survive the fallback, and watch validate fire.
    from repro.parallel import sharded

    monkeypatch.setattr(sharded, "_mex", lambda neigh: 1)
    with pytest.raises(ColoringError):
        color_sharded(medium, "data-ldg", num_shards=4, max_resolution_rounds=0)
