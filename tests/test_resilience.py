"""The resilience tier: deadlines, cancellation, checkpoints, breakers.

Unit coverage for :mod:`repro.resilience` plus the integration contracts
the tier promises: a deadline is enforced at every layer's cooperative
boundary with queued-vs-running attribution, a killed-and-resumed run is
byte-identical to an uninterrupted one, and seeded halo/transport faults
heal back to digest equality through declared degradation chains.
"""

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.distributed import color_distributed
from repro.faults import resolve_robustness
from repro.parallel import ColorJob, color_sharded
from repro.parallel.scheduler import run_jobs
from repro.parallel.streaming import color_streamed
from repro.resilience import (
    Cancelled,
    CancelToken,
    Checkpointer,
    CheckpointError,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    RunControl,
    load_resume,
    activate_control,
    control_check,
    read_checkpoint,
    resolve_control,
    run_fingerprint,
    write_checkpoint,
)


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=8, seed=9)


@pytest.fixture(scope="module")
def healthy(g):
    return color_graph(g, "data-ldg")


# ---------------------------------------------------------------- units
class _FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def test_deadline_attribution_queued_vs_running():
    clock = _FakeClock()
    d = Deadline(50.0, queued_ms=30.0, clock=clock)
    clock.t += 0.015  # 15 ms of running
    assert d.running_ms() == pytest.approx(15.0)
    assert d.elapsed_ms() == pytest.approx(45.0)
    assert d.remaining_ms() == pytest.approx(5.0)
    assert not d.expired
    d.check("round")  # within budget: no raise
    clock.t += 0.010
    assert d.expired
    with pytest.raises(DeadlineExceeded) as exc:
        d.check("sync-round")
    err = exc.value.to_dict()
    assert err["error"] == "DeadlineExceeded"
    assert err["where"] == "sync-round"
    assert err["queued_ms"] == pytest.approx(30.0)
    assert err["running_ms"] == pytest.approx(25.0)


def test_deadline_rejects_negative_budget():
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_cancel_token_is_cooperative():
    token = CancelToken()
    token.check("round")  # not cancelled: no raise
    token.cancel("all-waiters-abandoned")
    assert token.cancelled
    with pytest.raises(Cancelled) as exc:
        token.check("window")
    assert exc.value.reason == "all-waiters-abandoned"
    assert exc.value.where == "window"
    assert exc.value.to_dict()["error"] == "Cancelled"


def test_run_control_ship_round_trips_attribution():
    clock = _FakeClock()
    control = RunControl(
        deadline=Deadline(200.0, queued_ms=25.0, clock=clock))
    clock.t += 0.040
    shipped = control.ship()
    rebuilt = RunControl.from_shipped(shipped)
    # The worker-side control keeps end-to-end accounting: queued time
    # and the running time already burned upstream both carry over.
    assert rebuilt.deadline.queued_ms == pytest.approx(25.0)
    assert rebuilt.deadline.running_ms() == pytest.approx(40.0, abs=5.0)
    assert RunControl.from_shipped(None) is None
    assert RunControl(deadline=None).ship() is None


def test_resolve_control_passthrough_and_none():
    assert resolve_control(None) is None
    ready = RunControl(deadline=Deadline(10.0))
    assert resolve_control(ready) is ready
    fresh = resolve_control(75.0)
    assert fresh.deadline.deadline_ms == 75.0
    token_only = resolve_control(None, token=CancelToken())
    assert token_only.deadline is None and token_only.token is not None


def test_ambient_control_check(g):
    control = RunControl(deadline=Deadline(0.0))
    control_check("deep-site")  # nothing active: no-op
    with activate_control(control):
        with pytest.raises(DeadlineExceeded) as exc:
            control_check("deep-site")
    assert exc.value.where == "deep-site"
    control_check("deep-site")  # deactivated again


def test_retry_policy_deterministic_capped_delays():
    policy = RetryPolicy(retries=3, backoff_s=0.5, cap_s=1.0, jitter_seed=7)
    assert policy.attempts == 4
    delays = [policy.delay(r) for r in range(4)]
    assert delays == [RetryPolicy(retries=3, backoff_s=0.5, cap_s=1.0,
                                  jitter_seed=7).delay(r) for r in range(4)]
    assert all(0.0 < d <= 1.0 for d in delays)  # jitter in [0.5, 1.0]*raw
    assert RetryPolicy(backoff_s=0.0).delay(5) == 0.0
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)


def test_circuit_breaker_lifecycle():
    br = CircuitBreaker("t", failure_threshold=2, cooldown=2,
                        half_open_probes=1)
    assert br.allow() and br.state == br.CLOSED
    assert not br.record_failure("one")
    assert br.record_failure("two")  # threshold reached: trips
    assert br.state == br.OPEN
    assert not br.allow() and not br.allow()  # cooldown burns per consult
    assert br.allow()  # half-open admits the probe
    assert br.state == br.HALF_OPEN
    br.record_success()
    assert br.state == br.CLOSED
    snap = br.snapshot()
    assert snap["trips"] == 1 and snap["recoveries"] == 1
    assert snap["rejections"] == 2 and snap["last_reason"] == "two"


def test_circuit_breaker_failed_probe_reopens():
    br = CircuitBreaker(failure_threshold=1, cooldown=1)
    br.record_failure("boom")
    assert not br.allow()  # cooldown
    assert br.allow()      # probe
    assert br.record_failure("probe failed")  # re-trips immediately
    assert br.state == br.OPEN
    assert br.snapshot()["trips"] == 2
    br.reset()
    assert br.state == br.CLOSED and br.allow()


# ---------------------------------------------------------- checkpoints
def _ckpt(tmp_path, name="state.ckpt"):
    return str(tmp_path / name)


def test_checkpoint_write_read_round_trip(tmp_path):
    path = _ckpt(tmp_path)
    meta = {"round": 3, "mode": "stream", "fingerprint": "abc"}
    colors = np.arange(32, dtype=np.int32)
    write_checkpoint(path, meta, {"colors": colors})
    got_meta, got_arrays = read_checkpoint(path)
    assert got_meta == meta
    assert np.array_equal(got_arrays["colors"], colors)


def test_checkpoint_torn_and_corrupt_are_distinguished(tmp_path):
    path = _ckpt(tmp_path)
    write_checkpoint(path, {"round": 1}, {"a": np.zeros(8)})
    blob = open(path, "rb").read()
    torn = _ckpt(tmp_path, "torn.ckpt")
    with open(torn, "wb") as fh:
        fh.write(blob[:-10])
    with pytest.raises(CheckpointError) as exc:
        read_checkpoint(torn)
    assert exc.value.reason == "torn"
    corrupt = _ckpt(tmp_path, "corrupt.ckpt")
    damaged = bytearray(blob)
    damaged[-4] ^= 0xFF
    with open(corrupt, "wb") as fh:
        fh.write(bytes(damaged))
    with pytest.raises(CheckpointError) as exc:
        read_checkpoint(corrupt)
    assert exc.value.reason == "corrupt"
    with pytest.raises(CheckpointError) as exc:
        read_checkpoint(_ckpt(tmp_path, "nope.ckpt"))
    assert exc.value.reason == "missing"
    garbage = _ckpt(tmp_path, "garbage.ckpt")
    with open(garbage, "wb") as fh:
        fh.write(b"not a checkpoint at all\n")
    with pytest.raises(CheckpointError) as exc:
        read_checkpoint(garbage)
    assert exc.value.reason == "not-a-checkpoint"
    assert exc.value.to_dict()["reason"] == "not-a-checkpoint"


def test_load_resume_fingerprint_mismatch_strict_vs_degrade(tmp_path):
    path = _ckpt(tmp_path)
    fp = run_fingerprint("digest", "stream", "data-ldg", {}, 4)
    other = run_fingerprint("digest", "stream", "data-ldg", {}, 5)
    assert fp != other
    ck = Checkpointer(path, fingerprint=fp, every=1)
    ck.save(2, {"mode": "stream"}, {"colors": np.ones(4, dtype=np.int32)})
    meta, arrays = load_resume(path, fingerprint=fp)
    assert meta["round"] == 2 and "colors" in arrays
    # wrong fingerprint, no degradation allowed -> structured raise
    with pytest.raises(CheckpointError) as exc:
        load_resume(path, fingerprint=other)
    assert exc.value.reason == "fingerprint-mismatch"
    # degradation-permitting policy -> fresh start, chain recorded
    rb = resolve_robustness("seed=1", "default")
    assert load_resume(path, fingerprint=other, robustness=rb) is None
    chains = [d["chain"] for d in rb.report()["degradations"]]
    assert "checkpoint" in chains
    # a missing file is always a fresh start, never a degradation
    assert load_resume(_ckpt(tmp_path, "new.ckpt"), fingerprint=fp) is None


def test_checkpointer_cadence_and_stats(tmp_path):
    path = _ckpt(tmp_path)
    ck = Checkpointer(path, fingerprint="fp", every=2)
    assert not ck.due(0) and not ck.due(1) and ck.due(2) and ck.due(4)
    assert not ck.save(1, {}, {"a": np.zeros(2)})
    assert ck.save(0, {}, {"a": np.zeros(2)}, force=True)
    assert ck.save(2, {}, {"a": np.zeros(2)})
    stats = ck.stats()
    assert stats["written"] == 2 and stats["last_round"] == 2
    assert stats["bytes_written"] > 0 and stats["every"] == 2
    with pytest.raises(ValueError):
        Checkpointer(path, fingerprint="fp", every=0)


# ------------------------------------- deadline enforcement, every layer
def test_deadline_zero_engine_run_fails_at_round_boundary(g):
    with pytest.raises(DeadlineExceeded) as exc:
        color_graph(g, "data-ldg", deadline_ms=1e-4)
    assert "round" in exc.value.where


def test_deadline_zero_host_scheme_fails_at_dispatch(g):
    with pytest.raises(DeadlineExceeded) as exc:
        color_graph(g, "sequential", deadline_ms=1e-4)
    assert exc.value.where == "dispatch"


def test_deadline_zero_sharded_streamed_distributed(g):
    with pytest.raises(DeadlineExceeded):
        color_sharded(g, "data-ldg", num_shards=3, deadline_ms=1e-4)
    with pytest.raises(DeadlineExceeded) as exc:
        color_sharded(g, "data-ldg", num_shards=3, stream=True,
                      deadline_ms=1e-4)
    assert exc.value.where == "window"
    with pytest.raises(DeadlineExceeded) as exc:
        color_distributed(g, "data-ldg", devices=2, deadline_ms=1e-4)
    assert exc.value.where == "shard"


def test_deadline_zero_run_jobs_is_structured(g):
    jobs = [ColorJob(g, "data-ldg", {})]
    with pytest.raises(DeadlineExceeded):
        run_jobs(jobs, deadline_ms=1e-4)


def test_generous_deadline_changes_nothing(g, healthy):
    r = color_graph(g, "data-ldg", deadline_ms=60_000.0)
    assert np.array_equal(r.colors, healthy.colors)
    r = color_sharded(g, "data-ldg", num_shards=3, deadline_ms=60_000.0)
    sharded = color_sharded(g, "data-ldg", num_shards=3)
    assert np.array_equal(r.colors, sharded.colors)


def test_deadline_storm_forces_expiry_mid_run(g):
    with pytest.raises(DeadlineExceeded) as exc:
        color_streamed(
            g, "data-ldg", num_windows=4, deadline_ms=60_000.0,
            faults="seed=1; deadline-storm: round=2, phase=window",
        )
    assert exc.value.where == "window:forced"


def test_context_and_deadline_ms_are_exclusive(g):
    from repro.engine import ExecutionContext

    ctx = ExecutionContext()
    with pytest.raises(ValueError, match="deadline_ms"):
        color_graph(g, "data-ldg", context=ctx, deadline_ms=10.0)


def test_checkpoint_resume_rejected_on_concurrent_sharded_path(g, tmp_path):
    with pytest.raises(ValueError, match="stream"):
        color_sharded(g, "data-ldg", num_shards=3,
                      checkpoint=str(tmp_path / "c.ckpt"))


# ------------------------------------------- halo faults heal digestwise
@pytest.mark.parametrize("site", ["halo-drop", "halo-corrupt"])
def test_halo_damage_heals_byte_identically(g, site):
    clean = color_distributed(g, "data-ldg", devices=3)
    hurt = color_distributed(
        g, "data-ldg", devices=3,
        faults=f"seed=5; {site}: round=0",
    )
    assert np.array_equal(hurt.colors, clean.colors)
    report = hurt.robustness
    assert any(f["site"] == site for f in report["fired"])
    assert any(d["chain"] == "halo" for d in report["degradations"])


def test_transport_partition_heals_byte_identically(g):
    clean = color_distributed(g, "data-ldg", devices=3)
    hurt = color_distributed(
        g, "data-ldg", devices=3,
        faults="seed=5; transport-partition: round=0",
    )
    assert np.array_equal(hurt.colors, clean.colors)
    assert any(d["chain"] == "halo"
               for d in hurt.robustness["degradations"])


def test_halo_reorder_is_commutativity_check_not_degradation(g):
    clean = color_distributed(g, "data-ldg", devices=3)
    hurt = color_distributed(
        g, "data-ldg", devices=3,
        faults="seed=5; halo-reorder: round=0",
    )
    assert np.array_equal(hurt.colors, clean.colors)
    report = hurt.robustness
    assert any(f["site"] == "halo-reorder" for f in report["fired"])
    assert not any(d["chain"] == "halo" for d in report["degradations"])


# --------------------------------------------------- robustness annexes
def test_checkpoint_stats_and_deadline_annex_on_result(g, tmp_path):
    r = color_streamed(
        g, "data-ldg", num_windows=3, deadline_ms=60_000.0,
        checkpoint=str(tmp_path / "s.ckpt"),
    )
    report = r.robustness
    assert report is not None
    assert report["checkpoint"]["written"] >= 1
    assert report["deadline"]["deadline_ms"] == 60_000.0
    assert report["deadline"]["running_ms"] >= 0.0


def test_corrupt_checkpoint_degrades_to_fresh_or_raises(g, tmp_path):
    path = str(tmp_path / "d.ckpt")
    clean = color_streamed(g, "data-ldg", num_windows=3, checkpoint=path)
    # bit-rot the blob on disk (past the header), like a bad disk block
    blob = bytearray(open(path, "rb").read())
    blob[-8] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    # default policy: unreadable checkpoint -> fresh start, chain recorded
    resumed = color_streamed(g, "data-ldg", num_windows=3, resume=path,
                             health="default")
    assert np.array_equal(resumed.colors, clean.colors)
    degr = resumed.robustness["degradations"]
    assert any(d["chain"] == "checkpoint" and d["reason"] == "corrupt"
               for d in degr)
    # strict policy: the same damage is a structured raise
    with pytest.raises(CheckpointError) as exc:
        color_streamed(g, "data-ldg", num_windows=3, resume=path,
                       health="strict")
    assert exc.value.reason == "corrupt"


# ------------------------------------------------- transport lifecycle
def test_pool_transport_close_is_idempotent_and_refuses_work():
    from repro.distributed.transport import PoolTransport

    t = PoolTransport(workers=2)
    t.close()
    t.close()  # closing twice is a no-op, not an error
    with pytest.raises(RuntimeError, match="closed"):
        t.run_shards([])


def test_closed_transport_rejected_by_color_distributed(g):
    from repro.distributed.transport import PoolTransport

    t = PoolTransport(workers=2)
    t.close()
    with pytest.raises(RuntimeError, match="closed"):
        color_distributed(g, "data-ldg", devices=2, transport=t)
