"""Reproducibility audit: every scheme and generator is bit-deterministic.

Benchmarks, EXPERIMENTS.md and regression debugging all assume that the
same inputs produce the same outputs — colors AND simulated times.
"""

import numpy as np
import pytest

from repro.coloring.api import METHODS, color_graph
from repro.graph.generators import load_graph
from repro.graph.generators.suite import SUITE_ORDER

DETERMINISTIC_METHODS = sorted(METHODS)


@pytest.fixture(scope="module")
def graph():
    return load_graph("Hamrle3", scale_div=256)


@pytest.mark.parametrize("method", DETERMINISTIC_METHODS)
def test_scheme_bit_deterministic(method, graph):
    a = color_graph(graph, method=method)
    b = color_graph(graph, method=method)
    assert np.array_equal(a.colors, b.colors), method
    assert a.num_colors == b.num_colors
    assert a.total_time_us == pytest.approx(b.total_time_us), method


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_suite_generation_deterministic(name):
    a = load_graph(name, scale_div=256)
    b = load_graph(name, scale_div=256)
    assert np.array_equal(a.row_offsets, b.row_offsets)
    assert np.array_equal(a.col_indices, b.col_indices)


def test_different_seeds_differ():
    a = load_graph("rmat-er", scale_div=256, seed=1)
    b = load_graph("rmat-er", scale_div=256, seed=2)
    assert not np.array_equal(a.col_indices, b.col_indices)


def test_device_seed_controls_extrapolation(graph):
    """The cache model's cross-SM extrapolation is the only stochastic
    piece; it is pinned by the device seed."""
    from repro.gpusim import Device

    a = color_graph(graph, method="topo-ldg", device=Device(seed=3))
    b = color_graph(graph, method="topo-ldg", device=Device(seed=3))
    c = color_graph(graph, method="topo-ldg", device=Device(seed=4))
    assert a.gpu_time_us == pytest.approx(b.gpu_time_us)
    assert np.array_equal(a.colors, c.colors)  # functional result unaffected
