"""Sequential-CPU cost model."""

import numpy as np
import pytest

from repro.cpusim.model import CPU
from repro.gpusim.config import CPUConfig


def test_compute_bound_stretch():
    cpu = CPU()
    e = cpu.run("calc", instructions=1_000_000)
    assert e.cycles == pytest.approx(1_000_000 / cpu.config.ipc)
    assert e.accesses == 0


def test_memory_bound_stretch():
    cpu = CPU(config=CPUConfig(ipc=100.0))  # make compute free
    rng = np.random.default_rng(0)
    # gather over a footprint far beyond LLC -> DRAM latencies dominate
    addrs = rng.integers(0, 1 << 32, size=20_000) * 64
    e = cpu.run("gather", instructions=1, addresses=addrs)
    assert e.dram_accesses > 0.9 * 20_000
    assert e.cycles == pytest.approx(
        e.dram_accesses * cpu.config.dram_latency / cpu.config.mlp, rel=0.1
    )


def test_small_footprint_hits_l2():
    cpu = CPU()
    addrs = np.tile(np.arange(100) * 64, 50)
    e = cpu.run("hot", instructions=1, addresses=addrs)
    assert e.l2_hits > 0.9 * (addrs.size - 100)
    assert e.dram_accesses <= 100


def test_streaming_bytes_charged():
    cpu = CPU()
    e = cpu.run("stream", instructions=0, sequential_bytes=64 * 1000)
    assert e.cycles == pytest.approx(2000.0)


def test_timeline_accumulates():
    cpu = CPU()
    cpu.run("a", instructions=260_000)
    cpu.run("b", instructions=260_000)
    assert cpu.total_time_us() == pytest.approx(2 * 260_000 / cpu.config.ipc / 2600)
    cpu.reset()
    assert cpu.total_time_us() == 0.0


def test_max_of_compute_and_memory():
    """The OoO model overlaps memory with compute, it does not add them."""
    cpu = CPU()
    rng = np.random.default_rng(1)
    addrs = rng.integers(0, 1 << 30, size=5000) * 64
    mem_only = cpu.run("m", instructions=1, addresses=addrs).cycles
    both = cpu.run("b", instructions=100, addresses=addrs).cycles
    assert both == pytest.approx(mem_only, rel=0.01)
