"""Scheme-specific behavior: topo (Alg. 4), data-driven (Alg. 5), csrcolor,
3-step GM — the structure of their kernel launches and cost knobs."""

import numpy as np
import pytest

from repro.coloring.csrcolor import color_csrcolor, multi_hash_round
from repro.coloring.datadriven import color_data_driven
from repro.coloring.grosset import color_three_step_gm
from repro.coloring.topo import color_topology_driven
from repro.gpusim.device import Device


# ----------------------------------------------------------- topology-driven
def test_topo_two_kernels_per_round(small_er):
    res = color_topology_driven(small_er)
    rounds_with_work = res.iterations - 1  # final round colors nothing
    assert res.num_kernel_launches == 2 * rounds_with_work


def test_topo_conflict_scope_equivalent_colors(small_er):
    a = color_topology_driven(small_er, conflict_scope="all")
    b = color_topology_driven(small_er, conflict_scope="active")
    assert np.array_equal(a.colors, b.colors)


def test_topo_active_scope_cheaper(small_er):
    full = color_topology_driven(small_er, conflict_scope="all")
    active = color_topology_driven(small_er, conflict_scope="active")
    if full.iterations > 2:  # needs a re-color round for the scan gap to show
        assert active.gpu_time_us < full.gpu_time_us


def test_topo_conflict_scope_validated(small_er):
    with pytest.raises(ValueError):
        color_topology_driven(small_er, conflict_scope="some")


def test_topo_ldg_not_slower(small_er):
    base = color_topology_driven(small_er, use_ldg=False)
    ldg = color_topology_driven(small_er, use_ldg=True)
    assert ldg.gpu_time_us <= base.gpu_time_us * 1.02
    assert np.array_equal(base.colors, ldg.colors)  # functional behavior same


def test_topo_reuses_device(small_er):
    dev = Device()
    color_topology_driven(small_er, device=dev)
    assert dev.timeline.num_launches() > 0


def test_topo_profiles_attached(small_er):
    res = color_topology_driven(small_er)
    assert len(res.profiles) == res.num_kernel_launches
    assert all(p.block_size == 128 for p in res.profiles)


def test_topo_isolated_graph(isolated):
    res = color_topology_driven(isolated)
    res.validate(isolated)
    assert res.iterations == 2  # one coloring round + empty terminating round


# -------------------------------------------------------------- data-driven
def test_data_worklist_shrinks(small_er):
    res = color_data_driven(small_er)
    # kernel names record per-round launches; worklist must strictly shrink
    color_kernels = [p for p in res.profiles if "color" in p.name]
    sizes = [p.num_blocks for p in color_kernels]
    assert sizes == sorted(sizes, reverse=True)


def test_data_strategies_same_colors(small_er):
    scan = color_data_driven(small_er, worklist_strategy="scan")
    atomic = color_data_driven(small_er, worklist_strategy="atomic")
    assert np.array_equal(scan.colors, atomic.colors)


def test_data_scan_strategy_fewer_atomic_cycles(small_mesh):
    """Fig. 5's point: prefix-sum compaction beats one-atomic-per-push."""
    scan = color_data_driven(small_mesh, worklist_strategy="scan")
    atomic = color_data_driven(small_mesh, worklist_strategy="atomic")
    scan_atomic_cycles = sum(p.terms["atomic"] for p in scan.profiles)
    atomic_atomic_cycles = sum(p.terms["atomic"] for p in atomic.profiles)
    assert atomic_atomic_cycles > scan_atomic_cycles


def test_data_strategy_validated(small_er):
    with pytest.raises(ValueError):
        color_data_driven(small_er, worklist_strategy="magic")


def test_data_vs_topo_same_iteration_structure(small_er):
    """Both schemes resolve the same conflicts; rounds differ by at most 1
    (topo counts a final empty round)."""
    topo = color_topology_driven(small_er)
    data = color_data_driven(small_er)
    assert abs(topo.iterations - data.iterations) <= 1


def test_data_block_size_recorded(small_er):
    res = color_data_driven(small_er, block_size=256)
    assert res.extra["block_size"] == 256
    assert all(p.block_size == 256 for p in res.profiles)


# ------------------------------------------------------------------ csrcolor
def test_csrcolor_dense_renumbering(small_er):
    res = color_csrcolor(small_er)
    used = np.unique(res.colors)
    assert np.array_equal(used, np.arange(1, used.size + 1))


def test_csrcolor_hash_count_tradeoff(small_er):
    few = color_csrcolor(small_er, num_hashes=1)
    many = color_csrcolor(small_er, num_hashes=8)
    assert many.iterations < few.iterations  # more sets per round converge faster


def test_csrcolor_compare_all_burns_more_colors(small_er):
    all_cmp = color_csrcolor(small_er, compare_all=True)
    active_cmp = color_csrcolor(small_er, compare_all=False)
    assert all_cmp.num_colors > active_cmp.num_colors


def test_csrcolor_validates_hash_count(small_er):
    with pytest.raises(ValueError):
        color_csrcolor(small_er, num_hashes=0)


def test_multi_hash_round_is_independent_set(small_er):
    winners, slots = multi_hash_round(small_er, np.arange(small_er.num_vertices), 2, 7)
    in_set = {}
    for v, s in zip(winners.tolist(), slots.tolist()):
        in_set.setdefault(s, set()).add(v)
    u, w = small_er.edge_endpoints()
    for s, members in in_set.items():
        for a, b in zip(u.tolist(), w.tolist()):
            assert not (a in members and b in members), f"slot {s} not independent"


def test_multi_hash_round_no_winners_possible():
    from repro.graph.builder import complete_graph

    g = complete_graph(6)
    winners, slots = multi_hash_round(g, np.arange(6), 1, 3)
    # K6: exactly one max and one min winner for the single hash
    assert winners.size == 2
    assert sorted(slots.tolist()) == [0, 1]


# ------------------------------------------------------------------ 3-step GM
def test_grosset_extra_metadata(small_er):
    res = color_three_step_gm(small_er, partition_size=64)
    assert res.extra["num_partitions"] == -(-small_er.num_vertices // 64)
    assert 0.0 <= res.extra["boundary_fraction"] <= 1.0
    assert res.extra["cpu_resolved"] >= 0


def test_grosset_cpu_time_positive_when_conflicts(small_er):
    res = color_three_step_gm(small_er, partition_size=32)
    if res.extra["cpu_resolved"]:
        assert res.cpu_time_us > 0


def test_grosset_transfers_charged(small_er):
    res = color_three_step_gm(small_er)
    # at minimum: colors + flags DtoH at the end
    assert res.transfer_time_us > 0


def test_grosset_single_partition_no_cross_conflicts(small_er):
    res = color_three_step_gm(small_er, partition_size=small_er.num_vertices)
    assert res.extra["boundary_fraction"] == 0.0
    assert res.extra["cpu_resolved"] == 0


def test_grosset_partition_size_validated(small_er):
    with pytest.raises(ValueError):
        color_three_step_gm(small_er, partition_size=0)


def test_grosset_quality_stays_greedy_like(small_mesh):
    from repro.coloring.sequential import greedy_colors_only

    res = color_three_step_gm(small_mesh)
    assert res.num_colors <= greedy_colors_only(small_mesh).max() + 3
