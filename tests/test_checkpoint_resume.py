"""Kill-and-resume equivalence: resumed runs are byte-identical.

The resilience tier's core promise is that a run killed at *any* round
boundary and resumed from its last checkpoint produces exactly the
coloring (and stats) an uninterrupted run produces.  Hypothesis drives
the kill round and checkpoint cadence; the ``deadline-storm`` fault site
is the deterministic kill switch (it forces the budget to expire at a
chosen round, exactly where a real deadline or crash would land).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rmat_er
from repro.distributed import color_distributed
from repro.parallel.streaming import color_streamed
from repro.resilience import DeadlineExceeded


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=8, seed=17)


@pytest.fixture(scope="module")
def healthy_streamed(g):
    return color_streamed(g, "data-ldg", num_windows=4)


@pytest.fixture(scope="module")
def healthy_distributed(g):
    return color_distributed(g, "data-ldg", devices=3)


@settings(max_examples=10, deadline=None)
@given(kill_round=st.integers(min_value=1, max_value=3),
       every=st.integers(min_value=1, max_value=2))
def test_streamed_kill_resume_byte_identical(
        g, healthy_streamed, tmp_path_factory, kill_round, every):
    path = str(tmp_path_factory.mktemp("ckpt") / "stream.ckpt")
    with pytest.raises(DeadlineExceeded) as exc:
        color_streamed(
            g, "data-ldg", num_windows=4,
            checkpoint=path, checkpoint_every=every,
            faults=f"seed=1; deadline-storm: round={kill_round}, "
                   f"phase=window",
        )
    assert exc.value.where == "window:forced"
    # A kill before the first due save leaves no file: resume is then a
    # legitimate fresh start (missing checkpoints are never an error).
    had_checkpoint = os.path.exists(path)
    resumed = color_streamed(g, "data-ldg", num_windows=4, resume=path)
    assert np.array_equal(resumed.colors, healthy_streamed.colors)
    assert resumed.num_colors == healthy_streamed.num_colors
    assert resumed.shard_stats["resolution_rounds"] == \
        healthy_streamed.shard_stats["resolution_rounds"]
    if had_checkpoint:
        assert resumed.robustness["resumed"]["path"] == path


@settings(max_examples=8, deadline=None)
@given(kill_round=st.integers(min_value=0, max_value=3))
def test_distributed_kill_resume_byte_identical(
        g, healthy_distributed, tmp_path_factory, kill_round):
    path = str(tmp_path_factory.mktemp("ckpt") / "dist.ckpt")
    healthy_rounds = healthy_distributed.shard_stats["sync_rounds"]
    try:
        color_distributed(
            g, "data-ldg", devices=3, checkpoint=path,
            faults=f"seed=1; deadline-storm: round={kill_round}, "
                   f"phase=sync",
        )
        # a kill round past convergence never fires; nothing to resume
        assert kill_round >= healthy_rounds
        return
    except DeadlineExceeded as exc:
        assert exc.where == "sync-round:forced"
    resumed = color_distributed(g, "data-ldg", devices=3, resume=path)
    assert np.array_equal(resumed.colors, healthy_distributed.colors)
    # distributed stats must also match the uninterrupted run: the halo
    # state is rebuilt from the checkpointed colors, not re-derived
    for key in ("sync_rounds", "halo_bytes_modeled", "speculation_hits",
                "resolution_rounds"):
        assert resumed.shard_stats[key] == \
            healthy_distributed.shard_stats[key], key
    assert resumed.robustness["resumed"]["round"] >= 0


def test_resume_of_a_completed_run_is_idempotent(g, healthy_streamed,
                                                 tmp_path):
    path = str(tmp_path / "done.ckpt")
    done = color_streamed(g, "data-ldg", num_windows=4, checkpoint=path)
    assert np.array_equal(done.colors, healthy_streamed.colors)
    again = color_streamed(g, "data-ldg", num_windows=4, resume=path,
                           checkpoint=path)
    assert np.array_equal(again.colors, healthy_streamed.colors)


def test_repair_phase_kill_resumes_byte_identically(g, tmp_path):
    # A denser cut maximizes boundary conflicts so the Jacobi repair
    # phase actually runs; kill inside it, then resume.
    healthy = color_streamed(g, "data-ldg", num_windows=6)
    path = str(tmp_path / "repair.ckpt")
    try:
        color_streamed(
            g, "data-ldg", num_windows=6, checkpoint=path,
            faults="seed=1; deadline-storm: round=0, phase=repair",
        )
        pytest.skip("no repair rounds on this graph/window split")
    except DeadlineExceeded as exc:
        assert exc.where == "round:forced"
    resumed = color_streamed(g, "data-ldg", num_windows=6, resume=path)
    assert np.array_equal(resumed.colors, healthy.colors)
