"""Traversal utilities (components, cores, degeneracy) and line graphs."""

import numpy as np
import pytest

from repro.coloring import color_graph, greedy_colors_only
from repro.coloring.ordering import smallest_degree_last
from repro.graph import (
    connected_components,
    core_numbers,
    degeneracy,
    edge_coloring_from_line_colors,
    is_connected,
    line_graph,
    num_connected_components,
)
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi


# ------------------------------------------------------------- components
def test_components_connected(c6):
    assert num_connected_components(c6) == 1
    assert is_connected(c6)


def test_components_disconnected():
    g = from_edges([0, 3], [1, 4], num_vertices=6)
    comp = connected_components(g)
    assert num_connected_components(g) == 4  # {0,1}, {3,4}, {2}, {5}
    assert comp[0] == comp[1]
    assert comp[3] == comp[4]
    assert comp[2] != comp[0] and comp[5] != comp[3]


def test_components_empty():
    assert num_connected_components(empty_graph(0)) == 0
    assert num_connected_components(empty_graph(4)) == 4


def test_components_match_networkx(small_er):
    import networkx as nx

    ours = num_connected_components(small_er)
    theirs = nx.number_connected_components(small_er.to_networkx())
    assert ours == theirs


# ------------------------------------------------------------------ cores
def test_core_numbers_clique():
    assert degeneracy(complete_graph(6)) == 5
    assert np.all(core_numbers(complete_graph(6)) == 5)


def test_core_numbers_tree_is_one():
    assert degeneracy(star_graph(10)) == 1
    assert degeneracy(path_graph(10)) == 1


def test_core_numbers_cycle_is_two():
    assert degeneracy(cycle_graph(12)) == 2


def test_core_numbers_match_networkx(small_er):
    import networkx as nx

    ours = core_numbers(small_er)
    theirs = nx.core_number(small_er.to_networkx())
    assert all(int(ours[v]) == c for v, c in theirs.items())


def test_degeneracy_bounds_sl_coloring(small_er):
    """The theory behind smallest-last: greedy over SL order uses at most
    degeneracy + 1 colors."""
    order = smallest_degree_last(small_er)
    colors = greedy_colors_only(small_er, order)
    assert int(colors.max()) <= degeneracy(small_er) + 1


# -------------------------------------------------------------- line graph
def test_line_graph_triangle_is_triangle():
    lg, edges = line_graph(complete_graph(3))
    assert lg.num_vertices == 3
    assert lg.num_undirected_edges == 3


def test_line_graph_star_is_clique():
    lg, _ = line_graph(star_graph(5))
    assert lg.num_vertices == 5
    assert lg.num_undirected_edges == 10  # K5


def test_line_graph_path():
    lg, _ = line_graph(path_graph(5))
    assert lg.num_vertices == 4
    assert lg.num_undirected_edges == 3  # itself a path


def test_line_graph_empty():
    lg, edges = line_graph(empty_graph(3))
    assert lg.num_vertices == 0 and edges.shape[0] == 0


def test_edge_coloring_via_line_graph(small_mesh):
    lg, edges = line_graph(small_mesh)
    result = color_graph(lg, method="sequential")
    edge_coloring_from_line_colors(small_mesh, edges, result.colors)
    # greedy bound on L(G): 2*maxdeg(G) - 1
    assert result.num_colors <= 2 * small_mesh.max_degree - 1


def test_edge_coloring_vizing_lower_bound():
    g = erdos_renyi(100, 6.0, seed=4)
    lg, edges = line_graph(g)
    result = color_graph(lg, method="data-base")
    edge_coloring_from_line_colors(g, edges, result.colors)
    assert result.num_colors >= g.max_degree  # chromatic index >= Delta


def test_edge_coloring_detects_violation():
    g = path_graph(3)  # two incident edges
    _, edges = line_graph(g)
    with pytest.raises(AssertionError):
        edge_coloring_from_line_colors(g, edges, np.array([1, 1], dtype=np.int32))
