"""TraceBuilder: coalescing, SIMT geometry, instruction accounting."""

import numpy as np
import pytest

from repro.gpusim.config import KEPLER_K20C, LaunchConfig
from repro.gpusim.trace import AccessKind, MemoryTrace, TraceBuilder


def builder(num_threads=256, block_size=128):
    return TraceBuilder(KEPLER_K20C, LaunchConfig(block_size=block_size), num_threads)


def test_fully_coalesced_warp_is_one_transaction():
    tb = builder()
    threads = np.arange(32)
    addrs = threads * 4  # 32 consecutive int32s = one 128B line
    tb.load(threads, addrs)
    trace = tb.build()
    assert len(trace.memory) == 1
    assert trace.memory.kind[0] == AccessKind.LOAD


def test_fully_scattered_warp_is_32_transactions():
    tb = builder()
    threads = np.arange(32)
    tb.load(threads, threads * 4096)  # each on its own line
    assert len(tb.build().memory) == 32


def test_two_warps_do_not_coalesce_together():
    tb = builder()
    threads = np.arange(64)
    tb.load(threads, np.zeros(64, dtype=np.int64))  # same line, two warps
    assert len(tb.build().memory) == 2


def test_steps_do_not_coalesce():
    tb = builder()
    threads = np.zeros(2, dtype=np.int64)
    tb.access(AccessKind.LOAD, threads, np.zeros(2, dtype=np.int64), step=np.array([0, 1]))
    assert len(tb.build().memory) == 2


def test_separate_calls_do_not_coalesce():
    tb = builder()
    t = np.arange(4)
    tb.load(t, t * 4)
    tb.load(t, t * 4)  # second instruction touching the same line
    assert len(tb.build().memory) == 2


def test_geometry_mapping():
    tb = builder(num_threads=512, block_size=128)
    threads = np.array([0, 127, 128, 511])
    tb.load(threads, threads * 4096)
    m = tb.build().memory
    order = np.argsort(m.line_id)
    # blocks: 0,0,1,3 -> SMs 0,0,1,3
    assert list(m.sm_id[order]) == [0, 0, 1, 3]
    assert list(m.warp_id[order]) == [0, 3, 4, 15]


def test_thread_out_of_domain_rejected():
    tb = builder(num_threads=8)
    with pytest.raises(ValueError, match="outside launch domain"):
        tb.load(np.array([9]), np.array([0]))


def test_mismatched_arrays_rejected():
    tb = builder()
    with pytest.raises(ValueError, match="parallel arrays"):
        tb.load(np.array([0, 1]), np.array([0]))


def test_empty_access_is_noop():
    tb = builder()
    tb.load(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    assert len(tb.build().memory) == 0


def test_atomic_records_addresses():
    tb = builder()
    tb.atomic(np.arange(4), np.full(4, 256))
    trace = tb.build()
    assert trace.atomic_addresses.size == 4
    assert np.all(trace.memory.kind == AccessKind.ATOMIC)


def test_instructions_simt_max():
    tb = builder()
    threads = np.arange(32)
    counts = np.zeros(32, dtype=np.int64)
    counts[7] = 100  # one straggler lane
    tb.instructions(threads, counts)
    stats = tb.build().compute
    assert stats.warp_instructions == 100  # warp pays its max
    assert stats.thread_instructions == 100


def test_instructions_two_warps_sum_of_maxes():
    tb = builder()
    threads = np.array([0, 32])
    tb.instructions(threads, np.array([10, 20]))
    assert tb.build().compute.warp_instructions == 30


def test_simd_efficiency():
    tb = builder()
    tb.instructions(np.arange(32), np.full(32, 4))  # perfectly uniform
    assert tb.build().compute.simd_efficiency == pytest.approx(1.0)


def test_uniform_overhead_counts_all_warps():
    tb = builder(num_threads=256, block_size=128)
    tb.uniform_overhead(3)
    stats = tb.build().compute
    assert stats.warp_instructions == 8 * 3  # 256/32 warps
    assert stats.thread_instructions == 256 * 3


def test_barrier_counts_per_block():
    tb = builder(num_threads=256, block_size=128)  # 2 blocks
    tb.barrier(3)
    assert tb.build().compute.barriers == 6


def test_issue_order_warp_major():
    """A warp's accesses stay consecutive across steps in issue order."""
    tb = builder(num_threads=64, block_size=64)
    t = np.arange(64)
    tb.access(AccessKind.LOAD, t, t * 4096, step=0)
    tb.access(AccessKind.LOAD, t, (t + 100) * 4096, step=1)
    m = tb.build().memory
    order = m.issue_order()
    warps_in_order = m.warp_id[order]
    # warp 0's two instructions come before warp 1's first
    first_w1 = int(np.argmax(warps_in_order == 1))
    assert np.all(warps_in_order[:first_w1] == 0)


def test_memory_trace_concat_and_select():
    tb = builder()
    tb.load(np.arange(4), np.arange(4) * 4096)
    m = tb.build().memory
    both = MemoryTrace.concatenate([m, m])
    assert len(both) == 2 * len(m)
    sel = both.select(both.kind == AccessKind.LOAD)
    assert len(sel) == len(both)
    empty = MemoryTrace.concatenate([])
    assert len(empty) == 0 and empty.issue_order().size == 0
