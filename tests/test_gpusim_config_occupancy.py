"""Device configuration and the occupancy calculator."""

import pytest

from repro.gpusim.config import CPUConfig, DeviceConfig, KEPLER_K20C, LaunchConfig
from repro.gpusim.occupancy import compute_occupancy


# ------------------------------------------------------------------ config
def test_k20c_preset_shape():
    d = KEPLER_K20C
    assert d.num_sms == 13
    assert d.warp_size == 32
    assert d.max_warps_per_sm == 64
    assert d.readonly_cache_lines == 48 * 1024 // 128
    assert d.l2_cache_lines == 1280 * 1024 // 128


def test_config_validation():
    with pytest.raises(ValueError, match="power of two"):
        DeviceConfig(cache_line_bytes=100)
    with pytest.raises(ValueError, match="positive"):
        DeviceConfig(num_sms=0)
    with pytest.raises(ValueError, match="whole number of lines"):
        DeviceConfig(l2_cache_bytes=1000)


def test_with_override():
    d = KEPLER_K20C.with_(num_sms=8)
    assert d.num_sms == 8
    assert KEPLER_K20C.num_sms == 13  # original untouched


def test_derived_rates():
    d = KEPLER_K20C
    assert d.dram_bytes_per_cycle == pytest.approx(208.0 / 0.706)
    assert d.cycles_per_us == pytest.approx(706.0)


def test_launch_validation():
    with pytest.raises(ValueError):
        LaunchConfig(block_size=0)
    with pytest.raises(ValueError):
        LaunchConfig(regs_per_thread=-1)


def test_grid_size_rounding():
    lc = LaunchConfig(block_size=128)
    assert lc.grid_size(1) == 1
    assert lc.grid_size(128) == 1
    assert lc.grid_size(129) == 2
    assert lc.grid_size(0) == 1  # at least one block launches


def test_cpu_config_lines():
    c = CPUConfig()
    assert c.llc_cache_lines == 20 * 1024 * 1024 // 64


# --------------------------------------------------------------- occupancy
def test_thread_limit():
    occ = compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=1024, regs_per_thread=16))
    assert occ.blocks_per_sm == 2  # 2048 threads / 1024
    assert occ.limiting_factor == "threads"


def test_block_slot_limit():
    occ = compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=32, regs_per_thread=16))
    assert occ.blocks_per_sm == 16
    assert occ.limiting_factor == "blocks"
    assert occ.active_warps_per_sm == 16


def test_register_limit():
    occ = compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=256, regs_per_thread=64))
    # 65536 / (64*256) = 4 blocks
    assert occ.blocks_per_sm == 4
    assert occ.limiting_factor == "registers"


def test_shared_memory_limit():
    occ = compute_occupancy(
        KEPLER_K20C,
        LaunchConfig(block_size=64, regs_per_thread=16, shared_mem_per_block=24 * 1024),
    )
    assert occ.blocks_per_sm == 2
    assert occ.limiting_factor == "shared_memory"


def test_default_kernel_peaks_mid_blocks():
    """With the realistic 44-reg default, occupancy peaks at 128 threads
    and declines at 512+ — the resource-saturation mechanism of Fig. 8."""
    warps = {
        bs: compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=bs)).active_warps_per_sm
        for bs in (32, 64, 128, 256, 512)
    }
    assert warps[32] < warps[64] <= warps[128]
    assert warps[512] < warps[128]


def test_block_too_large():
    with pytest.raises(ValueError, match="exceeds device limit"):
        compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=2048))


def test_kernel_cannot_fit():
    with pytest.raises(ValueError, match="cannot fit"):
        compute_occupancy(
            KEPLER_K20C,
            LaunchConfig(block_size=1024, shared_mem_per_block=64 * 1024),
        )


def test_occupancy_fraction():
    occ = compute_occupancy(KEPLER_K20C, LaunchConfig(block_size=128, regs_per_thread=16))
    assert 0.0 < occ.fraction(KEPLER_K20C) <= 1.0
