"""The versioned typed result surface and the ``extra`` deprecation shim."""

import warnings

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.coloring.base import (
    RESULT_SCHEMA_VERSION,
    ColoringResult,
    _reset_extra_deprecation,
)


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=7, seed=5)


@pytest.fixture(autouse=True)
def rearm_warning():
    _reset_extra_deprecation()
    yield
    _reset_extra_deprecation()


def test_to_dict_schema_v1_keys(g):
    result = color_graph(g, "data-ldg", observe="trace")
    d = result.to_dict(schema_version=1)
    assert d["schema_version"] == RESULT_SCHEMA_VERSION == 1
    assert d["scheme"] == "data-ldg"
    assert d["colors"] is result.colors
    assert d["num_colors"] == result.num_colors
    assert d["iterations"] == result.iterations
    assert d["total_time_us"] == pytest.approx(
        d["gpu_time_us"] + d["cpu_time_us"] + d["transfer_time_us"]
    )
    assert d["num_kernel_launches"] == result.num_kernel_launches
    assert d["observation"] is not None and d["observation"].tracer is not None
    assert d["cache_hit"] is False
    assert d["shard_stats"] is None


def test_to_dict_rejects_unknown_version(g):
    result = color_graph(g, "data-ldg")
    with pytest.raises(ValueError, match="schema_version"):
        result.to_dict(schema_version=2)


def test_typed_properties(g):
    plain = color_graph(g, "data-ldg")
    assert plain.observation is None
    assert plain.cache_hit is False
    assert plain.shard_stats is None
    observed = color_graph(g, "data-ldg", observe="rounds")
    assert observed.observation is not None
    assert observed.observation.recorder is not None


def test_extra_reads_warn_once_per_process(g):
    result = color_graph(g, "data-ldg", observe="trace")
    with pytest.warns(FutureWarning, match="typed surface"):
        obs = result.extra["observation"]
    assert obs is result.observation
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second read: shim already fired
        assert result.extra.get("observation") is obs


def test_extra_writes_stay_silent(g):
    result = color_graph(g, "data-ldg")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result.extra["marker"] = 1
        result.extra.setdefault("other", 2)
        result.extra.update(third=3)
        result.extra.pop("third", None)
    assert result.extra.peek("marker") == 1


def test_extra_bag_survives_construction_roundtrip():
    result = ColoringResult(
        colors=np.array([1, 2], dtype=np.int32), scheme="x",
        extra={"cache_hit": True, "shard_stats": {"num_shards": 2}},
    )
    assert result.cache_hit is True
    assert result.shard_stats == {"num_shards": 2}
