"""The versioned typed result surface and the retired ``extra`` reads."""

import numpy as np
import pytest

from repro import color_graph, rmat_er
from repro.coloring.base import RESULT_SCHEMA_VERSION, ColoringResult


@pytest.fixture(scope="module")
def g():
    return rmat_er(scale=7, seed=5)


def test_to_dict_schema_v1_keys(g):
    result = color_graph(g, "data-ldg", observe="trace")
    d = result.to_dict(schema_version=1)
    assert d["schema_version"] == RESULT_SCHEMA_VERSION == 1
    assert d["scheme"] == "data-ldg"
    assert d["colors"] is result.colors
    assert d["num_colors"] == result.num_colors
    assert d["iterations"] == result.iterations
    assert d["total_time_us"] == pytest.approx(
        d["gpu_time_us"] + d["cpu_time_us"] + d["transfer_time_us"]
    )
    assert d["num_kernel_launches"] == result.num_kernel_launches
    assert d["observation"] is not None and d["observation"].tracer is not None
    assert d["cache_hit"] is False
    assert d["shard_stats"] is None
    assert d["robustness"] is None


def test_to_dict_rejects_unknown_version(g):
    result = color_graph(g, "data-ldg")
    with pytest.raises(ValueError, match="schema_version"):
        result.to_dict(schema_version=2)


def test_typed_properties(g):
    plain = color_graph(g, "data-ldg")
    assert plain.observation is None
    assert plain.cache_hit is False
    assert plain.shard_stats is None
    observed = color_graph(g, "data-ldg", observe="rounds")
    assert observed.observation is not None
    assert observed.observation.recorder is not None


def test_migrated_extra_reads_raise(g):
    """The PR 3 deprecation cycle completed: keying a migrated key out of
    ``extra`` raises with a pointer at the typed surface."""
    result = color_graph(g, "data-ldg", observe="trace")
    for key in ("observation", "cache_hit", "shard_stats", "robustness"):
        with pytest.raises(KeyError, match="removed"):
            result.extra[key]
        with pytest.raises(KeyError, match="removed"):
            result.extra.get(key)
    assert result.observation is not None  # the typed spelling still works


def test_scheme_specific_extra_reads_stay_open(g):
    """Only the migrated typed keys were retired; scheme outputs (e.g.
    ``backend``, ``block_size``) still read normally from the bag."""
    result = color_graph(g, "data-ldg")
    assert result.extra["backend"] == "gpusim"
    assert result.extra.get("block_size") == 128
    assert result.extra.get("no-such-key", "fallback") == "fallback"


def test_extra_writes_stay_open(g):
    result = color_graph(g, "data-ldg")
    result.extra["marker"] = 1
    result.extra.setdefault("other", 2)
    result.extra.update(third=3)
    result.extra.pop("third", None)
    assert result.extra.peek("marker") == 1


def test_to_dict_robustness_round_trips_resilience_annex(g, tmp_path):
    """``robustness`` in schema v1 carries the full resilience report —
    fault plan, degradations, and the checkpoint/deadline annexes — and
    matches the typed property exactly (same object, JSON-able)."""
    import json

    from repro.parallel.streaming import color_streamed

    result = color_streamed(
        g, "data-ldg", num_windows=3, deadline_ms=60_000.0,
        checkpoint=str(tmp_path / "r.ckpt"),
        faults="seed=3; halo-drop: round=99",  # plan present, never fires
    )
    d = result.to_dict(schema_version=1)
    assert d["robustness"] is result.robustness
    report = d["robustness"]
    assert report["seed"] == 3
    assert report["checkpoint"]["written"] >= 1
    assert report["deadline"]["deadline_ms"] == 60_000.0
    assert "queued_ms" in report["deadline"]
    # the report is a documented JSON surface: it must serialize as-is
    json.dumps(report)


def test_extra_bag_survives_construction_roundtrip():
    result = ColoringResult(
        colors=np.array([1, 2], dtype=np.int32), scheme="x",
        extra={"cache_hit": True, "shard_stats": {"num_shards": 2}},
    )
    assert result.cache_hit is True
    assert result.shard_stats == {"num_shards": 2}
