"""Multicore (OpenMP-model) GM pricing."""

import numpy as np
import pytest

from repro.coloring.gm import color_gm
from repro.cpusim.model import MulticoreCPU


def test_multicore_validates_params():
    with pytest.raises(ValueError):
        MulticoreCPU(cores=0)
    with pytest.raises(ValueError):
        MulticoreCPU(parallel_efficiency=0.0)
    with pytest.raises(ValueError):
        MulticoreCPU(parallel_efficiency=1.5)


def test_multicore_region_cheaper_with_more_cores():
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 28, size=50_000) * 64
    t = {}
    for cores in (1, 4, 16):
        cpu = MulticoreCPU(cores=cores)
        cpu.run_parallel("r", instructions=1_000_000, addresses=addrs)
        t[cores] = cpu.total_time_us()
    assert t[1] > t[4] > t[16]
    # sublinear: efficiency and barriers keep 16 cores under 16x
    assert t[1] / t[16] < 16


def test_gm_priced_only_with_cores(small_er):
    ref = color_gm(small_er)
    assert ref.cpu_time_us == 0.0
    priced = color_gm(small_er, cores=4)
    assert priced.cpu_time_us > 0.0
    assert priced.scheme == "gm-4core"


def test_gm_openmp_model_proper(small_er, small_mesh):
    for g in (small_er, small_mesh):
        for cores in (1, 3, 8):
            color_gm(g, cores=cores).validate(g)


def test_gm_single_core_is_sequential_semantics(small_er):
    """One chunk, sequential commits: no conflicts, one round."""
    r = color_gm(small_er, cores=1)
    assert r.iterations == 1
    from repro.coloring.sequential import greedy_colors_only

    assert np.array_equal(r.colors, greedy_colors_only(small_er))


def test_gm_more_cores_faster_at_scale():
    """Parallelism wins once the work dwarfs barrier overheads (on a tiny
    graph the extra rounds + barriers make more cores *slower* — also
    correct, and covered by the priced-run tests above)."""
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(20_000, 10.0, seed=6)
    t1 = color_gm(g, cores=1).total_time_us
    t8 = color_gm(g, cores=8).total_time_us
    assert t8 < t1


def test_gm_conflicts_only_cross_chunk(small_er):
    """With the OpenMP model, round-1 conflicts stay a small fraction."""
    r = color_gm(small_er, cores=8)
    assert r.iterations <= 10
    assert r.num_colors <= small_er.max_degree + 1
