"""End-to-end integration flows across subsystem boundaries."""

import numpy as np

from repro import color_graph, load_graph
from repro.apps.scheduling import ChromaticScheduler
from repro.coloring import iterated_greedy, rebalance_colors
from repro.coloring.base import count_conflicts
from repro.graph import relabel
from repro.graph.io.binary import load_npz, save_npz
from repro.graph.io.matrix_market import read_matrix_market, write_matrix_market


def test_generate_save_load_color_roundtrip(tmp_path):
    """Suite generation -> npz cache -> reload -> GPU coloring -> verify."""
    g = load_graph("Hamrle3", scale_div=256)
    path = tmp_path / "h3.npz"
    save_npz(g, path)
    back = load_npz(path)
    result = color_graph(back, method="data-ldg")
    result.validate(g)  # same topology: cross-validates against original


def test_mtx_export_reimport_cross_scheme(tmp_path):
    """MatrixMarket round trip preserves every scheme's color count."""
    g = load_graph("G3_circuit", scale_div=256)
    path = tmp_path / "g3.mtx"
    write_matrix_market(g, path)
    back = read_matrix_market(path)
    for scheme in ("sequential", "topo-base", "csrcolor"):
        a = color_graph(g, method=scheme)
        b = color_graph(back, method=scheme)
        assert a.num_colors == b.num_colors


def test_gpu_color_then_polish_then_schedule():
    """GPU scheme -> iterated-greedy polish -> chromatic schedule -> run."""
    g = load_graph("thermal2", scale_div=256)
    gpu = color_graph(g, method="data-base")
    polished = iterated_greedy(g, initial=gpu.colors, iterations=4)
    assert polished.num_colors <= gpu.num_colors
    sched = ChromaticScheduler(g, coloring=polished)
    state = np.zeros(g.num_vertices)
    sched.run(state, lambda cls, st, gr: st[cls] + 1.0, sweeps=3)
    assert np.all(state == 3.0)


def test_relabel_color_rebalance_pipeline():
    """Relabel for locality -> color -> map back -> rebalance -> verify."""
    g = load_graph("rmat-er", scale_div=256)
    rng = np.random.default_rng(5)
    perm = rng.permutation(g.num_vertices)
    relabeled = relabel(g, perm)
    result = color_graph(relabeled, method="data-ldg")
    colors_orig = np.empty_like(result.colors)
    colors_orig[perm] = result.colors
    assert count_conflicts(g, colors_orig) == 0
    balanced = rebalance_colors(g, colors_orig, max_passes=2)
    assert count_conflicts(g, balanced) == 0
    assert balanced.max() <= colors_orig.max()


def test_shared_device_accumulates_across_runs():
    """One simulated device serving several colorings keeps a coherent
    timeline (multi-kernel applications reuse contexts the same way)."""
    from repro.gpusim import Device

    g = load_graph("atmosmodd", scale_div=256)
    device = Device()
    r1 = color_graph(g, method="topo-base", device=device)
    launches_after_first = device.timeline.num_launches()
    r2 = color_graph(g, method="data-base", device=device)
    assert device.timeline.num_launches() > launches_after_first
    assert r1.num_colors >= 1 and r2.num_colors >= 1


def test_cli_matches_library(capsys):
    """The CLI's compare output reflects the same library computations."""
    from repro.cli import main

    assert main(["compare", "--graph", "rmat-er", "--scale-div", "256"]) == 0
    out = capsys.readouterr().out
    lib = color_graph(load_graph("rmat-er", scale_div=256), method="sequential")
    assert f" {lib.num_colors} " in out.replace("sequential", " ")


def test_full_scale_switch(monkeypatch):
    """REPRO_FULL_SCALE reaches the generators through every layer."""
    monkeypatch.setenv("REPRO_FULL_SCALE", "1")
    from repro.graph.generators.suite import default_scale_div

    assert default_scale_div() == 1
