"""Stress shapes and degenerate inputs across the whole pipeline."""

import numpy as np
import pytest

from repro.coloring import color_graph
from repro.coloring.api import EVALUATED_SCHEMES
from repro.coloring.kernels import warp_lb_layout
from repro.graph.builder import from_edges, star_graph
from repro.graph.generators import erdos_renyi
from repro.gpusim import KEPLER_K20C, LaunchConfig, TraceBuilder, price_kernel


# ------------------------------------------------------------ giant hub
@pytest.fixture(scope="module")
def giant_star():
    """One vertex of degree 5000 — the intra-warp imbalance extreme."""
    return star_graph(5000)


@pytest.mark.parametrize("scheme", EVALUATED_SCHEMES)
def test_all_schemes_survive_giant_hub(scheme, giant_star):
    result = color_graph(giant_star, method=scheme)
    if scheme in ("sequential",):
        assert result.num_colors == 2
    elif scheme != "csrcolor":
        # speculation may burn one extra color: round-1 races leave the
        # hub's stale color visible to later windows, splitting the leaves
        assert result.num_colors <= 3
    else:
        assert result.num_colors >= 2


def test_lb_mapping_coalesces_hub_row(giant_star):
    """Warp-LB turns the hub's 5000-edge row walk into coalesced strides:
    far fewer C-array transactions than one thread issuing 5000 gathers."""
    from repro.coloring.kernels import (
        charge_color_kernel,
        charge_color_kernel_lb,
        upload_graph,
    )
    from repro.gpusim import Device

    g = giant_star
    active = np.array([0], dtype=np.int64)  # just the hub

    dev = Device()
    bufs = upload_graph(dev, g)
    tb_v = dev.builder(1, LaunchConfig(), name="vertex")
    charge_color_kernel(tb_v, g, bufs, active, np.array([0]), use_ldg=False)
    vertex_txn = len(tb_v.build().memory)

    tb_lb = dev.builder(64, LaunchConfig(), name="lb")
    layout = warp_lb_layout(g, active, 32)
    charge_color_kernel_lb(tb_lb, g, bufs, layout, use_ldg=False)
    lb_txn = len(tb_lb.build().memory)

    # Same data volume, but the strided lanes share lines on the C walk.
    assert lb_txn < 0.6 * vertex_txn


def test_hub_dominates_vertex_mapped_warp_cost(giant_star):
    """SIMT lockstep: a warp containing the hub pays 5000 trips."""
    result = color_graph(giant_star, method="topo-base")
    assert result.profiles[0].simd_efficiency < 0.2


# ----------------------------------------------------------- degenerate
def test_single_vertex():
    g = from_edges(np.empty(0), np.empty(0), num_vertices=1)
    for scheme in ("sequential", "topo-base", "data-base", "csrcolor"):
        assert color_graph(g, method=scheme).num_colors == 1


def test_two_vertices_one_edge():
    g = from_edges([0], [1], num_vertices=2)
    for scheme in EVALUATED_SCHEMES:
        assert color_graph(g, method=scheme).num_colors == 2


def test_clique_plus_isolated_mix():
    """Mixed extremes: K20 embedded among 200 isolated vertices."""
    i, j = np.triu_indices(20, k=1)
    g = from_edges(i + 100, j + 100, num_vertices=300)
    for scheme in ("sequential", "topo-base", "data-base", "3step-gm"):
        result = color_graph(g, method=scheme)
        assert result.num_colors == 20


def test_block_size_one_warp_edge():
    """block_size below warp size still prices (sub-warp blocks exist)."""
    g = erdos_renyi(500, 6.0, seed=1)
    result = color_graph(g, method="data-base", block_size=32)
    assert result.total_time_us > 0


# ----------------------------------------------------- store-only kernels
def test_store_only_kernel_bandwidth_accounting():
    """Stores don't stall the pipeline but their traffic is charged."""
    tb = TraceBuilder(KEPLER_K20C, LaunchConfig(), 4096)
    threads = np.arange(4096, dtype=np.int64)
    rng = np.random.default_rng(0)
    for step in range(8):
        tb.store(threads, rng.integers(0, 1 << 22, 4096) * 128, step=step)
    tb.instructions(threads, 4)
    p = price_kernel(tb.build(), KEPLER_K20C)
    assert p.terms["memory_latency"] == pytest.approx(0.0)
    assert p.memory.dram_bytes > 0
    assert p.bound in ("memory_bandwidth", "compute")


def test_empty_launch_domain_safe():
    """A zero-item kernel round must not crash the machinery."""
    g = from_edges(np.empty(0), np.empty(0), num_vertices=4)
    for scheme in ("topo-base", "data-base", "csrcolor"):
        result = color_graph(g, method=scheme)
        assert result.num_colors == 1
