"""Batched multi-graph execution through one ExecutionContext.

Not a paper figure — this benchmark characterizes the execution engine's
batching contract on the Table I suite: every graph's CSR crosses the
simulated PCIe exactly once per context regardless of how many schemes
run on it, and worklist/scratch buffers recycle through the device pool
instead of growing the simulated address space per run.
"""

from repro.coloring.api import ENGINE_RECIPES
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

#: The device schemes of the paper's evaluation (the engine's recipes).
BATCH_SCHEMES = tuple(s for s in ENGINE_RECIPES if not s.endswith("-lb"))


def _run_batch(suite, ctx):
    per_scheme = {
        scheme: ctx.color_many(list(suite.values()), scheme)
        for scheme in BATCH_SCHEMES
    }
    return per_scheme


def test_batched_suite(benchmark, suite, engine_context, scale_div, recorder):
    ctx = engine_context
    per_scheme = benchmark.pedantic(
        _run_batch, args=(suite, ctx), rounds=1, iterations=1
    )

    print_banner("Batched suite: one context, all schemes", scale_div)
    rows = [
        [scheme]
        + [r.num_colors for r in results]
        + [round(sum(r.total_time_us for r in results), 1)]
        for scheme, results in per_scheme.items()
    ]
    print(format_table(["scheme"] + list(suite) + ["sum_us"], rows))

    htod = [
        t for t in ctx.backend.device.timeline.transfers() if t.direction == "htod"
    ]
    runs = len(BATCH_SCHEMES) * len(suite)
    print(
        f"{runs} runs: {ctx.uploads} uploads ({len(htod)} HtoD events), "
        f"{ctx.upload_reuses} reuses; pool {ctx.backend.device.pool_hits} hits "
        f"/ {ctx.backend.device.pool_misses} misses"
    )

    # The batching contract: one HtoD burst per distinct graph, ever.
    assert ctx.uploads == len(suite)
    assert len(htod) == len(suite)
    assert ctx.upload_reuses == runs - len(suite)
    # Worklist buffers recycle: the second data-driven sweep allocates nothing.
    assert ctx.backend.device.pool_hits > 0

    for scheme, results in per_scheme.items():
        for gname, r in zip(suite, results):
            recorder.add("batching", gname, scheme, "colors", r.num_colors)
            recorder.add("batching", gname, scheme, "time_us", r.total_time_us)
    recorder.add("batching", "suite", "context", "uploads", ctx.uploads,
                 reuses=ctx.upload_reuses)
