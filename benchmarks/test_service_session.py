"""Sessions vs from-scratch: the incremental-recoloring payoff (service).

The service's session API exists so a mutating client pays only for the
affected neighborhood instead of a full recolor per edit.  This
benchmark drives a 1k-edit session on a ~131k-vertex R-MAT(ER) graph
through :class:`~repro.service.ColoringService` — checking every
intermediate coloring is proper via an inductive local check — and
compares its wall-clock against 1k from-scratch engine recolors
(measured on a sample and extrapolated; running all 1000 would take
tens of minutes).  The acceptance gate: the session completes in
**< 10%** of the from-scratch wall-clock (in practice it is < 1%).

Set ``REPRO_SESSION_EDITS`` / ``REPRO_SESSION_SAMPLES`` to rescale.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro import color_graph, rmat_er
from repro.metrics.table import format_table
from repro.service import ColoringService

from benchmarks.conftest import print_banner

EDITS = int(os.environ.get("REPRO_SESSION_EDITS", "1000"))
SAMPLES = int(os.environ.get("REPRO_SESSION_SAMPLES", "2"))


def _assert_locally_proper(dyn, prev_colors, touched) -> np.ndarray:
    """Inductive properness: the coloring was proper before the op, so
    it stays proper iff every vertex that changed color (plus the edit's
    endpoints) has no same-colored neighbor.  O(changed neighborhoods)
    instead of O(E) per edit."""
    cur = dyn._colors
    changed = np.nonzero(prev_colors != cur[: prev_colors.size])[0]
    for x in list(changed) + list(touched):
        x = int(x)
        nbrs = dyn._adj[x]
        assert not np.any(cur[nbrs] == cur[x]), f"conflict at vertex {x}"
    return cur.copy()


def test_session_beats_from_scratch_recoloring(recorder, scale_div):
    graph = rmat_er(scale=17, seed=1)
    print_banner(
        f"service session: {EDITS} edits on {graph.num_vertices} vertices "
        f"vs {EDITS} from-scratch recolors",
        scale_div,
    )

    # -- from-scratch cost: sample a few engine runs, extrapolate -------
    scratch_times = []
    for i in range(SAMPLES):
        t0 = time.perf_counter()
        color_graph(graph, "data-ldg", validate=False)
        scratch_times.append(time.perf_counter() - t0)
    scratch_total = float(np.mean(scratch_times)) * EDITS

    # -- the session ----------------------------------------------------
    async def drive():
        async with ColoringService("data-ldg") as svc:
            sess = await svc.session(graph, max_drift=4)
            dyn = sess._dyn
            rng = np.random.default_rng(0)
            n = graph.num_vertices
            prev = dyn.colors()
            t0 = time.perf_counter()
            for _ in range(EDITS):
                u, v = (int(x) for x in rng.integers(0, n, size=2))
                if u == v:
                    continue
                if dyn.has_edge(u, v):
                    await sess.delete(u, v)
                else:
                    await sess.insert(u, v)
                prev = _assert_locally_proper(dyn, prev, (u, v))
            elapsed = time.perf_counter() - t0
            final = await sess.close()
            dyn.validate()  # full end-to-end properness check
            return elapsed, final, svc.stats

    session_total, final, stats = asyncio.run(drive())
    ratio = session_total / scratch_total

    report = final.extra.peek("dynamic")
    print(format_table(
        ["path", "wall s", "per edit ms", "colors"],
        [
            ["from-scratch x" + str(EDITS), round(scratch_total, 2),
             round(1000 * scratch_total / EDITS, 3), "-"],
            ["session", round(session_total, 2),
             round(1000 * session_total / EDITS, 3), report["num_colors"]],
            ["ratio", round(ratio, 4), "-", "-"],
        ],
    ))
    print(
        f"repaired={report['repaired']} improved={report['improved']} "
        f"compactions={stats['compactions']} session_ops={stats['session_ops']}"
    )
    recorder.add(
        "service-session", "rmat-er-17", "dynamic:data-ldg",
        "session_wall_s", session_total,
        scratch_wall_s=scratch_total, ratio=ratio, edits=EDITS,
        repaired=report["repaired"], improved=report["improved"],
        compactions=stats["compactions"],
    )

    assert ratio < 0.10, (
        f"1k-edit session took {100 * ratio:.1f}% of from-scratch "
        f"wall-clock (gate: < 10%)"
    )
