"""Fig. 8 — performance across thread-block sizes.

Paper claims reproduced in shape: 32-thread blocks perform poorly (too
few resident warps to hide memory latency), performance peaks at 128- or
256-thread blocks, and >=512-thread blocks lose to resource
oversaturation.  128 is the best *average* choice — which is why it is the
library default.
"""

import numpy as np

from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

BLOCK_SIZES = (32, 64, 128, 256, 512)
#: Subset keeps the sweep affordable: one per structural regime.
SWEEP_GRAPHS = ("rmat-er", "rmat-g", "thermal2", "Hamrle3")


def _run_fig8(suite, run_scheme):
    out = {}
    for name in SWEEP_GRAPHS:
        out[name] = {
            bs: run_scheme(name, "data-base", (("block_size", bs),)).total_time_us
            for bs in BLOCK_SIZES
        }
    return out


def test_fig8(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(_run_fig8, args=(suite, run_scheme), rounds=1, iterations=1)

    print_banner("Fig. 8: simulated time (us) by thread-block size", scale_div)
    rows = [
        [name] + [round(times[bs], 1) for bs in BLOCK_SIZES]
        for name, times in data.items()
    ]
    print(format_table(["graph"] + [str(b) for b in BLOCK_SIZES], rows))

    for name, times in data.items():
        for bs, t in times.items():
            recorder.add("fig8", name, f"block{bs}", "time_us", t)

    best_blocks = []
    for name, times in data.items():
        # 32-thread blocks never win and are decisively worse than 128.
        assert times[32] > 1.2 * times[128], name
        best = min(times, key=times.get)
        best_blocks.append(best)
        # The optimum sits at 128 or 256 ("in most cases") with 512 never
        # more than marginally better anywhere.
        assert times[512] >= 0.9 * times[best], name

    # In most cases performance peaks at 128 or 256.
    assert sum(b in (128, 256) for b in best_blocks) >= len(best_blocks) - 1

    # 128 is the best average configuration (the paper's default).
    means = {bs: np.mean([data[g][bs] for g in data]) for bs in BLOCK_SIZES}
    assert min(means, key=means.get) in (128, 256)
    assert means[128] <= 1.15 * min(means.values())
