#!/usr/bin/env python
"""Resilience benchmark: checkpoint overhead and kill/resume identity.

The resilience tier's bargain (see docs/ROBUSTNESS.md): every-round
checkpointing is cheap enough to leave on — under 5% of wall-clock at
the default cadence — and a run killed at a round boundary and resumed
from its checkpoint is **byte-identical** to an uninterrupted run,
colors and progress stats both.

This suite measures both halves on the streamed and distributed modes:

* ``overhead`` — the Checkpointer's directly-measured save time as a
  fraction of the rest of the run (``save_ms / (wall - save_ms)``).
  Measuring the saves themselves rather than differencing two noisy
  end-to-end timings makes the gate stable on shared CI machines.
* ``digest`` equality — healthy, checkpointed, and killed+resumed runs
  must produce the same colors; the kill is the deterministic
  ``deadline-storm`` fault site, the resume must also reproduce the
  progress stats (``resolution_rounds``, ``sync_rounds``, ...).

Functional fields (digests, save counts, resume rounds) are compared
**exactly** against the committed ``BENCH_resilience.json``; the
overhead bound is re-measured every run, like the memory gate's
structural invariant.

Usage::

    python benchmarks/bench_resilience.py            # measure + invariants
    python benchmarks/bench_resilience.py --check    # gate (exit 1)
    python benchmarks/bench_resilience.py --update   # rewrite the record
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import color_distributed, rmat_er  # noqa: E402
from repro.parallel.streaming import color_streamed  # noqa: E402
from repro.resilience import DeadlineExceeded  # noqa: E402

RECORD_PATH = Path(__file__).parent / "BENCH_resilience.json"

SCALE = 15
SEED = 5
METHOD = "data-ldg"

#: The headline bound: checkpointing at the default cadence (every
#: round) must cost less than this fraction of the rest of the run.
OVERHEAD_LIMIT = 0.05

#: Functional fields compared exactly against the committed record.
GATED_FIELDS = ("digest", "checkpoint_writes", "kill_where", "resume_round")

#: mode -> (runner kwargs, deadline-storm phase, kill round)
MODES = {
    "streamed": ({"num_windows": 4}, "window", 2),
    "distributed": ({"devices": 4}, "sync", 1),
}


def _digest(result) -> str:
    return hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]


def _runner(mode):
    return color_streamed if mode == "streamed" else color_distributed


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - started) * 1000.0


def run_profile() -> dict:
    graph = rmat_er(scale=SCALE, seed=SEED)
    rows = {}
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as tmp:
        for mode, (kwargs, phase, kill_round) in MODES.items():
            run = _runner(mode)
            path = str(Path(tmp) / f"{mode}.ckpt")

            healthy, healthy_ms = _timed(
                lambda: run(graph, METHOD, **kwargs))
            ckpt, ckpt_ms = _timed(
                lambda: run(graph, METHOD, checkpoint=path + ".full",
                            **kwargs))
            stats = ckpt.robustness["checkpoint"]
            save_ms = stats["save_ms"]
            overhead = save_ms / max(ckpt_ms - save_ms, 1e-9)

            # kill mid-run at a deterministic round, then resume
            try:
                run(graph, METHOD, checkpoint=path,
                    faults=f"seed=1; deadline-storm: round={kill_round}, "
                           f"phase={phase}", **kwargs)
                raise AssertionError(f"{mode}: deadline-storm did not fire")
            except DeadlineExceeded as exc:
                kill_where = exc.where
            resumed = run(graph, METHOD, resume=path, **kwargs)

            rows[mode] = {
                "graph": {"scale": SCALE, "seed": SEED,
                          "num_vertices": graph.num_vertices,
                          "num_edges": graph.num_edges},
                "digest": _digest(healthy),
                "checkpointed_digest": _digest(ckpt),
                "resumed_digest": _digest(resumed),
                "checkpoint_writes": stats["written"],
                "checkpoint_bytes": stats["bytes_written"],
                "save_ms": round(save_ms, 3),
                "healthy_ms": round(healthy_ms, 3),
                "checkpointed_ms": round(ckpt_ms, 3),
                "overhead": round(overhead, 5),
                "kill_where": kill_where,
                "resume_round": resumed.robustness["resumed"]["round"],
                "resolution_rounds_match": (
                    resumed.shard_stats["resolution_rounds"]
                    == healthy.shard_stats["resolution_rounds"]),
            }
    return {"method": METHOD, "scale": SCALE, "seed": SEED, "modes": rows}


def check(profile: dict, record: dict | None,
          limit: float = OVERHEAD_LIMIT) -> int:
    failures = []
    print(f"{'mode':<12} {'healthy':>9} {'ckpt':>9} {'save':>8} "
          f"{'overhead':>9} {'writes':>7} {'digest':>17}")
    for mode, row in profile["modes"].items():
        print(f"{mode:<12} {row['healthy_ms']:>7.0f}ms "
              f"{row['checkpointed_ms']:>7.0f}ms {row['save_ms']:>6.1f}ms "
              f"{row['overhead']:>8.2%} {row['checkpoint_writes']:>7} "
              f"{row['digest']:>17}")

        # invariants, re-measured every run
        if not (row["digest"] == row["checkpointed_digest"]
                == row["resumed_digest"]):
            failures.append(
                f"{mode}: colors diverge (healthy {row['digest']}, "
                f"checkpointed {row['checkpointed_digest']}, resumed "
                f"{row['resumed_digest']})")
        if not row["resolution_rounds_match"]:
            failures.append(f"{mode}: resumed progress stats diverged "
                            f"from the uninterrupted run")
        if not row["kill_where"].endswith(":forced"):
            failures.append(f"{mode}: kill was not the injected storm "
                            f"(where={row['kill_where']!r})")
        if row["overhead"] >= limit:
            failures.append(
                f"{mode}: checkpoint overhead {row['overhead']:.2%} "
                f">= {limit:.0%} of wall-clock at default cadence")

    if record is not None:
        for mode, row in profile["modes"].items():
            base = record["modes"].get(mode)
            if base is None:
                failures.append(f"{mode}: no committed entry (run --update)")
                continue
            for field in GATED_FIELDS:
                if row[field] != base[field]:
                    failures.append(
                        f"{mode}.{field}: {base[field]!r} -> {row[field]!r} "
                        f"(functional drift)")

    if failures:
        print(f"\nresilience gate FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  {f}")
        print("\nif the protocol change is intentional, regenerate with "
              "`python benchmarks/bench_resilience.py --update`")
        return 1
    against = "committed record" if record is not None else "invariants only"
    print(f"\nresilience gate passed ({against}): kill+resume "
          f"byte-identical, checkpoint overhead < {limit:.0%}")
    return 0


def load_record() -> dict | None:
    if not RECORD_PATH.exists():
        return None
    return json.loads(RECORD_PATH.read_text(encoding="utf-8"))["profile"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_resilience.json from this run")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed record (exit 1)")
    parser.add_argument("--threshold", type=float, default=OVERHEAD_LIMIT,
                        help=f"checkpoint overhead bound "
                             f"(default {OVERHEAD_LIMIT})")
    args = parser.parse_args(argv)

    profile = run_profile()
    if args.update:
        record = {
            "profile": profile,
            "meta": {
                "machine": platform.machine(),
                "python": platform.python_version(),
                "note": "digests / write counts / resume rounds are "
                        "functional; timings and overhead are informational "
                        "and re-measured by the gate",
            },
        }
        RECORD_PATH.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote resilience record -> {RECORD_PATH}")
        return check(profile, None, args.threshold)
    return check(profile, load_record() if args.check else None,
                 args.threshold)


if __name__ == "__main__":
    sys.exit(main())
