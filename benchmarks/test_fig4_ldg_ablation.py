"""Fig. 4 — the read-only data cache (__ldg) path.

Fig. 4 itself is a data-path diagram; the measurable claim it supports
(Section IV) is that routing the immutable R/C arrays through the
read-only cache yields "a certain degree of speedup for some benchmarks
such as thermal2 and Hamrle3, although on average its impact is not very
distinct".  This ablation regenerates that comparison for both the
topology-driven and data-driven schemes.
"""

from repro.metrics.speedup import geomean
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _run_ldg_ablation(suite, run_scheme):
    out = {}
    for name in suite:
        row = {}
        for base, ldg in (("topo-base", "topo-ldg"), ("data-base", "data-ldg")):
            t_base = run_scheme(name, base).total_time_us
            t_ldg = run_scheme(name, ldg).total_time_us
            row[base] = t_base / t_ldg  # ldg gain factor
            # RO-cache effectiveness straight from the profiler
            ro = run_scheme(name, ldg).profiles[0].memory.ro_hit_rate
            row[f"{base}-rohit"] = ro
        out[name] = row
    return out


def test_fig4_ldg(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(
        _run_ldg_ablation, args=(suite, run_scheme), rounds=1, iterations=1
    )

    print_banner("Fig. 4 ablation: __ldg() gain over normal loads", scale_div)
    rows = [
        [
            name,
            round(row["topo-base"], 2),
            round(row["data-base"], 2),
            f"{row['topo-base-rohit']:.1%}",
        ]
        for name, row in data.items()
    ]
    print(format_table(
        ["graph", "topo ldg gain", "data ldg gain", "RO-cache hit rate"], rows
    ))
    for name, row in data.items():
        recorder.add("fig4", name, "topo", "ldg_gain", row["topo-base"])
        recorder.add("fig4", name, "data", "ldg_gain", row["data-base"])

    gains = [row[k] for row in data.values() for k in ("topo-base", "data-base")]
    # Never a slowdown; some graphs see real benefit...
    assert all(g >= 0.99 for g in gains)
    assert max(gains) > 1.05
    # ...but the average effect stays modest ("not very distinct").
    assert geomean(gains) < 1.6
    # The mechanism: the RO cache actually scores hits on R/C.
    assert any(row["topo-base-rohit"] > 0.3 for row in data.values())
