#!/usr/bin/env python
"""Weak-scaling benchmark for multi-device distributed coloring.

The distributed layer's claim (see docs/DISTRIBUTED.md): speculative
boundary coloring cuts both the number of pair synchronizations and the
modeled halo traffic versus the lockstep full-exchange loop, while
returning **byte-identical** colors — to the lockstep run, and to
``color_sharded`` at the same shard count.

This suite measures that claim under *weak scaling*: the per-device
shard size is held fixed while the device count doubles
(``rmat_er(scale=10+log2(D))`` for ``D`` devices), which is how a real
multi-GPU fleet grows.  For each device count it runs the speculative
and lockstep modes on the PCIe topology and records:

* ``sync_rounds``       — pair synchronizations (one per linked device
                          pair per round it exchanged);
* ``halo_bytes_modeled``— bytes the interconnect model priced;
* ``speculation_hits``  — pair-rounds where speculation skipped a sync;
* colors digest         — and the matching ``color_sharded`` digest.

Every gated quantity is *functional* (derived from the deterministic
coloring sequence, not the host clock), so the committed
``BENCH_distributed.json`` is compared **exactly** — any drift means the
protocol changed, intentionally or not.

Usage::

    python benchmarks/bench_distributed.py            # measure + check
    python benchmarks/bench_distributed.py --check    # gate (exit 1)
    python benchmarks/bench_distributed.py --update   # rewrite the record
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import color_distributed, color_sharded, rmat_er  # noqa: E402

RECORD_PATH = Path(__file__).parent / "BENCH_distributed.json"

#: Weak-scaling ladder: devices -> rmat_er scale (fixed shard size of
#: 2**10 vertices per device).
DEVICE_COUNTS = (1, 2, 4, 8)
BASE_SCALE = 10
SEED = 5
METHOD = "data-ldg"
TOPOLOGY = "pcie"

#: The acceptance threshold: speculation must show a strict reduction
#: from this device count up (tiny clusters have too few links to skip).
REDUCTION_FROM_DEVICES = 4

#: Functional fields compared exactly against the committed record.
GATED_FIELDS = (
    "links", "resolution_rounds", "sync_rounds",
    "halo_bytes_modeled", "speculation_hits", "digest",
)


def _digest(result) -> str:
    return hashlib.sha256(result.colors.tobytes()).hexdigest()[:16]


def _mode_row(result) -> dict:
    stats = result.shard_stats
    return {
        "links": stats["links"],
        "resolution_rounds": stats["resolution_rounds"],
        "sync_rounds": stats["sync_rounds"],
        "halo_bytes_modeled": stats["halo_bytes_modeled"],
        "speculation_hits": stats["speculation_hits"],
        "comm_time_us": round(stats["comm_time_us"], 3),
        "digest": _digest(result),
    }


def run_profile() -> dict:
    rows = []
    for devices in DEVICE_COUNTS:
        scale = BASE_SCALE + devices.bit_length() - 1
        graph = rmat_er(scale=scale, seed=SEED)
        spec = color_distributed(
            graph, METHOD, devices=devices, topology=TOPOLOGY, speculate=True
        )
        lock = color_distributed(
            graph, METHOD, devices=devices, topology=TOPOLOGY, speculate=False
        )
        sharded = color_sharded(graph, METHOD, num_shards=devices)
        rows.append({
            "devices": devices,
            "graph": {
                "scale": scale,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
            },
            "speculative": _mode_row(spec),
            "lockstep": _mode_row(lock),
            "sharded_digest": _digest(sharded),
        })
    return {
        "method": METHOD,
        "topology": TOPOLOGY,
        "seed": SEED,
        "weak_scaling": rows,
    }


def check(profile: dict, record: dict | None) -> int:
    """Gate the invariants and (when a record exists) exact values."""
    failures = []
    print(f"{'D':>2} {'links':>5} {'rounds':>6} "
          f"{'sync spec/lock':>15} {'halo B spec/lock':>21} {'hits':>5}")
    for row in profile["weak_scaling"]:
        d = row["devices"]
        spec, lock = row["speculative"], row["lockstep"]
        print(f"{d:>2} {spec['links']:>5} {spec['resolution_rounds']:>6} "
              f"{spec['sync_rounds']:>7}/{lock['sync_rounds']:<7} "
              f"{spec['halo_bytes_modeled']:>10}/{lock['halo_bytes_modeled']:<10} "
              f"{spec['speculation_hits']:>5}")

        # Identity: spec == lock == sharded, byte for byte.
        if not (spec["digest"] == lock["digest"] == row["sharded_digest"]):
            failures.append(
                f"D={d}: colors diverge (spec {spec['digest']}, lock "
                f"{lock['digest']}, sharded {row['sharded_digest']})"
            )
        if spec["resolution_rounds"] != lock["resolution_rounds"]:
            failures.append(
                f"D={d}: speculation changed the round count "
                f"({spec['resolution_rounds']} vs {lock['resolution_rounds']})"
            )
        # Accounting identity: every pair-round is either synced or a hit.
        if (spec["sync_rounds"] + spec["speculation_hits"]
                != lock["sync_rounds"]):
            failures.append(
                f"D={d}: sync accounting broken "
                f"({spec['sync_rounds']} + {spec['speculation_hits']} != "
                f"{lock['sync_rounds']})"
            )
        # The headline claim: strict reduction at scale.
        if d >= REDUCTION_FROM_DEVICES:
            if spec["sync_rounds"] >= lock["sync_rounds"]:
                failures.append(
                    f"D={d}: speculation did not reduce pair syncs "
                    f"({spec['sync_rounds']} vs {lock['sync_rounds']})"
                )
            if spec["halo_bytes_modeled"] >= lock["halo_bytes_modeled"]:
                failures.append(
                    f"D={d}: speculation did not reduce modeled bytes "
                    f"({spec['halo_bytes_modeled']} vs "
                    f"{lock['halo_bytes_modeled']})"
                )

    if record is not None:
        recorded = {r["devices"]: r for r in record["weak_scaling"]}
        for row in profile["weak_scaling"]:
            base = recorded.get(row["devices"])
            if base is None:
                failures.append(f"D={row['devices']}: no committed entry "
                                f"(run --update)")
                continue
            for mode in ("speculative", "lockstep"):
                for field in GATED_FIELDS:
                    now, was = row[mode][field], base[mode][field]
                    if now != was:
                        failures.append(
                            f"D={row['devices']} {mode}.{field}: "
                            f"{was!r} -> {now!r} (functional drift)"
                        )
            if row["sharded_digest"] != base["sharded_digest"]:
                failures.append(
                    f"D={row['devices']}: sharded digest drifted "
                    f"({base['sharded_digest']} -> {row['sharded_digest']})"
                )

    if failures:
        print(f"\ndistributed gate FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  {f}")
        print("\nif the protocol change is intentional, regenerate with "
              "`python benchmarks/bench_distributed.py --update`")
        return 1
    against = "committed record" if record is not None else "invariants only"
    print(f"\ndistributed gate passed ({against}): byte-identical colors, "
          f"speculation reduces pair syncs and modeled bytes at "
          f">= {REDUCTION_FROM_DEVICES} devices")
    return 0


def load_record() -> dict | None:
    if not RECORD_PATH.exists():
        return None
    return json.loads(RECORD_PATH.read_text(encoding="utf-8"))["profile"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_distributed.json from this run")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed record (exit 1)")
    args = parser.parse_args(argv)

    profile = run_profile()
    if args.update:
        record = {
            "profile": profile,
            "meta": {
                "machine": platform.machine(),
                "python": platform.python_version(),
                "note": "all gated fields are functional quantities — "
                        "deterministic across machines",
            },
        }
        RECORD_PATH.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote distributed record -> {RECORD_PATH}")
        return check(profile, None)
    return check(profile, load_record() if args.check else None)


if __name__ == "__main__":
    sys.exit(main())
