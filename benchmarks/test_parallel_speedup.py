"""Process-pool batch throughput (extension experiment).

The paper's schemes price one graph at a time; ``color_many(workers=N)``
runs a batch of independent simulations across a process pool.  This
benchmark times an 8-graph batch serial vs. ``workers=4`` and checks the
two guarantees the scheduler makes: the colorings are byte-identical to
the serial run, and on a machine with enough cores the wall-clock drops
by at least 1.5x (the acceptance bar; simulation is CPU-bound, so the
pool scales with real cores).
"""

import os
import time

import numpy as np

from repro import color_many, rmat_er
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

BATCH = 8
WORKERS = 4
_RMAT_SCALE = 13  # 8k vertices / ~160k edges per graph: work dominates IPC


def _timed_batch(graphs, **kwargs):
    t0 = time.perf_counter()
    results = color_many(graphs, "data-ldg", **kwargs)
    return results, time.perf_counter() - t0


def _run_both():
    graphs = [rmat_er(scale=_RMAT_SCALE, seed=seed) for seed in range(BATCH)]
    serial, t_serial = _timed_batch(graphs)
    parallel, t_parallel = _timed_batch(graphs, workers=WORKERS)
    return serial, parallel, t_serial, t_parallel


def test_parallel_speedup(benchmark, scale_div, recorder):
    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    speedup = t_serial / t_parallel
    cores = os.cpu_count() or 1

    print_banner(
        f"color_many: {BATCH}-graph rmat-er batch, workers={WORKERS}", scale_div
    )
    print(format_table(
        ["mode", "wall-clock s", "speedup"],
        [["serial", round(t_serial, 3), 1.0],
         [f"workers={WORKERS}", round(t_parallel, 3), round(speedup, 2)]],
    ))
    print(f"(host cores: {cores})")
    recorder.add(
        "parallel-speedup", "rmat-er", "data-ldg", "speedup", speedup,
        batch=BATCH, workers=WORKERS, cores=cores,
        serial_s=t_serial, parallel_s=t_parallel,
    )

    # Determinism first: the pool must not change a single color.
    for s, p in zip(serial, parallel):
        assert np.array_equal(s.colors, p.colors)
        assert s.iterations == p.iterations

    # The throughput claim only holds where the cores exist to back it
    # (single-core boxes still run the batch, just without the win).
    if cores >= WORKERS:
        assert speedup >= 1.5, (
            f"expected >=1.5x from workers={WORKERS} on {cores} cores, "
            f"got {speedup:.2f}x"
        )
