"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures at the
configured scale (``REPRO_SCALE_DIV``, default 16 = 1/16 of paper size;
``REPRO_FULL_SCALE=1`` for paper scale), prints the same rows the paper
reports, asserts the paper's qualitative claims, and appends its records
to ``benchmarks/results/<experiment>.json`` for EXPERIMENTS.md.

Scheme x graph results are cached per session: Figs. 1, 6 and 7 share the
same underlying runs.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.coloring.api import color_graph
from repro.engine import ExecutionContext
from repro.graph.generators.suite import SUITE_ORDER, default_scale_div, load_graph
from repro.metrics.recorder import Recorder

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale_div() -> int:
    return default_scale_div()


@pytest.fixture(scope="session")
def suite(scale_div):
    """The six Table I graphs, generated once per session."""
    return {name: load_graph(name, scale_div=scale_div) for name in SUITE_ORDER}


@pytest.fixture(scope="session")
def engine_context():
    """One ExecutionContext per benchmark session: each suite graph's CSR
    crosses (simulated) PCIe once, and scratch buffers recycle through the
    device pool across every scheme x graph cell."""
    return ExecutionContext()


@pytest.fixture(scope="session")
def run_scheme(suite, engine_context):
    """Cached (graph, scheme, frozen-kwargs) -> ColoringResult runner.

    Each cell runs on a fresh simulated device so its timings match a
    standalone ``color_graph`` call exactly (the figures' speedup ratios
    stay reproducible one cell at a time); the shared ``engine_context``
    is used by benchmarks that measure batching itself.
    """

    @functools.lru_cache(maxsize=None)
    def _run(graph_name: str, scheme: str, kwargs: tuple = ()):
        return color_graph(suite[graph_name], method=scheme, **dict(kwargs))

    return _run


@pytest.fixture()
def recorder(request, scale_div):
    """Per-test recorder that persists to benchmarks/results on teardown."""
    rec = Recorder()
    yield rec
    if rec.records:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        rec.save_json(RESULTS_DIR / f"{name}.json")


def print_banner(title: str, scale_div: int) -> None:
    print(f"\n=== {title} (scale 1/{scale_div} of paper size) ===")
