"""Fig. 1 — motivation: 3-step GM vs csrcolor against the sequential greedy.

Paper claims reproduced in shape:
  (a) csrcolor achieves speedup over sequential while 3-step GM is *slower*
      than sequential on average;
  (b) 3-step GM's coloring quality is near-sequential while csrcolor uses
      several times more colors.
"""

from repro.metrics.speedup import geomean
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

SCHEMES = ("3step-gm", "csrcolor")


def _run_fig1(suite, run_scheme):
    out = {}
    for name in suite:
        seq = run_scheme(name, "sequential")
        row = {"seq_us": seq.total_time_us, "seq_colors": seq.num_colors}
        for scheme in SCHEMES:
            r = run_scheme(name, scheme)
            row[scheme] = (seq.total_time_us / r.total_time_us, r.num_colors)
        out[name] = row
    return out


def test_fig1(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(_run_fig1, args=(suite, run_scheme), rounds=1, iterations=1)

    print_banner("Fig. 1: 3-step GM vs csrcolor", scale_div)
    rows = [
        [
            name,
            round(row["3step-gm"][0], 2),
            round(row["csrcolor"][0], 2),
            row["seq_colors"],
            row["3step-gm"][1],
            row["csrcolor"][1],
        ]
        for name, row in data.items()
    ]
    print(
        format_table(
            ["graph", "3stepGM speedup", "csrcolor speedup",
             "seq colors", "3stepGM colors", "csrcolor colors"],
            rows,
        )
    )
    for name, row in data.items():
        for scheme in SCHEMES:
            recorder.add("fig1", name, scheme, "speedup", row[scheme][0])
            recorder.add("fig1", name, scheme, "colors", row[scheme][1])

    gm_speedups = [row["3step-gm"][0] for row in data.values()]
    csr_speedups = [row["csrcolor"][0] for row in data.values()]

    # (a) 3-step GM slower than sequential on average (paper: ~0.66x)...
    assert geomean(gm_speedups) < 1.0
    # ...while csrcolor is faster on average.
    assert geomean(csr_speedups) > 1.0
    # (b) 3-step GM colors near-sequential; csrcolor several times more.
    for name, row in data.items():
        assert row["3step-gm"][1] <= row["seq_colors"] + 4
        assert row["csrcolor"][1] >= 3 * row["seq_colors"]
