"""Fig. 2 — the CSR storage format.

Fig. 2 is the paper's illustration of the R/C arrays for a small example
graph needing three colors.  This harness reconstructs the figure: it
builds the example graph, prints its CSR arrays, and checks that the
storage invariants the paper states hold for the whole suite (R has n+1
entries, R[i] indexes vertex i's adjacency list in C, m entries total) —
plus the figure's chromatic fact (exactly three colors suffice).
"""

import numpy as np

from repro.coloring.dsatur import chromatic_number
from repro.graph.builder import from_edges
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _fig2_graph():
    """A 5-vertex example with a triangle: needs exactly 3 colors."""
    return from_edges(
        np.array([0, 0, 1, 1, 2, 3]),
        np.array([1, 2, 2, 3, 4, 4]),
        num_vertices=5,
        name="fig2-example",
    )


def test_fig2(benchmark, suite, scale_div, recorder):
    graph = benchmark.pedantic(_fig2_graph, rounds=1, iterations=1)

    print_banner("Fig. 2: CSR layout of the example graph", scale_div)
    print(f"R (row offsets,  n+1 = {graph.row_offsets.size}): "
          f"{graph.row_offsets.tolist()}")
    print(f"C (column index, m   = {graph.col_indices.size}): "
          f"{graph.col_indices.tolist()}")
    rows = [
        [v, int(graph.row_offsets[v]), int(graph.row_offsets[v + 1]),
         " ".join(map(str, graph.neighbors(v).tolist()))]
        for v in range(graph.num_vertices)
    ]
    print(format_table(["vertex", "R[v]", "R[v+1]", "adjacency"], rows))

    # The figure's chromatic fact.
    chi = chromatic_number(graph)
    recorder.add("fig2", "example", "exact", "colors", chi)
    assert chi == 3

    # Storage invariants, checked on the example and the entire suite.
    for g in [graph, *suite.values()]:
        assert g.row_offsets.size == g.num_vertices + 1
        assert g.row_offsets[0] == 0
        assert int(g.row_offsets[-1]) == g.num_edges == g.col_indices.size
        assert np.all(np.diff(g.row_offsets) >= 0)
