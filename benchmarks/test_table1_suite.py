"""Table I — the benchmark-graph suite and its degree statistics.

Regenerates the paper's Table I from the synthetic stand-ins and checks
that each graph lands in the paper's structural regime (scaled vertex
count, average degree, degree-variance ordering).
"""


from repro.graph.generators.suite import SUITE
from repro.graph.stats import compute_stats
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _build_table(suite):
    rows = []
    stats = {}
    for name, graph in suite.items():
        s = compute_stats(graph)
        stats[name] = s
        paper = SUITE[name].paper
        rows.append(
            [
                name,
                s.num_vertices,
                s.num_edges,
                s.min_degree,
                s.max_degree,
                round(s.avg_degree, 2),
                round(s.variance, 2),
                "yes" if paper.spd else "no",
                paper.application,
            ]
        )
    return rows, stats


def test_table1(benchmark, suite, scale_div, recorder):
    rows, stats = benchmark.pedantic(
        _build_table, args=(suite,), rounds=1, iterations=1
    )
    print_banner("Table I: suite of benchmark graphs", scale_div)
    print(
        format_table(
            ["Graph", "No. vertices", "No. edges", "Min", "Max", "Avg", "Variance",
             "s.p.d", "Application"],
            rows,
        )
    )
    for name, s in stats.items():
        paper = SUITE[name].paper
        recorder.add("table1", name, "generated", "avg_degree", s.avg_degree,
                     paper=paper.avg_degree)
        recorder.add("table1", name, "generated", "variance", s.variance,
                     paper=paper.variance)
        recorder.add("table1", name, "generated", "num_vertices", s.num_vertices,
                     paper=paper.num_vertices)

        # Scaled size tracks the paper's size ratios.
        assert (
            0.5 * paper.num_vertices / scale_div
            <= s.num_vertices
            <= 2.0 * paper.num_vertices / scale_div
        )
        # Average degree in regime.
        assert abs(s.avg_degree - paper.avg_degree) <= 0.25 * paper.avg_degree + 1.0

    # Variance ordering reproduces the paper's axis of graph structure.
    assert stats["rmat-g"].variance > stats["rmat-er"].variance > stats["thermal2"].variance
    assert stats["atmosmodd"].variance < 1.0
