"""Fig. 3 — graph coloring is memory-latency bound.

Regenerates both panels from the simulated profiler:
  (a) achieved compute throughput and DRAM bandwidth, as % of peak — both
      must sit below 60 % (the paper's threshold for "latency bound");
  (b) the instruction-stall breakdown — memory dependency must dominate.
"""

import numpy as np

from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _profile_first_round(suite, run_scheme):
    """Round-0 coloring-kernel profile per graph (the Fig. 3 kernel)."""
    out = {}
    for name in suite:
        result = run_scheme(name, "topo-base")
        profile = result.profiles[0]
        out[name] = profile
    return out


def test_fig3(benchmark, suite, run_scheme, scale_div, recorder):
    profiles = benchmark.pedantic(
        _profile_first_round, args=(suite, run_scheme), rounds=1, iterations=1
    )

    print_banner("Fig. 3a: achieved throughput vs peak", scale_div)
    rows_a = [
        [name, f"{p.compute_utilization:.1%}", f"{p.bandwidth_utilization:.1%}", p.bound]
        for name, p in profiles.items()
    ]
    print(format_table(["graph", "compute util", "DRAM bw util", "bound"], rows_a))

    print_banner("Fig. 3b: stall-reason breakdown (averaged over suite)", scale_div)
    reasons = sorted(next(iter(profiles.values())).stalls)
    avg = {r: float(np.mean([p.stalls[r] for p in profiles.values()])) for r in reasons}
    print(format_table(
        ["stall reason", "share"],
        [[r, f"{avg[r]:.1%}"] for r in sorted(avg, key=avg.get, reverse=True)],
    ))

    for name, p in profiles.items():
        recorder.add("fig3", name, "topo-base", "compute_util", p.compute_utilization)
        recorder.add("fig3", name, "topo-base", "bandwidth_util", p.bandwidth_utilization)
        recorder.add("fig3", name, "topo-base", "stall_memory_dependency",
                     p.stalls["memory_dependency"])

        # Panel (a): per graph, neither resource saturates and the kernel
        # is latency bound, not compute/bandwidth bound.
        assert p.compute_utilization < 0.60
        assert p.bandwidth_utilization < 0.85
        assert p.bound == "memory_latency"

    # The paper's 60% threshold holds for the suite average (its Fig. 3 is
    # one averaged profile); at our scaled sizes the sparse meshes graze
    # higher bandwidth shares because the compulsory CSR stream is a larger
    # fraction of a smaller footprint.
    assert np.mean([p.compute_utilization for p in profiles.values()]) < 0.60
    assert np.mean([p.bandwidth_utilization for p in profiles.values()]) < 0.60

    # Panel (b): memory dependency dominates every other reason.
    top = max(avg, key=avg.get)
    assert top == "memory_dependency"
    assert avg["memory_dependency"] > 0.5
