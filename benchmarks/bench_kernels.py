#!/usr/bin/env python
"""Kernel-layer wall-clock benchmark suite (micro + end-to-end).

The simulated-time gate (``regression_gate.py``) pins what the *model*
reports; this suite tracks what the *host* pays to compute it — the
repo's perf trajectory.  Two tiers:

* **micro** — the shared kernel primitives in isolation
  (``expand_segments``, ``min_excluded_colors``, ``speculative_color_step``,
  ``detect_conflicts``) over a real suite graph.
* **end-to-end** — ``color_graph`` wall-clock for the headline schemes
  over the R-MAT/mesh suite.

Profiles::

    python benchmarks/bench_kernels.py --quick         # CI scale (fast)
    python benchmarks/bench_kernels.py --full          # adds the 1M-vertex
                                                       # rmat-er end-to-end
    python benchmarks/bench_kernels.py --quick --check # gate vs committed
                                                       # baseline (2x default)
    python benchmarks/bench_kernels.py --quick --update current
                                                       # refresh the baseline

Results are stored in ``BENCH_kernels.json`` under a *record key* per
profile: ``pre_pr`` (the kernels before the bitmask-mex/expansion-plan
overhaul — measured once, never regenerated) and ``current`` (the tracked
baseline; refresh with ``--update current`` on the machine class noted in
the file's ``meta``).  ``--check`` compares wall times against the
committed ``current`` record with a generous threshold (CI machines vary)
and compares simulated time / iterations / colors exactly (those are
functional, machine-independent).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.coloring.api import color_graph  # noqa: E402
from repro.coloring import kernels  # noqa: E402
from repro.graph.generators.suite import load_graph  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "BENCH_kernels.json"

#: (profile name) -> scale divisor for the suite graphs.
QUICK_SCALE_DIV = 64
FULL_SCALE_DIV = 1

#: End-to-end cells per profile: (graph, scheme) pairs.
QUICK_CELLS = (
    ("rmat-er", "data-ldg"),
    ("rmat-er", "topo-ldg"),
    ("rmat-g", "data-ldg"),
    ("thermal2", "data-ldg"),
    ("thermal2", "topo-ldg"),
)
#: The acceptance cells: the paper-scale (1,048,576-vertex) R-MAT graph.
FULL_CELLS = (
    ("rmat-er", "data-ldg"),
    ("rmat-er", "topo-ldg"),
)


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_micro(scale_div: int, repeat: int) -> dict:
    """Micro benchmarks over one real suite graph (wall seconds, best-of)."""
    graph = load_graph("rmat-er", scale_div=scale_div)
    n = graph.num_vertices
    all_ids = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(11)
    colors_small = rng.integers(0, 24, size=n).astype(np.int32)
    colors_wide = rng.integers(0, 200, size=n).astype(np.int32)
    seg, _, edge_idx = kernels.expand_segments(graph, all_ids)
    nbr_small = colors_small[graph.col_indices[edge_idx]]
    nbr_wide = colors_wide[graph.col_indices[edge_idx]]
    zeros = np.zeros(n, dtype=np.int32)

    out = {}
    out["expand_segments/full"] = _best_of(
        lambda: kernels.expand_segments(graph, all_ids), repeat
    )
    half = all_ids[: n // 2]
    out["expand_segments/half"] = _best_of(
        lambda: kernels.expand_segments(graph, half), repeat
    )
    out["mex/24colors"] = _best_of(
        lambda: kernels.min_excluded_colors(seg, nbr_small, n), repeat
    )
    out["mex/200colors"] = _best_of(
        lambda: kernels.min_excluded_colors(seg, nbr_wide, n), repeat
    )
    out["color_step/full"] = _best_of(
        lambda: kernels.speculative_color_step(graph, zeros, all_ids), repeat
    )
    out["detect_conflicts/full"] = _best_of(
        lambda: kernels.detect_conflicts(graph, colors_small, all_ids), repeat
    )
    return {k: round(v, 6) for k, v in out.items()}


def run_end_to_end(cells, scale_div: int, repeat: int, backend=None) -> dict:
    """Wall-clock ``color_graph`` runs plus their functional fingerprints."""
    out = {}
    graphs: dict[str, object] = {}
    for graph_name, scheme in cells:
        graph = graphs.setdefault(
            graph_name, load_graph(graph_name, scale_div=scale_div)
        )
        best = float("inf")
        result = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = color_graph(
                graph, method=scheme, validate=False, backend=backend
            )
            best = min(best, time.perf_counter() - t0)
        out[f"{graph_name}/{scheme}"] = {
            "wall_s": round(best, 4),
            "sim_us": round(result.total_time_us, 4),
            "iterations": result.iterations,
            "num_colors": result.num_colors,
        }
    return out


def run_profile(profile: str, repeat: int, backend=None) -> dict:
    if backend == "compiled":
        # Pay the one-time JIT load/compile outside the timed region —
        # it is machine state, not per-run cost (workers warm up the
        # same way via the pool initializer).
        from repro import compiledsim

        compiledsim.warmup()
    if profile == "quick":
        out = {
            "scale_div": QUICK_SCALE_DIV,
            "micro": run_micro(QUICK_SCALE_DIV, repeat),
            "end_to_end": run_end_to_end(
                QUICK_CELLS, QUICK_SCALE_DIV, repeat, backend
            ),
        }
    else:
        out = {
            "scale_div": FULL_SCALE_DIV,
            "micro": run_micro(16, repeat),
            "end_to_end": run_end_to_end(FULL_CELLS, FULL_SCALE_DIV, 1, backend),
        }
    if backend is not None:
        out["backend"] = backend
    return out


def load_baseline() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {"meta": {}}


def print_results(profile: str, results: dict, baseline: dict) -> None:
    stored = baseline.get(profile, {})
    for tier in ("micro", "end_to_end"):
        print(f"[{profile}/{tier}]")
        for key, val in results[tier].items():
            wall = val if tier == "micro" else val["wall_s"]
            line = f"  {key:<28} {wall * 1e3:>10.2f} ms"
            for record_key in ("pre_pr", "current"):
                if results.get("backend") is None and record_key == "current":
                    continue  # a plain run *is* the current baseline's twin
                ref = stored.get(record_key, {}).get(tier, {}).get(key)
                if ref is not None:
                    ref_wall = ref if tier == "micro" else ref["wall_s"]
                    if wall > 0:
                        line += f"   ({ref_wall / wall:5.2f}x vs {record_key})"
            print(line)


def check(profile: str, results: dict, baseline: dict, threshold: float) -> int:
    """Gate the run against the committed ``current`` record."""
    record = baseline.get(profile, {}).get("current")
    if record is None:
        print(f"no committed '{profile}/current' record; run --update current")
        return 1
    failures = []
    for key, val in results["end_to_end"].items():
        ref = record["end_to_end"].get(key)
        if ref is None:
            failures.append(f"{key}: no baseline entry")
            continue
        for exact in ("sim_us", "iterations", "num_colors"):
            if val[exact] != ref[exact]:
                failures.append(
                    f"{key}: {exact} {ref[exact]} -> {val[exact]} (functional drift)"
                )
        if val["wall_s"] > ref["wall_s"] * threshold:
            failures.append(
                f"{key}: wall {ref['wall_s']:.3f}s -> {val['wall_s']:.3f}s "
                f"(> {threshold:.1f}x)"
            )
    for key, wall in results["micro"].items():
        ref = record["micro"].get(key)
        # Absolute noise floor: cells in the tens-of-microseconds range
        # (memo-hit paths) swing multiples of themselves with page/cache
        # state, so the ratio gate only applies past a 0.25 ms delta.
        if (
            ref is not None
            and wall > ref * threshold
            and wall - ref > 2.5e-4
        ):
            failures.append(
                f"micro {key}: {ref * 1e3:.2f}ms -> {wall * 1e3:.2f}ms "
                f"(> {threshold:.1f}x)"
            )
    compiled_ref = baseline.get(profile, {}).get("compiled")
    if compiled_ref is not None:
        failures += _check_compiled(profile, record, compiled_ref, threshold)
    if failures:
        print(f"kernel benchmark gate FAILED ({len(failures)}):")
        for f in failures:
            print(f"  {f}")
        return 1
    cells = len(results["end_to_end"])
    legs = "" if compiled_ref is None else " (+ compiled backend leg)"
    print(
        f"kernel benchmark gate passed: {cells} cells "
        f"within {threshold:.1f}x of baseline{legs}"
    )
    return 0


def _check_compiled(
    profile: str, current: dict, compiled_ref: dict, threshold: float
) -> list:
    """Gate the ``backend='compiled'`` leg.

    Functional fields must equal the *current* (NumPy) record exactly —
    that is the byte-identity contract the compiled backend ships under —
    and wall time gates against the committed *compiled* record.
    """
    scale_div = compiled_ref.get(
        "scale_div", QUICK_SCALE_DIV if profile == "quick" else FULL_SCALE_DIV
    )
    cells = tuple(
        tuple(key.split("/", 1)) for key in compiled_ref["end_to_end"]
    )
    from repro import compiledsim

    compiledsim.warmup()
    run = run_end_to_end(cells, scale_div, 1, backend="compiled")
    failures = []
    for key, val in run.items():
        truth = current["end_to_end"].get(key)
        for exact in ("sim_us", "iterations", "num_colors"):
            if truth is not None and val[exact] != truth[exact]:
                failures.append(
                    f"compiled {key}: {exact} {truth[exact]} -> {val[exact]} "
                    f"(diverged from the NumPy baseline — byte-identity "
                    f"contract broken)"
                )
        ref = compiled_ref["end_to_end"].get(key)
        if ref is not None and val["wall_s"] > ref["wall_s"] * threshold:
            failures.append(
                f"compiled {key}: wall {ref['wall_s']:.3f}s -> "
                f"{val['wall_s']:.3f}s (> {threshold:.1f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI profile: small graphs, fast")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale profile (1M-vertex rmat-er)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of repetitions (default 3)")
    parser.add_argument("--update", metavar="KEY",
                        help="store results under this record key "
                             "(e.g. 'current', 'pre_pr')")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed 'current' record")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="wall-clock regression threshold (default 2.0)")
    parser.add_argument("--backend", default=None,
                        choices=("gpusim", "cpusim", "compiled"),
                        help="run the end-to-end cells on this backend "
                             "(e.g. 'compiled'; default: the library default)")
    parser.add_argument("--out", type=Path,
                        help="also write this run's results to a JSON file")
    args = parser.parse_args(argv)
    profile = "full" if args.full else "quick"

    results = run_profile(profile, args.repeat, backend=args.backend)
    baseline = load_baseline()
    print_results(profile, results, baseline)

    if args.out:
        args.out.write_text(
            json.dumps({profile: results}, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote results -> {args.out}")

    if args.update:
        baseline.setdefault("meta", {})
        baseline["meta"].setdefault(
            "machine", f"{platform.machine()}/{platform.system()}"
        )
        baseline["meta"]["note"] = (
            "wall-clock records; 'pre_pr' is the kernel layer before the "
            "bitmask-mex/expansion-plan overhaul (historical, do not "
            "regenerate), 'current' is the tracked NumPy baseline, "
            "'compiled' is backend='compiled' on the same cells (same "
            "repeat/scale methodology; functional fields must equal "
            "'current' exactly — the byte-identity contract)"
        )
        baseline.setdefault(profile, {})[args.update] = results
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"recorded '{profile}/{args.update}' -> {BASELINE_PATH}")

    if args.check:
        return check(profile, results, baseline, args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
