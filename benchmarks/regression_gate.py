#!/usr/bin/env python
"""Simulated-time regression gate.

Runs a fixed (graph, scheme) matrix at a pinned scale and compares each
cell's total simulated time against the committed baseline
(``baseline_times.json``).  The timeline is simulated, so every cell is
deterministic — drift beyond the tolerance means the *pricing model*
changed, intentionally or not.  When a change is intentional, regenerate
the baseline and commit it alongside the change::

    python benchmarks/regression_gate.py            # gate (exit 1 on drift)
    python benchmarks/regression_gate.py --update   # rewrite the baseline

The tolerance (default 15%) absorbs honest refactors that move a few
rounding boundaries; real perf regressions in the simulated schemes are
well above it.  Iteration counts and color counts are gated exactly —
they are functional, not priced.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.coloring.api import color_graph  # noqa: E402
from repro.graph.generators.suite import SUITE_ORDER, load_graph  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baseline_times.json"

#: Pinned so the gate's numbers never depend on REPRO_SCALE_DIV.
SCALE_DIV = 256

#: The paper's headline schemes: both kernel families plus the MIS code.
SCHEMES = ("topo-ldg", "data-ldg", "csrcolor")


def run_matrix() -> dict:
    """Every (graph, scheme) cell: simulated time + functional fingerprint."""
    cells = {}
    for name in SUITE_ORDER:
        graph = load_graph(name, scale_div=SCALE_DIV)
        for scheme in SCHEMES:
            result = color_graph(graph, method=scheme)
            cells[f"{name}/{scheme}"] = {
                "total_time_us": round(result.total_time_us, 4),
                "iterations": result.iterations,
                "num_colors": result.num_colors,
            }
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current model")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative time drift (default 0.15)")
    parser.add_argument("--kernels", action="store_true",
                        help="also gate host wall-clock against the quick "
                             "profile of BENCH_kernels.json")
    parser.add_argument("--kernel-threshold", type=float, default=2.0,
                        help="wall-clock threshold for --kernels (default 2.0)")
    parser.add_argument("--memory", action="store_true",
                        help="also gate per-worker private memory against "
                             "the zero-copy invariant (bench_memory.py)")
    parser.add_argument("--distributed", action="store_true",
                        help="also gate the distributed weak-scaling record "
                             "exactly (bench_distributed.py)")
    parser.add_argument("--resilience", action="store_true",
                        help="also gate checkpoint overhead and kill+resume "
                             "byte-identity (bench_resilience.py)")
    args = parser.parse_args(argv)

    cells = run_matrix()
    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(
                {"scale_div": SCALE_DIV, "tolerance": args.tolerance,
                 "cells": cells},
                indent=1, sort_keys=True,
            ) + "\n",
            encoding="utf-8",
        )
        print(f"wrote baseline for {len(cells)} cells -> {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    if baseline.get("scale_div") != SCALE_DIV:
        print(f"baseline was taken at scale_div={baseline.get('scale_div')}, "
              f"gate runs at {SCALE_DIV}; regenerate with --update")
        return 1

    failures = []
    width = max(len(k) for k in cells)
    for key, cell in sorted(cells.items()):
        base = baseline["cells"].get(key)
        if base is None:
            failures.append(f"{key}: no baseline entry (run --update)")
            continue
        drift = cell["total_time_us"] / base["total_time_us"] - 1.0
        marks = []
        if abs(drift) > args.tolerance:
            marks.append(f"time drift {drift:+.1%} (> {args.tolerance:.0%})")
        if cell["iterations"] != base["iterations"]:
            marks.append(
                f"iterations {base['iterations']} -> {cell['iterations']}")
        if cell["num_colors"] != base["num_colors"]:
            marks.append(
                f"colors {base['num_colors']} -> {cell['num_colors']}")
        status = "FAIL  " + "; ".join(marks) if marks else "ok"
        print(f"{key:<{width}}  {base['total_time_us']:>10.1f} -> "
              f"{cell['total_time_us']:>10.1f} us  ({drift:+6.1%})  {status}")
        if marks:
            failures.append(f"{key}: {'; '.join(marks)}")

    missing = set(baseline["cells"]) - set(cells)
    for key in sorted(missing):
        failures.append(f"{key}: in baseline but not run (matrix shrank?)")

    if failures:
        print(f"\nregression gate FAILED ({len(failures)} cell(s)):")
        for f in failures:
            print(f"  {f}")
        print("\nif the model change is intentional, regenerate with "
              "`python benchmarks/regression_gate.py --update`")
        return 1
    print(f"\nregression gate passed: {len(cells)} cells within "
          f"{args.tolerance:.0%} of baseline")
    if args.kernels:
        rc = _kernel_gate(args.kernel_threshold)
        if rc:
            return rc
    if args.memory:
        rc = _memory_gate()
        if rc:
            return rc
    if args.distributed:
        rc = _distributed_gate()
        if rc:
            return rc
    if args.resilience:
        return _resilience_gate()
    return 0


def _kernel_gate(threshold: float) -> int:
    """Run the quick kernel-benchmark profile against its committed record.

    The simulated-time cells above pin the *model*; this pins the *host*
    wall-clock (see ``bench_kernels.py`` / ``BENCH_kernels.json``).
    """
    try:
        from benchmarks import bench_kernels
    except ImportError:  # run as a script: sibling module, no package
        import bench_kernels

    print("\n[kernel wall-clock gate: quick profile]")
    results = bench_kernels.run_profile("quick", repeat=1)
    baseline = bench_kernels.load_baseline()
    bench_kernels.print_results("quick", results, baseline)
    return bench_kernels.check("quick", results, baseline, threshold)


def _memory_gate() -> int:
    """Run the zero-copy worker-memory invariant (see ``bench_memory.py``).

    Fresh measurement every time — the invariant is structural (fractions
    of the graph's topology), so it holds across machine classes without
    comparing absolute bytes to the committed ``BENCH_memory.json``.
    """
    try:
        from benchmarks import bench_memory
    except ImportError:  # run as a script: sibling module, no package
        import bench_memory

    print("\n[worker memory gate: zero-copy stores]")
    return bench_memory.check(bench_memory.run_profile())


def _distributed_gate() -> int:
    """Gate the distributed weak-scaling record (``bench_distributed.py``).

    Every compared field is a functional quantity of the deterministic
    coloring sequence — sync-round counts, modeled halo bytes, colors
    digests — so the committed ``BENCH_distributed.json`` is enforced
    *exactly*, on any machine.
    """
    try:
        from benchmarks import bench_distributed
    except ImportError:  # run as a script: sibling module, no package
        import bench_distributed

    print("\n[distributed gate: weak-scaling halo exchange]")
    return bench_distributed.check(
        bench_distributed.run_profile(), bench_distributed.load_record()
    )


def _resilience_gate() -> int:
    """Gate the resilience record (``bench_resilience.py``).

    Kill+resume digests and checkpoint write counts are enforced exactly
    against the committed ``BENCH_resilience.json``; the <5%
    checkpoint-overhead bound is re-measured fresh, like the memory
    gate's structural invariant.
    """
    try:
        from benchmarks import bench_resilience
    except ImportError:  # run as a script: sibling module, no package
        import bench_resilience

    print("\n[resilience gate: checkpoint overhead + kill/resume identity]")
    return bench_resilience.check(
        bench_resilience.run_profile(), bench_resilience.load_record()
    )


if __name__ == "__main__":
    sys.exit(main())
