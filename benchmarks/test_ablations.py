"""Ablations of the design decisions DESIGN.md calls out.

These go beyond the paper's figures: they quantify the simulator- and
algorithm-level choices so a user can see what each one buys.
"""

import numpy as np

from repro.coloring.api import color_graph
from repro.coloring.sequential import greedy_sequential
from repro.gpusim.cache import CacheConfig, SetAssociativeCache, reuse_distance_hits
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


# ------------------------------------------------------------- cache model
def test_ablation_cache_model(benchmark, suite, scale_div, recorder):
    """Trace-driven exact LRU vs vectorized reuse-distance approximation.

    The approximation must stay within a coarse accuracy band of the exact
    simulator on real kernel streams while being the fast default.
    """

    def run():
        graph = suite["Hamrle3"]
        from repro.coloring.kernels import expand_segments

        # The real round-0 color-gather line stream of the suite graph.
        _, _, edge_idx = expand_segments(graph, np.arange(graph.num_vertices))
        lines = (graph.col_indices[edge_idx].astype(np.int64) * 4) >> 7
        capacity = 1280 * 1024 // 128  # K20c L2
        exact = SetAssociativeCache(
            CacheConfig(capacity * 128, 128, ways=16)
        ).run(lines[: 200_000])
        approx = reuse_distance_hits(lines[: 200_000], capacity)
        return float(exact.mean()), float(approx.mean())

    exact_rate, approx_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: cache models on a real kernel stream", scale_div)
    print(format_table(
        ["model", "hit rate"],
        [["exact set-assoc LRU", f"{exact_rate:.1%}"],
         ["reuse-distance approx", f"{approx_rate:.1%}"]],
    ))
    recorder.add("ablation-cache", "Hamrle3", "exact", "hit_rate", exact_rate)
    recorder.add("ablation-cache", "Hamrle3", "approx", "hit_rate", approx_rate)
    assert abs(exact_rate - approx_rate) < 0.15


# -------------------------------------------------------- csrcolor hashes
def test_ablation_csrcolor_hashes(benchmark, suite, scale_div, recorder):
    """More hash functions per round: fewer rounds, but colors stay high —
    quality is inherent to burning 2N fresh colors per round."""

    def run():
        graph = suite["rmat-er"]
        return {
            nh: color_graph(graph, method="csrcolor", num_hashes=nh)
            for nh in (1, 2, 3, 6)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: csrcolor hash count (rmat-er)", scale_div)
    print(format_table(
        ["hashes", "colors", "rounds", "sim us"],
        [[nh, r.num_colors, r.iterations, round(r.total_time_us, 1)]
         for nh, r in results.items()],
    ))
    for nh, r in results.items():
        recorder.add("ablation-hashes", "rmat-er", f"N{nh}", "colors", r.num_colors)
        recorder.add("ablation-hashes", "rmat-er", f"N{nh}", "time_us", r.total_time_us)

    rounds = [results[nh].iterations for nh in (1, 2, 3, 6)]
    assert rounds == sorted(rounds, reverse=True)  # more hashes, fewer rounds
    seq_colors = greedy_sequential(suite["rmat-er"]).num_colors
    assert all(r.num_colors >= 3 * seq_colors for r in results.values())


# --------------------------------------------------------- conflict scope
def test_ablation_conflict_scope(benchmark, suite, scale_div, recorder):
    """Alg. 4's all-vertex conflict rescan vs the active-only refinement —
    quantifies the work-inefficiency the data-driven scheme removes."""

    def run():
        out = {}
        for name in ("thermal2", "rmat-er"):
            graph = suite[name]
            full = color_graph(graph, method="topo-base", conflict_scope="all")
            act = color_graph(graph, method="topo-base", conflict_scope="active")
            out[name] = (full, act)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: conflict-detection scope (Alg. 4)", scale_div)
    print(format_table(
        ["graph", "scope=all us", "scope=active us", "gain"],
        [[name, round(f.total_time_us, 1), round(a.total_time_us, 1),
          round(f.total_time_us / a.total_time_us, 2)]
         for name, (f, a) in data.items()],
    ))
    for name, (full, act) in data.items():
        recorder.add("ablation-scope", name, "all", "time_us", full.total_time_us)
        recorder.add("ablation-scope", name, "active", "time_us", act.total_time_us)
        assert np.array_equal(full.colors, act.colors)  # identical output
        assert act.total_time_us <= full.total_time_us * 1.02
    # Many-round mesh graphs benefit the most.
    f, a = data["thermal2"]
    assert f.total_time_us / a.total_time_us > 1.3


# ---------------------------------------------------------------- ordering
def test_ablation_sequential_ordering(benchmark, suite, scale_div, recorder):
    """Ordering heuristics change the baseline's color count — the quality
    bar every parallel scheme is judged against."""

    def run():
        graph = suite["rmat-g"]
        return {
            name: greedy_sequential(graph, ordering=name)
            for name in ("natural", "random", "largest-first", "smallest-last", "incidence")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: sequential ordering heuristics (rmat-g)", scale_div)
    print(format_table(
        ["ordering", "colors"],
        [[name, r.num_colors] for name, r in results.items()],
    ))
    for name, r in results.items():
        recorder.add("ablation-ordering", "rmat-g", name, "colors", r.num_colors)

    # Degree-aware orderings never lose to natural order on a skewed graph.
    assert results["smallest-last"].num_colors <= results["natural"].num_colors
    assert results["largest-first"].num_colors <= results["natural"].num_colors + 2


# ------------------------------------------------------------- race window
def test_ablation_race_window(benchmark, suite, scale_div, recorder):
    """Sensitivity of convergence to the SIMT race-window model: wider
    visibility windows create more speculation conflicts and more rounds."""
    from repro.coloring.kernels import detect_conflicts, speculative_color_waved

    def run():
        graph = suite["rmat-er"]
        out = {}
        for window in (1, 32, 256, 4096):
            colors = np.zeros(graph.num_vertices, dtype=np.int32)
            active = np.arange(graph.num_vertices, dtype=np.int64)
            rounds = 0
            while active.size:
                speculative_color_waved(graph, colors, active, window)
                active = detect_conflicts(graph, colors, active)
                rounds += 1
            out[window] = (rounds, int(colors.max()))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: race-window width vs convergence (rmat-er)", scale_div)
    print(format_table(
        ["window (threads)", "rounds", "colors"],
        [[w, r, c] for w, (r, c) in data.items()],
    ))
    for w, (r, c) in data.items():
        recorder.add("ablation-window", "rmat-er", f"w{w}", "rounds", r)

    rounds = [data[w][0] for w in (1, 32, 256, 4096)]
    assert rounds[0] == 1  # window 1 is sequential: no conflicts
    assert rounds == sorted(rounds)  # monotone in window width


# ------------------------------------------------------ warp load balancing
def test_ablation_load_balance(benchmark, suite, scale_div, recorder):
    """Warp-centric mapping for hub vertices (the paper's future-work
    direction for skewed graphs): edge-parallel hubs remove intra-warp
    imbalance and coalesce the C-array walk."""

    def run():
        out = {}
        for name in ("rmat-g", "rmat-er", "thermal2"):
            base = color_graph(suite[name], method="data-base")
            lb = color_graph(suite[name], method="data-lb")
            out[name] = (base, lb)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: warp-centric load balancing (extension)", scale_div)
    print(format_table(
        ["graph", "data-base us", "data-lb us", "gain"],
        [[name, round(b.total_time_us, 1), round(l.total_time_us, 1),
          round(b.total_time_us / l.total_time_us, 2)]
         for name, (b, l) in data.items()],
    ))
    for name, (b, l) in data.items():
        recorder.add("ablation-lb", name, "data-base", "time_us", b.total_time_us)
        recorder.add("ablation-lb", name, "data-lb", "time_us", l.total_time_us)
        assert np.array_equal(b.colors, l.colors)  # cost-only transformation

    # The skewed graph gains decisively; near-regular graphs are unharmed.
    b, l = data["rmat-g"]
    assert b.total_time_us / l.total_time_us > 1.15
    for name in ("rmat-er", "thermal2"):
        b, l = data[name]
        assert l.total_time_us <= b.total_time_us * 1.10, name


# ------------------------------------------------------- distance-2 coloring
def test_ablation_distance2(benchmark, suite, scale_div, recorder):
    """Distance-2 coloring (extension): the Jacobian-compression variant.
    D2 color counts must exceed D1's and respect the two-hop bound."""
    from repro.coloring.distance2 import color_distance2_gpu, validate_distance2
    from repro.graph.generators import load_graph

    def run():
        out = {}
        for name in ("thermal2", "G3_circuit"):
            graph = load_graph(name, scale_div=max(scale_div * 4, 64))
            d1 = color_graph(graph, method="sequential")
            d2 = color_distance2_gpu(graph)
            validate_distance2(graph, d2)
            out[name] = (graph, d1, d2)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: distance-1 vs distance-2 coloring (extension)", scale_div)
    print(format_table(
        ["graph", "d1 colors", "d2 colors", "d2 sim us"],
        [[name, d1.num_colors, d2.num_colors, round(d2.total_time_us, 1)]
         for name, (g, d1, d2) in data.items()],
    ))
    for name, (graph, d1, d2) in data.items():
        recorder.add("ablation-d2", name, "d1", "colors", d1.num_colors)
        recorder.add("ablation-d2", name, "d2", "colors", d2.num_colors)
        assert d2.num_colors >= d1.num_colors
        assert d2.num_colors <= graph.max_degree ** 2 + 1


# ------------------------------------------------- vertex-order trade-off
def test_ablation_vertex_ordering_tradeoff(benchmark, suite, scale_div, recorder):
    """Vertex labeling faces two *opposing* forces the simulator exposes:

    * natural mesh order packs neighbors into the same warp -> good cache
      locality per round, but lockstep races force many speculation rounds;
    * random labels kill the races (cross-warp neighbors commit between
      waves) but scatter the color gathers.

    This quantifies both — the mechanism behind the paper's observation
    that its schemes degrade on large sparse (natural-order) graphs.
    """
    from repro.graph.relabel import bandwidth, relabel
    import numpy as np

    def run():
        graph = suite["G3_circuit"]
        rng = np.random.default_rng(0)
        shuffled = relabel(
            graph, rng.permutation(graph.num_vertices), name="G3-shuffled"
        )
        out = {}
        for g in (graph, shuffled):
            r = color_graph(g, method="data-base")
            out[g.name] = (bandwidth(g), r)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: natural vs randomized vertex labels (G3_circuit)", scale_div)
    print(format_table(
        ["labeling", "bandwidth", "rounds", "round-0 us", "total us"],
        [[name, bw, r.iterations, round(r.profiles[0].time_us, 1),
          round(r.total_time_us, 1)]
         for name, (bw, r) in data.items()],
    ))
    (nat_bw, nat), (shuf_bw, shuf) = data.values()
    recorder.add("ablation-labels", "G3_circuit", "natural", "time_us", nat.total_time_us)
    recorder.add("ablation-labels", "G3_circuit", "shuffled", "time_us", shuf.total_time_us)

    # Locality effect: the shuffled round-0 kernel is decisively slower.
    assert shuf.profiles[0].time_us > 1.5 * nat.profiles[0].time_us
    # Race effect: shuffling collapses the speculation round count.
    assert shuf.iterations < nat.iterations
    # Both colorings stay greedy-quality.
    assert abs(nat.num_colors - shuf.num_colors) <= 2


# --------------------------------------------------------- iterated greedy
def test_ablation_iterated_greedy(benchmark, suite, scale_div, recorder):
    """Culberson recoloring polish on top of the GPU scheme's output."""
    from repro.coloring.iterated import iterated_greedy

    def run():
        out = {}
        for name in ("rmat-g", "thermal2", "G3_circuit"):
            gpu = color_graph(suite[name], method="data-ldg")
            polished = iterated_greedy(suite[name], initial=gpu.colors, iterations=8)
            out[name] = (gpu.num_colors, polished.num_colors)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: iterated-greedy polish of data-ldg colorings", scale_div)
    print(format_table(
        ["graph", "data-ldg colors", "after polish"],
        [[name, a, b] for name, (a, b) in data.items()],
    ))
    for name, (before, after) in data.items():
        recorder.add("ablation-iterated", name, "data-ldg", "colors", before)
        recorder.add("ablation-iterated", name, "polished", "colors", after)
        assert after <= before  # Culberson's invariant
    assert any(after < before for before, after in data.values())


# ----------------------------------------------------------- device scaling
def test_ablation_device_scaling(benchmark, suite, scale_div, recorder):
    """Same kernels on three Kepler parts (4/13/15 SMs): latency-bound
    kernels scale with resident-warp capacity, not linearly with SMs."""
    from repro.gpusim import Device, KEPLER_K20C, KEPLER_K40, KEPLER_SMALL

    def run():
        out = {}
        for cfg in (KEPLER_SMALL, KEPLER_K20C, KEPLER_K40):
            times = {}
            for name in ("rmat-er", "thermal2"):
                r = color_graph(suite[name], method="data-ldg", device=Device(cfg))
                times[name] = r.total_time_us
            out[cfg.name] = times
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: device scaling (extension)", scale_div)
    graphs = ("rmat-er", "thermal2")
    print(format_table(
        ["device"] + list(graphs),
        [[dev] + [round(times[g], 1) for g in graphs] for dev, times in data.items()],
    ))
    for dev, times in data.items():
        for g, t in times.items():
            recorder.add("ablation-devices", g, dev, "time_us", t)

    for g in graphs:
        small, k20, k40 = (data[d][g] for d in ("GK106-small", "K20c", "K40"))
        assert small > k20 >= k40 * 0.98  # monotone with device size
        assert small / k40 < (15 / 4) * 1.5  # but sublinear in SM count


# ----------------------------------------------------- csrcolor fraction
def test_ablation_csrcolor_fraction(benchmark, suite, scale_div, recorder):
    """cuSPARSE's fractionToColor fast path: stop electing once the bulk is
    colored and uniquely color the hub tail — the knob that trades colors
    for a large speedup on skewed graphs."""

    def run():
        graph = suite["rmat-g"]
        return {
            frac: color_graph(graph, method="csrcolor", fraction=frac)
            for frac in (1.0, 0.95, 0.9)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: csrcolor fractionToColor (rmat-g)", scale_div)
    print(format_table(
        ["fraction", "colors", "rounds", "sim us"],
        [[f, r.num_colors, r.iterations, round(r.total_time_us, 1)]
         for f, r in results.items()],
    ))
    for f, r in results.items():
        recorder.add("ablation-fraction", "rmat-g", f"f{f}", "time_us", r.total_time_us)
        recorder.add("ablation-fraction", "rmat-g", f"f{f}", "colors", r.num_colors)

    times = [results[f].total_time_us for f in (1.0, 0.95, 0.9)]
    colors = [results[f].num_colors for f in (1.0, 0.95, 0.9)]
    assert times == sorted(times, reverse=True)  # smaller fraction, faster
    assert colors == sorted(colors)  # ... and more colors


# ---------------------------------------------- edge-parallel conflicts
def test_ablation_edge_conflicts(benchmark, suite, scale_div, recorder):
    """Vertex- vs edge-parallel conflict detection (extension): the edge
    mapping is perfectly balanced, which pays on the skewed graph."""

    def run():
        out = {}
        for name in ("rmat-g", "rmat-er"):
            v = color_graph(suite[name], method="topo-base",
                            conflict_parallelism="vertex")
            e = color_graph(suite[name], method="topo-base",
                            conflict_parallelism="edge")
            out[name] = (v, e)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: vertex- vs edge-parallel conflict pass", scale_div)
    print(format_table(
        ["graph", "vertex us", "edge us", "edge gain"],
        [[name, round(v.total_time_us, 1), round(e.total_time_us, 1),
          round(v.total_time_us / e.total_time_us, 2)]
         for name, (v, e) in data.items()],
    ))
    for name, (v, e) in data.items():
        recorder.add("ablation-edgeconf", name, "vertex", "time_us", v.total_time_us)
        recorder.add("ablation-edgeconf", name, "edge", "time_us", e.total_time_us)
        assert np.array_equal(v.colors, e.colors)
    v, e = data["rmat-g"]
    assert e.total_time_us < v.total_time_us  # balance wins on skew
