"""Fig. 6 — the number of colors used by each scheme on each graph.

Paper claims reproduced in shape: the six speculative-greedy-derived
schemes (sequential, 3-step GM, T-base, T-ldg, D-base, D-ldg) land within
a few colors of each other, while csrcolor needs several times more
(4.9x-23x in the paper).
"""

from repro.coloring.api import EVALUATED_SCHEMES
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _run_fig6(suite, run_scheme):
    return {
        name: {scheme: run_scheme(name, scheme).num_colors for scheme in EVALUATED_SCHEMES}
        for name in suite
    }


def test_fig6(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(_run_fig6, args=(suite, run_scheme), rounds=1, iterations=1)

    print_banner("Fig. 6: number of colors per scheme", scale_div)
    rows = [[name] + [row[s] for s in EVALUATED_SCHEMES] for name, row in data.items()]
    print(format_table(["graph"] + list(EVALUATED_SCHEMES), rows))

    for name, row in data.items():
        for scheme, colors in row.items():
            recorder.add("fig6", name, scheme, "colors", colors)

    for name, row in data.items():
        seq = row["sequential"]
        sgr = [row[s] for s in EVALUATED_SCHEMES if s != "csrcolor"]
        # All SGR-derived schemes within a small band of each other...
        assert max(sgr) - min(sgr) <= max(4, int(0.5 * seq)), name
        # ...while csrcolor uses several times more colors (paper: 4.9-23x).
        ratio = row["csrcolor"] / seq
        assert ratio >= 3.0, (name, ratio)
        assert ratio <= 40.0, (name, ratio)
