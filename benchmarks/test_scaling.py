"""Graph-size scaling (Section IV's discussion, extension experiment).

The paper notes its schemes are sensitive to scale and sparsity ("with
very large scale the kernel becomes extremely memory latency bound") and
that GPU benefits need large inputs.  This sweep runs rmat-er at three
sizes and checks the two ends of that story: GPU speedup over sequential
grows with graph size (fixed costs amortize), and the kernel stays
latency-bound throughout.
"""

from repro.coloring.api import color_graph
from repro.graph.generators import load_graph
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

SCALES = (64, 32, 16)  # divisors of paper size: 16k, 32k, 65k vertices


def _run_scaling():
    out = {}
    for div in SCALES:
        g = load_graph("rmat-er", scale_div=div)
        seq = color_graph(g, method="sequential")
        gpu = color_graph(g, method="data-ldg")
        out[div] = (g.num_vertices, seq.total_time_us / gpu.total_time_us,
                    gpu.profiles[0].bound)
    return out


def test_scaling(benchmark, scale_div, recorder):
    data = benchmark.pedantic(_run_scaling, rounds=1, iterations=1)
    print_banner("Scaling: data-ldg speedup vs graph size (rmat-er)", scale_div)
    print(format_table(
        ["scale", "vertices", "speedup vs seq", "round-0 bound"],
        [[f"1/{div}", n, round(sp, 2), bound]
         for div, (n, sp, bound) in data.items()],
    ))
    for div, (n, sp, bound) in data.items():
        recorder.add("scaling", "rmat-er", f"div{div}", "speedup", sp, n=n)

    speedups = [data[div][1] for div in SCALES]
    # GPU advantage grows with input size (launch/PCIe overheads amortize,
    # waves fill) ...
    assert speedups == sorted(speedups)
    # ... and the kernel is latency-bound at every size.
    assert all(data[div][2] == "memory_latency" for div in SCALES)
