"""Fig. 7 — runtime speedup of every scheme over the sequential baseline.

Paper claims reproduced in shape:
  * 3-step GM is slower than sequential (paper: 0.66x average);
  * topology-driven achieves ~2x and lands close to csrcolor;
  * data-driven is fastest (~3x; ~1.5x over csrcolor on average);
  * data-driven beats topology-driven decisively on the sparse mesh-like
    graphs (thermal2, atmosmodd, G3_circuit);
  * Hamrle3: our schemes significantly outperform csrcolor.
"""

from repro.coloring.api import EVALUATED_SCHEMES
from repro.metrics.speedup import geomean
from repro.metrics.table import format_table

from benchmarks.conftest import print_banner

GPU_SCHEMES = tuple(s for s in EVALUATED_SCHEMES if s != "sequential")


def _run_fig7(suite, run_scheme):
    out = {}
    for name in suite:
        seq_us = run_scheme(name, "sequential").total_time_us
        out[name] = {
            scheme: seq_us / run_scheme(name, scheme).total_time_us
            for scheme in GPU_SCHEMES
        }
    return out


def test_fig7(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(_run_fig7, args=(suite, run_scheme), rounds=1, iterations=1)

    print_banner("Fig. 7: speedup over the sequential implementation", scale_div)
    rows = [
        [name] + [round(row[s], 2) for s in GPU_SCHEMES] for name, row in data.items()
    ]
    means = ["geomean"] + [
        round(geomean([data[g][s] for g in data]), 2) for s in GPU_SCHEMES
    ]
    print(format_table(["graph"] + list(GPU_SCHEMES), rows + [means]))

    for name, row in data.items():
        for scheme, sp in row.items():
            recorder.add("fig7", name, scheme, "speedup", sp)

    gm = {s: geomean([data[g][s] for g in data]) for s in GPU_SCHEMES}

    # 3-step GM slower than sequential on average.
    assert gm["3step-gm"] < 1.0
    # Topology- and data-driven beat sequential on average.
    assert gm["topo-base"] > 1.0
    assert gm["data-base"] > 1.3
    # Data-driven is the fastest family and beats csrcolor on average
    # (paper: 1.5x; accept anything decisively above parity).
    assert gm["data-ldg"] >= gm["topo-ldg"]
    assert gm["data-ldg"] > 1.2 * gm["csrcolor"]
    # Topology-driven lands in csrcolor's neighborhood.
    assert 0.5 <= gm["topo-ldg"] / gm["csrcolor"] <= 3.0
    # ldg never hurts on average.
    assert gm["topo-ldg"] >= gm["topo-base"]
    assert gm["data-ldg"] >= gm["data-base"]

    # Per-graph calls the paper makes explicitly:
    for mesh in ("thermal2", "atmosmodd"):
        assert data[mesh]["data-base"] > 1.2 * data[mesh]["topo-base"], mesh
    assert data["Hamrle3"]["data-ldg"] > 1.5 * data["Hamrle3"]["csrcolor"]
