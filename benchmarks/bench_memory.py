#!/usr/bin/env python
"""Peak-memory + attach-latency benchmark for the graph storage arenas.

The zero-copy refactor's whole claim is that pool workers stop paying an
``O(graph)`` private copy per process.  This suite measures that claim
directly: for each store kind, a forked child process snapshots its
*private dirty* memory (``/proc/self/smaps_rollup`` Private_Dirty —
the anonymous-copy signal), materializes the benchmark graph the way a pool worker
would — unpickling bytes for ``heap``, attaching a
:class:`~repro.graph.store.GraphHandle` for ``shm``/``mmap`` — touches
every topology page, and reports the private-memory delta plus the
materialize/touch latency:

* ``heap``   — the delta is ~the full topology (a private copy: the old
  behavior, kept as the measured control).
* ``shm``    — pages map from the shared segment; the private delta
  stays near zero no matter the graph size.
* ``mmap``   — pages come from the OS page cache; private delta near
  zero, and nothing needs to fit in RAM at once.

Usage::

    python benchmarks/bench_memory.py                 # measure + print
    python benchmarks/bench_memory.py --check         # gate (exit 1)
    python benchmarks/bench_memory.py --update        # rewrite BENCH_memory.json

The committed ``BENCH_memory.json`` records the measured deltas; the
``--check`` gate (also ``regression_gate.py --memory``) enforces the
*structural invariant* rather than exact bytes — shm/mmap private deltas
must stay under :data:`SHARED_FRACTION_LIMIT` of the topology (plus a
small allocator slack), while the heap control must still pay most of a
full copy (proving the measurement works) — so a refactor that quietly
reintroduces per-worker copies fails CI even across machine classes.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pickle
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph import from_edges  # noqa: E402
from repro.graph.store import MmapStore, SharedMemoryStore  # noqa: E402

RECORD_PATH = Path(__file__).parent / "BENCH_memory.json"

#: Benchmark graph scale: ~10 MB of topology — big enough that a private
#: copy dominates allocator noise, small enough for CI.
NUM_VERTICES = 120_000
AVG_DEGREE = 16
SEED = 20160516  # the paper's conference date; fixed graph across runs

#: A zero-copy attach may privately dirty at most this fraction of the
#: topology (page-table and ndarray-view overhead) plus the slack below.
SHARED_FRACTION_LIMIT = 0.25
PRIVATE_SLACK_BYTES = 4 << 20

#: The heap control must pay at least this fraction of a full copy —
#: otherwise the measurement itself is broken and the gate is vacuous.
HEAP_FRACTION_FLOOR = 0.5


def build_graph():
    rng = np.random.default_rng(SEED)
    m = NUM_VERTICES * AVG_DEGREE // 2
    u = rng.integers(0, NUM_VERTICES, size=m, dtype=np.int64)
    v = rng.integers(0, NUM_VERTICES, size=m, dtype=np.int64)
    return from_edges(u, v, num_vertices=NUM_VERTICES, name="bench-mem")


def _private_bytes() -> int:
    """Private *dirty* bytes of this process.

    ``Private_Dirty`` is the copy signal: an unpickled graph is anonymous
    dirty memory, while pages read from an mmap'd file stay clean
    (evictable page cache, shared by every process that maps the file)
    and shared-memory pages are shared with the publishing coordinator.
    ``Private_Clean`` is deliberately excluded — a lone reader of an
    mmap'd file reports its resident file pages there even though no
    copy exists and a second reader would share them all.
    """
    with open("/proc/self/smaps_rollup", "r", encoding="ascii") as f:
        for line in f:
            if line.startswith("Private_Dirty:"):
                return int(line.split()[1]) << 10
    return 0


def _child(mode: str, payload, conn) -> None:
    """Worker-side measurement: materialize, touch, report deltas."""
    base = _private_bytes()
    t0 = time.perf_counter()
    if mode == "heap":
        graph = pickle.loads(payload)
    else:
        graph = payload.attach()
    materialize_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    # Touch every topology page the way a kernel sweep would.  Sum with
    # an explicit int64 *accumulator* — a dtype cast of the arrays would
    # allocate the very private copy this benchmark exists to rule out.
    checksum = int(graph.row_offsets.sum(dtype=np.int64)) ^ int(
        graph.col_indices.sum(dtype=np.int64)
    )
    touch_s = time.perf_counter() - t0
    conn.send({
        "private_delta_bytes": _private_bytes() - base,
        "materialize_ms": round(materialize_s * 1e3, 3),
        "touch_ms": round(touch_s * 1e3, 3),
        "checksum": checksum,
    })
    conn.close()


def _measure(mode: str, payload) -> dict:
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child, args=(mode, payload, child_conn))
    proc.start()
    child_conn.close()
    out = parent_conn.recv()
    proc.join(timeout=60)
    return out


def run_profile() -> dict:
    graph = build_graph()
    topology = graph.memory_bytes()
    graph.content_digest()  # memoize: ship the digest, not a re-hash
    workers: dict[str, dict] = {}

    blob = pickle.dumps(graph)
    workers["heap"] = _measure("heap", blob)

    shm = SharedMemoryStore()
    try:
        _, handle = shm.publish(graph)
        workers["shm"] = _measure("shm", handle)
    finally:
        shm.close()

    mm = MmapStore()
    try:
        _, handle = mm.publish(graph)
        workers["mmap"] = _measure("mmap", handle)
    finally:
        mm.close()

    reference = workers["heap"]["checksum"]
    for mode, row in workers.items():
        if row.pop("checksum") != reference:
            raise AssertionError(f"{mode}: topology bytes differ from heap copy")
    return {
        "graph": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "topology_bytes": topology,
        },
        "workers": workers,
        "ratios": {
            f"{mode}_vs_topology": round(
                row["private_delta_bytes"] / topology, 4
            )
            for mode, row in workers.items()
        },
    }


def check(profile: dict) -> int:
    """Enforce the no-per-worker-copy invariant; 0 = pass."""
    topology = profile["graph"]["topology_bytes"]
    limit = SHARED_FRACTION_LIMIT * topology + PRIVATE_SLACK_BYTES
    failures = []
    for mode in ("shm", "mmap"):
        delta = profile["workers"][mode]["private_delta_bytes"]
        status = "ok" if delta <= limit else "FAIL"
        print(f"{mode:>5}: private delta {delta / 2**20:7.2f} MiB "
              f"(limit {limit / 2**20:.2f} MiB of {topology / 2**20:.2f} MiB "
              f"topology)  {status}")
        if delta > limit:
            failures.append(
                f"{mode}: worker privately copied {delta} B of a {topology} B "
                f"graph — the zero-copy path regressed"
            )
    heap_delta = profile["workers"]["heap"]["private_delta_bytes"]
    floor = HEAP_FRACTION_FLOOR * topology
    status = "ok" if heap_delta >= floor else "FAIL"
    print(f" heap: private delta {heap_delta / 2**20:7.2f} MiB "
          f"(control floor {floor / 2**20:.2f} MiB)  {status}")
    if heap_delta < floor:
        failures.append(
            f"heap control paid only {heap_delta} B of a {topology} B copy — "
            f"the measurement is not seeing worker memory"
        )
    if failures:
        print("\nmemory gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nmemory gate passed: workers pay no O(graph) private copy "
          "on shm/mmap stores")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_memory.json from this run")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail if a store kind privately copies "
                             "the graph")
    args = parser.parse_args(argv)

    profile = run_profile()
    print(json.dumps(profile, indent=1, sort_keys=True))
    if args.update:
        record = {
            "profile": profile,
            "meta": {
                "machine": platform.machine(),
                "python": platform.python_version(),
                "invariant": {
                    "shared_fraction_limit": SHARED_FRACTION_LIMIT,
                    "private_slack_bytes": PRIVATE_SLACK_BYTES,
                    "heap_fraction_floor": HEAP_FRACTION_FLOOR,
                },
            },
        }
        RECORD_PATH.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote memory record -> {RECORD_PATH}")
    if args.check or not args.update:
        print()
        return check(profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
