"""Fig. 5 — prefix-sum scatter offsets instead of per-push atomics.

Fig. 5 illustrates the mechanism; the measurable claim (Section III.C) is
that building the out-worklist with a block-level prefix sum plus one
atomic per block beats one global atomic per pushed vertex, because the
naive variant serializes every push on a single counter line at one
atomic unit.  This ablation compares the two data-driven variants and the
atomic-unit cycles the model attributes to each.
"""

from repro.metrics.table import format_table

from benchmarks.conftest import print_banner


def _run_scan_ablation(suite, run_scheme):
    out = {}
    for name in suite:
        scan = run_scheme(name, "data-base", (("worklist_strategy", "scan"),))
        atomic = run_scheme(name, "data-base", (("worklist_strategy", "atomic"),))
        out[name] = {
            "scan_us": scan.total_time_us,
            "atomic_us": atomic.total_time_us,
            "scan_atomic_cycles": sum(p.terms["atomic"] for p in scan.profiles),
            "naive_atomic_cycles": sum(p.terms["atomic"] for p in atomic.profiles),
        }
    return out


def test_fig5_scan(benchmark, suite, run_scheme, scale_div, recorder):
    data = benchmark.pedantic(
        _run_scan_ablation, args=(suite, run_scheme), rounds=1, iterations=1
    )

    print_banner("Fig. 5 ablation: prefix-sum vs per-push atomics", scale_div)
    rows = [
        [
            name,
            round(d["scan_us"], 1),
            round(d["atomic_us"], 1),
            round(d["atomic_us"] / d["scan_us"], 2),
            int(d["scan_atomic_cycles"]),
            int(d["naive_atomic_cycles"]),
        ]
        for name, d in data.items()
    ]
    print(format_table(
        ["graph", "scan us", "atomic us", "atomic/scan",
         "scan AOU cycles", "naive AOU cycles"],
        rows,
    ))
    for name, d in data.items():
        recorder.add("fig5", name, "data-base", "scan_us", d["scan_us"])
        recorder.add("fig5", name, "data-base", "atomic_us", d["atomic_us"])

    for name, d in data.items():
        # The prefix-sum build never loses beyond noise (with near-empty
        # worklists its fixed block-scan cost buys nothing — parity).
        assert d["scan_us"] <= d["atomic_us"] * 1.05, name
    # Where speculation actually produces pushes in volume (the natural-
    # order meshes), the naive build pays several times the atomic-unit
    # cycles; on the randomly-wired graphs the worklists are tiny and the
    # two variants converge — also a faithful outcome.
    for name in ("thermal2", "atmosmodd", "G3_circuit"):
        d = data[name]
        assert d["naive_atomic_cycles"] > 3 * d["scan_atomic_cycles"], name
