"""Zero-copy storage: per-worker memory and attach latency (extension).

The graph arenas (:mod:`repro.graph.store`) exist so pool workers stop
paying an ``O(graph)`` private copy per process.  This benchmark prints
the measured per-worker private-memory deltas and materialize/touch
latencies for all three store kinds (reusing ``bench_memory.py``'s
forked-child measurement) and asserts the structural invariant the
``--memory`` regression gate enforces: shm/mmap attach for a small
fraction of the topology while the pickled heap control pays a full
copy.  A second test pins the out-of-core path: streaming a graph under
a memory budget keeps the peak resident window a fraction of the whole
topology while producing byte-identical colors.
"""

from __future__ import annotations

import numpy as np

from repro.graph import from_edges
from repro.metrics.table import format_table
from repro.parallel import color_sharded, color_streamed

from benchmarks import bench_memory
from benchmarks.conftest import print_banner


def test_zero_copy_worker_memory(scale_div, recorder):
    profile = bench_memory.run_profile()
    topology = profile["graph"]["topology_bytes"]

    print_banner(
        f"graph-store attach: {profile['graph']['num_vertices']} vertices, "
        f"{topology / 2**20:.1f} MiB topology",
        scale_div,
    )
    rows = []
    for mode in ("heap", "shm", "mmap"):
        row = profile["workers"][mode]
        ratio = profile["ratios"][f"{mode}_vs_topology"]
        rows.append([
            mode,
            round(row["private_delta_bytes"] / 2**20, 2),
            ratio,
            row["materialize_ms"],
            row["touch_ms"],
        ])
        recorder.add(
            "zero-copy", "bench-mem", mode, "private_mib",
            row["private_delta_bytes"] / 2**20,
            ratio_vs_topology=ratio,
            materialize_ms=row["materialize_ms"],
            touch_ms=row["touch_ms"],
        )
    print(format_table(
        ["store", "private MiB", "x topology", "materialize ms", "touch ms"],
        rows,
    ))

    assert bench_memory.check(profile) == 0, (
        "zero-copy invariant failed (see gate output above)"
    )
    # Attach must also be cheaper than unpickling a full copy.
    heap_ms = profile["workers"]["heap"]["materialize_ms"]
    for mode in ("shm", "mmap"):
        assert profile["workers"][mode]["materialize_ms"] < heap_ms, (
            f"{mode} attach ({profile['workers'][mode]['materialize_ms']} ms) "
            f"slower than heap unpickle ({heap_ms} ms)"
        )


def test_streaming_peak_window(scale_div, recorder):
    rng = np.random.default_rng(7)
    n, m = 30_000, 120_000
    graph = from_edges(
        rng.integers(0, n, size=m), rng.integers(0, n, size=m),
        num_vertices=n, name="stream-bench",
    )
    budget_mb = graph.memory_bytes() / 2**20 / 8

    streamed = color_streamed(graph, memory_budget_mb=budget_mb)
    stats = streamed.shard_stats
    # Streaming replicates the sharded partition cut at the same window
    # count, so the in-memory sharded run is the byte-identity reference.
    full = color_sharded(graph, num_shards=stats["num_shards"])

    print_banner(
        f"out-of-core streaming: budget {budget_mb:.2f} MiB of "
        f"{graph.memory_bytes() / 2**20:.2f} MiB graph",
        scale_div,
    )
    print(format_table(
        ["windows", "peak window MiB", "x topology", "colors"],
        [[stats["num_shards"],
          round(stats["peak_window_bytes"] / 2**20, 3),
          round(stats["peak_window_bytes"] / graph.memory_bytes(), 3),
          streamed.num_colors]],
    ))
    recorder.add(
        "zero-copy", "stream-bench", "streamed", "peak_window_mib",
        stats["peak_window_bytes"] / 2**20,
        windows=stats["num_shards"],
        budget_mb=budget_mb,
    )

    assert np.array_equal(streamed.colors, full.colors), (
        "streamed colors diverged from the one-shard reference"
    )
    # The point of streaming: no window ever materializes the whole graph.
    assert stats["num_shards"] > 1
    assert stats["peak_window_bytes"] < graph.memory_bytes() / 2
