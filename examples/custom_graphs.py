"""Bringing your own graphs: files, SciPy matrices, NetworkX, generators.

Shows every ingestion path the library supports, including the
MatrixMarket reader that accepts genuine SuiteSparse downloads (thermal2,
atmosmodd, Hamrle3, G3_circuit) when you have them.

Run:  python examples/custom_graphs.py
"""

import tempfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro import color_graph, from_edges
from repro.graph.builder import from_networkx, from_scipy
from repro.graph.generators import barabasi_albert, watts_strogatz
from repro.graph.io.binary import save_npz, load_npz
from repro.graph.io.matrix_market import read_matrix_market, write_matrix_market


def main() -> None:
    # 1. Raw edge arrays (symmetrized, deduplicated, self-loops dropped).
    u = np.array([0, 1, 2, 3, 3, 0])
    v = np.array([1, 2, 3, 0, 1, 0])
    g = from_edges(u, v, num_vertices=4, name="hand-built")
    print(f"{g} -> {color_graph(g, method='sequential').num_colors} colors")

    # 2. A SciPy sparse matrix pattern (a small Poisson operator).
    import scipy.sparse as sp
    lap = sp.diags_array([-1, 2, -1], offsets=[-1, 0, 1], shape=(50, 50))
    g = from_scipy(sp.csr_array(lap), name="tridiag")
    print(f"{g} -> {color_graph(g, method='data-base').num_colors} colors")

    # 3. NetworkX interoperability.
    import networkx as nx
    g = from_networkx(nx.petersen_graph(), name="petersen")
    print(f"{g} -> {color_graph(g, method='sequential').num_colors} colors "
          f"(chromatic number of Petersen is 3)")

    # 4. Classic generators for experiments.
    for graph in (barabasi_albert(500, 4, seed=1), watts_strogatz(500, 6, 0.1, seed=1)):
        result = color_graph(graph, method="data-ldg")
        print(f"{graph} -> {result.num_colors} colors, "
              f"{result.total_time_us:.0f} simulated us")

    # 5. File round trips: MatrixMarket (SuiteSparse format) and fast .npz.
    with tempfile.TemporaryDirectory() as tmp:
        mtx = Path(tmp) / "mine.mtx"
        write_matrix_market(graph, mtx)
        back = read_matrix_market(mtx)
        print(f"MatrixMarket round trip: {back}")

        npz = Path(tmp) / "mine.npz"
        save_npz(graph, npz)
        print(f".npz round trip: {load_npz(npz)}")

    print("\nTo run the paper's experiments on the *real* SuiteSparse inputs:")
    print("  repro-color compare --graph /path/to/thermal2.mtx")


if __name__ == "__main__":
    main()
