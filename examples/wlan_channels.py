"""WLAN channel assignment via interference-graph coloring.

The intro's frequency-allocation application (Riihijarvi et al.): access
points within radio range must not share a channel.  Denser deployments
need more channels; the coloring's color count *is* the spectrum demand.

Run:  python examples/wlan_channels.py
"""

import numpy as np

from repro.apps.frequency import AccessPointField, plan_channels
from repro.metrics.table import format_table


def main() -> None:
    rows = []
    for radius in (0.03, 0.05, 0.08, 0.12):
        field = AccessPointField.random(400, radius, seed=11)
        graph = field.interference_graph()
        plan = plan_channels(field, method="sequential")
        rows.append(
            [
                radius,
                graph.num_undirected_edges,
                round(graph.avg_degree, 1),
                plan.num_channels,
                "yes" if plan.fits_80211 else "no",
            ]
        )
        assert plan.max_cochannel_distance_violations == 0
    print(
        format_table(
            ["radius", "interfering pairs", "avg degree", "channels",
             "fits 3-ch 2.4GHz"],
            rows,
            title="400 access points on the unit square:",
        )
    )

    # Channel utilization for a realistic deployment.
    field = AccessPointField.random(400, 0.06, seed=11)
    plan = plan_channels(field, method="sequential")
    usage = np.bincount(plan.channels)
    print(f"\nchannels needed at radius 0.06: {plan.num_channels}")
    print(f"APs per channel: {usage.tolist()}")


if __name__ == "__main__":
    main()
