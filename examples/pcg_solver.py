"""The full HPCG-style pipeline: color -> SGS preconditioner -> PCG.

Shows the solver-side consequence of coloring quality: every color adds
two serial phases to each preconditioner application, so csrcolor's
inflated palette directly lengthens the critical path even though the
numerics are identical.

Run:  python examples/pcg_solver.py
"""

import numpy as np

from repro.apps import ColoredSGSPreconditioner, graph_laplacian, pcg
from repro.coloring import chromatic_number
from repro.graph.generators import load_graph
from repro.metrics.table import format_table


def main() -> None:
    g = load_graph("G3_circuit", scale_div=256)
    lap = graph_laplacian(g, shift=0.02)
    rng = np.random.default_rng(0)
    x_true = rng.random(g.num_vertices)
    b = lap @ x_true
    print(f"system: {g.num_vertices} unknowns, {lap.nnz} nonzeros\n")

    _, plain = pcg(lap, b, tol=1e-10, max_iterations=3000)
    rows = [["(none)", 0, 0, plain.iterations]]
    for method in ("sequential", "data-ldg", "csrcolor"):
        M = ColoredSGSPreconditioner(lap, method=method)
        _, report = pcg(lap, b, preconditioner=M, tol=1e-10, max_iterations=3000)
        rows.append(
            [method, M.num_colors, M.parallel_phases_per_apply, report.iterations]
        )
    print(
        format_table(
            ["preconditioner coloring", "colors", "serial phases/apply",
             "PCG iterations"],
            rows,
            title="PCG with multicolor symmetric-GS preconditioning:",
        )
    )
    print(
        "\nAll colored preconditioners cut PCG iterations identically (the\n"
        "math is the same GS), but the csrcolor schedule pays many more\n"
        "serial phases per application - the solver-side cost of Fig. 6's\n"
        "color inflation."
    )


if __name__ == "__main__":
    main()
