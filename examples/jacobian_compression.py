"""Sparse Jacobian compression via coloring (Curtis-Powell-Reid).

The distance-2 / column-coloring application: estimate a sparse Jacobian
with far fewer function evaluations than columns by perturbing groups of
structurally orthogonal columns together.  Demonstrates exact recovery on
a nonlinear reaction-diffusion-style system.

Run:  python examples/jacobian_compression.py
"""

import numpy as np
import scipy.sparse as sp

from repro.apps.jacobian import (
    column_intersection_graph,
    compress_jacobian,
    recover_jacobian,
)
from repro.coloring.distance2 import greedy_distance2
from repro.graph.generators import grid2d
from repro.metrics.table import format_table


def reaction_diffusion_residual(x: np.ndarray, nx: int) -> np.ndarray:
    """F(x) = -lap(x) + x^3 on an nx-by-nx grid (Dirichlet zero boundary)."""
    u = x.reshape(nx, nx)
    lap = -4.0 * u
    lap[1:, :] += u[:-1, :]
    lap[:-1, :] += u[1:, :]
    lap[:, 1:] += u[:, :-1]
    lap[:, :-1] += u[:, 1:]
    return (-lap + u**3).ravel()


def main() -> None:
    nx = 24
    n = nx * nx

    # The Jacobian's sparsity pattern is the 5-point stencil + diagonal.
    g = grid2d(nx, nx)
    eye = sp.eye_array(n).tocsr()
    pattern = sp.csr_array((g.to_scipy() + eye).astype(np.int8))

    comp = compress_jacobian(pattern, method="sequential")
    print(f"system: {n} unknowns, {pattern.nnz} Jacobian nonzeros")
    print(f"column groups (colors): {comp.num_groups}  "
          f"-> {comp.compression_ratio:.1f}x fewer function evaluations\n")

    # Finite-difference probing: one F evaluation per color group.
    rng = np.random.default_rng(0)
    x0 = rng.random(n) * 0.1
    f0 = reaction_diffusion_residual(x0, nx)
    h = 1e-7
    seed = comp.seed_matrix()
    products = np.empty((n, comp.num_groups))
    for grp in range(comp.num_groups):
        products[:, grp] = (
            reaction_diffusion_residual(x0 + h * seed[:, grp], nx) - f0
        ) / h
    J = recover_jacobian(products, pattern, comp)

    # Check against the analytic Jacobian: -lap + 3x^2 I.
    lap5 = -(g.to_scipy().astype(np.float64)) + 4.0 * eye
    J_exact = lap5 + sp.diags_array(3.0 * x0**2)
    err = abs(J - sp.csr_array(J_exact)).max()
    print(f"max |J_fd - J_exact| = {err:.2e}  (finite-difference accuracy)")

    # The same grouping via the library's distance-2 machinery.
    d2 = greedy_distance2(g)
    rows = [
        ["column-intersection coloring", comp.num_groups],
        ["distance-2 coloring of the grid", d2.num_colors],
        ["columns (no compression)", n],
    ]
    print("\n" + format_table(["approach", "F evaluations"], rows))


if __name__ == "__main__":
    main()
