"""Coloring quality against the true chromatic number.

The paper compares schemes against each other; with the exact
branch-and-bound oracle we can compare against the *optimum* on small
graphs — quantifying how much headroom each heuristic leaves.

Run:  python examples/quality_vs_optimal.py
"""

import numpy as np

from repro.coloring import color_graph
from repro.coloring.dsatur import chromatic_number, dsatur, max_clique_lower_bound
from repro.graph.builder import from_networkx
from repro.graph.generators import erdos_renyi, planted_partition, watts_strogatz
from repro.metrics.table import format_table

SCHEMES = ("sequential", "dsatur", "topo-base", "data-ldg", "csrcolor")


def main() -> None:
    import networkx as nx

    instances = {
        "petersen": from_networkx(nx.petersen_graph()),
        "er-sparse": erdos_renyi(70, 4.0, seed=1),
        "er-dense": erdos_renyi(45, 10.0, seed=2),
        "small-world": watts_strogatz(60, 6, 0.2, seed=3),
        "communities": planted_partition(60, 3, 0.5, 0.02, seed=4),
    }

    rows = []
    for name, g in instances.items():
        chi = chromatic_number(g)
        lb = max_clique_lower_bound(g)
        row = [name, lb, chi]
        for scheme in SCHEMES:
            row.append(color_graph(g, method=scheme).num_colors)
        rows.append(row)

    print(
        format_table(
            ["graph", "clique LB", "chi (exact)"] + list(SCHEMES),
            rows,
            title="Colors used vs the true chromatic number:",
        )
    )
    print(
        "\nDSATUR and the speculative-greedy family sit within a color or two\n"
        "of optimal on these instances; csrcolor's multi-hash elections pay\n"
        "an integer multiple - the Fig. 6 story, now against ground truth."
    )

    # Polish demonstration: iterated greedy recovers part of the gap.
    from repro.coloring import iterated_greedy

    g = instances["er-dense"]
    gpu = color_graph(g, method="csrcolor")
    polished = iterated_greedy(g, initial=gpu.colors, iterations=10)
    print(
        f"\niterated-greedy polish of csrcolor on er-dense: "
        f"{gpu.num_colors} -> {polished.num_colors} colors "
        f"(chi = {chromatic_number(g)})"
    )


if __name__ == "__main__":
    main()
