"""Chromatic scheduling: run a data-graph computation without locks.

The intro's HPCG motivation: a Gauss-Seidel-style smoother updates each
vertex from its neighbors; executing one color class at a time makes the
parallel schedule deterministic and race-free.  Fewer colors = fewer
serial phases, which is why coloring *quality* (Fig. 6) matters, not just
coloring speed.

Run:  python examples/chromatic_scheduling.py
"""

import numpy as np

from repro.apps.scheduling import ChromaticScheduler
from repro.apps.sparse import MulticolorGaussSeidel, graph_laplacian
from repro.graph.generators import load_graph
from repro.metrics.table import format_table


def main() -> None:
    graph = load_graph("thermal2", scale_div=256)
    print(f"data graph: {graph}\n")

    rows = []
    for method in ("sequential", "data-ldg", "csrcolor"):
        sched = ChromaticScheduler(graph, method=method)
        st = sched.stats()
        rows.append(
            [
                method,
                st.num_colors,
                st.critical_path,
                round(st.avg_parallelism, 1),
                f"{st.parallel_efficiency:.2f}",
            ]
        )
    print(
        format_table(
            ["coloring", "colors", "serial phases/sweep", "avg parallelism",
             "balance"],
            rows,
            title="Schedule quality by coloring scheme (more colors = less parallelism):",
        )
    )

    # Drive a real solver through the schedule: multicolor Gauss-Seidel on
    # the graph's Laplacian.
    lap = graph_laplacian(graph, shift=1.0)
    rng = np.random.default_rng(0)
    x_true = rng.random(graph.num_vertices)
    b = lap @ x_true

    print("\nMulticolor Gauss-Seidel convergence:")
    for method in ("sequential", "csrcolor"):
        gs = MulticolorGaussSeidel(lap, method=method)
        x, report = gs.solve(b, sweeps=100, tol=1e-10)
        err = float(np.linalg.norm(x - x_true) / np.linalg.norm(x_true))
        print(
            f"  {method:10s}: {report.num_colors:3d} colors -> "
            f"{report.parallel_phases_per_sweep:3d} phases/sweep, "
            f"{report.iterations:3d} sweeps, rel.err {err:.2e}"
        )
    print(
        "\nBoth converge identically per sweep (same math), but the csrcolor\n"
        "schedule needs many more serial phases per sweep - the parallelism\n"
        "cost of its color inflation."
    )


if __name__ == "__main__":
    main()
