"""One-shot reproduction report: every figure's headline numbers.

Runs the complete evaluation (all seven schemes on the six-graph suite)
at a configurable scale and prints paper-style summaries for Figs. 1, 6
and 7 plus the Fig. 3 profile and the Fig. 8 sweep — the quick-look
version of ``pytest benchmarks/``.

Run:  python examples/reproduce_paper.py [scale_div]
(default scale_div=64 for a ~1 minute run; 16 matches EXPERIMENTS.md)
"""

import sys

import numpy as np

from repro.coloring.api import EVALUATED_SCHEMES, color_graph
from repro.graph.generators import load_suite
from repro.metrics.speedup import geomean
from repro.metrics.table import format_table


def main() -> None:
    scale_div = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    suite = load_suite(scale_div=scale_div)
    print(f"suite at 1/{scale_div} of paper scale "
          f"({suite[0].num_vertices}-{suite[-1].num_vertices} vertices)\n")

    results = {}
    for graph in suite:
        results[graph.name] = {
            scheme: color_graph(graph, method=scheme)
            for scheme in EVALUATED_SCHEMES
        }

    # --- Fig. 7: speedups ------------------------------------------------
    gpu_schemes = [s for s in EVALUATED_SCHEMES if s != "sequential"]
    rows = []
    for name, res in results.items():
        seq = res["sequential"].total_time_us
        rows.append([name] + [round(seq / res[s].total_time_us, 2) for s in gpu_schemes])
    rows.append(
        ["geomean"]
        + [
            round(
                geomean(
                    [
                        results[g]["sequential"].total_time_us
                        / results[g][s].total_time_us
                        for g in results
                    ]
                ),
                2,
            )
            for s in gpu_schemes
        ]
    )
    print(format_table(["graph"] + gpu_schemes, rows,
                       title="Fig. 7 - speedup over sequential:"))

    # --- Fig. 6: colors --------------------------------------------------
    rows = [
        [name] + [res[s].num_colors for s in EVALUATED_SCHEMES]
        for name, res in results.items()
    ]
    print("\n" + format_table(["graph"] + list(EVALUATED_SCHEMES), rows,
                              title="Fig. 6 - number of colors:"))

    # --- Fig. 3: the latency-bound profile -------------------------------
    profile = results["rmat-er"]["topo-base"].profiles[0]
    print(
        f"\nFig. 3 - round-0 kernel on rmat-er: bound={profile.bound}, "
        f"compute {profile.compute_utilization:.0%} / "
        f"bandwidth {profile.bandwidth_utilization:.0%} of peak, "
        f"memory-dependency stalls {profile.stalls['memory_dependency']:.0%}"
    )

    # --- Fig. 8: block-size sweep on one graph ---------------------------
    graph = suite[0]
    sweep = {
        bs: color_graph(graph, method="data-base", block_size=bs).total_time_us
        for bs in (32, 64, 128, 256, 512)
    }
    print("\n" + format_table(
        ["block size", "simulated us"],
        [[bs, round(t, 1)] for bs, t in sweep.items()],
        title=f"Fig. 8 - block-size sweep ({graph.name}):",
    ))

    # --- headline claims --------------------------------------------------
    gm3 = geomean([results[g]["sequential"].total_time_us
                   / results[g]["3step-gm"].total_time_us for g in results])
    dl = geomean([results[g]["sequential"].total_time_us
                  / results[g]["data-ldg"].total_time_us for g in results])
    cs = geomean([results[g]["sequential"].total_time_us
                  / results[g]["csrcolor"].total_time_us for g in results])
    ratios = [results[g]["csrcolor"].num_colors
              / results[g]["sequential"].num_colors for g in results]
    print(
        "\npaper claims vs this run:\n"
        f"  3-step GM slower than sequential:   paper 0.66x, here {gm3:.2f}x\n"
        f"  data-driven over sequential:        paper ~3x,   here {dl:.2f}x\n"
        f"  data-driven over csrcolor:          paper 1.5x,  here {dl / cs:.2f}x\n"
        f"  csrcolor color inflation:           paper 4.9-23x, here "
        f"{min(ratios):.1f}-{max(ratios):.1f}x"
    )
    if scale_div > 16:
        print(
            f"\nnote: at 1/{scale_div} scale the GPU's fixed costs (launch "
            "overhead, PCIe flags,\nunderfilled waves) weigh far more than at "
            "paper size - speedups are\nunderestimates.  Run with 16 (or "
            "REPRO_FULL_SCALE=1 via the benchmarks)\nto match EXPERIMENTS.md."
        )


if __name__ == "__main__":
    main()
