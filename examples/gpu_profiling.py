"""Inspecting the simulated GPU: profiles, stalls, and the block-size sweep.

Reproduces the paper's performance-analysis workflow (Figs. 3 and 8) on
one graph, showing how to read KernelProfile objects — the simulated
equivalent of nvprof output.

Run:  python examples/gpu_profiling.py
"""

from repro import color_graph
from repro.graph.generators import load_graph
from repro.metrics.table import format_table


def main() -> None:
    graph = load_graph("rmat-er", scale_div=64)
    print(f"input: {graph}\n")

    # --- per-kernel profile of one run (Fig. 3 style) -------------------
    result = color_graph(graph, method="data-ldg")
    print(f"{result.summary()}\n")
    rows = []
    for p in result.profiles:
        rows.append(
            [
                p.name,
                round(p.time_us, 1),
                p.bound,
                f"{p.occupancy:.0%}",
                f"{p.memory.ro_hit_rate:.0%}",
                f"{p.memory.l2_hit_rate:.0%}",
                f"{p.stalls['memory_dependency']:.0%}",
                f"{p.simd_efficiency:.0%}",
            ]
        )
    print(
        format_table(
            ["kernel", "us", "bound", "occup", "RO hit", "L2 hit",
             "mem-dep stalls", "SIMD eff"],
            rows,
            title="Per-kernel profiles (simulated nvprof):",
        )
    )

    # --- block-size sweep (Fig. 8 style) --------------------------------
    rows = []
    for bs in (32, 64, 128, 256, 512):
        r = color_graph(graph, method="data-base", block_size=bs)
        occ = r.profiles[0].occupancy
        rows.append([bs, round(r.total_time_us, 1), f"{occ:.0%}"])
    print(
        "\n"
        + format_table(
            ["block size", "simulated us", "round-0 occupancy"],
            rows,
            title="Thread-block-size sweep (Fig. 8):",
        )
    )
    print("\n32-thread blocks cannot hide memory latency; >=512 oversaturate "
          "registers.\n128 is the paper's (and this library's) default.")


if __name__ == "__main__":
    main()
