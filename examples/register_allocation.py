"""Register allocation via interference-graph coloring (Chaitin).

Simulates a compiler back-end: a synthetic straight-line IR produces
virtual-register live ranges; overlapping ranges interfere; coloring the
interference graph assigns physical registers, spilling when pressure
exceeds the register file.

Run:  python examples/register_allocation.py
"""

import numpy as np

from repro.apps.register_alloc import LiveInterval, allocate_registers, build_interference_graph
from repro.metrics.table import format_table


def synth_live_ranges(num_vregs: int, program_len: int, seed: int = 0) -> list[LiveInterval]:
    """Random live ranges with a mix of short temporaries and long-lived values."""
    rng = np.random.default_rng(seed)
    intervals = []
    for v in range(num_vregs):
        start = int(rng.integers(0, program_len - 2))
        if rng.random() < 0.8:  # short temporary
            length = int(rng.integers(1, 8))
        else:  # long-lived (loop-carried) value
            length = int(rng.integers(20, program_len // 2))
        intervals.append(LiveInterval(v, start, min(start + length, program_len)))
    return intervals


def main() -> None:
    intervals = synth_live_ranges(num_vregs=400, program_len=300, seed=7)
    graph = build_interference_graph(intervals)
    print(f"interference graph: {graph}")
    print(f"max register pressure (clique lower bound ~ max degree+1): "
          f"<= {graph.max_degree + 1}\n")

    rows = []
    for k in (8, 12, 16, 24, 32):
        res = allocate_registers(intervals, k, method="sequential")
        rows.append([k, res.colors_used, res.num_spilled])
    print(
        format_table(
            ["physical regs", "colors used", "spilled vregs"],
            rows,
            title="Allocation quality vs register-file size:",
        )
    )

    res = allocate_registers(intervals, 16, method="sequential")
    res.verify(graph)
    print("\n16-register allocation verified: no interfering vregs share a register.")
    usage = np.bincount(res.assignment[res.assignment >= 0])
    print(f"register usage histogram: {usage.tolist()}")


if __name__ == "__main__":
    main()
