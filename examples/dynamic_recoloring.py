"""Incremental recoloring under graph mutation (morph workloads).

A stream of edge insertions/deletions hits a colored graph; the dynamic
maintainer repairs locally instead of recoloring from scratch.  Compares
repair work and color quality against full recoloring.

Run:  python examples/dynamic_recoloring.py
"""

import numpy as np

from repro.coloring import DynamicColoring, greedy_colors_only
from repro.graph.generators import erdos_renyi
from repro.metrics.table import format_table


def main() -> None:
    g = erdos_renyi(2000, 6.0, seed=3)
    dyn = DynamicColoring(g)
    print(f"initial: {g} -> {dyn.num_colors} colors\n")

    rng = np.random.default_rng(1)
    inserts = deletes = repairs = 0
    checkpoints = []
    for step in range(1, 4001):
        u, v = (int(x) for x in rng.integers(0, 2000, 2))
        if u == v:
            continue
        if dyn.has_edge(u, v) and rng.random() < 0.4:
            dyn.delete(u, v)
            deletes += 1
        elif not dyn.has_edge(u, v):
            if dyn.insert(u, v) is not None:
                repairs += 1
            inserts += 1
        if step % 1000 == 0:
            snapshot = dyn.to_graph()
            scratch = int(greedy_colors_only(snapshot).max())
            checkpoints.append(
                [step, inserts, deletes, repairs, dyn.num_colors, scratch]
            )

    dyn.validate()
    print(
        format_table(
            ["edits", "inserts", "deletes", "repairs", "dynamic colors",
             "from-scratch colors"],
            checkpoints,
            title="Coloring maintained across a random edit stream:",
        )
    )
    print(
        f"\nrepair rate: {repairs}/{inserts} inserts "
        f"({repairs / max(inserts, 1):.1%}) needed any recoloring;\n"
        "the dynamic coloring tracks the from-scratch count within a color "
        "or two\nwhile touching only one vertex per conflicting insert."
    )


if __name__ == "__main__":
    main()
