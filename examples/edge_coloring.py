"""Edge coloring via the line graph: scheduling pairwise exchanges.

A round-based communication schedule: each edge is a message exchange
that occupies both endpoints, so edges sharing a vertex cannot run in the
same round.  Proper edge coloring = minimal-round-count schedule; greedy
on the line graph gets within a factor of Vizing's Delta+1 optimum.

Run:  python examples/edge_coloring.py
"""

import numpy as np

from repro.coloring import color_graph
from repro.graph import edge_coloring_from_line_colors, line_graph
from repro.graph.generators import erdos_renyi, grid2d, random_regular
from repro.metrics.table import format_table


def main() -> None:
    instances = {
        "2D grid 20x20": grid2d(20, 20),
        "random 8-regular": random_regular(300, 8, seed=1),
        "ER avg-degree 6": erdos_renyi(300, 6.0, seed=2),
    }
    rows = []
    for name, g in instances.items():
        lg, edges = line_graph(g)
        result = color_graph(lg, method="sequential")
        edge_coloring_from_line_colors(g, edges, result.colors)  # verify
        rows.append(
            [
                name,
                g.num_undirected_edges,
                g.max_degree,
                g.max_degree + 1,  # Vizing upper bound on the optimum
                result.num_colors,
            ]
        )
    print(
        format_table(
            ["graph", "exchanges", "max degree", "Vizing bound (Delta+1)",
             "rounds (greedy)"],
            rows,
            title="Communication rounds to schedule all pairwise exchanges:",
        )
    )

    # Show one schedule explicitly for a tiny instance.
    g = grid2d(3, 3)
    lg, edges = line_graph(g)
    colors = color_graph(lg, method="sequential").colors
    print("\n3x3 grid schedule (round -> exchanges):")
    for round_no in range(1, int(colors.max()) + 1):
        batch = edges[colors == round_no]
        pairs = ", ".join(f"{a}-{b}" for a, b in batch.tolist())
        print(f"  round {round_no}: {pairs}")


if __name__ == "__main__":
    main()
