"""Quickstart: color a graph with every scheme and compare.

Run:  python examples/quickstart.py
"""

from repro import color_graph, rmat_er
from repro.coloring.api import EVALUATED_SCHEMES
from repro.metrics.table import format_table


def main() -> None:
    # An R-MAT graph like the paper's rmat-er, at laptop scale.
    graph = rmat_er(scale=14, edge_factor=10.0)
    print(f"input: {graph}\n")

    rows = []
    baseline_us = None
    for scheme in EVALUATED_SCHEMES:
        result = color_graph(graph, method=scheme)
        if scheme == "sequential":
            baseline_us = result.total_time_us
        rows.append(
            [
                scheme,
                result.num_colors,
                result.iterations,
                round(result.total_time_us, 1),
                round(baseline_us / result.total_time_us, 2),
            ]
        )
    print(
        format_table(
            ["scheme", "colors", "rounds", "simulated us", "speedup vs seq"],
            rows,
            title="All seven evaluated schemes (simulated K20c):",
        )
    )

    # The paper's best scheme, with its knobs.
    best = color_graph(graph, method="data-ldg", block_size=128)
    print(f"\nbest scheme detail: {best.summary()}")
    print(f"color balance (max class / mean class): {best.balance():.2f}")


if __name__ == "__main__":
    main()
