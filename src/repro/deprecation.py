"""Shared deprecation-cycle machinery.

Every compatibility shim in the package funnels through
:func:`warn_once`, so the whole surface escalates in lock-step.  A shim
moves through the cycle::

    stage="deprecated"        -> DeprecationWarning   (hidden by default)
    stage="pending-removal"   -> FutureWarning        (shown by default)
    (next release)            -> removed

The ``recorder=`` keyword and typed-key ``ColoringResult.extra[...]``
reads completed the full cycle and are now *removed* (a ``TypeError`` /
``KeyError`` naming the migration target).  The current occupant of the
*deprecated* stage is the bare-array ``DynamicColoring`` constructor
shape (pass a :class:`~repro.coloring.base.ColoringResult` instead).
The migration targets are documented in ``docs/API.md``
("Deprecations").

Warnings fire once per process per ``key`` so hot loops stay quiet;
tests re-arm with :func:`_reset_for_tests`.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "STAGES"]

#: stage name -> warning category for that point in the cycle.
STAGES: dict[str, type[Warning]] = {
    "deprecated": DeprecationWarning,
    "pending-removal": FutureWarning,
}

_warned: set[str] = set()


def warn_once(
    key: str,
    message: str,
    *,
    stage: str = "pending-removal",
    stacklevel: int = 3,
) -> None:
    """Emit one deprecation warning per process for ``key``.

    ``stage`` picks the warning category from :data:`STAGES`;
    ``stacklevel`` should point at the caller of the deprecated surface
    (3 = through one shim function).
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, STAGES[stage], stacklevel=stacklevel)


def _reset_for_tests(key: str | None = None) -> None:
    """Re-arm the once-per-process warnings (all of them, or one key)."""
    if key is None:
        _warned.clear()
    else:
        _warned.discard(key)
