"""The unified ``observe=`` surface.

Every entry point that executes schemes — ``color_graph``,
``color_many``, ``ExecutionContext``, ``run_scheme`` — takes one
``observe=`` argument instead of ad-hoc ``recorder=`` / tracer threading:

=====================  ====================================================
``observe=None``       no observation (the default; zero overhead)
``observe="trace"``    attach a fresh :class:`~repro.obs.tracer.Tracer`
``observe="profile"``  a tracer plus kernel-profile retention for
                       :func:`~repro.gpusim.profiler.profile_report`
``observe="rounds"``   attach a fresh :class:`~repro.metrics.recorder.
                       Recorder` collecting per-round records
``observe=Tracer()``   your tracer (shared across calls)
``observe=Recorder()`` your recorder (shared across calls)
=====================  ====================================================

All forms resolve to an :class:`Observation` — the handle the caller
reads afterwards (it is also attached to ``result.observation`` so
shorthand users can reach the data they asked for).  The legacy
``recorder=`` keyword completed its deprecation cycle and was removed:
entry points raise a :class:`TypeError` naming the replacement (see the
"Deprecations" section of docs/API.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.recorder import Recorder
from .export import chrome_trace, flame_summary, write_chrome_trace, write_jsonl
from .tracer import Tracer

__all__ = ["Observation", "resolve_observe", "reject_recorder_keyword"]

#: Accepted string shorthands (kept in one place for error messages).
SHORTHANDS = ("trace", "profile", "rounds")


def reject_recorder_keyword(where: str, kwargs: dict) -> None:
    """Raise the removal error if the retired ``recorder=`` spelling shows up.

    The keyword went through the full deprecation cycle (DeprecationWarning
    → FutureWarning → removed); entry points with a ``**kwargs`` surface
    call this so ex-users get the migration target instead of an
    unknown-option error.
    """
    if "recorder" in kwargs:
        raise TypeError(
            f"{where}(recorder=...) was removed; pass observe=<Recorder> "
            f"(or observe='rounds') instead — see docs/API.md, "
            f"'Deprecations'"
        )


@dataclass
class Observation:
    """Resolved observation bundle: what (if anything) is watching a run.

    ``tracer`` and ``recorder`` are independently optional; ``mode``
    remembers the shorthand that built this bundle (``None`` for
    explicitly constructed ones).
    """

    tracer: Tracer | None = None
    recorder: Recorder | None = None
    mode: str | None = field(default=None)

    @property
    def active(self) -> bool:
        return self.tracer is not None or self.recorder is not None

    # -- convenience views over the collected data ----------------------
    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON object (requires a tracer)."""
        self._require_tracer()
        return chrome_trace(self.tracer)

    def write_chrome_trace(self, path):
        self._require_tracer()
        return write_chrome_trace(self.tracer, path)

    def write_jsonl(self, path):
        self._require_tracer()
        return write_jsonl(self.tracer, path)

    def flame_summary(self, *, top: int | None = None) -> str:
        self._require_tracer()
        return flame_summary(self.tracer, top=top)

    def _require_tracer(self) -> None:
        if self.tracer is None:
            raise ValueError(
                "this observation has no tracer; use observe='trace' "
                "(or pass a Tracer) to collect spans"
            )


def resolve_observe(observe=None) -> Observation:
    """Normalize any accepted ``observe=`` value into an :class:`Observation`."""
    if observe is None:
        return Observation()
    if isinstance(observe, Observation):
        return observe
    if isinstance(observe, Tracer):
        return Observation(tracer=observe, mode="trace")
    if isinstance(observe, Recorder) or (
        not isinstance(observe, str) and hasattr(observe, "add_round")
    ):
        return Observation(recorder=observe, mode="rounds")
    if isinstance(observe, str):
        if observe == "trace":
            return Observation(tracer=Tracer(), mode="trace")
        if observe == "profile":
            return Observation(tracer=Tracer(), mode="profile")
        if observe == "rounds":
            return Observation(recorder=Recorder(), mode="rounds")
        raise ValueError(
            f"unknown observe shorthand {observe!r}; "
            f"choose from {SHORTHANDS} or pass a Tracer/Recorder"
        )
    raise TypeError(
        f"cannot interpret {observe!r} as an observation: expected None, "
        f"one of {SHORTHANDS}, a Tracer, a Recorder, or an Observation"
    )
