"""Span-based tracing over the simulated timeline.

The simulator already *prices* everything it does — kernels, PCIe
transfers, launch overheads — but until now those prices were flattened
into per-run totals.  The tracer keeps the structure: a run is a tree of
:class:`Span` objects (``run`` → ``round`` → ``kernel`` / ``htod`` /
``dtoh`` / ``alloc``), each carrying a start/end on the *simulated* clock
plus named counters (active vertices, conflicts, memory transactions,
DRAM bytes, occupancy, ...).  That is exactly the shape of the paper's
Fig. 3 nvprof breakdowns and per-round convergence traces, produced
natively instead of post-hoc.

The clock is event-driven: it only advances when a leaf event with a
duration is recorded (a priced kernel, a transfer).  Enclosing spans
start and end at the clock positions of entry/exit, so a ``round`` span's
duration is by construction the summed simulated time of its children
and timestamps are monotone — the property the Chrome ``trace_event``
exporter relies on.

Producers (the engine loop, the backends, :class:`~repro.gpusim.device.
Device`) talk to the tracer through three calls: :meth:`Tracer.begin` /
:meth:`Tracer.end` for nested phases, :meth:`Tracer.event` for priced
leaves.  Consumers read :attr:`Tracer.roots` or :meth:`Tracer.walk` and
the exporters in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One traced interval on the simulated clock.

    ``end_us`` is ``None`` while the span is still open.  ``counters``
    holds named numbers (and the occasional short string label); nested
    work lives in ``children``.
    """

    name: str
    category: str
    start_us: float
    end_us: float | None = None
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        """Simulated duration (0 while the span is still open)."""
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Pre-order traversal of this span's subtree as (span, depth)."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def total(self, counter: str) -> float:
        """Sum a named counter over this span and every descendant."""
        return float(
            sum(s.counters.get(counter, 0) or 0 for s, _ in self.walk())
        )

    def find(self, category: str) -> list["Span"]:
        """All descendants (and possibly self) with the given category."""
        return [s for s, _ in self.walk() if s.category == category]

    def __repr__(self) -> str:  # compact, tests read these in failures
        return (
            f"Span({self.name!r}, {self.category}, "
            f"{self.start_us:.2f}..{'open' if self.end_us is None else f'{self.end_us:.2f}'}, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Collects a forest of :class:`Span` trees on one simulated clock.

    One tracer observes one logical timeline: attach it to an
    :class:`~repro.engine.context.ExecutionContext` (or pass
    ``observe="trace"``) and every run executed there appends a ``run``
    root span.  Events recorded outside any open span (e.g. the one-time
    graph upload a context performs before a run's timing span opens)
    become root-level leaves.
    """

    def __init__(self, *, meta: dict | None = None) -> None:
        self.roots: list[Span] = []
        self.meta = dict(meta or {})  # exported into the trace header
        self.now_us = 0.0
        self._stack: list[Span] = []

    # -- producing ------------------------------------------------------
    def begin(self, name: str, category: str = "phase", **counters) -> Span:
        """Open a nested span at the current simulated time."""
        span = Span(name=name, category=category, start_us=self.now_us,
                    counters=dict(counters))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span | None = None, **counters) -> Span:
        """Close ``span`` (default: innermost), merging extra counters.

        Spans opened after ``span`` and never closed (an exception took a
        shortcut out) are closed along the way, so the tree stays
        well-formed.
        """
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        if span is None:
            span = self._stack[-1]
        if span not in self._stack:
            raise RuntimeError(f"{span!r} is not an open span")
        while self._stack:
            top = self._stack.pop()
            top.end_us = self.now_us
            if top is span:
                break
        span.counters.update(counters)
        return span

    @contextmanager
    def span(self, name: str, category: str = "phase", **counters):
        """``with tracer.span(...) as s:`` — begin/end with cleanup."""
        s = self.begin(name, category, **counters)
        try:
            yield s
        finally:
            if s in self._stack:
                self.end(s)

    def event(self, name: str, category: str, duration_us: float = 0.0,
              **counters) -> Span:
        """Record a priced leaf, advancing the simulated clock."""
        span = Span(name=name, category=category, start_us=self.now_us,
                    end_us=self.now_us + float(duration_us),
                    counters=dict(counters))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(span)
        self.now_us = span.end_us
        return span

    def count(self, **counters) -> None:
        """Accumulate numeric counters onto the innermost open span."""
        if not self._stack:
            return
        dst = self._stack[-1].counters
        for key, value in counters.items():
            dst[key] = dst.get(key, 0) + value

    def merge_subtrace(self, roots: list[Span], *, label: str = "subtrace",
                       category: str = "worker", **counters) -> Span:
        """Graft another tracer's forest into this timeline.

        Worker processes trace on their own clock starting at zero; this
        re-bases every grafted span to the current simulated time, wraps
        the forest in one ``category`` span (so a batch trace shows which
        job a round belongs to), and advances the clock by the subtrace's
        extent — timestamps stay monotone, which the Chrome exporter
        requires.  Returns the wrapper span.
        """
        base = self.now_us
        extent = 0.0
        for root in roots:
            for span, _ in root.walk():
                span.start_us += base
                if span.end_us is not None:
                    span.end_us += base
                    extent = max(extent, span.end_us - base)
                else:
                    extent = max(extent, span.start_us - base)
        wrapper = Span(name=label, category=category, start_us=base,
                       end_us=base + extent, counters=dict(counters))
        wrapper.children = list(roots)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(wrapper)
        self.now_us = base + extent
        return wrapper

    # -- consuming ------------------------------------------------------
    def walk(self) -> Iterator[tuple[Span, int]]:
        """Pre-order traversal over every root tree as (span, depth)."""
        for root in self.roots:
            yield from root.walk()

    def spans(self, category: str | None = None) -> list[Span]:
        """Flat span list, optionally filtered by category."""
        return [
            s for s, _ in self.walk()
            if category is None or s.category == category
        ]

    def runs(self) -> list[Span]:
        """The ``run`` root spans, in execution order."""
        return [s for s in self.roots if s.category == "run"]

    @property
    def total_us(self) -> float:
        """Simulated time covered by the trace so far."""
        return self.now_us

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())
