"""repro.obs: engine-wide observability.

A span-based tracer over the simulated timeline
(:mod:`~repro.obs.tracer`), exporters to Chrome ``trace_event`` JSON /
JSONL / terminal flame summaries (:mod:`~repro.obs.export`), and the
unified ``observe=`` surface every execution entry point shares
(:mod:`~repro.obs.observe`).

Quickstart::

    from repro import color_graph, rmat_er
    result = color_graph(rmat_er(scale=12), "data-ldg", observe="trace")
    obs = result.observation
    print(obs.flame_summary())
    obs.write_chrome_trace("trace.json")   # open in chrome://tracing

See docs/OBSERVABILITY.md for the span model and how to read a trace.
"""

from .export import (
    chrome_trace,
    flame_summary,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)
from .observe import Observation, resolve_observe
from .tracer import Span, Tracer

__all__ = [
    "Observation",
    "Span",
    "Tracer",
    "chrome_trace",
    "flame_summary",
    "jsonl_events",
    "resolve_observe",
    "write_chrome_trace",
    "write_jsonl",
]
