"""Trace exporters: Chrome ``trace_event`` JSON, flat JSONL, flame summary.

Three consumers of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (complete ``"X"`` events, microsecond
  timestamps), loadable in ``chrome://tracing`` and Perfetto.  Kernel,
  transfer and phase spans land on one "thread" per span depth so the
  nesting renders as a flame graph.
* :func:`jsonl_events` / :func:`write_jsonl` — one JSON object per span,
  flat, grep/pandas-friendly (the machine-readable twin of the Chrome
  view).
* :func:`flame_summary` — a terminal roll-up built on
  :func:`~repro.metrics.table.format_table`: simulated time by span
  name with counts and shares, the ``nvprof --print-gpu-summary`` view.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterator

from ..metrics.table import format_table
from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "flame_summary",
]

#: Strip per-iteration suffixes (``data-color-17`` -> ``data-color``) so
#: summaries aggregate across rounds.
_ITER_SUFFIX = re.compile(r"-\d+$")


def _args(span: Span) -> dict:
    """Chrome ``args`` payload: counters made JSON-clean."""
    out = {}
    for key, value in span.counters.items():
        if hasattr(value, "item"):  # numpy scalar
            value = value.item()
        out[key] = value
    return out


def chrome_trace(tracer: Tracer) -> dict:
    """Render the trace as a Chrome ``trace_event`` JSON object."""
    events = []
    for span, depth in tracer.walk():
        duration = span.duration_us
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round(span.start_us, 4),
            "dur": round(duration, 4),
            "pid": 0,
            "tid": 0,
            "args": _args(span),
        }
        if span.end_us is None:  # open span in a live export
            event["dur"] = 0.0
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs (simulated timeline, ts in us)",
            **tracer.meta,
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Write :func:`chrome_trace` output; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1), encoding="utf-8")
    return path


def jsonl_events(tracer: Tracer) -> Iterator[dict]:
    """One flat JSON-ready dict per span, in pre-order."""
    for span, depth in tracer.walk():
        yield {
            "name": span.name,
            "category": span.category,
            "depth": depth,
            "start_us": round(span.start_us, 4),
            "end_us": None if span.end_us is None else round(span.end_us, 4),
            "duration_us": round(span.duration_us, 4),
            "counters": _args(span),
        }


def write_jsonl(tracer: Tracer, path) -> Path:
    """Write one JSON object per line; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for event in jsonl_events(tracer):
            fh.write(json.dumps(event) + "\n")
    return path


def flame_summary(tracer: Tracer, *, top: int | None = None) -> str:
    """Terminal roll-up: simulated time per (category, base name).

    Only *leaf* time is attributed (a ``round`` span's duration is its
    children's, so counting both would double-book), which makes the
    shares sum to ~100% of the traced simulated time.
    """
    buckets: dict[tuple[str, str], dict] = {}
    for span, _ in tracer.walk():
        if span.children:  # structural span: time lives in the leaves
            continue
        key = (span.category, _ITER_SUFFIX.sub("", span.name))
        bucket = buckets.setdefault(
            key, {"count": 0, "time_us": 0.0, "dram_bytes": 0, "transactions": 0}
        )
        bucket["count"] += 1
        bucket["time_us"] += span.duration_us
        bucket["dram_bytes"] += int(span.counters.get("dram_bytes", 0) or 0)
        bucket["transactions"] += int(span.counters.get("transactions", 0) or 0)
    total = sum(b["time_us"] for b in buckets.values()) or 1.0
    ordered = sorted(buckets.items(), key=lambda kv: -kv[1]["time_us"])
    if top is not None:
        ordered = ordered[:top]
    rows = [
        [
            name,
            category,
            bucket["count"],
            round(bucket["time_us"], 1),
            f"{bucket['time_us'] / total:.1%}",
            round(bucket["dram_bytes"] / 1e6, 2),
        ]
        for (category, name), bucket in ordered
    ]
    table = format_table(
        ["span", "category", "count", "us", "share", "DRAM MB"],
        rows,
        title=f"flame summary ({len(tracer)} spans, "
        f"{tracer.total_us:.1f} us simulated):",
    )
    runs = tracer.runs()
    if runs:
        lines = [
            f"  {r.name}: {int(r.counters.get('iterations', 0))} rounds, "
            f"{r.total('conflicts'):.0f} conflicts, "
            f"{r.duration_us:.1f} us"
            for r in runs
        ]
        table += "\nruns:\n" + "\n".join(lines)
    return table
