"""Sparse Jacobian compression via column coloring (Curtis–Powell–Reid).

The classical scientific-computing payoff of coloring: columns of a
sparse Jacobian that are *structurally orthogonal* (no common nonzero
row) can be estimated with a single finite-difference evaluation.  Columns
sharing a color form one group; the number of colors is the number of
function evaluations needed — compression ratio ``n / colors``.

Structural orthogonality is exactly a coloring of the column-intersection
graph, equivalently a distance-2 coloring of the bipartite row-column
graph — this is why the library ships distance-2 coloring
(:mod:`repro.coloring.distance2`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..coloring.api import color_graph
from ..graph.builder import from_edges
from ..graph.csr import CSRGraph

__all__ = [
    "column_intersection_graph",
    "CompressedJacobian",
    "compress_jacobian",
    "recover_jacobian",
]


def column_intersection_graph(pattern: sp.csr_array) -> CSRGraph:
    """Graph on columns with an edge where two columns share a nonzero row.

    Built row by row in vectorized form: each row with ``k`` nonzeros
    contributes its ``k*(k-1)/2`` column pairs.  Dense rows are the classic
    blow-up hazard; callers with dense rows should drop or handle them
    separately (as CPR does).
    """
    pattern = sp.csr_array(pattern)
    n_cols = pattern.shape[1]
    us, vs = [], []
    indptr, indices = pattern.indptr, pattern.indices
    for r in range(pattern.shape[0]):
        cols = indices[indptr[r] : indptr[r + 1]]
        if cols.size > 1:
            i, j = np.triu_indices(cols.size, k=1)
            us.append(cols[i].astype(np.int64))
            vs.append(cols[j].astype(np.int64))
    if us:
        u = np.concatenate(us)
        v = np.concatenate(vs)
    else:
        u = v = np.empty(0, dtype=np.int64)
    return from_edges(u, v, num_vertices=n_cols, name="column-intersection")


@dataclass(frozen=True)
class CompressedJacobian:
    """A column grouping plus the seed matrix it induces."""

    groups: np.ndarray  # 0-based group id per column
    num_groups: int
    num_columns: int

    @property
    def compression_ratio(self) -> float:
        """Function evaluations saved: columns per group on average."""
        return self.num_columns / self.num_groups if self.num_groups else 1.0

    def seed_matrix(self) -> np.ndarray:
        """Dense 0/1 seed ``S`` with ``S[j, g] = 1`` iff column j in group g."""
        seed = np.zeros((self.num_columns, self.num_groups))
        seed[np.arange(self.num_columns), self.groups] = 1.0
        return seed


def compress_jacobian(
    pattern: sp.csr_array, *, method: str = "sequential", **color_kwargs
) -> CompressedJacobian:
    """Color the column-intersection graph into structurally orthogonal groups."""
    graph = column_intersection_graph(pattern)
    result = color_graph(graph, method=method, **color_kwargs)
    return CompressedJacobian(
        groups=result.colors.astype(np.int64) - 1,
        num_groups=result.num_colors,
        num_columns=graph.num_vertices,
    )


def recover_jacobian(
    compressed_products: np.ndarray,
    pattern: sp.csr_array,
    compression: CompressedJacobian,
) -> sp.csr_array:
    """Rebuild the sparse Jacobian from ``J @ S`` products.

    Because each group's columns are structurally orthogonal, every
    nonzero ``J[r, c]`` is the *only* contributor to
    ``compressed_products[r, groups[c]]`` — recovery is a gather.
    """
    pattern = sp.csr_array(pattern)
    coo = pattern.tocoo()
    values = compressed_products[coo.row, compression.groups[coo.col]]
    return sp.csr_array(
        (values, (coo.row, coo.col)), shape=pattern.shape
    )
