"""Coloring-preconditioned conjugate gradients (the HPCG pipeline).

The end-to-end payoff of the paper's motivating application: a symmetric
Gauss-Seidel preconditioner needs a sequential triangular sweep — unless
the matrix is colored, in which case each sweep is ``num_colors`` fully
parallel phases.  This module assembles the whole pipeline:

    color the pattern -> multicolor symmetric GS preconditioner -> PCG

and reports both numerical convergence and the parallelism structure the
coloring bought.  Fewer colors = shorter critical path per preconditioner
application, which is why Fig. 6's quality axis matters to solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .sparse import MulticolorGaussSeidel

__all__ = ["PCGReport", "pcg", "ColoredSGSPreconditioner"]


@dataclass(frozen=True)
class PCGReport:
    """Convergence record of a PCG solve."""

    iterations: int
    residual_norms: tuple[float, ...]
    converged: bool
    preconditioner_colors: int
    parallel_phases_per_apply: int


class ColoredSGSPreconditioner:
    """Symmetric Gauss-Seidel preconditioner executed by color classes.

    One application performs a forward sweep (classes in ascending color
    order) and a backward sweep (descending) — the standard SGS
    preconditioner, with every phase batch-parallel thanks to the
    coloring.  SGS of an SPD matrix is SPD, so PCG theory applies.
    """

    def __init__(self, matrix: sp.csr_array, *, method: str = "sequential", **color_kwargs):
        self._gs = MulticolorGaussSeidel(matrix, method=method, **color_kwargs)
        self.matrix = self._gs.matrix
        self.diag = self._gs.diag
        self.num_colors = self._gs.coloring.num_colors
        self.classes = self._gs.classes

    @property
    def parallel_phases_per_apply(self) -> int:
        return 2 * len(self.classes)  # forward + backward sweep

    def apply(self, r: np.ndarray) -> np.ndarray:
        """z = M^{-1} r via one symmetric multicolor GS sweep on Az = r."""
        z = np.zeros_like(r)
        for cls in self.classes:  # forward
            rows = self.matrix[cls]
            z[cls] += (r[cls] - rows @ z) / self.diag[cls]
        for cls in reversed(self.classes):  # backward
            rows = self.matrix[cls]
            z[cls] += (r[cls] - rows @ z) / self.diag[cls]
        return z


def pcg(
    matrix: sp.csr_array,
    b: np.ndarray,
    *,
    preconditioner: ColoredSGSPreconditioner | None = None,
    tol: float = 1e-8,
    max_iterations: int = 500,
) -> tuple[np.ndarray, PCGReport]:
    """Preconditioned conjugate gradients on an SPD system."""
    matrix = sp.csr_array(matrix)
    n = matrix.shape[0]
    if b.shape != (n,):
        raise ValueError("right-hand side shape mismatch")
    M = preconditioner
    x = np.zeros(n)
    r = b - matrix @ x
    z = M.apply(r) if M else r.copy()
    p = z.copy()
    rz = float(r @ z)
    norms = [float(np.linalg.norm(r))]
    b_norm = max(norms[0], 1e-300)
    it = 0
    for it in range(1, max_iterations + 1):
        Ap = matrix @ p
        pAp = float(p @ Ap)
        if pAp <= 0:
            raise np.linalg.LinAlgError("matrix is not positive definite")
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        norms.append(float(np.linalg.norm(r)))
        if norms[-1] <= tol * b_norm:
            break
        z = M.apply(r) if M else r.copy()
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x, PCGReport(
        iterations=it,
        residual_norms=tuple(norms),
        converged=norms[-1] <= tol * b_norm,
        preconditioner_colors=M.num_colors if M else 0,
        parallel_phases_per_apply=M.parallel_phases_per_apply if M else 0,
    )
