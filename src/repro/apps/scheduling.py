"""Chromatic scheduling of data-graph computations (Kaler et al.).

Coloring's flagship systems application: updates on a data graph conflict
when they touch neighboring vertices, so executing one *color class* at a
time yields a deterministic parallel schedule with no locks — vertices of
equal color are independent by the coloring property.

:class:`ChromaticScheduler` turns any vertex-update function into such a
schedule; updates within a class run as one vectorized batch (the stand-in
for "in parallel"), classes run in color order.  Fewer colors = fewer
serial phases = more parallelism — which is precisely why the paper cares
about coloring *quality*, not just speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..coloring.api import color_graph
from ..coloring.base import ColoringResult, color_class_sizes
from ..graph.csr import CSRGraph

__all__ = ["ChromaticScheduler", "ScheduleStats"]

#: Vectorized vertex-update callback: receives the vertex ids of one color
#: class, the current state vector, and the graph; returns the class's new
#: state values.  It may READ any state but must only WRITE the class.
UpdateFn = Callable[[np.ndarray, np.ndarray, CSRGraph], np.ndarray]


@dataclass(frozen=True)
class ScheduleStats:
    """Parallelism profile of a chromatic schedule."""

    num_colors: int
    num_vertices: int
    max_class_size: int
    avg_parallelism: float  # n / colors: mean work per serial phase
    critical_path: int  # serial phases per sweep (== num_colors)

    @property
    def parallel_efficiency(self) -> float:
        """Mean class size over the largest — 1.0 means perfectly balanced."""
        return (
            self.avg_parallelism / self.max_class_size if self.max_class_size else 1.0
        )


class ChromaticScheduler:
    """Executes vertex updates color class by color class.

    Parameters
    ----------
    graph:
        The data graph (symmetric, simple).
    method:
        Coloring scheme used to build the schedule (any
        :data:`repro.coloring.METHODS` key).
    coloring:
        Alternatively, reuse an existing coloring result.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        method: str = "data-ldg",
        coloring: ColoringResult | None = None,
        **color_kwargs,
    ) -> None:
        self.graph = graph
        self.coloring = coloring or color_graph(graph, method=method, **color_kwargs)
        self.coloring.validate(graph)
        colors = self.coloring.colors
        order = np.argsort(colors, kind="stable")
        boundaries = np.searchsorted(colors[order], np.arange(1, colors.max() + 2))
        self._classes = [
            order[lo:hi]
            for lo, hi in zip(np.r_[0, boundaries[:-1]], boundaries)
            if hi > lo
        ]

    @property
    def color_classes(self) -> list[np.ndarray]:
        """Vertex ids per color class, ascending color order."""
        return list(self._classes)

    def stats(self) -> ScheduleStats:
        sizes = color_class_sizes(self.coloring.colors)
        return ScheduleStats(
            num_colors=self.coloring.num_colors,
            num_vertices=self.graph.num_vertices,
            max_class_size=int(sizes.max()) if sizes.size else 0,
            avg_parallelism=(
                self.graph.num_vertices / self.coloring.num_colors
                if self.coloring.num_colors
                else 0.0
            ),
            critical_path=self.coloring.num_colors,
        )

    def sweep(self, state: np.ndarray, update: UpdateFn) -> np.ndarray:
        """One full sweep: apply ``update`` to every class in color order.

        Each class sees all earlier classes' writes (Gauss–Seidel-style
        propagation) but its own members never read each other — that is
        what the coloring guarantees.  ``state`` is updated in place and
        returned.
        """
        if state.shape[0] != self.graph.num_vertices:
            raise ValueError("state must have one entry per vertex")
        for cls in self._classes:
            state[cls] = update(cls, state, self.graph)
        return state

    def run(self, state: np.ndarray, update: UpdateFn, sweeps: int) -> np.ndarray:
        """Run ``sweeps`` full sweeps."""
        for _ in range(sweeps):
            self.sweep(state, update)
        return state
