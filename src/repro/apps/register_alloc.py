"""Register allocation via interference-graph coloring (Chaitin).

The compiler application from the paper's introduction: virtual registers
whose live ranges overlap *interfere* and need distinct physical
registers.  This module builds the interference graph from live intervals,
colors it with any scheme from the library, and spills (greedily, highest
degree first) until the coloring fits the machine's register count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coloring.api import color_graph
from ..graph.builder import from_edges
from ..graph.csr import CSRGraph

__all__ = ["LiveInterval", "build_interference_graph", "AllocationResult", "allocate_registers"]


@dataclass(frozen=True)
class LiveInterval:
    """Half-open live range ``[start, end)`` of one virtual register."""

    vreg: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty live range for v{self.vreg}")

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start < other.end and other.start < self.end


def build_interference_graph(intervals: list[LiveInterval]) -> CSRGraph:
    """Interference graph: an edge wherever two live ranges overlap.

    Sweep-line construction: sort interval endpoints; maintain the active
    set; each newly started interval interferes with everything active.
    O(n log n + edges).
    """
    if not intervals:
        return from_edges(np.empty(0), np.empty(0), num_vertices=0, name="interference")
    by_vreg = sorted(intervals, key=lambda iv: iv.vreg)
    if [iv.vreg for iv in by_vreg] != list(range(len(intervals))):
        raise ValueError("vregs must be exactly 0..n-1")
    events = sorted(intervals, key=lambda iv: (iv.start, iv.vreg))
    active: dict[int, int] = {}  # vreg -> end
    us, vs = [], []
    for iv in events:
        for other, end in list(active.items()):
            if end <= iv.start:
                del active[other]
            else:
                us.append(iv.vreg)
                vs.append(other)
        active[iv.vreg] = iv.end
    return from_edges(
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        num_vertices=len(intervals),
        name="interference",
    )


@dataclass
class AllocationResult:
    """Outcome of register allocation."""

    assignment: np.ndarray  # vreg -> physical register (0-based), -1 = spilled
    spilled: list[int] = field(default_factory=list)
    colors_used: int = 0

    @property
    def num_spilled(self) -> int:
        return len(self.spilled)

    def verify(self, graph: CSRGraph) -> None:
        """No two interfering unspilled vregs may share a register."""
        u, v = graph.edge_endpoints()
        keep = (u < v) & (self.assignment[u] >= 0) & (self.assignment[v] >= 0)
        if np.any(self.assignment[u[keep]] == self.assignment[v[keep]]):
            raise AssertionError("interfering vregs share a physical register")


def allocate_registers(
    intervals: list[LiveInterval],
    num_physical: int,
    *,
    method: str = "sequential",
    **color_kwargs,
) -> AllocationResult:
    """Color the interference graph into ``num_physical`` registers.

    When the chromatic bound exceeds the register file, the highest-degree
    vertex is spilled (removed from the graph) and coloring retries —
    Chaitin's simplification heuristic in its simplest form.
    """
    if num_physical < 1:
        raise ValueError("need at least one physical register")
    graph = build_interference_graph(intervals)
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    spilled: list[int] = []
    while True:
        sub = graph.subgraph_mask(alive)
        if sub.num_vertices == 0:
            assignment = np.full(n, -1, dtype=np.int64)
            return AllocationResult(assignment, spilled, 0)
        result = color_graph(sub, method=method, **color_kwargs)
        if result.num_colors <= num_physical:
            assignment = np.full(n, -1, dtype=np.int64)
            assignment[alive] = result.colors.astype(np.int64) - 1
            out = AllocationResult(assignment, spilled, result.num_colors)
            out.verify(graph)
            return out
        # Spill the live vreg with the most interference.
        degrees = np.zeros(n, dtype=np.int64)
        degrees[alive] = sub.degrees
        victim = int(np.argmax(np.where(alive, degrees, -1)))
        alive[victim] = False
        spilled.append(victim)
