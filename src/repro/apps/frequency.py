"""WLAN frequency (channel) assignment via coloring (Riihijarvi et al.).

Access points within interference range must use different channels; the
interference graph's coloring is a channel plan, and the color count is
the spectrum demand.  Geometry is a random plane; the interference radius
controls density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.spatial as spatial

from ..coloring.api import color_graph
from ..graph.builder import from_edges
from ..graph.csr import CSRGraph

__all__ = ["AccessPointField", "ChannelPlan", "plan_channels"]


@dataclass(frozen=True)
class AccessPointField:
    """Random access points on the unit square with an interference radius."""

    positions: np.ndarray  # (n, 2)
    radius: float

    @classmethod
    def random(cls, n: int, radius: float, *, seed: int = 0) -> "AccessPointField":
        if n < 1:
            raise ValueError("need at least one access point")
        if not 0 < radius < 1.5:
            raise ValueError("radius must be in (0, 1.5)")
        rng = np.random.default_rng(seed)
        return cls(positions=rng.random((n, 2)), radius=radius)

    def interference_graph(self) -> CSRGraph:
        """Edge between APs closer than ``radius`` (KD-tree pair query)."""
        tree = spatial.cKDTree(self.positions)
        pairs = tree.query_pairs(self.radius, output_type="ndarray")
        if pairs.size == 0:
            u = v = np.empty(0, dtype=np.int64)
        else:
            u, v = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        return from_edges(
            u, v, num_vertices=self.positions.shape[0], name="wlan-interference"
        )


@dataclass(frozen=True)
class ChannelPlan:
    """A channel assignment plus its quality metrics."""

    channels: np.ndarray  # 0-based channel per AP
    num_channels: int
    max_cochannel_distance_violations: int

    @property
    def fits_80211(self) -> bool:
        """Whether the plan fits the 3 non-overlapping 2.4 GHz channels."""
        return self.num_channels <= 3


def plan_channels(
    field: AccessPointField, *, method: str = "sequential", **color_kwargs
) -> ChannelPlan:
    """Color the interference graph into channels and verify the plan."""
    graph = field.interference_graph()
    result = color_graph(graph, method=method, **color_kwargs)
    channels = result.colors.astype(np.int64) - 1
    # Verification: no interfering pair shares a channel.
    u, v = graph.edge_endpoints()
    keep = u < v
    violations = int(np.count_nonzero(channels[u[keep]] == channels[v[keep]]))
    return ChannelPlan(
        channels=channels,
        num_channels=result.num_colors,
        max_cochannel_distance_violations=violations,
    )
