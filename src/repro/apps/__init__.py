"""Applications of graph coloring (the paper's motivating use cases)."""

from .frequency import AccessPointField, ChannelPlan, plan_channels
from .register_alloc import (
    AllocationResult,
    LiveInterval,
    allocate_registers,
    build_interference_graph,
)
from .scheduling import ChromaticScheduler, ScheduleStats
from .ilu import LevelScheduledILU, ilu0
from .solver import ColoredSGSPreconditioner, PCGReport, pcg
from .sparse import MulticolorGaussSeidel, SweepReport, graph_laplacian, triangular_levels

__all__ = [
    "AccessPointField",
    "AllocationResult",
    "ChannelPlan",
    "ChromaticScheduler",
    "ColoredSGSPreconditioner",
    "PCGReport",
    "LevelScheduledILU",
    "LiveInterval",
    "MulticolorGaussSeidel",
    "ScheduleStats",
    "SweepReport",
    "allocate_registers",
    "build_interference_graph",
    "graph_laplacian",
    "ilu0",
    "pcg",
    "plan_channels",
    "triangular_levels",
]
