"""Incomplete-LU factorization with level-scheduled triangular solves.

Naumov et al.'s csrcolor was built for exactly this pipeline (the paper's
reference [7]): ILU(0) preconditioning needs sparse triangular solves
whose row dependencies serialize execution; *level scheduling* (or
coloring) exposes the parallelism.  This module provides:

* :func:`ilu0` — numeric ILU(0) (no fill-in: the factors keep A's
  sparsity pattern) in pure NumPy over CSR;
* :class:`LevelScheduledILU` — applies ``(LU)^{-1}`` with both triangular
  solves executed level by level (each level is one parallel batch);
* integration with :func:`repro.apps.solver.pcg` as a preconditioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .sparse import triangular_levels

__all__ = ["ilu0", "LevelScheduledILU"]


def ilu0(matrix: sp.csr_array) -> tuple[sp.csr_array, sp.csr_array]:
    """ILU(0) factorization: ``A ~ L @ U`` on A's own sparsity pattern.

    Standard IKJ formulation over CSR; returns unit-lower-triangular ``L``
    (diagonal ones stored) and upper-triangular ``U``.  Raises on a zero
    pivot — no pivoting is performed, as usual for ILU(0).
    """
    A = sp.csr_array(matrix, copy=True).astype(np.float64)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("matrix must be square")
    indptr, indices, data = A.indptr, A.indices, A.data
    # Work on a row-sorted copy (builder output is sorted, user input may not be).
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        row = slice(indptr[i], indptr[i + 1])
        order = np.argsort(indices[row])
        indices[row] = indices[row][order]
        data[row] = data[row][order]
        hits = np.flatnonzero(indices[row] == i)
        if hits.size:
            diag_pos[i] = indptr[i] + hits[0]
    if np.any(diag_pos < 0):
        raise ValueError("ILU(0) requires a full diagonal")

    col_index_of = {}
    for i in range(n):
        row_cols = indices[indptr[i] : indptr[i + 1]]
        col_index_of[i] = {int(c): indptr[i] + k for k, c in enumerate(row_cols)}

    for i in range(n):
        row_start, row_end = indptr[i], indptr[i + 1]
        for kk in range(row_start, row_end):
            k = int(indices[kk])
            if k >= i:
                break
            pivot = data[diag_pos[k]]
            if pivot == 0.0:
                raise ZeroDivisionError(f"zero pivot at row {k}")
            lik = data[kk] / pivot
            data[kk] = lik
            # subtract lik * U[k, j] for the j > k entries of row i that
            # also exist in row k (no fill-in is ever created).  Row
            # indices are sorted, so everything after kk satisfies j > k.
            krow = col_index_of[k]
            for jj in range(kk + 1, row_end):
                pos = krow.get(int(indices[jj]))
                if pos is not None:
                    data[jj] -= lik * data[pos]

    lower = sp.csr_array(sp.tril(
        sp.csr_array((data, indices, indptr), shape=(n, n)), k=-1, format="csr"
    ))
    lower = sp.csr_array(lower + sp.eye_array(n).tocsr())
    upper = sp.csr_array(sp.triu(
        sp.csr_array((data, indices, indptr), shape=(n, n)), k=0, format="csr"
    ))
    return lower, upper


@dataclass
class LevelScheduledILU:
    """Applies ``(LU)^{-1}`` with level-parallel triangular sweeps."""

    lower: sp.csr_array
    upper: sp.csr_array

    def __post_init__(self) -> None:
        self.lower = sp.csr_array(self.lower)
        self.upper = sp.csr_array(self.upper)
        self._l_levels = triangular_levels(self.lower)
        # U's dependency DAG is the mirrored problem: row i depends on j > i.
        n = self.upper.shape[0]
        flip = np.arange(n)[::-1]
        mirrored = sp.csr_array(self.upper[flip][:, flip])
        self._u_levels = [flip[lv] for lv in triangular_levels(sp.csr_array(sp.tril(mirrored, format="csr")))]
        self._u_diag = self.upper.diagonal()

    @classmethod
    def from_matrix(cls, matrix: sp.csr_array) -> "LevelScheduledILU":
        lower, upper = ilu0(matrix)
        return cls(lower=lower, upper=upper)

    @property
    def num_levels(self) -> tuple[int, int]:
        """(forward, backward) level counts — the serial phases per apply."""
        return len(self._l_levels), len(self._u_levels)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Solve ``L U z = r`` level by level."""
        # Forward: L y = r (unit diagonal).
        y = np.zeros_like(r, dtype=np.float64)
        for level in self._l_levels:
            rows = self.lower[level]
            y[level] = r[level] - (rows @ y - y[level])  # exclude unit diag term
        # Backward: U z = y.
        z = np.zeros_like(r, dtype=np.float64)
        for level in self._u_levels:
            rows = self.upper[level]
            z[level] = (y[level] - (rows @ z - self._u_diag[level] * z[level])) / self._u_diag[level]
        return z

    # PCG-compatible alias plus metadata the solver reports.
    @property
    def num_colors(self) -> int:
        return sum(self.num_levels)

    @property
    def parallel_phases_per_apply(self) -> int:
        return sum(self.num_levels)
