"""Coloring-accelerated sparse linear algebra (HPCG / ILU motivation).

The paper's introduction motivates coloring with two sparse-solver uses:

* **Multicolor Gauss–Seidel** (the HPCG smoother): a GS sweep has a serial
  dependency chain along the matrix order, but reordering by color classes
  turns it into ``num_colors`` fully parallel batched updates per sweep —
  the fewer the colors, the shorter the critical path.
* **Level scheduling for incomplete-LU triangular solves** (Naumov et
  al.'s csrcolor application): coloring the DAG of the triangular factor
  groups rows into parallel levels.

Both are implemented on NumPy/SciPy with the color schedule doing the
parallel-structure work, so examples can show coloring quality translating
directly into solver parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..coloring.api import color_graph
from ..graph.builder import from_scipy
from ..graph.csr import CSRGraph

__all__ = [
    "graph_laplacian",
    "MulticolorGaussSeidel",
    "SweepReport",
    "triangular_levels",
]


def graph_laplacian(graph: CSRGraph, *, shift: float = 1e-3) -> sp.csr_array:
    """SPD Laplacian ``L = D - A + shift*I`` of an undirected graph.

    The standard model problem for smoother experiments: its sparsity
    pattern *is* the graph, so coloring the graph colors the matrix.
    """
    a = graph.to_scipy().astype(np.float64)
    degs = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags_array(degs + shift) - a
    return sp.csr_array(lap)


@dataclass(frozen=True)
class SweepReport:
    """Convergence record of a multicolor GS run."""

    iterations: int
    residual_norms: tuple[float, ...]
    num_colors: int
    parallel_phases_per_sweep: int

    @property
    def converged(self) -> bool:
        return self.residual_norms[-1] < self.residual_norms[0]


class MulticolorGaussSeidel:
    """Gauss–Seidel smoother executed one color class at a time.

    Within a class no two rows couple (coloring property), so the class
    update is one dense vectorized operation — the parallel phase a GPU
    would run as a single kernel.  Mathematically this is GS in the
    color-permuted order, so it inherits GS convergence on SPD systems.
    """

    def __init__(
        self,
        matrix: sp.csr_array,
        *,
        method: str = "sequential",
        **color_kwargs,
    ) -> None:
        matrix = sp.csr_array(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        diag = matrix.diagonal()
        if np.any(diag == 0):
            raise ValueError("matrix must have a nonzero diagonal")
        self.matrix = matrix
        self.diag = diag
        graph = from_scipy(matrix, name="gs-pattern")
        # Remove the diagonal's self-loops for coloring purposes.
        self.graph = graph
        self.coloring = color_graph(self.graph, method=method, **color_kwargs)
        colors = self.coloring.colors
        order = np.argsort(colors, kind="stable")
        bounds = np.searchsorted(colors[order], np.arange(1, colors.max() + 2))
        self.classes = [
            order[lo:hi] for lo, hi in zip(np.r_[0, bounds[:-1]], bounds) if hi > lo
        ]

    def sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One multicolor GS sweep, in place."""
        for cls in self.classes:
            # x_c = (b_c - offdiag_row(c) . x) / d_c ; rows within a class
            # are mutually independent so the batched form is exact GS.
            rows = self.matrix[cls]
            x[cls] += (b[cls] - rows @ x) / self.diag[cls]
        return x

    def solve(
        self, b: np.ndarray, *, sweeps: int = 50, tol: float = 1e-8
    ) -> tuple[np.ndarray, SweepReport]:
        """Iterate sweeps until the residual drops below ``tol``."""
        x = np.zeros_like(b, dtype=np.float64)
        norms = [float(np.linalg.norm(b - self.matrix @ x))]
        it = 0
        for it in range(1, sweeps + 1):
            self.sweep(x, b)
            norms.append(float(np.linalg.norm(b - self.matrix @ x)))
            if norms[-1] <= tol * max(norms[0], 1e-300):
                break
        return x, SweepReport(
            iterations=it,
            residual_norms=tuple(norms),
            num_colors=self.coloring.num_colors,
            parallel_phases_per_sweep=len(self.classes),
        )


def triangular_levels(lower: sp.csr_array) -> list[np.ndarray]:
    """Level schedule for a sparse lower-triangular solve.

    Row ``i`` depends on every row ``j < i`` with ``L[i, j] != 0``; levels
    are the longest-path depths of that DAG.  All rows in one level solve
    in parallel — the structure csrcolor was built to expose for ILU.
    """
    lower = sp.csr_array(lower)
    n = lower.shape[0]
    indptr, indices = lower.indptr, lower.indices
    level = np.zeros(n, dtype=np.int64)
    for i in range(n):
        deps = indices[indptr[i] : indptr[i + 1]]
        deps = deps[deps < i]
        if deps.size:
            level[i] = int(level[deps].max()) + 1
    out = []
    for lv in range(int(level.max()) + 1 if n else 0):
        out.append(np.flatnonzero(level == lv).astype(np.int64))
    return out
