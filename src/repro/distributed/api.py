"""Multi-device distributed coloring with halo exchange.

:func:`color_distributed` lifts :func:`~repro.parallel.sharded
.color_sharded` onto a modeled device cluster (Bogle & Slota's
distributed-GPU blueprint): the vertex set block-partitions onto ``N``
simulated Kepler devices, each device colors its shard through its own
:class:`~repro.engine.context.ExecutionContext` (via the pluggable
:class:`~repro.distributed.transport.Transport`), and the boundary
repair runs as **per-round halo exchange** — devices ship boundary
colors over the :class:`~repro.distributed.topology.Topology`, whose
latency/bandwidth costs are charged to the simulated clock.

Byte-identity contract
----------------------
The *functional* decision sequence is exactly ``color_sharded``'s: the
same block partition, the same per-shard jobs, the same Jacobi rule
(losers = higher-id endpoints of conflicted edges, recolored to the mex
of a snapshot neighborhood), the same round cap and sequential-sweep
fallback.  The distributed layer changes only *when data moves and what
it costs*: the halo protocol delivers every boundary color change to
every adjacent device the round it happens, so each device's halo is
provably equal to the global snapshot (``HaloState.verify`` asserts it
when validation is on) and the local decisions equal the global ones.
``color_distributed(devices=k)`` therefore returns colors byte-identical
to ``color_sharded(num_shards=k)`` — the golden-suite leg in
``tests/test_distributed.py``.

Lockstep vs speculative
-----------------------
``speculate=False`` models the classic lockstep loop: every round is a
global barrier where each device re-ships its **full** boundary color
vector to every linked neighbor (how the pre-distributed code behaved,
priced).  ``speculate=True`` models speculative boundary coloring:
devices recolor tentatively from the halo they already hold and ship
only **deltas** — the boundary vertices that actually changed — to the
devices adjacent to them; a linked device pair with no change on its
cut exchanges nothing and does not synchronize that round.

``sync_rounds`` counts synchronizations at the *link* grain — one per
linked (unordered) device pair per round it exchanged — because that is
the quantity lockstep inflates: a barrier forces every linked pair into
every round (``links × (rounds + 1)``, initial exchange included), while
speculation synchronizes a pair only in rounds where its cut actually
changed.  Each pair-round speculation avoided is a *speculation hit*
(the pair's tentative colors stood without synchronization).  Both the
sync-round count and the modeled byte volume are deterministic
functional quantities, so ``benchmarks/BENCH_distributed.json`` gates
them exactly.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult, count_conflicts
from ..faults import Robustness, resolve_robustness
from ..graph.partition import block_partition, boundary_vertices
from ..obs.observe import resolve_observe
from ..parallel.jobs import ColorJob, JobFailure
from ..parallel.sharded import _mex
from ..resilience.checkpoint import Checkpointer, load_resume, run_fingerprint
from ..resilience.deadline import DeadlineExceeded, resolve_control
from .halo import COLOR_BYTES, DELTA_BYTES, HaloState, build_halo_plan
from .topology import Message, resolve_topology
from .transport import Transport, resolve_transport

__all__ = ["DistributedColoringError", "color_distributed"]


class DistributedColoringError(RuntimeError):
    """A device shard failed after the transport's retries."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"device {f.index} ({f.method} on {f.graph}): {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} device shard(s) failed: {detail}"
        )


def _degrade_to_sharded(
    graph, method, options, failures, robustness, *,
    backend, backend_opts, observation, validate, devices,
    max_resolution_rounds, transport_name,
) -> ColoringResult:
    """The distributed → sharded degradation chain.

    When device shards keep failing, fall back to single-device
    operation: the proven serial ``color_sharded`` path on the same
    shard count — colors stay byte-identical to the distributed run by
    the identity contract, so the degradation is invisible in output.
    """
    from ..parallel.sharded import color_sharded

    robustness.degrade(
        "distributed",
        f"distributed(x{devices},{transport_name})", "sharded",
        "device-failures",
        f"failed_devices={[f.index for f in failures]}",
    )
    healer = Robustness(
        injector=None, policy=robustness.policy, log=robustness.log
    )
    result = color_sharded(
        graph, method, num_shards=devices, scheduler="serial",
        backend=backend, backend_opts=backend_opts,
        observe=observation if observation.active else None,
        validate=validate, max_resolution_rounds=max_resolution_rounds,
        faults=healer, **options,
    )
    stats = dict(result.shard_stats or {})
    stats["degraded"] = "sharded"
    stats["failed_devices"] = [f.index for f in failures]
    result.extra["shard_stats"] = stats
    return result


def color_distributed(
    graph,
    method: str = "data-ldg",
    *,
    devices: int = 4,
    topology="pcie",
    transport=None,
    speculate: bool = True,
    workers=None,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    validate: bool = True,
    max_resolution_rounds: int = 16,
    faults=None,
    health=None,
    store=None,
    deadline_ms=None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume=None,
    **options,
) -> ColoringResult:
    """Color ``graph`` across ``devices`` simulated devices.

    Parameters
    ----------
    devices:
        Simulated device count; each device owns one contiguous shard
        (capped at the vertex count, like ``num_shards``).
    topology:
        Interconnect model pricing halo traffic: ``'pcie'`` (default,
        shared host bus), ``'nvlink'`` (all-to-all peer links),
        ``'ring'`` (neighbor links, hop-routed), or a
        :class:`~repro.distributed.topology.Topology` instance.
    transport:
        How shards execute and halos ship: ``'local'`` (in-process
        per-device contexts — the default), ``'pool'`` (worker
        processes via the process-pool scheduler; default when
        ``workers`` is set), or a
        :class:`~repro.distributed.transport.Transport`.
    speculate:
        ``True`` (default) ships boundary *deltas* and synchronizes a
        linked device pair only in rounds where its cut changed;
        ``False`` models the lockstep full-exchange-every-round loop.
        Colors are identical either way; ``sync_rounds`` /
        ``halo_bytes_modeled`` / ``speculation_hits`` differ.
    workers:
        Pool size for the ``'pool'`` transport (default: one worker per
        device); setting it selects the pool transport when
        ``transport`` is unset.
    faults / health:
        The robustness layer.  With a degradation-permitting policy,
        persistent device failures degrade the run to single-device
        serial ``color_sharded`` on the same shard count (recorded as a
        ``distributed`` degradation event) — byte-identical colors —
        instead of raising.
    store:
        Graph arena for shard placement (``'shm'``/``'mmap'`` publish
        once, devices attach zero-copy).
    deadline_ms:
        Wall-clock budget for the whole call (or a ready
        :class:`~repro.resilience.RunControl`): checked before each
        shard dispatch and at every sync-round boundary, raising the
        structured :class:`~repro.resilience.DeadlineExceeded`.
    checkpoint / checkpoint_every / resume:
        Round-state checkpointing (see :mod:`repro.resilience`):
        ``checkpoint=<path>`` atomically snapshots colors + counters
        after the shard phase and every ``checkpoint_every`` sync
        rounds; ``resume=<path>`` restores a matching checkpoint and
        continues — final colors are byte-identical to an uninterrupted
        run.  A missing resume file is a normal fresh start.

    Returns
    -------
    ColoringResult
        Colors byte-identical to ``color_sharded(num_shards=devices)``;
        ``shard_stats`` adds ``sync_rounds``, ``halo_bytes_modeled``,
        ``speculation_hits``, ``halo_messages`` and ``comm_time_us``,
        and the interconnect cost lands in ``transfer_time_us``.

    Raises
    ------
    DistributedColoringError
        When a device shard fails after retries and the health policy
        forbids degradation.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_distributed",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "store": store, "workers": workers,
                "faults": faults, "health": health, "observe": observe,
                "devices": None if devices == 4 else devices,
                "topology": None if topology == "pcie" else topology,
                "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        store, workers = merged["store"], merged["workers"]
        faults, health = merged["faults"], merged["health"]
        observe, deadline_ms = merged["observe"], merged["deadline_ms"]
        devices = merged["devices"] if merged["devices"] is not None else devices
        topology = (
            merged["topology"] if merged["topology"] is not None else topology
        )
    from ..coloring.api import METHODS
    from ..coloring.registry import resolve_method

    method = resolve_method(method, METHODS, entry_point="color_distributed")
    observation = resolve_observe(observe)
    tracer = observation.tracer
    robustness = resolve_robustness(faults, health)
    control = resolve_control(deadline_ms)
    if robustness is None and (
        checkpoint is not None or resume is not None or control is not None
    ):
        # Resilience features report through result.robustness (annex:
        # checkpoint stats, resume provenance, deadline accounting), so
        # opting into any of them gets a bundle even with no fault plan.
        robustness = Robustness()
    if robustness is not None and robustness.log.tracer is None:
        robustness.log.tracer = tracer
    name = getattr(graph, "name", "?")

    partition = block_partition(graph, devices)
    devices = partition.num_parts
    topo = resolve_topology(topology, devices, entry_point="color_distributed")
    xport = resolve_transport(
        transport, workers=workers, entry_point="color_distributed"
    )
    own_transport = not isinstance(transport, Transport)
    boundary = boundary_vertices(graph, partition)
    plan = build_halo_plan(graph, partition)

    # Checkpoint identity: resuming under a different graph/scheme/
    # option set or device count is a structured error, not garbage.
    fingerprint = run_fingerprint(
        graph.content_digest(), "distributed", method,
        {**options, "speculate": speculate, "topology": topo.name},
        devices,
    )
    ckpt = None
    if checkpoint is not None:
        ckpt = Checkpointer(
            checkpoint, fingerprint=fingerprint, every=checkpoint_every,
            robustness=robustness,
        )
    restored = (
        load_resume(resume, fingerprint=fingerprint, robustness=robustness)
        if resume is not None else None
    )

    # Circuit breaker: a pool transport that keeps losing devices is not
    # worth re-probing every call — while open, route straight to the
    # proven serial chain (byte-identical colors by the identity
    # contract).
    breaker = robustness.breaker if robustness is not None else None
    breaker_guarded = breaker is not None and xport.name == "pool"
    if breaker_guarded and not breaker.allow():
        robustness.degrade(
            "breaker", f"distributed(x{devices},{xport.name})", "sharded",
            "open", "circuit breaker open; skipping pool transport",
        )
        result = _degrade_to_sharded(
            graph, method, options, [], robustness,
            backend=backend, backend_opts=backend_opts,
            observation=observation, validate=validate, devices=devices,
            max_resolution_rounds=max_resolution_rounds,
            transport_name=xport.name,
        )
        result.extra["robustness"] = robustness.report()
        if own_transport:
            xport.close()
        return result

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            f"distributed:{name}", "run",
            scheme=f"distributed({method})", graph=name,
            vertices=graph.num_vertices, edges=graph.num_edges,
            devices=devices, topology=topo.name, transport=xport.name,
            speculate=int(speculate), boundary_vertices=int(boundary.sum()),
        )
    try:
        # -- 1. shard coloring: one job per device, via the transport ---
        halo = HaloState(plan)
        links = sorted({tuple(sorted(pair)) for pair in plan.send})
        sync_rounds = 0
        halo_bytes = 0
        halo_messages = 0
        comm_us = 0.0
        speculation_hits = 0
        rounds = 0
        recolored = 0
        halo_dirty = False

        if restored is not None:
            meta_r, arrays_r = restored
            colors = arrays_r["colors"].astype(COLOR_DTYPE, copy=True)
            shard_rows = meta_r["shard_rows"]
            agg = meta_r["agg"]
            sync_rounds = int(meta_r["sync_rounds"])
            halo_bytes = int(meta_r["halo_bytes"])
            halo_messages = int(meta_r["halo_messages"])
            comm_us = float(meta_r["comm_us"])
            speculation_hits = int(meta_r["speculation_hits"])
            rounds = int(meta_r["rounds"])
            recolored = int(meta_r["recolored"])
            # Rebuild every device's halo from the checkpointed truth.
            # Local reconstruction, not wire traffic: nothing is priced,
            # so resumed stats match the uninterrupted run's exactly.
            for (d, e), ids in sorted(plan.send.items()):
                halo.apply(e, ids, colors[ids])
            if robustness is not None:
                robustness.annotate("resumed", {
                    "path": str(resume), "round": int(meta_r["round"]),
                })
        else:
            members: list[np.ndarray] = []
            jobs: list[ColorJob] = []
            job_device: list[int] = []
            for d in range(devices):
                mask = partition.assignment == d
                verts = np.nonzero(mask)[0]
                members.append(verts)
                if verts.size == 0:
                    continue
                jobs.append(
                    ColorJob(graph.subgraph_mask(mask), method, dict(options))
                )
                job_device.append(d)
            outcomes = xport.run_shards(
                jobs, backend=backend, backend_opts=backend_opts,
                validate=validate, want_trace=tracer is not None,
                robustness=robustness, store=store, control=control,
            )
            failures = [o for o in outcomes if isinstance(o, JobFailure)]
            if breaker_guarded:
                if failures:
                    if breaker.record_failure(
                        f"{len(failures)} device shard(s) failed"
                    ):
                        robustness.degrade(
                            "breaker", "closed", "open", "tripped",
                            f"breaker {breaker.name!r} opened after "
                            f"{breaker.failure_threshold} consecutive "
                            f"failing calls",
                        )
                else:
                    breaker.record_success()
            if failures:
                if robustness is None or not robustness.policy.degrade:
                    raise DistributedColoringError(failures)
                result = _degrade_to_sharded(
                    graph, method, options, failures, robustness,
                    backend=backend, backend_opts=backend_opts,
                    observation=observation, validate=validate,
                    devices=devices,
                    max_resolution_rounds=max_resolution_rounds,
                    transport_name=xport.name,
                )
                result.extra["robustness"] = robustness.report()
                if run_span is not None:
                    tracer.end(run_span, colors=result.num_colors, degraded=1)
                    run_span = None
                return result

            colors = np.zeros(graph.num_vertices, dtype=COLOR_DTYPE)
            shard_rows = []
            results = []
            for job, dev, out in zip(jobs, job_device, outcomes):
                res, roots = out
                results.append(res)
                colors[members[dev]] = res.colors
                if tracer is not None and roots:
                    tracer.merge_subtrace(
                        roots, label=f"device-{dev}:{method}",
                        category="device",
                        device=dev, graph=job.graph_name(),
                    )
                shard_rows.append({
                    "shard": dev,
                    "device": dev,
                    "vertices": job.graph.num_vertices,
                    "edges": job.graph.num_edges,
                    "num_colors": res.num_colors,
                    "iterations": res.iterations,
                    "total_time_us": res.total_time_us,
                })
            # Per-device scalars fold into JSON-safe aggregates up front
            # so checkpoints can carry them and resumed runs rebuild the
            # same makespan result without the per-shard objects.
            agg = {
                "iterations": int(
                    max((r.iterations for r in results), default=0)
                ),
                "gpu_us": float(
                    max((r.gpu_time_us for r in results), default=0.0)
                ),
                "cpu_us": float(
                    max((r.cpu_time_us for r in results), default=0.0)
                ),
                "xfer_us": float(
                    max((r.transfer_time_us for r in results), default=0.0)
                ),
                "launches": int(sum(r.num_kernel_launches for r in results)),
            }

        # -- 2. halo-exchange boundary resolution -----------------------
        def _exchange(payload, label, mode, *, inject=True):
            """Deliver one round's messages; charge the topology.

            Returns the number of linked pairs that synchronized (one
            unordered pair may carry messages both ways).  The halo
            fault sites act here, on the in-flight payload — never on
            the ground-truth ``colors`` — and set ``halo_dirty`` so the
            caller heals with a full resync before any halo is read.
            """
            nonlocal sync_rounds, halo_bytes, halo_messages, comm_us
            nonlocal halo_dirty
            if inject and robustness is not None and payload:
                if robustness.fire(
                    "transport-partition", round=rounds
                ) is not None:
                    robustness.degrade(
                        "halo", f"exchange({mode})", "resync",
                        "transport-partition",
                        f"round={rounds}: all {len(payload)} halo "
                        f"message(s) lost",
                    )
                    halo_dirty = True
                    payload = []
                else:
                    if robustness.fire(
                        "halo-reorder", round=rounds
                    ) is not None:
                        # Delivery order must not matter: senders own
                        # disjoint vertex sets, so this is exercised as
                        # a commutativity check, not a corruption.
                        payload = list(reversed(payload))
                    kept = []
                    for src, dst, ids, cols in payload:
                        if robustness.fire(
                            "halo-drop", round=rounds, src=src, dst=dst
                        ) is not None:
                            robustness.degrade(
                                "halo", f"exchange({mode})", "resync",
                                "halo-drop",
                                f"round={rounds}: message {src}->{dst} "
                                f"dropped",
                            )
                            halo_dirty = True
                            continue
                        spec = robustness.fire(
                            "halo-corrupt", round=rounds, src=src, dst=dst
                        )
                        if spec is not None:
                            offset = (
                                int(spec.param)
                                if spec.param is not None else 1
                            )
                            cols = (cols + offset).astype(cols.dtype)
                            robustness.degrade(
                                "halo", f"exchange({mode})", "resync",
                                "halo-corrupt",
                                f"round={rounds}: message {src}->{dst} "
                                f"payload offset by {offset}",
                            )
                            halo_dirty = True
                        kept.append((src, dst, ids, cols))
                    payload = kept
            if not payload:
                return 0
            per_color = COLOR_BYTES if mode == "full" else DELTA_BYTES
            priced = [
                Message(src, dst, ids.size * per_color)
                for src, dst, ids, _ in payload
            ]
            xport.deliver(payload)
            for src, dst, ids, cols in payload:
                halo.apply(dst, ids, cols)
            cost = topo.exchange_time_us(priced)
            nbytes = sum(m.nbytes for m in priced)
            synced = len({tuple(sorted((m.src, m.dst))) for m in priced})
            sync_rounds += synced
            halo_bytes += nbytes
            halo_messages += len(priced)
            comm_us += cost
            if tracer is not None:
                tracer.event(
                    label, "exchange", duration_us=cost,
                    bytes=nbytes, messages=len(priced), mode=mode,
                    pairs_synced=synced,
                )
            return synced

        def _heal_halo(label):
            """Full (priced) re-broadcast after a dirty exchange.

            Runs before the next halo read, so verification still holds
            and colors stay byte-identical; only the traffic/sync stats
            record that healing cost something.
            """
            nonlocal halo_dirty
            if not halo_dirty:
                return
            halo_dirty = False
            _exchange(
                [
                    (d, e, ids, colors[ids])
                    for (d, e), ids in sorted(plan.send.items())
                ],
                label, "full", inject=False,
            )

        def _ckpt_meta():
            return {
                "mode": "distributed", "graph": name,
                "shard_rows": shard_rows, "agg": agg,
                "sync_rounds": sync_rounds, "halo_bytes": halo_bytes,
                "halo_messages": halo_messages, "comm_us": comm_us,
                "speculation_hits": speculation_hits,
                "rounds": rounds, "recolored": recolored,
            }

        if restored is None:
            # Initial exchange: every device ships its full boundary
            # color vector once, so round-1 conflict detection sees
            # true halos.
            _exchange(
                [
                    (d, e, ids, colors[ids])
                    for (d, e), ids in sorted(plan.send.items())
                ],
                "halo-exchange:initial", "full",
            )
            _heal_halo("halo-resync:initial")
            if ckpt is not None:
                # Round 0 = shard phase done: the expensive part.  Saved
                # unconditionally so a crash in round 1 never re-colors
                # the shards.
                ckpt.save(0, _ckpt_meta(), {"colors": colors}, force=True)

        u, v = graph.edge_endpoints()
        fallback = False
        while True:
            if control is not None:
                control.check("sync-round")
            if robustness is not None:
                if robustness.fire(
                    "deadline-storm", round=rounds, phase="sync"
                ) is not None:
                    if control is not None and control.deadline is not None:
                        d = control.deadline
                        raise DeadlineExceeded(
                            d.deadline_ms, queued_ms=d.queued_ms,
                            running_ms=d.running_ms(),
                            where="sync-round:forced",
                        )
                    raise DeadlineExceeded(0.0, where="sync-round:forced")
            conflicted = colors[u] == colors[v]
            if not conflicted.any():
                break
            if validate:
                # Protocol invariant: the halos every device would read
                # this round equal the ground-truth colors.
                halo.verify(colors)
            if rounds >= max_resolution_rounds:
                fallback = True
                if robustness is not None:
                    robustness.degrade(
                        "distributed", "halo-jacobi", "sequential-sweep",
                        "round-cap",
                        f"rounds={rounds} "
                        f"conflicted_edges={int(conflicted.sum())}",
                    )
                losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
                for w in losers:
                    colors[w] = _mex(colors[graph.neighbors(w)])
                recolored += int(losers.size)
                break
            losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
            snapshot = colors.copy()
            for w in losers:
                colors[w] = _mex(snapshot[graph.neighbors(w)])
            recolored += int(losers.size)
            rounds += 1
            if speculate:
                # Ship only the boundary vertices that changed, only to
                # the devices adjacent to them.  A linked pair whose cut
                # saw no change exchanges nothing — that skipped
                # synchronization is a speculation hit.
                payload = []
                for (d, e), ids in sorted(plan.send.items()):
                    changed = ids[np.isin(ids, losers, assume_unique=True)]
                    if changed.size:
                        payload.append((d, e, changed, colors[changed]))
                synced = _exchange(payload, f"halo-exchange:{rounds}", "delta")
                speculation_hits += len(links) - synced
            else:
                _exchange(
                    [
                        (d, e, ids, colors[ids])
                        for (d, e), ids in sorted(plan.send.items())
                    ],
                    f"halo-exchange:{rounds}", "full",
                )
            _heal_halo(f"halo-resync:{rounds}")
            if ckpt is not None:
                ckpt.save(rounds, _ckpt_meta(), {"colors": colors})
        if tracer is not None:
            tracer.event(
                "boundary-resolution", "resolve",
                rounds=rounds, recolored=recolored, fallback=int(fallback),
                sync_rounds=sync_rounds, halo_bytes=halo_bytes,
                speculation_hits=speculation_hits,
                remaining_conflicts=count_conflicts(graph, colors),
            )

        # -- 3. makespan result + interconnect cost ---------------------
        result = ColoringResult(
            colors=colors,
            scheme=(
                f"distributed({method})x{devices}@{topo.name}"
                + ("" if speculate else ":lockstep")
            ),
            iterations=agg["iterations"] + rounds,
            gpu_time_us=agg["gpu_us"],
            cpu_time_us=agg["cpu_us"],
            transfer_time_us=agg["xfer_us"] + comm_us,
            num_kernel_launches=agg["launches"],
        )
        result.extra["shard_stats"] = {
            "num_shards": devices,
            "devices": devices,
            "method": method,
            "mode": "distributed",
            "topology": topo.name,
            "transport": xport.name,
            "speculate": speculate,
            "shards": shard_rows,
            "boundary_vertices": int(boundary.sum()),
            "links": len(links),
            "resolution_rounds": rounds,
            "recolored": recolored,
            "fallback": fallback,
            "sync_rounds": sync_rounds,
            "halo_bytes_modeled": halo_bytes,
            "halo_messages": halo_messages,
            "speculation_hits": speculation_hits,
            "comm_time_us": comm_us,
        }
        if observation.active:
            result.extra.setdefault("observation", observation)
        if robustness is not None:
            if ckpt is not None:
                robustness.annotate("checkpoint", ckpt.stats())
            if control is not None and control.deadline is not None:
                queued, running = control.elapsed_snapshot()
                robustness.annotate("deadline", {
                    "deadline_ms": control.deadline.deadline_ms,
                    "queued_ms": round(queued, 3),
                    "running_ms": round(running, 3),
                })
            result.extra["robustness"] = robustness.report()
        if run_span is not None:
            tracer.end(
                run_span,
                colors=result.num_colors,
                iterations=result.iterations,
                resolution_rounds=rounds,
                sync_rounds=sync_rounds,
            )
            run_span = None
        if validate:
            result.validate(graph)
        return result
    finally:
        if own_transport:
            xport.close()
        if run_span is not None and tracer is not None:
            tracer.end(run_span)
