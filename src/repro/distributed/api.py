"""Multi-device distributed coloring with halo exchange.

:func:`color_distributed` lifts :func:`~repro.parallel.sharded
.color_sharded` onto a modeled device cluster (Bogle & Slota's
distributed-GPU blueprint): the vertex set block-partitions onto ``N``
simulated Kepler devices, each device colors its shard through its own
:class:`~repro.engine.context.ExecutionContext` (via the pluggable
:class:`~repro.distributed.transport.Transport`), and the boundary
repair runs as **per-round halo exchange** — devices ship boundary
colors over the :class:`~repro.distributed.topology.Topology`, whose
latency/bandwidth costs are charged to the simulated clock.

Byte-identity contract
----------------------
The *functional* decision sequence is exactly ``color_sharded``'s: the
same block partition, the same per-shard jobs, the same Jacobi rule
(losers = higher-id endpoints of conflicted edges, recolored to the mex
of a snapshot neighborhood), the same round cap and sequential-sweep
fallback.  The distributed layer changes only *when data moves and what
it costs*: the halo protocol delivers every boundary color change to
every adjacent device the round it happens, so each device's halo is
provably equal to the global snapshot (``HaloState.verify`` asserts it
when validation is on) and the local decisions equal the global ones.
``color_distributed(devices=k)`` therefore returns colors byte-identical
to ``color_sharded(num_shards=k)`` — the golden-suite leg in
``tests/test_distributed.py``.

Lockstep vs speculative
-----------------------
``speculate=False`` models the classic lockstep loop: every round is a
global barrier where each device re-ships its **full** boundary color
vector to every linked neighbor (how the pre-distributed code behaved,
priced).  ``speculate=True`` models speculative boundary coloring:
devices recolor tentatively from the halo they already hold and ship
only **deltas** — the boundary vertices that actually changed — to the
devices adjacent to them; a linked device pair with no change on its
cut exchanges nothing and does not synchronize that round.

``sync_rounds`` counts synchronizations at the *link* grain — one per
linked (unordered) device pair per round it exchanged — because that is
the quantity lockstep inflates: a barrier forces every linked pair into
every round (``links × (rounds + 1)``, initial exchange included), while
speculation synchronizes a pair only in rounds where its cut actually
changed.  Each pair-round speculation avoided is a *speculation hit*
(the pair's tentative colors stood without synchronization).  Both the
sync-round count and the modeled byte volume are deterministic
functional quantities, so ``benchmarks/BENCH_distributed.json`` gates
them exactly.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult, count_conflicts
from ..faults import Robustness, resolve_robustness
from ..graph.partition import block_partition, boundary_vertices
from ..obs.observe import resolve_observe
from ..parallel.jobs import ColorJob, JobFailure
from ..parallel.sharded import _mex
from .halo import COLOR_BYTES, DELTA_BYTES, HaloState, build_halo_plan
from .topology import Message, resolve_topology
from .transport import Transport, resolve_transport

__all__ = ["DistributedColoringError", "color_distributed"]


class DistributedColoringError(RuntimeError):
    """A device shard failed after the transport's retries."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"device {f.index} ({f.method} on {f.graph}): {f.error}"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} device shard(s) failed: {detail}"
        )


def _degrade_to_sharded(
    graph, method, options, failures, robustness, *,
    backend, backend_opts, observation, validate, devices,
    max_resolution_rounds, transport_name,
) -> ColoringResult:
    """The distributed → sharded degradation chain.

    When device shards keep failing, fall back to single-device
    operation: the proven serial ``color_sharded`` path on the same
    shard count — colors stay byte-identical to the distributed run by
    the identity contract, so the degradation is invisible in output.
    """
    from ..parallel.sharded import color_sharded

    robustness.degrade(
        "distributed",
        f"distributed(x{devices},{transport_name})", "sharded",
        "device-failures",
        f"failed_devices={[f.index for f in failures]}",
    )
    healer = Robustness(
        injector=None, policy=robustness.policy, log=robustness.log
    )
    result = color_sharded(
        graph, method, num_shards=devices, scheduler="serial",
        backend=backend, backend_opts=backend_opts,
        observe=observation if observation.active else None,
        validate=validate, max_resolution_rounds=max_resolution_rounds,
        faults=healer, **options,
    )
    stats = dict(result.shard_stats or {})
    stats["degraded"] = "sharded"
    stats["failed_devices"] = [f.index for f in failures]
    result.extra["shard_stats"] = stats
    return result


def color_distributed(
    graph,
    method: str = "data-ldg",
    *,
    devices: int = 4,
    topology="pcie",
    transport=None,
    speculate: bool = True,
    workers=None,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    validate: bool = True,
    max_resolution_rounds: int = 16,
    faults=None,
    health=None,
    store=None,
    **options,
) -> ColoringResult:
    """Color ``graph`` across ``devices`` simulated devices.

    Parameters
    ----------
    devices:
        Simulated device count; each device owns one contiguous shard
        (capped at the vertex count, like ``num_shards``).
    topology:
        Interconnect model pricing halo traffic: ``'pcie'`` (default,
        shared host bus), ``'nvlink'`` (all-to-all peer links),
        ``'ring'`` (neighbor links, hop-routed), or a
        :class:`~repro.distributed.topology.Topology` instance.
    transport:
        How shards execute and halos ship: ``'local'`` (in-process
        per-device contexts — the default), ``'pool'`` (worker
        processes via the process-pool scheduler; default when
        ``workers`` is set), or a
        :class:`~repro.distributed.transport.Transport`.
    speculate:
        ``True`` (default) ships boundary *deltas* and synchronizes a
        linked device pair only in rounds where its cut changed;
        ``False`` models the lockstep full-exchange-every-round loop.
        Colors are identical either way; ``sync_rounds`` /
        ``halo_bytes_modeled`` / ``speculation_hits`` differ.
    workers:
        Pool size for the ``'pool'`` transport (default: one worker per
        device); setting it selects the pool transport when
        ``transport`` is unset.
    faults / health:
        The robustness layer.  With a degradation-permitting policy,
        persistent device failures degrade the run to single-device
        serial ``color_sharded`` on the same shard count (recorded as a
        ``distributed`` degradation event) — byte-identical colors —
        instead of raising.
    store:
        Graph arena for shard placement (``'shm'``/``'mmap'`` publish
        once, devices attach zero-copy).

    Returns
    -------
    ColoringResult
        Colors byte-identical to ``color_sharded(num_shards=devices)``;
        ``shard_stats`` adds ``sync_rounds``, ``halo_bytes_modeled``,
        ``speculation_hits``, ``halo_messages`` and ``comm_time_us``,
        and the interconnect cost lands in ``transfer_time_us``.

    Raises
    ------
    DistributedColoringError
        When a device shard fails after retries and the health policy
        forbids degradation.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_distributed",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "store": store, "workers": workers,
                "faults": faults, "health": health, "observe": observe,
                "devices": None if devices == 4 else devices,
                "topology": None if topology == "pcie" else topology,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        store, workers = merged["store"], merged["workers"]
        faults, health = merged["faults"], merged["health"]
        observe = merged["observe"]
        devices = merged["devices"] if merged["devices"] is not None else devices
        topology = (
            merged["topology"] if merged["topology"] is not None else topology
        )
    from ..coloring.api import METHODS
    from ..coloring.registry import resolve_method

    method = resolve_method(method, METHODS, entry_point="color_distributed")
    observation = resolve_observe(observe)
    tracer = observation.tracer
    robustness = resolve_robustness(faults, health)
    if robustness is not None and robustness.log.tracer is None:
        robustness.log.tracer = tracer
    name = getattr(graph, "name", "?")

    partition = block_partition(graph, devices)
    devices = partition.num_parts
    topo = resolve_topology(topology, devices, entry_point="color_distributed")
    xport = resolve_transport(
        transport, workers=workers, entry_point="color_distributed"
    )
    own_transport = not isinstance(transport, Transport)
    boundary = boundary_vertices(graph, partition)
    plan = build_halo_plan(graph, partition)

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            f"distributed:{name}", "run",
            scheme=f"distributed({method})", graph=name,
            vertices=graph.num_vertices, edges=graph.num_edges,
            devices=devices, topology=topo.name, transport=xport.name,
            speculate=int(speculate), boundary_vertices=int(boundary.sum()),
        )
    try:
        # -- 1. shard coloring: one job per device, via the transport ---
        members: list[np.ndarray] = []
        jobs: list[ColorJob] = []
        job_device: list[int] = []
        for d in range(devices):
            mask = partition.assignment == d
            verts = np.nonzero(mask)[0]
            members.append(verts)
            if verts.size == 0:
                continue
            jobs.append(ColorJob(graph.subgraph_mask(mask), method, dict(options)))
            job_device.append(d)
        outcomes = xport.run_shards(
            jobs, backend=backend, backend_opts=backend_opts,
            validate=validate, want_trace=tracer is not None,
            robustness=robustness, store=store,
        )
        failures = [o for o in outcomes if isinstance(o, JobFailure)]
        if failures:
            if robustness is None or not robustness.policy.degrade:
                raise DistributedColoringError(failures)
            result = _degrade_to_sharded(
                graph, method, options, failures, robustness,
                backend=backend, backend_opts=backend_opts,
                observation=observation, validate=validate, devices=devices,
                max_resolution_rounds=max_resolution_rounds,
                transport_name=xport.name,
            )
            result.extra["robustness"] = robustness.report()
            if run_span is not None:
                tracer.end(run_span, colors=result.num_colors, degraded=1)
                run_span = None
            return result

        colors = np.zeros(graph.num_vertices, dtype=COLOR_DTYPE)
        shard_rows = []
        results = []
        for job, dev, out in zip(jobs, job_device, outcomes):
            res, roots = out
            results.append(res)
            colors[members[dev]] = res.colors
            if tracer is not None and roots:
                tracer.merge_subtrace(
                    roots, label=f"device-{dev}:{method}", category="device",
                    device=dev, graph=job.graph_name(),
                )
            shard_rows.append({
                "shard": dev,
                "device": dev,
                "vertices": job.graph.num_vertices,
                "edges": job.graph.num_edges,
                "num_colors": res.num_colors,
                "iterations": res.iterations,
                "total_time_us": res.total_time_us,
            })

        # -- 2. halo-exchange boundary resolution -----------------------
        halo = HaloState(plan)
        links = sorted({tuple(sorted(pair)) for pair in plan.send})
        sync_rounds = 0
        halo_bytes = 0
        halo_messages = 0
        comm_us = 0.0
        speculation_hits = 0

        def _exchange(payload, label, mode):
            """Deliver one round's messages; charge the topology.

            Returns the number of linked pairs that synchronized (one
            unordered pair may carry messages both ways).
            """
            nonlocal sync_rounds, halo_bytes, halo_messages, comm_us
            if not payload:
                return 0
            per_color = COLOR_BYTES if mode == "full" else DELTA_BYTES
            priced = [
                Message(src, dst, ids.size * per_color)
                for src, dst, ids, _ in payload
            ]
            xport.deliver(payload)
            for src, dst, ids, cols in payload:
                halo.apply(dst, ids, cols)
            cost = topo.exchange_time_us(priced)
            nbytes = sum(m.nbytes for m in priced)
            synced = len({tuple(sorted((m.src, m.dst))) for m in priced})
            sync_rounds += synced
            halo_bytes += nbytes
            halo_messages += len(priced)
            comm_us += cost
            if tracer is not None:
                tracer.event(
                    label, "exchange", duration_us=cost,
                    bytes=nbytes, messages=len(priced), mode=mode,
                    pairs_synced=synced,
                )
            return synced

        # Initial exchange: every device ships its full boundary color
        # vector once, so round-1 conflict detection sees true halos.
        _exchange(
            [
                (d, e, ids, colors[ids])
                for (d, e), ids in sorted(plan.send.items())
            ],
            "halo-exchange:initial", "full",
        )

        u, v = graph.edge_endpoints()
        rounds = 0
        recolored = 0
        fallback = False
        while True:
            conflicted = colors[u] == colors[v]
            if not conflicted.any():
                break
            if validate:
                # Protocol invariant: the halos every device would read
                # this round equal the ground-truth colors.
                halo.verify(colors)
            if rounds >= max_resolution_rounds:
                fallback = True
                if robustness is not None:
                    robustness.degrade(
                        "distributed", "halo-jacobi", "sequential-sweep",
                        "round-cap",
                        f"rounds={rounds} "
                        f"conflicted_edges={int(conflicted.sum())}",
                    )
                losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
                for w in losers:
                    colors[w] = _mex(colors[graph.neighbors(w)])
                recolored += int(losers.size)
                break
            losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
            snapshot = colors.copy()
            for w in losers:
                colors[w] = _mex(snapshot[graph.neighbors(w)])
            recolored += int(losers.size)
            rounds += 1
            if speculate:
                # Ship only the boundary vertices that changed, only to
                # the devices adjacent to them.  A linked pair whose cut
                # saw no change exchanges nothing — that skipped
                # synchronization is a speculation hit.
                payload = []
                for (d, e), ids in sorted(plan.send.items()):
                    changed = ids[np.isin(ids, losers, assume_unique=True)]
                    if changed.size:
                        payload.append((d, e, changed, colors[changed]))
                synced = _exchange(payload, f"halo-exchange:{rounds}", "delta")
                speculation_hits += len(links) - synced
            else:
                _exchange(
                    [
                        (d, e, ids, colors[ids])
                        for (d, e), ids in sorted(plan.send.items())
                    ],
                    f"halo-exchange:{rounds}", "full",
                )
        if tracer is not None:
            tracer.event(
                "boundary-resolution", "resolve",
                rounds=rounds, recolored=recolored, fallback=int(fallback),
                sync_rounds=sync_rounds, halo_bytes=halo_bytes,
                speculation_hits=speculation_hits,
                remaining_conflicts=count_conflicts(graph, colors),
            )

        # -- 3. makespan result + interconnect cost ---------------------
        result = ColoringResult(
            colors=colors,
            scheme=(
                f"distributed({method})x{devices}@{topo.name}"
                + ("" if speculate else ":lockstep")
            ),
            iterations=max((r.iterations for r in results), default=0) + rounds,
            gpu_time_us=max((r.gpu_time_us for r in results), default=0.0),
            cpu_time_us=max((r.cpu_time_us for r in results), default=0.0),
            transfer_time_us=max(
                (r.transfer_time_us for r in results), default=0.0
            ) + comm_us,
            num_kernel_launches=sum(r.num_kernel_launches for r in results),
        )
        result.extra["shard_stats"] = {
            "num_shards": devices,
            "devices": devices,
            "method": method,
            "mode": "distributed",
            "topology": topo.name,
            "transport": xport.name,
            "speculate": speculate,
            "shards": shard_rows,
            "boundary_vertices": int(boundary.sum()),
            "links": len(links),
            "resolution_rounds": rounds,
            "recolored": recolored,
            "fallback": fallback,
            "sync_rounds": sync_rounds,
            "halo_bytes_modeled": halo_bytes,
            "halo_messages": halo_messages,
            "speculation_hits": speculation_hits,
            "comm_time_us": comm_us,
        }
        if observation.active:
            result.extra.setdefault("observation", observation)
        if robustness is not None:
            result.extra["robustness"] = robustness.report()
        if run_span is not None:
            tracer.end(
                run_span,
                colors=result.num_colors,
                iterations=result.iterations,
                resolution_rounds=rounds,
                sync_rounds=sync_rounds,
            )
            run_span = None
        if validate:
            result.validate(graph)
        return result
    finally:
        if own_transport:
            xport.close()
        if run_span is not None and tracer is not None:
            tracer.end(run_span)
