"""Pluggable transports: how device shards execute and halos ship.

The distributed layer separates *what* the protocol does (partition,
color, exchange halos, repair — :mod:`repro.distributed.api`) from *how*
shard work runs and boundary payloads move.  A :class:`Transport`
answers both:

* :meth:`Transport.run_shards` executes the per-device coloring jobs
  and returns one outcome per device — ``(result, trace_roots)`` or a
  structured :class:`~repro.parallel.jobs.JobFailure`.
* :meth:`Transport.deliver` ships one round's halo messages and returns
  the wire bytes that crossed the transport.

Two implementations now, the seam left open for sockets (a multi-host
transport only needs these two methods plus a remote
:class:`~repro.graph.store.GraphStore`; see docs/DISTRIBUTED.md):

:class:`LocalTransport`
    Every simulated device is an in-process
    :class:`~repro.engine.context.ExecutionContext` of its own (own
    upload cache, own buffer pool — nothing shared between devices, as
    on a real multi-GPU host).  Halo delivery is an address-space copy.
:class:`PoolTransport`
    Devices are worker *processes* through the PR 3
    :class:`~repro.parallel.scheduler.ProcessPoolScheduler` — real
    isolation, real pickling, the scheduler's crash/timeout retry and
    fault sites included.  Colors are byte-identical to the local
    transport (the golden parity leg in ``tests/test_distributed.py``).

Both honor ``store=``: shard subgraphs publish into the arena once and
devices attach (zero-copy for ``shm``/``mmap``), mirroring
:func:`~repro.parallel.scheduler.run_jobs`.
"""

from __future__ import annotations

import difflib
import traceback as _traceback

import numpy as np

from ..parallel.jobs import ColorJob, JobFailure

__all__ = [
    "Transport",
    "LocalTransport",
    "PoolTransport",
    "TRANSPORTS",
    "resolve_transport",
]


def _publish_jobs(jobs, store):
    """Publish shard graphs into a ``store=`` arena (run_jobs' contract).

    Returns ``(jobs, store_obj, own_store)`` — handle-bearing jobs when
    the arena is not heap, plus whether the caller must close the store.
    """
    from ..graph.store import GraphStore, resolve_store

    store_obj = resolve_store(store) if store is not None else None
    own_store = store_obj is not None and not isinstance(store, GraphStore)
    if store_obj is None or store_obj.kind == "heap":
        for job in jobs:
            job.graph.content_digest()  # memoize before any pickling
        return jobs, store_obj, own_store
    published: dict = {}
    shipped = []
    for job in jobs:
        digest = job.graph.content_digest()
        entry = published.get(digest)
        if entry is None:
            entry = published[digest] = store_obj.publish(job.graph)
        placed, handle = entry
        shipped.append(ColorJob(placed, job.method, job.options, handle=handle))
    return shipped, store_obj, own_store


class Transport:
    """Abstract device-execution + halo-delivery seam."""

    name = "?"

    def run_shards(self, jobs, *, backend=None, backend_opts=None,
                   validate=True, want_trace=False, robustness=None,
                   store=None, control=None) -> list:
        raise NotImplementedError

    def deliver(self, messages) -> int:
        """Ship ``[(src, dst, vertex_ids, colors), ...]``; return bytes.

        The base implementation models the wire: payload array bytes,
        summed.  A cross-host transport would serialize here.
        """
        return int(
            sum(ids.nbytes + cols.nbytes for _, _, ids, cols in messages)
        )

    def close(self) -> None:
        """Release per-device state (contexts, pools)."""


class LocalTransport(Transport):
    """N in-process simulated devices, one ExecutionContext each."""

    name = "local"

    def __init__(self) -> None:
        self._contexts: dict[int, object] = {}

    def run_shards(self, jobs, *, backend=None, backend_opts=None,
                   validate=True, want_trace=False, robustness=None,
                   store=None, control=None) -> list:
        from ..coloring.api import ENGINE_RECIPES, color_graph
        from ..engine.context import ExecutionContext
        from ..faults import FaultInjected
        from ..faults import runtime as fault_runtime
        from ..obs.observe import Observation
        from ..obs.tracer import Tracer
        from ..resilience.deadline import activate_control

        jobs, store_obj, own_store = _publish_jobs(list(jobs), store)
        outcomes: list = []
        try:
            for device, job in enumerate(jobs):
                if control is not None:
                    control.check("shard")
                tracer = Tracer() if want_trace else None
                try:
                    if robustness is not None:
                        spec = robustness.fire("job-error", job=device, attempt=1)
                        if spec is not None:
                            raise FaultInjected(
                                f"injected transient job error "
                                f"(device={device}, attempt=1)"
                            )
                    if job.method in ENGINE_RECIPES:
                        if tracer is not None:
                            # Observed runs get a device-local tracer the
                            # caller grafts into the merged timeline.
                            ctx = ExecutionContext(
                                backend=backend,
                                observe=Observation(tracer=tracer),
                                **dict(backend_opts or {}),
                            )
                        else:
                            ctx = self._contexts.get(device)
                            if ctx is None:
                                ctx = self._contexts[device] = ExecutionContext(
                                    backend=backend, **dict(backend_opts or {})
                                )
                        from contextlib import nullcontext

                        rscope = (
                            ctx.robustness_scope(robustness)
                            if robustness is not None else nullcontext()
                        )
                        cscope = (
                            ctx.control_scope(control)
                            if control is not None else nullcontext()
                        )
                        with rscope, cscope:
                            result = ctx.run(
                                job.graph, job.method,
                                validate=validate, **job.options,
                            )
                    else:
                        observe = (
                            Observation(tracer=tracer)
                            if tracer is not None else None
                        )
                        with fault_runtime.activate(robustness), \
                                activate_control(control):
                            result = color_graph(
                                job.graph, job.method, validate=validate,
                                observe=observe, **job.options,
                            )
                    result.extra.pop("observation", None)
                    outcomes.append(
                        (result, tracer.roots if tracer is not None else None)
                    )
                except Exception as exc:
                    from ..resilience.deadline import (
                        Cancelled,
                        DeadlineExceeded,
                    )

                    if isinstance(exc, (DeadlineExceeded, Cancelled)):
                        raise  # a blown budget fails the protocol, not a shard
                    outcomes.append(JobFailure(
                        index=device, graph=job.graph_name(),
                        method=job.method, attempts=1, error=repr(exc),
                        traceback=_traceback.format_exc(),
                    ))
            return outcomes
        finally:
            if own_store and store_obj is not None:
                store_obj.close()

    def close(self) -> None:
        self._contexts.clear()


class PoolTransport(Transport):
    """Devices as worker processes via the PR 3 process-pool scheduler.

    The lazily built scheduler persists across :meth:`run_shards` calls
    (its recycle counters survive, and an explicitly passed scheduler's
    retry policy applies to every round).  :meth:`close` is idempotent
    and crash-safe: calling it twice, or after a worker crash recycled
    the batch pool, is a no-op — but a closed transport refuses new
    work instead of silently building a fresh pool.
    """

    name = "pool"

    def __init__(self, workers: int | None = None, *, scheduler=None) -> None:
        self.workers = workers
        self._scheduler = scheduler
        self._own_scheduler = None
        self._closed = False

    def run_shards(self, jobs, *, backend=None, backend_opts=None,
                   validate=True, want_trace=False, robustness=None,
                   store=None, control=None) -> list:
        from ..parallel.scheduler import ProcessPoolScheduler

        if self._closed:
            raise RuntimeError(
                "PoolTransport is closed; build a new transport (or a new "
                "color_distributed call) instead of reusing it"
            )
        jobs = list(jobs)
        sched = self._scheduler
        if sched is None:
            sched = self._own_scheduler
            if sched is None:
                sched = self._own_scheduler = ProcessPoolScheduler(
                    self.workers or max(len(jobs), 1)
                )
        jobs, store_obj, own_store = _publish_jobs(jobs, store)
        try:
            execute_kwargs = dict(
                backend=backend, backend_opts=backend_opts,
                validate=validate, want_trace=want_trace, want_rounds=False,
            )
            if robustness is not None:
                execute_kwargs["robustness"] = robustness
            if control is not None:
                execute_kwargs["control"] = control
            raw = sched.execute(jobs, **execute_kwargs)
        finally:
            if own_store and store_obj is not None:
                store_obj.close()
        return [
            out if isinstance(out, JobFailure) else (out[0], out[1])
            for out in raw
        ]

    def close(self) -> None:
        # Idempotent by design: the scheduler owns no long-lived pool
        # (each execute() builds and reaps its own, crash or not), so
        # closing only drops the reference and latches the closed flag.
        self._own_scheduler = None
        self._closed = True

    def deliver(self, messages) -> int:
        """Model the process boundary: payloads round-trip the picklers.

        The modeled wire bytes stay the array payload (identical to
        :class:`LocalTransport`, so stats are transport-invariant); the
        round-trip just proves the messages survive serialization the
        way they would crossing a real pool/socket.
        """
        import pickle

        for src, dst, ids, cols in messages:
            thawed_ids, thawed_cols = pickle.loads(
                pickle.dumps((ids, cols), protocol=pickle.HIGHEST_PROTOCOL)
            )
            if not (
                np.array_equal(thawed_ids, ids)
                and np.array_equal(thawed_cols, cols)
            ):  # pragma: no cover - pickling ndarrays is lossless
                raise AssertionError(
                    f"halo message {src}->{dst} corrupted in transit"
                )
        return super().deliver(messages)


TRANSPORTS = {"local": LocalTransport, "pool": PoolTransport}


def resolve_transport(
    spec, *, workers=None, entry_point: str | None = None
) -> Transport:
    """Normalize ``transport=`` into a :class:`Transport` instance."""
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        spec = "pool" if workers else "local"
    if isinstance(spec, str):
        if spec == "local":
            return LocalTransport()
        if spec == "pool":
            return PoolTransport(workers)
        where = f"{entry_point}(): " if entry_point else ""
        msg = (
            f"{where}unknown transport {spec!r}; choose from "
            f"{sorted(TRANSPORTS)}"
        )
        close = difflib.get_close_matches(spec, sorted(TRANSPORTS), n=1)
        if close:
            msg += f" (did you mean {close[0]!r}?)"
        raise ValueError(msg + " (or pass a Transport instance)")
    raise TypeError(
        f"transport= takes 'local', 'pool', or a Transport instance, "
        f"not {type(spec).__name__}"
    )
