"""Static halo plan: who ships which boundary vertices to whom.

The block partition is static, so the communication pattern of the
boundary-resolution phase can be compiled once per run: for every
ordered device pair ``(d, e)`` with at least one cross edge, the sorted
vertex ids owned by ``d`` that have a neighbor on ``e`` —  exactly the
colors ``e`` needs in its *halo* (ghost region) to evaluate its own
cross edges and run mex over remote neighbors.  Because both sides
derive the plan from the same partition, messages carry **colors only**
in full-exchange rounds (the id vector is implicit in the plan) and
``(id, color)`` pairs in delta rounds.

The receive side mirrors the send side: ``recv_ids[e]`` is the sorted
union of every ``send[d -> e]``, and :class:`HaloState` keeps one color
array parallel to it per device.  The protocol invariant — delivered
halo colors equal the ground-truth snapshot the global Jacobi loop
reads — is what makes the distributed decisions byte-identical to
:func:`~repro.parallel.sharded.color_sharded`; ``HaloState.verify``
asserts it (cheaply, per round) when validation is on.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE

__all__ = ["HaloPlan", "HaloState", "build_halo_plan"]

#: Modeled wire cost of one color in a full (plan-implicit-ids) message.
COLOR_BYTES = int(np.dtype(COLOR_DTYPE).itemsize)
#: Modeled wire cost of one ``(vertex id, color)`` pair in a delta
#: message (int32 local offset + int32 color).
DELTA_BYTES = 2 * COLOR_BYTES


class HaloPlan:
    """The compiled communication pattern for one partitioned graph."""

    def __init__(
        self,
        num_devices: int,
        send: dict[tuple[int, int], np.ndarray],
        recv_ids: list[np.ndarray],
        owner: np.ndarray,
    ) -> None:
        self.num_devices = num_devices
        #: ``(src, dst) -> sorted vertex ids`` src owns and dst needs.
        self.send = send
        #: per device: sorted vertex ids appearing in its halo.
        self.recv_ids = recv_ids
        #: per vertex: owning device (the partition assignment).
        self.owner = owner

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """Linked ordered device pairs, in deterministic order."""
        return sorted(self.send)

    def full_exchange_bytes(self) -> int:
        """Modeled bytes of one full boundary exchange (colors only)."""
        return sum(ids.size for ids in self.send.values()) * COLOR_BYTES

    def boundary_count(self) -> int:
        """Vertices that appear in at least one send list."""
        if not self.send:
            return 0
        return int(
            np.unique(np.concatenate(list(self.send.values()))).size
        )


def build_halo_plan(graph, partition) -> HaloPlan:
    """Compile the halo plan for ``graph`` under ``partition``.

    Vectorized over the adjacency: every CSR entry ``(src -> dst)``
    whose endpoints live on different devices contributes ``src`` to
    ``send[owner(src) -> owner(dst)]``.
    """
    assignment = partition.assignment
    k = partition.num_parts
    n = graph.num_vertices
    send: dict[tuple[int, int], np.ndarray] = {}
    recv_sets: list[list[np.ndarray]] = [[] for _ in range(k)]
    if n and graph.num_edges:
        src = graph.edge_sources()
        dst = graph.col_indices
        ps = assignment[src].astype(np.int64)
        pd = assignment[dst].astype(np.int64)
        cross = ps != pd
        if cross.any():
            # One unique pass over (src_dev, dst_dev, vertex) triples.
            packed = (ps[cross] * k + pd[cross]) * n + src[cross]
            uniq = np.unique(packed)
            pair_key = uniq // n
            verts = (uniq % n).astype(np.int64)
            cuts = np.nonzero(np.diff(pair_key))[0] + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [pair_key.size]))
            for a, b in zip(starts, ends):
                d, e = divmod(int(pair_key[a]), k)
                ids = verts[a:b]  # sorted: packed order is (pair, vertex)
                send[(d, e)] = ids
                recv_sets[e].append(ids)
    recv_ids = [
        np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)
        for parts in recv_sets
    ]
    return HaloPlan(k, send, recv_ids, assignment)


class HaloState:
    """Per-device halo color arrays, updated by delivered messages."""

    def __init__(self, plan: HaloPlan) -> None:
        self.plan = plan
        self.colors = [
            np.zeros(ids.size, dtype=COLOR_DTYPE) for ids in plan.recv_ids
        ]

    def apply(self, dst: int, vertex_ids: np.ndarray, colors: np.ndarray) -> None:
        """Land a delivered message in device ``dst``'s halo."""
        if vertex_ids.size == 0:
            return
        pos = np.searchsorted(self.plan.recv_ids[dst], vertex_ids)
        self.colors[dst][pos] = colors

    def verify(self, truth: np.ndarray) -> None:
        """Assert every device's halo matches the ground-truth colors.

        This is the protocol invariant behind byte-identity: a device
        recoloring its losers from (own colors + halo) reads exactly
        what the global Jacobi snapshot would.  Raises AssertionError
        with the first divergent device.
        """
        for d, ids in enumerate(self.plan.recv_ids):
            if ids.size and not np.array_equal(self.colors[d], truth[ids]):
                bad = np.nonzero(self.colors[d] != truth[ids])[0]
                raise AssertionError(
                    f"halo drift on device {d}: {bad.size} stale "
                    f"vertices (first: v{int(ids[bad[0]])})"
                )
