"""repro.distributed: multi-device execution over the shard protocol.

The simulated GPU *cluster* (ROADMAP item 2, after Bogle & Slota):
:func:`color_distributed` block-partitions a graph onto N simulated
Kepler devices, colors each shard through its own
:class:`~repro.engine.context.ExecutionContext` via a pluggable
:class:`Transport` (in-process :class:`LocalTransport`, process-pool
:class:`PoolTransport`; the seam is open for sockets), then repairs
boundary conflicts with **per-round halo exchange** priced by a
:class:`Topology` (``pcie``/``nvlink``/``ring`` interconnect models on
the simulated clock) and **speculative boundary coloring** that ships
only deltas and skips sync barriers on interior-only rounds.

Colors are byte-identical to
:func:`~repro.parallel.sharded.color_sharded` at equal shard counts —
the distributed layer changes the protocol's cost model, never its
decisions.  See docs/DISTRIBUTED.md.
"""

from .api import DistributedColoringError, color_distributed
from .halo import HaloPlan, HaloState, build_halo_plan
from .topology import (
    TOPOLOGIES,
    Link,
    Message,
    Topology,
    resolve_topology,
    unknown_topology_error,
)
from .transport import (
    TRANSPORTS,
    LocalTransport,
    PoolTransport,
    Transport,
    resolve_transport,
)

__all__ = [
    "DistributedColoringError",
    "color_distributed",
    "HaloPlan",
    "HaloState",
    "build_halo_plan",
    "Link",
    "Message",
    "Topology",
    "TOPOLOGIES",
    "resolve_topology",
    "unknown_topology_error",
    "Transport",
    "LocalTransport",
    "PoolTransport",
    "TRANSPORTS",
    "resolve_transport",
]
