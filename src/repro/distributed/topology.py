"""Interconnect topology model for the simulated device cluster.

A :class:`Topology` prices the halo-exchange traffic of
:func:`~repro.distributed.api.color_distributed` on the simulated clock,
the same way :class:`~repro.gpusim.device.Device` prices kernels and
PCIe transfers inside one device.  Each directed device pair maps to a
:class:`Link` (latency + bandwidth + hop count); a round's exchange cost
is the set of per-message transfer times combined under the topology's
*contention model*:

``pcie``
    Kepler-era host topology: every device hangs off one shared PCIe
    switch, so peer traffic is staged through the host and the bus
    serializes — a round costs the **sum** of its message times.  This
    is the 2013 baseline the paper's K20 targets lived on.
``nvlink``
    Anachronistic-but-useful upper bound: direct all-to-all peer links,
    one per device pair, transferring concurrently — a round costs the
    **max** over pairs (each pair still serializes its own messages).
``ring``
    Peer-to-peer ring (device *i* links to *i±1 mod N*): a message
    routes over ``min(|d-e|, N-|d-e|)`` hops, each hop charged to the
    physical link it crosses; links move traffic concurrently, so a
    round costs the **max over physical links** of the bytes they
    carried (plus per-hop latency).

Presets are deliberately round numbers of the right *era and order of
magnitude* (see docs/DISTRIBUTED.md) — the benchmark conclusions rest on
modeled bytes and sync-round counts, which are exact functional
quantities, not on the absolute microseconds.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

__all__ = [
    "Link",
    "Message",
    "Topology",
    "TOPOLOGIES",
    "resolve_topology",
    "unknown_topology_error",
]


@dataclass(frozen=True)
class Link:
    """One directed interconnect link: fixed latency plus bandwidth."""

    latency_us: float
    bandwidth_gbps: float  # GB/s; 1 GB/s moves 1000 bytes per us

    def transfer_us(self, nbytes: int, *, hops: int = 1) -> float:
        """Simulated time for ``nbytes`` over ``hops`` traversals."""
        return hops * self.latency_us + nbytes / (self.bandwidth_gbps * 1e3)


@dataclass(frozen=True)
class Message:
    """One halo payload: ``nbytes`` from device ``src`` to ``dst``."""

    src: int
    dst: int
    nbytes: int


class Topology:
    """N simulated devices joined by a named interconnect model.

    Subclass-free: the three contention models are small enough to
    select by ``kind``.  Equality of priced costs across transports is
    what the parity tests assert — the model is pure arithmetic over
    :class:`Message` lists, with no wall-clock input.
    """

    def __init__(self, name: str, kind: str, num_devices: int, link: Link) -> None:
        if num_devices < 1:
            raise ValueError("a topology needs at least one device")
        if kind not in ("shared-bus", "all-to-all", "ring"):
            raise ValueError(f"unknown topology kind {kind!r}")
        self.name = name
        self.kind = kind
        self.num_devices = int(num_devices)
        self.link = link

    def hops(self, src: int, dst: int) -> int:
        """Physical link traversals for a ``src -> dst`` message."""
        if src == dst:
            return 0
        if self.kind != "ring":
            return 1
        around = abs(src - dst)
        return min(around, self.num_devices - around)

    def exchange_time_us(self, messages: list[Message]) -> float:
        """Simulated cost of delivering one round's messages."""
        if not messages:
            return 0.0
        if self.kind == "shared-bus":
            return sum(
                self.link.transfer_us(m.nbytes, hops=self.hops(m.src, m.dst))
                for m in messages
            )
        if self.kind == "all-to-all":
            per_pair: dict[tuple[int, int], float] = {}
            for m in messages:
                key = (m.src, m.dst)
                per_pair[key] = per_pair.get(key, 0.0) + self.link.transfer_us(
                    m.nbytes
                )
            return max(per_pair.values())
        # ring: charge each message's bytes to every physical link it
        # crosses; concurrent links -> the slowest link bounds the round.
        per_link: dict[tuple[int, int], float] = {}
        for m in messages:
            step = 1 if (m.dst - m.src) % self.num_devices <= self.num_devices // 2 else -1
            at = m.src
            for _ in range(self.hops(m.src, m.dst)):
                nxt = (at + step) % self.num_devices
                key = (at, nxt)
                per_link[key] = per_link.get(key, 0.0) + self.link.transfer_us(
                    m.nbytes
                )
                at = nxt
        return max(per_link.values(), default=0.0)

    def describe(self) -> str:
        return (
            f"{self.name}(x{self.num_devices}, {self.link.bandwidth_gbps} GB/s, "
            f"{self.link.latency_us} us)"
        )

    def __repr__(self) -> str:
        return f"Topology({self.describe()})"


#: Preset factories: name -> Topology for ``num_devices`` simulated
#: Kepler-class devices.  Bandwidths/latencies are era-plausible round
#: numbers (PCIe 2.0 x16 effective ~6 GB/s; P2P ring ~8 GB/s; an
#: NVLink-style direct mesh ~20 GB/s) — see the module docstring.
TOPOLOGIES = {
    "pcie": lambda n: Topology("pcie", "shared-bus", n, Link(5.0, 6.0)),
    "nvlink": lambda n: Topology("nvlink", "all-to-all", n, Link(1.3, 20.0)),
    "ring": lambda n: Topology("ring", "ring", n, Link(2.0, 8.0)),
}


def unknown_topology_error(
    spec: str, *, entry_point: str | None = None
) -> ValueError:
    """The unknown-topology error, in the registry's entry-point style."""
    where = f"{entry_point}(): " if entry_point else ""
    msg = f"{where}unknown topology {spec!r}; choose from {sorted(TOPOLOGIES)}"
    close = difflib.get_close_matches(spec, sorted(TOPOLOGIES), n=1)
    if close:
        msg += f" (did you mean {close[0]!r}?)"
    return ValueError(msg + " (or pass a Topology instance)")


def resolve_topology(
    spec, num_devices: int, *, entry_point: str | None = None
) -> Topology:
    """Normalize ``topology=`` into a :class:`Topology` for N devices.

    Strings name the presets in :data:`TOPOLOGIES`; a ready-made
    :class:`Topology` passes through when its device count matches.
    """
    if isinstance(spec, Topology):
        if spec.num_devices != num_devices:
            raise ValueError(
                f"topology {spec.describe()} models {spec.num_devices} "
                f"device(s) but devices={num_devices} were requested"
            )
        return spec
    if spec is None:
        spec = "pcie"
    if isinstance(spec, str):
        factory = TOPOLOGIES.get(spec)
        if factory is None:
            raise unknown_topology_error(spec, entry_point=entry_point)
        return factory(num_devices)
    raise TypeError(
        f"topology= takes a preset name {sorted(TOPOLOGIES)} or a "
        f"Topology instance, not {type(spec).__name__}"
    )
