"""Cross-layer resilience: deadlines, checkpoints, circuit breakers.

This package is the SLO tier above :mod:`repro.faults`: where faults
decide *what breaks*, resilience decides *what the run does about time
and partial progress* — per-request deadlines with cooperative
cancellation (:mod:`.deadline`), atomic round-state checkpoints with
resume (:mod:`.checkpoint`), and a retry/circuit-breaker policy that
unifies the scheduler's ad-hoc backoff (:mod:`.breaker`).

Like :mod:`repro.faults`, nothing here imports the engine or the
coloring layers; the dependency arrow points one way (engine ->
resilience) so deep call sites can consult the ambient
:class:`RunControl` without cycles.
"""

from .breaker import CircuitBreaker, RetryPolicy
from .checkpoint import (
    Checkpointer,
    CheckpointError,
    load_resume,
    read_checkpoint,
    run_fingerprint,
    write_checkpoint,
)
from .deadline import (
    Cancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RunControl,
    activate_control,
    active_control,
    control_check,
    resolve_control,
)

__all__ = [
    "Cancelled",
    "CancelToken",
    "Checkpointer",
    "CheckpointError",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "load_resume",
    "RetryPolicy",
    "RunControl",
    "activate_control",
    "active_control",
    "control_check",
    "read_checkpoint",
    "resolve_control",
    "run_fingerprint",
    "write_checkpoint",
]
