"""Atomic round-state checkpoints with resume.

The paper's schemes are bulk-synchronous: between rounds the entire
mid-run state is a handful of dense arrays (colors, worklists, halo
counters) plus a round number.  That makes checkpoints cheap and —
because every decision reads only that state — makes a resumed run
**byte-identical** to an uninterrupted one.

File format (single file, ``os.replace``-atomic)::

    REPROCKPT1\\n
    {"sha256": <hex of blob>, "length": <blob bytes>, "index": <bytes>}\\n
    <blob: json index (meta + array dtypes/shapes), then raw array bytes>

The blob is raw C-contiguous array bytes behind a JSON index rather
than an ``.npz`` container: serialization is a straight memcpy, which
keeps the per-save cost low enough for every-round cadence (the
``--resilience`` benchmark gate holds the overhead under 5% of
wall-clock).  The checksum covers the whole blob — index and payload —
so meta corruption is as detectable as array corruption.

Writes go to ``<path>.tmp`` with an ``fsync`` before the rename, so a
crash mid-write leaves either the previous checkpoint or a ``.tmp``
husk — never a half-new file at the real path.  Reads verify length
(``torn``) and checksum (``corrupt``) and the run fingerprint
(``fingerprint-mismatch``: the graph/scheme/options changed under the
checkpoint), raising the structured :class:`CheckpointError`.

The ``checkpoint-torn`` / ``checkpoint-corrupt`` fault sites damage the
blob *after* the checksum is computed over the good bytes, so damage is
always detectable at read time — exactly the failure a torn page or a
bit-rotted disk block produces.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np

__all__ = [
    "CheckpointError",
    "Checkpointer",
    "write_checkpoint",
    "read_checkpoint",
    "load_resume",
    "run_fingerprint",
]

_MAGIC = b"REPROCKPT1\n"


class CheckpointError(RuntimeError):
    """A checkpoint could not be read back (or written).

    Attributes
    ----------
    path: the checkpoint file involved.
    reason: ``"missing"`` | ``"not-a-checkpoint"`` | ``"torn"`` |
        ``"corrupt"`` | ``"fingerprint-mismatch"``.
    detail: human-readable specifics.
    """

    def __init__(self, path: str, reason: str, detail: str = "") -> None:
        self.path = str(path)
        self.reason = reason
        self.detail = detail
        msg = f"checkpoint {self.path}: {reason}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)

    def to_dict(self) -> dict:
        return {"error": "CheckpointError", "path": self.path,
                "reason": self.reason, "detail": self.detail}


def run_fingerprint(graph_digest: str, mode: str, method: str,
                    options: dict | None = None, pieces: int = 0) -> str:
    """Identity of the run a checkpoint belongs to.

    Resuming under a different graph, scheme, option set, or piece
    count would silently produce garbage; the fingerprint turns that
    into a structured ``fingerprint-mismatch`` instead.
    """
    blob = json.dumps(
        {"graph": graph_digest, "mode": mode, "method": method,
         "options": {k: repr(v) for k, v in sorted((options or {}).items())},
         "pieces": int(pieces)},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_checkpoint(path, meta: dict, arrays: dict, *,
                     robustness=None) -> int:
    """Atomically write one checkpoint; returns bytes written.

    ``robustness`` (duck-typed: ``.fire(site, **key)``) lets the
    ``checkpoint-torn`` / ``checkpoint-corrupt`` fault sites damage this
    specific write; the checksum is computed over the undamaged blob so
    the damage is detected at read time, never silently resumed from.
    """
    path = os.fspath(path)
    frames = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
    index = json.dumps(
        {"meta": meta,
         "arrays": [{"name": k, "dtype": v.dtype.str, "shape": list(v.shape)}
                    for k, v in frames.items()]},
        sort_keys=True,
    ).encode("utf-8")
    blob = b"".join([index] + [v.tobytes() for v in frames.values()])
    digest = hashlib.sha256(blob).hexdigest()
    length = len(blob)

    if robustness is not None:
        rnd = int(meta.get("round", 0))
        if robustness.fire("checkpoint-torn", round=rnd) is not None:
            blob = blob[: max(1, len(blob) // 2)]
        elif robustness.fire("checkpoint-corrupt", round=rnd) is not None:
            damaged = bytearray(blob)
            damaged[len(damaged) // 2] ^= 0xFF
            blob = bytes(damaged)

    header = _MAGIC + json.dumps(
        {"sha256": digest, "length": length,
         "index": len(index)}).encode("utf-8") + b"\n"
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(header) + len(blob)


def read_checkpoint(path) -> tuple[dict, dict]:
    """Read and verify a checkpoint; returns ``(meta, arrays)``."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CheckpointError(path, "missing")
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise CheckpointError(path, "not-a-checkpoint",
                                  f"bad magic {magic!r}")
        try:
            header = json.loads(fh.readline().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(path, "not-a-checkpoint",
                                  f"bad header: {exc}") from None
        blob = fh.read()
    expect_len = int(header.get("length", -1))
    if len(blob) != expect_len:
        raise CheckpointError(
            path, "torn",
            f"expected {expect_len} blob bytes, found {len(blob)}")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(path, "corrupt",
                              "checksum mismatch over blob")
    index_len = int(header.get("index", -1))
    try:
        index = json.loads(blob[:index_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(path, "not-a-checkpoint",
                              f"bad array index: {exc}") from None
    arrays = {}
    offset = index_len
    for entry in index["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > len(blob):
            raise CheckpointError(
                path, "torn",
                f"array {entry['name']!r} extends past the blob")
        # copy: frombuffer views are read-only, and resumed state is
        # mutated in place by the round loop
        arrays[entry["name"]] = np.frombuffer(
            blob, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset).reshape(shape).copy()
        offset += nbytes
    return index["meta"], arrays


def load_resume(path, *, fingerprint: str,
                robustness=None) -> tuple[dict, dict] | None:
    """Load a checkpoint for ``resume=``, or ``None`` for a fresh start.

    An unreadable/mismatched checkpoint degrades to a fresh run (chain
    ``"checkpoint"``, recorded on ``robustness``) when the health policy
    allows degradation; otherwise the :class:`CheckpointError`
    propagates.  A missing file is always a fresh start — that is the
    normal first run of a ``checkpoint=``+``resume=`` loop.
    """
    try:
        meta, arrays = read_checkpoint(path)
    except CheckpointError as exc:
        if exc.reason == "missing":
            return None
        if robustness is not None and getattr(robustness.policy, "degrade",
                                              False):
            robustness.degrade("checkpoint", "resume", "fresh",
                               exc.reason, str(exc))
            return None
        raise
    if meta.get("fingerprint") != fingerprint:
        exc = CheckpointError(
            os.fspath(path), "fingerprint-mismatch",
            f"checkpoint is for run {meta.get('fingerprint', '?')[:12]}..., "
            f"this run is {fingerprint[:12]}...")
        if robustness is not None and getattr(robustness.policy, "degrade",
                                              False):
            robustness.degrade("checkpoint", "resume", "fresh",
                               exc.reason, str(exc))
            return None
        raise exc
    return meta, arrays


class Checkpointer:
    """Periodic checkpoint writer for one run.

    ``every`` is the cadence in rounds (windows for streamed runs, sync
    rounds for distributed ones); round 0 state — "nothing done yet" —
    is never written.  The owner stamps each save with the run
    fingerprint and a monotonically increasing round so resume picks up
    exactly where the last completed round left off.
    """

    def __init__(self, path, *, fingerprint: str, every: int = 1,
                 robustness=None) -> None:
        if every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self.every = int(every)
        self.robustness = robustness
        self.written = 0
        self.bytes_written = 0
        self.last_round = -1
        self.save_time_s = 0.0

    def due(self, round_index: int) -> bool:
        return round_index > 0 and round_index % self.every == 0

    def save(self, round_index: int, meta: dict, arrays: dict,
             *, force: bool = False) -> bool:
        """Write the checkpoint if the cadence says so (or ``force``)."""
        if not force and not self.due(round_index):
            return False
        payload = dict(meta)
        payload["fingerprint"] = self.fingerprint
        payload["round"] = int(round_index)
        started = time.perf_counter()
        self.bytes_written += write_checkpoint(
            self.path, payload, arrays, robustness=self.robustness)
        self.save_time_s += time.perf_counter() - started
        self.written += 1
        self.last_round = int(round_index)
        return True

    def stats(self) -> dict:
        return {"path": self.path, "written": self.written,
                "bytes_written": self.bytes_written,
                "last_round": self.last_round, "every": self.every,
                "save_ms": round(self.save_time_s * 1000.0, 3)}
