"""Retry policy + circuit breaker for repeated worker/transport failures.

:class:`RetryPolicy` is the declarative form of the scheduler's ad-hoc
``retries``/``backoff_s``/``jitter_seed`` triple — one object that both
the process-pool scheduler and the distributed transport consult, with
the same jittered-exponential delay curve the scheduler has always used
(so existing timing tests stay byte-identical).

:class:`CircuitBreaker` sits above retries: when a *sequence* of batches
keeps burning its retry budget, retrying harder is waste — the breaker
trips **open** and callers route straight to their declared degradation
chain (pool -> serial scheduler, distributed -> sharded) without paying
the failure tax again.  After a cooldown measured in *consults* (not
wall-clock — the simulator must stay deterministic) the breaker goes
**half-open** and admits a limited number of probe attempts; a probe
success closes it, a probe failure re-opens it with the cooldown reset.

State transitions are recorded by the owner as ``DegradationEvent``s
(chain ``"breaker"``) so trips show up in traces and
``result.robustness`` like every other degradation.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["RetryPolicy", "CircuitBreaker"]

#: Ceiling on a single retry-round backoff sleep (mirrors the
#: scheduler's historical cap; the scheduler now reads it from here).
BACKOFF_CAP_S = 2.0


class RetryPolicy:
    """How many times to retry and how long to wait between rounds."""

    def __init__(self, *, retries: int = 2, backoff_s: float = 0.05,
                 cap_s: float = BACKOFF_CAP_S, jitter_seed=None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.cap_s = float(cap_s)
        self.jitter_seed = jitter_seed

    @property
    def attempts(self) -> int:
        return self.retries + 1

    def delay(self, round_index: int) -> float:
        """Jittered exponential backoff for retry round ``round_index``.

        ``backoff_s * 2**round_index``, capped at ``cap_s``, scaled by a
        jitter factor in ``[0.5, 1.0]`` derived from SHA-256 of
        ``(jitter_seed, round_index)``.  ``jitter_seed=None`` uses the
        process id so simultaneous processes spread out; pass an int for
        reproducible delays in tests.
        """
        if self.backoff_s <= 0:
            return 0.0
        raw = min(self.backoff_s * (2 ** round_index), self.cap_s)
        seed = self.jitter_seed if self.jitter_seed is not None else os.getpid()
        digest = hashlib.sha256(
            f"{seed}|{round_index}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        return raw * (0.5 + 0.5 * unit)

    def describe(self) -> dict:
        return {"retries": self.retries, "backoff_s": self.backoff_s,
                "cap_s": self.cap_s}


class CircuitBreaker:
    """Trip after repeated failures; heal through half-open probes.

    The cooldown is counted in :meth:`allow` consults while open rather
    than in seconds: the whole stack is deterministic-by-construction,
    and a wall-clock cooldown would make healed-run byte-identity
    flaky.  Every consult while open burns one cooldown tick; when the
    budget is spent the next consult transitions to half-open.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, name: str = "scheduler", *,
                 failure_threshold: int = 3, cooldown: int = 2,
                 half_open_probes: int = 1) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        self.half_open_probes = int(half_open_probes)
        self._state = self.CLOSED
        self._failures = 0          # consecutive failures while closed
        self._cooldown_left = 0     # open->half-open countdown, in consults
        self._probes_left = 0       # half-open probe budget
        self._trips = 0
        self._recoveries = 0
        self._rejections = 0        # consults answered "don't even try"
        self._last_reason = ""

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May the caller attempt its primary path right now?

        Advances the open-state cooldown as a side effect; half-open
        admits up to ``half_open_probes`` attempts before rejecting
        again.
        """
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self._rejections += 1
                return False
            self._state = self.HALF_OPEN
            self._probes_left = self.half_open_probes
        # half-open: admit probes while the budget lasts
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        self._rejections += 1
        return False

    def record_success(self) -> None:
        """A primary-path attempt succeeded."""
        if self._state == self.HALF_OPEN:
            self._recoveries += 1
        self._state = self.CLOSED
        self._failures = 0
        self._probes_left = 0

    def record_failure(self, reason: str = "") -> bool:
        """A primary-path attempt failed.  Returns True if this tripped."""
        self._last_reason = reason
        if self._state == self.HALF_OPEN:
            # a failed probe re-opens immediately, cooldown reset
            self._trip()
            return True
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self._state = self.OPEN
        self._cooldown_left = self.cooldown
        self._failures = 0
        self._probes_left = 0
        self._trips += 1

    def reset(self) -> None:
        self._state = self.CLOSED
        self._failures = 0
        self._cooldown_left = 0
        self._probes_left = 0

    def snapshot(self) -> dict:
        """JSON-able state for ``result.robustness`` / service stats."""
        return {
            "name": self.name,
            "state": self._state,
            "trips": self._trips,
            "recoveries": self._recoveries,
            "rejections": self._rejections,
            "consecutive_failures": self._failures,
            "cooldown_left": self._cooldown_left,
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "last_reason": self._last_reason,
        }
