"""Per-request deadlines and cooperative cancellation.

A request-scoped budget travels the whole stack as one
:class:`RunControl` — a :class:`Deadline` (monotonic wall-clock budget,
split into queued-vs-running time) plus a :class:`CancelToken`
(cross-thread cancel flag).  The service stamps the deadline at
admission, the engine checks it at every bulk-synchronous round
boundary, and the scheduler/transport re-arm a fresh control in each
worker process from the *remaining* budget shipped in the job payload.

Checks are cooperative: nothing is interrupted mid-kernel.  A round that
overruns finishes, then the next boundary raises the structured
:class:`DeadlineExceeded` (carrying ``deadline_ms`` / ``queued_ms`` /
``running_ms`` / ``where``) so SLO dashboards can separate "sat in the
queue too long" from "the run itself was slow".

The ambient helpers (``activate_control`` / ``control_check``) mirror
:mod:`repro.faults.runtime`: a plain module global, installed by
``ExecutionContext`` for the duration of a run, consulted by call sites
that deliberately know nothing about the engine.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "DeadlineExceeded",
    "Cancelled",
    "CancelToken",
    "Deadline",
    "RunControl",
    "resolve_control",
    "activate_control",
    "active_control",
    "control_check",
]


class DeadlineExceeded(RuntimeError):
    """A run (or its queue wait) outlived its ``deadline_ms`` budget.

    Attributes
    ----------
    deadline_ms: the total budget the request was admitted with.
    queued_ms: time spent queued before execution started.
    running_ms: time spent actually executing when the check fired.
    where: the boundary that noticed — ``"admission"``, ``"round"``,
        ``"window"``, ``"sync-round"``, ``"dispatch"``, ``"shard"`` ...
        (``":forced"`` suffix when a ``deadline-storm`` fault forced it).
    """

    def __init__(self, deadline_ms: float, *, queued_ms: float = 0.0,
                 running_ms: float = 0.0, where: str = "round") -> None:
        self.deadline_ms = float(deadline_ms)
        self.queued_ms = float(queued_ms)
        self.running_ms = float(running_ms)
        self.where = where
        super().__init__(
            f"deadline of {self.deadline_ms:.0f} ms exceeded at {where} "
            f"(queued {self.queued_ms:.1f} ms + running "
            f"{self.running_ms:.1f} ms)"
        )

    def to_dict(self) -> dict:
        return {
            "error": "DeadlineExceeded",
            "deadline_ms": self.deadline_ms,
            "queued_ms": round(self.queued_ms, 3),
            "running_ms": round(self.running_ms, 3),
            "where": self.where,
        }


class Cancelled(RuntimeError):
    """A run was cooperatively cancelled via its :class:`CancelToken`."""

    def __init__(self, reason: str = "cancelled",
                 where: str = "round") -> None:
        self.reason = reason
        self.where = where
        super().__init__(f"run cancelled at {where}: {reason}")

    def to_dict(self) -> dict:
        return {"error": "Cancelled", "reason": self.reason,
                "where": self.where}


class CancelToken:
    """A cross-thread cooperative cancel flag.

    The service's event loop sets it (e.g. when the last coalesced
    follower abandons a leader); the engine thread observes it at round
    boundaries via :meth:`check`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    def check(self, where: str = "round") -> None:
        if self._event.is_set():
            raise Cancelled(self._reason, where=where)


class Deadline:
    """A monotonic wall-clock budget with queued/running attribution.

    ``queued_ms`` is time already spent before the budget started being
    *run down by work* — the service stamps it at dispatch, and worker
    processes inherit the upstream total so a cross-process
    :class:`DeadlineExceeded` still reports end-to-end accounting.
    """

    def __init__(self, deadline_ms: float, *, queued_ms: float = 0.0,
                 running_ms: float = 0.0, clock=time.monotonic) -> None:
        if deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        self.deadline_ms = float(deadline_ms)
        self.queued_ms = float(queued_ms)
        self._clock = clock
        # running_ms backdates the start: a worker process rebuilding the
        # deadline from a shipped budget keeps end-to-end attribution.
        self._started = clock() - float(running_ms) / 1000.0

    def running_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    def elapsed_ms(self) -> float:
        return self.queued_ms + self.running_ms()

    def remaining_ms(self) -> float:
        return self.deadline_ms - self.elapsed_ms()

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def check(self, where: str = "round") -> None:
        if self.expired:
            raise DeadlineExceeded(
                self.deadline_ms, queued_ms=self.queued_ms,
                running_ms=self.running_ms(), where=where,
            )

    def exceeded(self, where: str = "round") -> DeadlineExceeded:
        """Build the structured error without raising (admission path)."""
        return DeadlineExceeded(
            self.deadline_ms, queued_ms=self.queued_ms,
            running_ms=self.running_ms(), where=where,
        )


class RunControl:
    """The bundle a run carries: optional deadline + optional token."""

    def __init__(self, *, deadline: Deadline | None = None,
                 token: CancelToken | None = None) -> None:
        self.deadline = deadline
        self.token = token

    def check(self, where: str = "round") -> None:
        """Raise :class:`Cancelled` / :class:`DeadlineExceeded` if due."""
        if self.token is not None:
            self.token.check(where)
        if self.deadline is not None:
            self.deadline.check(where)

    def remaining_ms(self) -> float | None:
        """Budget left for shipping to a worker, or ``None`` (no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline.remaining_ms())

    def elapsed_snapshot(self) -> tuple[float, float]:
        """(queued_ms, running_ms) so far — for cross-process carry."""
        if self.deadline is None:
            return (0.0, 0.0)
        return (self.deadline.queued_ms, self.deadline.running_ms())

    def ship(self) -> tuple[float, float, float] | None:
        """Picklable budget snapshot for a worker process.

        The cancel token cannot cross the boundary (no shared memory for
        an Event), so only the deadline travels; the coordinator still
        observes cancellation between rounds.
        """
        if self.deadline is None:
            return None
        return (self.deadline.deadline_ms, self.deadline.queued_ms,
                self.deadline.running_ms())

    @classmethod
    def from_shipped(cls, budget) -> "RunControl | None":
        """Rebuild a worker-side control from :meth:`ship`'s snapshot."""
        if budget is None:
            return None
        total, queued, running = budget
        return cls(deadline=Deadline(total, queued_ms=queued,
                                     running_ms=running))


def resolve_control(deadline_ms=None, *, queued_ms: float = 0.0,
                    token: CancelToken | None = None) -> RunControl | None:
    """Build a run's :class:`RunControl`, or ``None`` when nothing is set.

    A ready-made :class:`RunControl` passed as ``deadline_ms`` flows
    through unchanged (the service path); a number starts a fresh
    budget now.
    """
    if isinstance(deadline_ms, RunControl):
        return deadline_ms
    if deadline_ms is None and token is None:
        return None
    deadline = None
    if deadline_ms is not None:
        deadline = Deadline(float(deadline_ms), queued_ms=queued_ms)
    return RunControl(deadline=deadline, token=token)


_ACTIVE: RunControl | None = None


@contextmanager
def activate_control(control: RunControl | None):
    """Install ``control`` as the ambient run control for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = control
    try:
        yield control
    finally:
        _ACTIVE = previous


def active_control() -> RunControl | None:
    return _ACTIVE


def control_check(where: str = "round") -> None:
    """No-op-when-inactive deadline/cancel check for deep call sites."""
    if _ACTIVE is not None:
        _ACTIVE.check(where)
