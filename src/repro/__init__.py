"""repro: reproduction of "High Performance Parallel Graph Coloring on
GPGPUs" (Li et al., IPPS 2016).

Speculative-greedy graph coloring in topology-driven and data-driven GPU
formulations, executed functionally in NumPy and priced on a simulated
Kepler-class GPGPU (see DESIGN.md for the hardware-substitution rationale).

Quickstart::

    from repro import color_graph, rmat_er
    g = rmat_er(scale=14)
    result = color_graph(g, method="data-ldg")
    print(result.summary())
"""

from .coloring import (
    EVALUATED_SCHEMES,
    SCHEMES,
    ColoringResult,
    color_graph,
    scheme_options,
)
from .distributed import Topology, color_distributed
from .engine import ExecutionContext, RunConfig, color_many
from .graph import CSRGraph, from_edges
from .graph.generators import load_graph, load_suite, rmat_er, rmat_g, rmat_graph
from .obs import Observation, Tracer
from .parallel import ColorJob, JobFailure, ResultCache, color_sharded

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "ColorJob",
    "ColoringResult",
    "EVALUATED_SCHEMES",
    "ExecutionContext",
    "JobFailure",
    "Observation",
    "ResultCache",
    "RunConfig",
    "SCHEMES",
    "Topology",
    "Tracer",
    "__version__",
    "color_distributed",
    "color_graph",
    "color_many",
    "color_sharded",
    "from_edges",
    "load_graph",
    "load_suite",
    "rmat_er",
    "rmat_g",
    "rmat_graph",
    "scheme_options",
]
