"""Dynamic-graph sessions over the coloring service.

A :class:`ColoringSession` pairs one
:class:`~repro.coloring.dynamic.DynamicColoring` with the service that
seeded it.  Edits (insert / delete / add_vertex / batched
:meth:`apply`) run the incremental repair in a worker thread — the
event loop never blocks on an O(degree) rescan — and every op resolves
to the same versioned typed :class:`~repro.coloring.base.ColoringResult`
surface ``color_graph`` returns.

Quality drift: local repair only ever grows the palette.  With
``max_drift=k`` armed, any op that leaves the palette more than ``k``
colors above the last full coloring triggers *compaction*: the current
topology snapshot goes back through the service (``priority="batch"``,
so interactive traffic is not displaced — and an identical concurrent
compaction coalesces), and the session adopts the fresh coloring as its
new baseline.

Ops serialize through an ``asyncio.Lock`` — a session is a single
logical edit stream; open several sessions for independent graphs.
"""

from __future__ import annotations

import asyncio

__all__ = ["ColoringSession"]


class ColoringSession:
    """One dynamic graph's edit stream (see module docstring).

    Construct via :meth:`ColoringService.session`; the service counts
    ops/compactions and funnels compaction recolors through admission.
    """

    def __init__(self, service, dyn, *, max_drift: int | None = None) -> None:
        self._service = service
        self._dyn = dyn
        self.max_drift = max_drift
        self._lock = asyncio.Lock()
        self.closed = False

    # -- edits -----------------------------------------------------------
    async def apply(self, edits, *, improve: bool = True):
        """Apply an edit batch; resolves to the typed result snapshot."""
        async with self._lock:
            self._check_open()
            result = await asyncio.to_thread(
                self._dyn.apply, edits, improve=improve
            )
            self._service._session_ops += 1
            return await self._maybe_compact(result)

    async def insert(self, u: int, v: int):
        """Insert edge (u, v); typed result (repair report in extra)."""
        return await self.apply([("insert", u, v)])

    async def delete(self, u: int, v: int, *, improve: bool = True):
        """Delete edge (u, v), optionally improving nearby colors."""
        return await self.apply([("delete", u, v)], improve=improve)

    async def add_vertex(self):
        """Append an isolated vertex; its id is in
        ``result.extra["dynamic"]["added"][-1]``."""
        return await self.apply([("add_vertex",)])

    # -- reads -----------------------------------------------------------
    async def result(self):
        """The current typed snapshot (no edit, no version bump)."""
        async with self._lock:
            self._check_open()
            return self._dyn.result()

    @property
    def version(self) -> int:
        return self._dyn.version

    @property
    def num_colors(self) -> int:
        return self._dyn.num_colors

    @property
    def num_vertices(self) -> int:
        return self._dyn.num_vertices

    # -- compaction ------------------------------------------------------
    async def compact(self):
        """Force a full service recolor + adopt (resets the baseline)."""
        async with self._lock:
            self._check_open()
            return await self._compact()

    async def _maybe_compact(self, result):
        if self.max_drift is None:
            return result
        dyn = self._dyn
        if dyn.num_colors <= dyn.baseline_colors + self.max_drift:
            return result
        return await self._compact()

    async def _compact(self):
        dyn = self._dyn
        graph = await asyncio.to_thread(dyn.to_graph)
        fresh = await self._service.submit(graph, priority="batch")
        await asyncio.to_thread(dyn.adopt, fresh)
        self._service._compactions += 1
        self._service._trace(
            "service.compact", "service", num_colors=dyn.num_colors
        )
        return dyn.result(op="compact")

    # -- lifecycle -------------------------------------------------------
    async def close(self):
        """End the session; the final typed snapshot is returned."""
        async with self._lock:
            self.closed = True
            return self._dyn.result()

    async def __aenter__(self) -> "ColoringSession":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("session is closed")
