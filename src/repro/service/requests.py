"""Request/admission vocabulary of the coloring service.

Admission control is *structured*: an overloaded or stopped service
raises :class:`AdmissionError` carrying the machine-readable reason and
the queue numbers the client needs for backoff decisions, never a bare
``RuntimeError``.  Engine-side job failures surface as
:class:`RequestFailed` wrapping the scheduler's
:class:`~repro.parallel.jobs.JobFailure` report.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "PRIORITIES",
    "PRIORITY_SHARES",
    "AdmissionError",
    "RequestFailed",
    "ColorRequest",
    "InflightEntry",
]

#: Admission classes, most to least urgent.  Dispatch drains in this
#: order, and each class may only occupy its *share* of the queue, so
#: under pressure ``batch`` work is shed first and ``interactive``
#: requests still land.
PRIORITIES = ("interactive", "normal", "batch")

#: Fraction of ``max_queue`` each priority class may fill.
PRIORITY_SHARES = {"interactive": 1.0, "normal": 0.75, "batch": 0.5}


class AdmissionError(RuntimeError):
    """A request the service refused to enqueue.

    Attributes
    ----------
    reason:
        ``"not-running"`` (service never started / already closed),
        ``"draining"`` (shutdown in progress, finishing queued work), or
        ``"queue-full"`` (this priority's share of the queue is
        exhausted).
    priority / queue_depth / limit:
        The admission numbers at rejection time, for client backoff.
    """

    def __init__(self, reason: str, *, priority: str = "normal",
                 queue_depth: int = 0, limit: int = 0) -> None:
        self.reason = reason
        self.priority = priority
        self.queue_depth = queue_depth
        self.limit = limit
        detail = {
            "not-running": "service is not running (call start())",
            "draining": "service is draining for shutdown",
            "queue-full": (
                f"admission queue full for priority {priority!r} "
                f"(depth {queue_depth} >= limit {limit})"
            ),
        }.get(reason, reason)
        super().__init__(f"request rejected [{reason}]: {detail}")


class RequestFailed(RuntimeError):
    """The engine failed a request after the scheduler's retries.

    ``failure`` is the scheduler's :class:`~repro.parallel.jobs.JobFailure`
    (error type, message, attempts) when the job ran and failed.
    """

    def __init__(self, message: str, failure=None) -> None:
        super().__init__(message)
        self.failure = failure


@dataclass
class ColorRequest:
    """One admitted coloring request, queued for micro-batching.

    ``deadline_ms`` is the request's end-to-end budget (queue wait
    included — the dispatcher stamps the queued share at dispatch);
    ``token`` is the shared :class:`~repro.resilience.CancelToken` the
    engine observes at round boundaries, cancelled when every waiter
    (leader and coalesced followers alike) has abandoned the request.
    """

    graph: Any
    method: str
    options: dict
    priority: str
    key: str  #: content address (:func:`~repro.parallel.cache.job_cache_key`)
    validate: bool
    future: asyncio.Future = field(repr=False)
    submitted_at: float = 0.0
    deadline_ms: float | None = None
    token: Any = None


@dataclass
class InflightEntry:
    """One in-flight content key: the leader future plus its audience.

    ``waiters`` counts every caller currently awaiting the future (the
    original submitter and each coalesced follower).  When it drops to
    zero before completion, the last leaver cancels ``token`` and the
    engine abandons the run cooperatively — coalesced followers can walk
    away without killing a computation someone still wants.
    """

    future: asyncio.Future = field(repr=False)
    token: Any = None
    waiters: int = 0
