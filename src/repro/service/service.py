"""The asyncio coloring service: admission, batching, coalescing.

:class:`ColoringService` turns the batch engine into a long-lived
front end for concurrent callers:

* **Admission control** — a bounded queue with per-priority shares
  (:data:`~repro.service.requests.PRIORITY_SHARES`); refusals are
  structured :class:`~repro.service.requests.AdmissionError`\\ s, never
  silent drops or bare exceptions.
* **Micro-batching** — one dispatcher task drains the queue in priority
  order into ``color_many`` batches (up to ``batch_max`` requests, an
  optional ``batch_window_ms`` accumulation window), executed on a
  worker thread so the event loop stays responsive; the engine batch
  itself fans out across ``config.workers`` processes.
* **Request coalescing** — requests are content-addressed with
  :func:`~repro.parallel.cache.job_cache_key` (graph digest + method +
  resolved options + backend preset).  A request whose key is already
  *in flight* never enqueues: it awaits the leader's future and gets an
  independent clone marked ``extra["coalesced"]=True``.  Completed keys
  are served straight from the shared
  :class:`~repro.parallel.ResultCache` at submit time.  Either way the
  engine computes each distinct job exactly once.

Everything threads through the existing seams: a single
:class:`~repro.engine.config.RunConfig` carries ``backend`` /
``workers`` / ``scheduler`` / ``cache`` / ``store`` / ``mex`` /
``faults`` / ``health`` / ``observe``.  A string ``store=`` spec is
resolved once at :meth:`start` into a service-owned arena kept warm
across batches (workers attach zero-copy handles); :meth:`close`
releases it — no leaked ``/dev/shm`` segments.  ``observe=`` attaches a
service-level trace: one ``service.request`` leaf per request (with its
wall-clock latency and coalesced/cache-hit markers) and one
``service.batch`` leaf per engine batch, recorded only from the event
loop thread (the tracer is not thread-safe).

Threading model: every public coroutine must run on the service's event
loop; the engine work happens in ``asyncio.to_thread`` and only the
dispatcher touches it, so at most one engine batch is in flight at a
time (parallelism comes from the worker pool inside the batch).
"""

from __future__ import annotations

import asyncio
import time

from ..engine.config import RunConfig, resolve_run_config
from ..obs.observe import resolve_observe
from ..parallel.cache import clone_result, job_cache_key, resolve_cache
from ..parallel.jobs import JobFailure
from .requests import (
    PRIORITIES,
    PRIORITY_SHARES,
    AdmissionError,
    ColorRequest,
    RequestFailed,
)

__all__ = ["ColoringService"]


class ColoringService:
    """Async coloring front end over the batch engine (module docstring).

    Parameters
    ----------
    method:
        Default scheme for requests that don't name one.
    config:
        A :class:`~repro.engine.config.RunConfig` (or mapping) supplying
        the execution seams.  ``cache`` defaults to a fresh in-memory
        :class:`~repro.parallel.ResultCache` (coalescing needs one);
        ``store`` strings resolve to a service-owned arena.
    max_queue:
        Total admission-queue capacity; each priority class may fill
        only its :data:`~repro.service.requests.PRIORITY_SHARES`
        fraction.
    batch_max:
        Most requests folded into one engine batch.
    batch_window_ms:
        Accumulation window before a batch is cut — trade latency for
        batching opportunity (default 0: dispatch as soon as scheduled).
    validate:
        Default engine-side validation flag for requests.
    """

    def __init__(
        self,
        method: str = "data-ldg",
        *,
        config=None,
        max_queue: int = 64,
        batch_max: int = 8,
        batch_window_ms: float = 0.0,
        validate: bool = True,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.method = method
        self.config: RunConfig = resolve_run_config(config) or RunConfig()
        self.max_queue = max_queue
        self.batch_max = batch_max
        self.batch_window_s = batch_window_ms / 1000.0
        self.validate = validate
        self.observation = resolve_observe(self.config.observe)
        self._cache = resolve_cache(self.config.cache) or resolve_cache("memory")
        self._store = None  # resolved at start()
        self._owns_store = False
        self._queues: dict[str, list[ColorRequest]] = {p: [] for p in PRIORITIES}
        self._inflight: dict[str, asyncio.Future] = {}
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._running = False
        self._draining = False
        # -- counters (see :attr:`stats`) --
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._engine_runs = 0
        self._batches = 0
        self._sessions = 0
        self._session_ops = 0
        self._compactions = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "ColoringService":
        """Bring the service up (idempotent): arena + dispatcher task."""
        if self._running:
            return self
        spec = self.config.store
        if isinstance(spec, str):
            from ..graph.store import resolve_store

            self._store = resolve_store(spec)
            self._owns_store = True
        else:
            self._store = spec  # instance or None: caller owns lifetime
        self._wake = asyncio.Event()
        self._running = True
        self._draining = False
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-color-dispatch"
        )
        self._trace("service.start", "service")
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Shut down: optionally drain queued work, release the arena.

        With ``drain=True`` (default) admission stops (``"draining"``
        rejections) but every already-admitted request completes; with
        ``drain=False`` queued requests fail with
        :class:`AdmissionError("not-running")`.
        """
        if not self._running:
            return
        self._draining = True
        if not drain:
            for queue in self._queues.values():
                for req in queue:
                    if not req.future.done():
                        req.future.set_exception(AdmissionError("not-running"))
                    self._inflight.pop(req.key, None)
                queue.clear()
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        self._running = False
        if self._owns_store and self._store is not None:
            self._store.close()
            self._store = None
            self._owns_store = False
        self._trace("service.close", "service")

    async def __aenter__(self) -> "ColoringService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def running(self) -> bool:
        return self._running and not self._draining

    # -- submission ------------------------------------------------------
    async def submit(
        self,
        graph,
        method: str | None = None,
        *,
        options: dict | None = None,
        priority: str = "normal",
        validate: bool | None = None,
    ):
        """Color ``graph``; resolves to the engine's ``ColoringResult``.

        Raises :class:`AdmissionError` when refused and
        :class:`RequestFailed` when the engine exhausts its retries.
        Coalesced/cached completions are marked in ``result.extra``
        (``coalesced`` / ``cache_hit``).
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        method = method or self.method
        options = dict(options or {})
        validate = self.validate if validate is None else validate
        self._submitted += 1
        if not self._running:
            self._rejected += 1
            raise AdmissionError("not-running", priority=priority)
        if self._draining:
            self._rejected += 1
            raise AdmissionError("draining", priority=priority)
        key = job_cache_key(
            graph, method, options,
            self.config.backend, self.config.backend_opts,
        )
        started = time.monotonic()
        # Coalesce onto an identical in-flight computation.
        leader = self._inflight.get(key)
        if leader is not None:
            self._coalesced += 1
            result = await asyncio.shield(leader)
            self._completed += 1
            self._trace(
                "service.request", "service", coalesced=1,
                latency_us=_us_since(started),
            )
            return clone_result(result, coalesced=True)
        # Serve completed keys straight from the shared result cache.
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self._completed += 1
            self._trace(
                "service.request", "service", cache_hit=1,
                latency_us=_us_since(started),
            )
            return cached
        depth = self._depth()
        limit = int(self.max_queue * PRIORITY_SHARES[priority])
        if depth >= limit:
            self._rejected += 1
            raise AdmissionError(
                "queue-full", priority=priority, queue_depth=depth, limit=limit
            )
        future = asyncio.get_running_loop().create_future()
        request = ColorRequest(
            graph=graph, method=method, options=options, priority=priority,
            key=key, validate=validate, future=future, submitted_at=started,
        )
        self._queues[priority].append(request)
        self._inflight[key] = future
        self._wake.set()
        # shield: a cancelled caller must not kill the computation its
        # coalesced followers are awaiting.
        result = await asyncio.shield(future)
        self._completed += 1
        self._trace(
            "service.request", "service", latency_us=_us_since(started)
        )
        return result

    def _depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # -- dispatch --------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._depth():
                if self.batch_window_s > 0:
                    await asyncio.sleep(self.batch_window_s)
                batch = self._next_batch()
                if batch:
                    await self._run_batch(batch)
            if self._draining and not self._depth():
                return

    def _next_batch(self) -> list[ColorRequest]:
        """Up to ``batch_max`` requests, urgent classes first."""
        batch: list[ColorRequest] = []
        for priority in PRIORITIES:
            queue = self._queues[priority]
            while queue and len(batch) < self.batch_max:
                batch.append(queue.pop(0))
            if len(batch) >= self.batch_max:
                break
        return batch

    async def _run_batch(self, batch: list[ColorRequest]) -> None:
        started = time.monotonic()
        # One engine call per validate flavor (usually exactly one).
        groups: dict[bool, list[ColorRequest]] = {}
        for req in batch:
            groups.setdefault(req.validate, []).append(req)
        fresh_runs = 0
        for validate, group in groups.items():
            jobs = [(r.graph, r.method, r.options) for r in group]
            try:
                results = await asyncio.to_thread(
                    self._execute, jobs, validate
                )
            except BaseException as exc:  # engine blew up wholesale
                for req in group:
                    self._inflight.pop(req.key, None)
                    self._failed += 1
                    if not req.future.done():
                        req.future.set_exception(
                            RequestFailed(f"batch execution failed: {exc}")
                        )
                continue
            for req, result in zip(group, results):
                self._inflight.pop(req.key, None)
                if req.future.done():
                    continue
                if isinstance(result, JobFailure) or not result:
                    self._failed += 1
                    req.future.set_exception(
                        RequestFailed(str(result), failure=result)
                    )
                    continue
                if not result.cache_hit:
                    fresh_runs += 1
                req.future.set_result(result)
        self._batches += 1
        self._engine_runs += fresh_runs
        self._trace(
            "service.batch", "service", requests=len(batch),
            engine_runs=fresh_runs, duration_us=_us_since(started),
        )

    def _execute(self, jobs, validate: bool):
        """The engine batch (worker thread; the only engine entry point)."""
        from ..coloring.kernels import mex_strategy
        from ..engine.context import color_many

        cfg = self.config

        def run():
            return color_many(
                jobs,
                self.method,
                backend=cfg.backend,
                backend_opts=cfg.backend_opts,
                workers=cfg.workers,
                scheduler=cfg.scheduler,
                cache=self._cache,
                store=self._store,
                faults=cfg.faults,
                health=cfg.health,
                validate=validate,
            )

        if cfg.mex is not None:
            with mex_strategy(cfg.mex):
                return run()
        return run()

    # -- sessions --------------------------------------------------------
    async def session(
        self,
        graph,
        *,
        method: str | None = None,
        max_drift: int | None = None,
        priority: str = "interactive",
    ):
        """Open a dynamic-graph session seeded by one service coloring.

        The initial coloring goes through the normal admission/coalescing
        path; edits then repair incrementally in a worker thread, and
        (``max_drift=``) compaction recolors route back through the
        service.  See :class:`~repro.service.session.ColoringSession`.
        """
        from ..coloring.dynamic import DynamicColoring
        from .session import ColoringSession

        result = await self.submit(graph, method, priority=priority)
        dyn = await asyncio.to_thread(
            DynamicColoring, graph, result, method=method or self.method
        )
        self._sessions += 1
        self._trace("service.session", "service", vertices=graph.num_vertices)
        return ColoringSession(self, dyn, max_drift=max_drift)

    # -- introspection ---------------------------------------------------
    @property
    def stats(self) -> dict:
        """Counter snapshot (all monotone except the depth gauges)."""
        return {
            "running": self.running,
            "submitted": self._submitted,
            "completed": self._completed,
            "rejected": self._rejected,
            "failed": self._failed,
            "cache_hits": self._cache_hits,
            "coalesced": self._coalesced,
            "engine_runs": self._engine_runs,
            "batches": self._batches,
            "queue_depth": self._depth(),
            "inflight": len(self._inflight),
            "sessions": self._sessions,
            "session_ops": self._session_ops,
            "compactions": self._compactions,
            "cache": self._cache.stats(),
        }

    @property
    def cache(self):
        """The shared result cache (coalescing + dedup live here)."""
        return self._cache

    @property
    def tracer(self):
        return self.observation.tracer

    def _trace(self, name: str, category: str, **counters) -> None:
        # Event-loop thread only: the tracer is not thread-safe.
        if self.observation.tracer is not None:
            self.observation.tracer.event(name, category, **counters)


def _us_since(started: float) -> float:
    return (time.monotonic() - started) * 1e6
