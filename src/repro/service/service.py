"""The asyncio coloring service: admission, batching, coalescing.

:class:`ColoringService` turns the batch engine into a long-lived
front end for concurrent callers:

* **Admission control** — a bounded queue with per-priority shares
  (:data:`~repro.service.requests.PRIORITY_SHARES`); refusals are
  structured :class:`~repro.service.requests.AdmissionError`\\ s, never
  silent drops or bare exceptions.
* **Micro-batching** — one dispatcher task drains the queue in priority
  order into ``color_many`` batches (up to ``batch_max`` requests, an
  optional ``batch_window_ms`` accumulation window), executed on a
  worker thread so the event loop stays responsive; the engine batch
  itself fans out across ``config.workers`` processes.
* **Request coalescing** — requests are content-addressed with
  :func:`~repro.parallel.cache.job_cache_key` (graph digest + method +
  resolved options + backend preset).  A request whose key is already
  *in flight* never enqueues: it awaits the leader's future and gets an
  independent clone marked ``extra["coalesced"]=True``.  Completed keys
  are served straight from the shared
  :class:`~repro.parallel.ResultCache` at submit time.  Either way the
  engine computes each distinct job exactly once.

Everything threads through the existing seams: a single
:class:`~repro.engine.config.RunConfig` carries ``backend`` /
``workers`` / ``scheduler`` / ``cache`` / ``store`` / ``mex`` /
``faults`` / ``health`` / ``observe``.  A string ``store=`` spec is
resolved once at :meth:`start` into a service-owned arena kept warm
across batches (workers attach zero-copy handles); :meth:`close`
releases it — no leaked ``/dev/shm`` segments.  ``observe=`` attaches a
service-level trace: one ``service.request`` leaf per request (with its
wall-clock latency and coalesced/cache-hit markers) and one
``service.batch`` leaf per engine batch, recorded only from the event
loop thread (the tracer is not thread-safe).

Threading model: every public coroutine must run on the service's event
loop; the engine work happens in ``asyncio.to_thread`` and only the
dispatcher touches it, so at most one engine batch is in flight at a
time (parallelism comes from the worker pool inside the batch).
"""

from __future__ import annotations

import asyncio
import time

from ..engine.config import RunConfig, resolve_run_config
from ..faults import Robustness, resolve_robustness
from ..obs.observe import resolve_observe
from ..parallel.cache import clone_result, job_cache_key, resolve_cache
from ..parallel.jobs import JobFailure
from ..resilience.breaker import CircuitBreaker
from ..resilience.deadline import (
    Cancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RunControl,
)
from .requests import (
    PRIORITIES,
    PRIORITY_SHARES,
    AdmissionError,
    ColorRequest,
    InflightEntry,
    RequestFailed,
)

__all__ = ["ColoringService"]


class ColoringService:
    """Async coloring front end over the batch engine (module docstring).

    Parameters
    ----------
    method:
        Default scheme for requests that don't name one.
    config:
        A :class:`~repro.engine.config.RunConfig` (or mapping) supplying
        the execution seams.  ``cache`` defaults to a fresh in-memory
        :class:`~repro.parallel.ResultCache` (coalescing needs one);
        ``store`` strings resolve to a service-owned arena.
    max_queue:
        Total admission-queue capacity; each priority class may fill
        only its :data:`~repro.service.requests.PRIORITY_SHARES`
        fraction.
    batch_max:
        Most requests folded into one engine batch.
    batch_window_ms:
        Accumulation window before a batch is cut — trade latency for
        batching opportunity (default 0: dispatch as soon as scheduled).
    validate:
        Default engine-side validation flag for requests.
    """

    def __init__(
        self,
        method: str = "data-ldg",
        *,
        config=None,
        max_queue: int = 64,
        batch_max: int = 8,
        batch_window_ms: float = 0.0,
        validate: bool = True,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.method = method
        self.config: RunConfig = resolve_run_config(config) or RunConfig()
        self.max_queue = max_queue
        self.batch_max = batch_max
        self.batch_window_s = batch_window_ms / 1000.0
        self.validate = validate
        self.observation = resolve_observe(self.config.observe)
        self._cache = resolve_cache(self.config.cache) or resolve_cache("memory")
        self._store = None  # resolved at start()
        self._owns_store = False
        self._queues: dict[str, list[ColorRequest]] = {p: [] for p in PRIORITIES}
        self._inflight: dict[str, InflightEntry] = {}
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._running = False
        self._draining = False
        # Service-owned robustness bundle: the fault injector / breaker /
        # degradation log persist across batches, so the circuit breaker
        # sees the service's whole failure history, not one batch's.
        robustness = resolve_robustness(self.config.faults, self.config.health)
        if robustness is None:
            robustness = Robustness()
        if robustness.breaker is None:
            robustness.breaker = CircuitBreaker(name="service")
        self._robustness = robustness
        # -- counters (see :attr:`stats`) --
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._engine_runs = 0
        self._batches = 0
        self._sessions = 0
        self._session_ops = 0
        self._compactions = 0
        self._deadline_hits = 0
        self._cancelled = 0
        self._dispatcher_restarts = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "ColoringService":
        """Bring the service up (idempotent): arena + dispatcher task."""
        if self._running:
            return self
        spec = self.config.store
        if isinstance(spec, str):
            from ..graph.store import resolve_store

            self._store = resolve_store(spec)
            self._owns_store = True
        else:
            self._store = spec  # instance or None: caller owns lifetime
        self._wake = asyncio.Event()
        self._running = True
        self._draining = False
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-color-dispatch"
        )
        self._trace("service.start", "service")
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Shut down: optionally drain queued work, release the arena.

        With ``drain=True`` (default) admission stops (``"draining"``
        rejections) but every already-admitted request completes; with
        ``drain=False`` queued requests fail with
        :class:`AdmissionError("not-running")`.

        Idempotent and crash-safe: a second close (or a close racing a
        first one) is a no-op, and a dispatcher that died on an
        unexpected error still gets the arena released before the error
        resurfaces here — no leaked ``/dev/shm`` segments either way.
        """
        if not self._running:
            return
        self._draining = True
        if not drain:
            for queue in self._queues.values():
                for req in queue:
                    if not req.future.done():
                        req.future.set_exception(AdmissionError("not-running"))
                    self._inflight.pop(req.key, None)
                queue.clear()
        self._wake.set()
        dispatcher, self._dispatcher = self._dispatcher, None
        dispatcher_error = None
        if dispatcher is not None:
            try:
                await dispatcher
            except Exception as exc:
                dispatcher_error = exc
        self._running = False
        if self._owns_store and self._store is not None:
            self._store.close()
            self._store = None
            self._owns_store = False
        self._trace("service.close", "service")
        if dispatcher_error is not None:
            raise dispatcher_error

    async def __aenter__(self) -> "ColoringService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def running(self) -> bool:
        return self._running and not self._draining

    # -- submission ------------------------------------------------------
    async def submit(
        self,
        graph,
        method: str | None = None,
        *,
        options: dict | None = None,
        priority: str = "normal",
        validate: bool | None = None,
        deadline_ms: float | None = None,
    ):
        """Color ``graph``; resolves to the engine's ``ColoringResult``.

        Raises :class:`AdmissionError` when refused and
        :class:`RequestFailed` when the engine exhausts its retries.
        Coalesced/cached completions are marked in ``result.extra``
        (``coalesced`` / ``cache_hit``).

        ``deadline_ms`` (default: ``config.deadline_ms``) is the
        request's end-to-end budget.  Queue wait counts against it: the
        dispatcher stamps the queued share at dispatch and the engine
        checks the rest at round boundaries, so the structured
        :class:`~repro.resilience.DeadlineExceeded` this raises always
        separates queued from running time.  A coalesced follower with a
        budget can abandon its leader without killing it — the run is
        cancelled only when *every* waiter has walked away.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        method = method or self.method
        options = dict(options or {})
        validate = self.validate if validate is None else validate
        if deadline_ms is None:
            deadline_ms = self.config.deadline_ms
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                self._deadline_hits += 1
                raise DeadlineExceeded(deadline_ms, where="admission")
        self._submitted += 1
        if not self._running:
            self._rejected += 1
            raise AdmissionError("not-running", priority=priority)
        if self._draining:
            self._rejected += 1
            raise AdmissionError("draining", priority=priority)
        key = job_cache_key(
            graph, method, options,
            self.config.backend, self.config.backend_opts,
        )
        started = time.monotonic()
        # Coalesce onto an identical in-flight computation.
        entry = self._inflight.get(key)
        if entry is not None:
            self._coalesced += 1
            result = await self._await_entry(
                entry, deadline_ms, started, follower=True
            )
            self._completed += 1
            self._trace(
                "service.request", "service", coalesced=1,
                latency_us=_us_since(started),
            )
            return clone_result(result, coalesced=True)
        # Serve completed keys straight from the shared result cache.
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self._completed += 1
            self._trace(
                "service.request", "service", cache_hit=1,
                latency_us=_us_since(started),
            )
            return cached
        depth = self._depth()
        limit = int(self.max_queue * PRIORITY_SHARES[priority])
        if depth >= limit:
            self._rejected += 1
            raise AdmissionError(
                "queue-full", priority=priority, queue_depth=depth, limit=limit
            )
        future = asyncio.get_running_loop().create_future()
        entry = InflightEntry(future=future, token=CancelToken())
        request = ColorRequest(
            graph=graph, method=method, options=options, priority=priority,
            key=key, validate=validate, future=future, submitted_at=started,
            deadline_ms=deadline_ms, token=entry.token,
        )
        self._queues[priority].append(request)
        self._inflight[key] = entry
        self._wake.set()
        result = await self._await_entry(
            entry, deadline_ms, started, follower=False
        )
        self._completed += 1
        self._trace(
            "service.request", "service", latency_us=_us_since(started)
        )
        return result

    async def _await_entry(
        self, entry: InflightEntry, deadline_ms, started, *, follower: bool
    ):
        """Await an in-flight future as one counted waiter.

        The shield keeps a cancelled/timed-out caller from killing the
        computation other waiters still want; the refcount makes the
        *last* leaver cancel it cooperatively via the entry's token.  A
        follower with its own budget bounds the wait with that budget
        (its leader may have none).
        """
        entry.waiters += 1
        try:
            # shield: a cancelled caller must not kill the computation
            # its coalesced followers are awaiting.
            wait = asyncio.shield(entry.future)
            if follower and deadline_ms is not None:
                elapsed_ms = _us_since(started) / 1e3
                budget_s = max(0.0, deadline_ms - elapsed_ms) / 1000.0
                try:
                    return await asyncio.wait_for(wait, timeout=budget_s)
                except asyncio.TimeoutError:
                    self._deadline_hits += 1
                    raise DeadlineExceeded(
                        deadline_ms,
                        queued_ms=(time.monotonic() - started) * 1000.0,
                        where="coalesced-wait",
                    ) from None
            return await wait
        finally:
            entry.waiters -= 1
            if entry.waiters <= 0 and not entry.future.done():
                self._cancelled += 1
                entry.token.cancel("all-waiters-abandoned")

    def _depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # -- dispatch --------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._depth():
                if self.batch_window_s > 0:
                    await asyncio.sleep(self.batch_window_s)
                batch = self._next_batch()
                if batch:
                    try:
                        await self._run_batch(batch)
                    except Exception as exc:
                        # Dispatcher crash (injected or real): fail the
                        # batch's waiters with a structured error and
                        # keep dispatching — the service restarts its
                        # dispatcher instead of hanging every later
                        # request.
                        self._dispatcher_restarts += 1
                        self._robustness.degrade(
                            "service", "dispatcher", "restart", "crash",
                            repr(exc),
                        )
                        for req in batch:
                            self._inflight.pop(req.key, None)
                            self._failed += 1
                            if not req.future.done():
                                req.future.set_exception(RequestFailed(
                                    f"dispatcher crashed mid-batch: {exc}"
                                ))
            if self._draining and not self._depth():
                return

    def _next_batch(self) -> list[ColorRequest]:
        """Up to ``batch_max`` requests, urgent classes first."""
        batch: list[ColorRequest] = []
        for priority in PRIORITIES:
            queue = self._queues[priority]
            while queue and len(batch) < self.batch_max:
                batch.append(queue.pop(0))
            if len(batch) >= self.batch_max:
                break
        return batch

    async def _run_batch(self, batch: list[ColorRequest]) -> None:
        started = time.monotonic()
        # Claim the batch number up front: a crashed batch consumes its
        # slot, so a crash keyed batch=N does not re-fire forever.
        batch_id = self._batches
        self._batches += 1
        spec = self._robustness.fire("dispatcher-crash", batch=batch_id)
        if spec is not None:
            raise RuntimeError(
                f"injected dispatcher crash (batch={batch_id})"
            )
        # One engine call per validate flavor (usually exactly one);
        # deadline-carrying requests run as individual engine calls so
        # each enforces its own budget.
        groups: dict[bool, list[ColorRequest]] = {}
        for req in batch:
            groups.setdefault(req.validate, []).append(req)
        fresh_runs = 0
        for validate, group in groups.items():
            plain = [r for r in group if r.deadline_ms is None]
            timed = [r for r in group if r.deadline_ms is not None]
            if plain:
                jobs = [(r.graph, r.method, r.options) for r in plain]
                try:
                    results = await asyncio.to_thread(
                        self._execute, jobs, validate
                    )
                except BaseException as exc:  # engine blew up wholesale
                    for req in plain:
                        self._inflight.pop(req.key, None)
                        self._failed += 1
                        if not req.future.done():
                            req.future.set_exception(
                                RequestFailed(f"batch execution failed: {exc}")
                            )
                    results = None
                if results is not None:
                    for req, result in zip(plain, results):
                        self._inflight.pop(req.key, None)
                        if req.future.done():
                            continue
                        if isinstance(result, JobFailure) or not result:
                            self._failed += 1
                            req.future.set_exception(
                                RequestFailed(str(result), failure=result)
                            )
                            continue
                        if not result.cache_hit:
                            fresh_runs += 1
                        req.future.set_result(result)
            for req in timed:
                fresh_runs += await self._run_timed(req, validate)
        self._engine_runs += fresh_runs
        self._trace(
            "service.batch", "service", requests=len(batch),
            engine_runs=fresh_runs, duration_us=_us_since(started),
        )

    async def _run_timed(self, req: ColorRequest, validate: bool) -> int:
        """One deadline-carrying request: stamp queued time, run, settle.

        Returns the number of fresh engine runs (0 or 1).  A budget
        blown in the queue fails at ``"dispatch"`` without paying for an
        engine call; one blown mid-run surfaces the engine's structured
        :class:`DeadlineExceeded`; a run abandoned by every waiter
        settles :class:`Cancelled` (consumed here — nobody is listening).
        """
        entry = self._inflight.pop(req.key, None)
        queued_ms = (time.monotonic() - req.submitted_at) * 1000.0
        control = RunControl(
            deadline=Deadline(req.deadline_ms, queued_ms=queued_ms),
            token=req.token,
        )
        exc: BaseException | None = None
        result = None
        if control.deadline.expired:
            exc = control.deadline.exceeded("dispatch")
        else:
            try:
                results = await asyncio.to_thread(
                    self._execute, [(req.graph, req.method, req.options)],
                    validate, control,
                )
                result = results[0] if results else None
            except (DeadlineExceeded, Cancelled) as e:
                exc = e
            except BaseException as e:
                exc = RequestFailed(f"batch execution failed: {e}")
        if req.future.done():
            return 0
        if exc is not None:
            if isinstance(exc, DeadlineExceeded):
                self._deadline_hits += 1
            self._failed += 1
            req.future.set_exception(exc)
            if entry is not None and entry.waiters <= 0:
                req.future.exception()  # abandoned: mark retrieved
            return 0
        if isinstance(result, JobFailure) or not result:
            self._failed += 1
            req.future.set_exception(RequestFailed(str(result), failure=result))
            return 0
        req.future.set_result(result)
        return 0 if result.cache_hit else 1

    def _execute(self, jobs, validate: bool, control: RunControl | None = None):
        """The engine batch (worker thread; the only engine entry point)."""
        from ..coloring.kernels import mex_strategy
        from ..engine.context import color_many

        cfg = self.config

        def run():
            return color_many(
                jobs,
                self.method,
                backend=cfg.backend,
                backend_opts=cfg.backend_opts,
                workers=cfg.workers,
                scheduler=cfg.scheduler,
                cache=self._cache,
                store=self._store,
                faults=self._robustness,
                validate=validate,
                deadline_ms=control,
            )

        if cfg.mex is not None:
            with mex_strategy(cfg.mex):
                return run()
        return run()

    # -- sessions --------------------------------------------------------
    async def session(
        self,
        graph,
        *,
        method: str | None = None,
        max_drift: int | None = None,
        priority: str = "interactive",
    ):
        """Open a dynamic-graph session seeded by one service coloring.

        The initial coloring goes through the normal admission/coalescing
        path; edits then repair incrementally in a worker thread, and
        (``max_drift=``) compaction recolors route back through the
        service.  See :class:`~repro.service.session.ColoringSession`.
        """
        from ..coloring.dynamic import DynamicColoring
        from .session import ColoringSession

        result = await self.submit(graph, method, priority=priority)
        dyn = await asyncio.to_thread(
            DynamicColoring, graph, result, method=method or self.method
        )
        self._sessions += 1
        self._trace("service.session", "service", vertices=graph.num_vertices)
        return ColoringSession(self, dyn, max_drift=max_drift)

    # -- introspection ---------------------------------------------------
    @property
    def stats(self) -> dict:
        """Counter snapshot (all monotone except the depth gauges)."""
        return {
            "running": self.running,
            "submitted": self._submitted,
            "completed": self._completed,
            "rejected": self._rejected,
            "failed": self._failed,
            "cache_hits": self._cache_hits,
            "coalesced": self._coalesced,
            "engine_runs": self._engine_runs,
            "batches": self._batches,
            "queue_depth": self._depth(),
            "inflight": len(self._inflight),
            "sessions": self._sessions,
            "session_ops": self._session_ops,
            "compactions": self._compactions,
            "deadline_hits": self._deadline_hits,
            "cancelled": self._cancelled,
            "dispatcher_restarts": self._dispatcher_restarts,
            "breaker": self._robustness.breaker.snapshot(),
            "cache": self._cache.stats(),
        }

    @property
    def cache(self):
        """The shared result cache (coalescing + dedup live here)."""
        return self._cache

    @property
    def tracer(self):
        return self.observation.tracer

    def _trace(self, name: str, category: str, **counters) -> None:
        # Event-loop thread only: the tracer is not thread-safe.
        if self.observation.tracer is not None:
            self.observation.tracer.event(name, category, **counters)


def _us_since(started: float) -> float:
    return (time.monotonic() - started) * 1e6
