"""In-process async client for the coloring service.

:class:`ServiceClient` is the supported caller-facing surface: it owns
no queue internals, just the submit/session verbs plus a gather-based
``color_many`` — the seam where a wire protocol would slot in without
touching :class:`~repro.service.service.ColoringService` itself.

Usage::

    async with ColoringService(config=cfg) as svc:
        client = ServiceClient(svc)
        result = await client.color(graph)                 # one graph
        results = await client.color_many(graphs)          # concurrent
        async with await client.session(graph) as sess:    # dynamic
            await sess.insert(0, 1)
"""

from __future__ import annotations

import asyncio

__all__ = ["ServiceClient"]


class ServiceClient:
    """Thin async facade over one :class:`ColoringService`."""

    def __init__(self, service) -> None:
        self._service = service

    async def color(
        self,
        graph,
        method: str | None = None,
        *,
        options: dict | None = None,
        priority: str = "normal",
        validate: bool | None = None,
    ):
        """Color one graph through the service (see ``submit``)."""
        return await self._service.submit(
            graph, method, options=options, priority=priority,
            validate=validate,
        )

    async def color_many(
        self,
        graphs,
        method: str | None = None,
        *,
        options: dict | None = None,
        priority: str = "batch",
        return_exceptions: bool = False,
    ) -> list:
        """Submit a batch concurrently; results in submission order.

        Duplicates coalesce service-side.  With
        ``return_exceptions=True`` admission/engine failures come back
        in-position instead of raising (mirrors ``asyncio.gather``).
        """
        return await asyncio.gather(
            *(
                self._service.submit(
                    g, method, options=options, priority=priority
                )
                for g in graphs
            ),
            return_exceptions=return_exceptions,
        )

    async def session(self, graph, **kwargs):
        """Open a dynamic-graph session (see ``ColoringService.session``)."""
        return await self._service.session(graph, **kwargs)

    @property
    def stats(self) -> dict:
        return self._service.stats
