"""repro.service: coloring-as-a-service.

An asyncio front end over the batch engine for long-lived, concurrent
callers (see docs/SERVICE.md):

* :class:`ColoringService` — bounded admission with priority classes,
  micro-batching into ``color_many`` on the worker pool, and
  digest-based request coalescing (identical in-flight graphs share one
  computation; completed ones hit the shared result cache).
* :class:`ColoringSession` — a dynamic graph's edit stream: incremental
  repair via :class:`~repro.coloring.dynamic.DynamicColoring`, with
  drift-triggered full-recolor compaction routed back through the
  service.
* :class:`ServiceClient` — the in-process async caller surface.

Quickstart::

    import asyncio
    from repro import rmat_er
    from repro.engine import RunConfig
    from repro.service import ColoringService, ServiceClient

    async def main():
        cfg = RunConfig(workers=2, store="shm", observe="trace")
        async with ColoringService("data-ldg", config=cfg) as svc:
            client = ServiceClient(svc)
            g = rmat_er(scale=12)
            results = await client.color_many([g] * 50)  # 1 engine run
            print(svc.stats["coalesced"], svc.stats["engine_runs"])

    asyncio.run(main())

The CLI speaks the same surface: ``repro-color serve`` drives a
concurrent request storm (with duplicates) and prints the admission /
coalescing / batching counters.
"""

from .client import ServiceClient
from .requests import PRIORITIES, PRIORITY_SHARES, AdmissionError, RequestFailed
from .service import ColoringService
from .session import ColoringSession

__all__ = [
    "PRIORITIES",
    "PRIORITY_SHARES",
    "AdmissionError",
    "ColoringService",
    "ColoringSession",
    "RequestFailed",
    "ServiceClient",
]
