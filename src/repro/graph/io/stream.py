"""Out-of-core CSR: a mmap-able binary container and streaming builders.

The compressed ``.npz`` cache (:mod:`repro.graph.io.binary`) must be
decompressed into private heap memory before use, which caps graph size
at RAM.  This module adds a raw binary container (``.csrbin``) whose
``R``/``C`` arrays live at fixed, 64-byte-aligned offsets so they can be
``mmap``'d read-only and paged in on demand:

``[header 64B][R: (n+1) int64][pad][C: m int32]``

plus two streaming builders that never hold ``O(m)`` in memory:

- :func:`edges_to_csr_bin` — converts a re-iterable stream of edge
  chunks into a ``.csrbin`` with three bounded passes (degree count,
  raw scatter to a spill file, per-block sort/dedup compaction).
- :func:`er_edge_stream` — a deterministic Erdős–Rényi edge-chunk
  generator (each chunk seeded independently) for building test graphs
  of arbitrary size.

Peak memory for the builders is ``O(n)`` (the degree/offset arrays)
plus one chunk/block window — the edges themselves only ever exist on
disk, which is what lets a 100M+ edge graph be built and colored on a
machine whose RAM holds neither.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

from ..csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = [
    "write_csr_bin",
    "read_csr_bin",
    "edges_to_csr_bin",
    "er_edge_stream",
]

_MAGIC = b"REPROCSR"
_VERSION = 1
_HEADER_SIZE = 64  # magic + version + dtype codes + n + m, zero-padded
_ALIGN = 64
_HEADER_FMT = "<8sIIIIqq"  # magic, version, r_code, c_code, reserved, n, m

#: dtype codes recorded in the header (read side verifies, never casts).
_DTYPE_CODES = {np.dtype(np.int32): 1, np.dtype(np.int64): 2}

#: Default window for streaming passes: ~1M entries keeps every scratch
#: array in the tens of megabytes regardless of total graph size.
_CHUNK = 1 << 20


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _pack_header(n: int, m: int) -> bytes:
    header = struct.pack(
        _HEADER_FMT,
        _MAGIC,
        _VERSION,
        _DTYPE_CODES[np.dtype(OFFSET_DTYPE)],
        _DTYPE_CODES[np.dtype(VERTEX_DTYPE)],
        0,
        n,
        m,
    )
    return header.ljust(_HEADER_SIZE, b"\0")


def _read_header(path: Path) -> tuple[int, int]:
    with open(path, "rb") as f:
        raw = f.read(_HEADER_SIZE)
    if len(raw) < _HEADER_SIZE:
        raise ValueError(f"{path}: truncated csrbin header")
    magic, version, r_code, c_code, _, n, m = struct.unpack(
        _HEADER_FMT, raw[: struct.calcsize(_HEADER_FMT)]
    )
    if magic != _MAGIC:
        raise ValueError(f"{path}: not a csrbin file (bad magic {magic!r})")
    if version != _VERSION:
        raise ValueError(f"{path}: unsupported csrbin version {version}")
    if r_code != _DTYPE_CODES[np.dtype(OFFSET_DTYPE)] or c_code != _DTYPE_CODES[
        np.dtype(VERTEX_DTYPE)
    ]:
        raise ValueError(
            f"{path}: dtype codes ({r_code}, {c_code}) do not match the "
            f"canonical CSR dtypes — refusing to cast an out-of-core file"
        )
    if n < 0 or m < 0:
        raise ValueError(f"{path}: negative dimensions in header")
    return int(n), int(m)


def _c_offset(n: int) -> int:
    return _HEADER_SIZE + _aligned((n + 1) * np.dtype(OFFSET_DTYPE).itemsize)


def write_csr_bin(graph: CSRGraph, path) -> Path:
    """Serialize ``graph`` to a mmap-able ``.csrbin`` container.

    Arrays are written straight from their buffers (no ``tobytes()``
    copy), so writing an already-mmap'd graph streams disk-to-disk.
    """
    path = Path(path)
    n, m = graph.num_vertices, graph.num_edges
    with open(path, "wb") as f:
        f.write(_pack_header(n, m))
        f.write(memoryview(graph.row_offsets).cast("B"))
        f.write(b"\0" * (_c_offset(n) - _HEADER_SIZE - graph.row_offsets.nbytes))
        f.write(memoryview(graph.col_indices).cast("B"))
        # Flush through the page cache: readers mmap this file immediately,
        # and un-synced pages would count against *their* dirty footprint.
        f.flush()
        os.fsync(f.fileno())
    return path


def read_csr_bin(
    path,
    *,
    mmap: bool = True,
    validate: bool = True,
    name: str | None = None,
    content_digest: str | None = None,
) -> CSRGraph:
    """Load a ``.csrbin`` container, mmap'd read-only by default.

    With ``mmap=True`` the returned graph's arrays are demand-paged views
    of the file — opening a 10 GB graph allocates kilobytes.  Set
    ``validate=False`` to skip the ``O(n + m)`` structural re-scan (the
    attach path does: the file was validated when written); ``validate``
    defaults to True for untrusted files.  ``content_digest`` seeds the
    digest memo when the caller already knows it (e.g. it traveled in a
    :class:`~repro.graph.store.GraphHandle`).
    """
    path = Path(path)
    n, m = _read_header(path)
    if name is None:
        name = path.stem
    if mmap:
        R = np.memmap(path, dtype=OFFSET_DTYPE, mode="r", offset=_HEADER_SIZE, shape=(n + 1,))
        if m:
            C = np.memmap(path, dtype=VERTEX_DTYPE, mode="r", offset=_c_offset(n), shape=(m,))
        else:
            C = np.empty(0, dtype=VERTEX_DTYPE)
    else:
        with open(path, "rb") as f:
            f.seek(_HEADER_SIZE)
            R = np.fromfile(f, dtype=OFFSET_DTYPE, count=n + 1)
            f.seek(_c_offset(n))
            C = np.fromfile(f, dtype=VERTEX_DTYPE, count=m)
        if R.size != n + 1 or C.size != m:
            raise ValueError(f"{path}: truncated csrbin payload")
    if validate:
        return CSRGraph(R, C, name=name)
    return CSRGraph.from_validated_arrays(
        np.asarray(R), np.asarray(C), name=name, content_digest=content_digest
    )


def er_edge_stream(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 0,
    chunk_edges: int = _CHUNK,
):
    """Yield deterministic Erdős–Rényi edge chunks ``(u, v)``.

    Each chunk is an independent ``default_rng((seed, chunk_index))``
    draw, so the stream is re-iterable — the out-of-core converter makes
    two passes and both see identical edges.  The same ``(seed,
    chunk_edges)`` pair always produces the same stream; changing
    ``chunk_edges`` re-cuts the chunk grid and draws different edges.
    Self-loops and duplicates may appear; :func:`edges_to_csr_bin`
    removes both.  Endpoints are ``int64``; ``num_edges`` counts raw
    *undirected* samples before dedup.
    """
    if num_vertices <= 0:
        return
    produced = 0
    index = 0
    while produced < num_edges:
        take = min(chunk_edges, num_edges - produced)
        rng = np.random.default_rng((seed, index))
        u = rng.integers(0, num_vertices, size=take, dtype=np.int64)
        v = rng.integers(0, num_vertices, size=take, dtype=np.int64)
        yield u, v
        produced += take
        index += 1


def edges_to_csr_bin(
    chunks,
    num_vertices: int,
    path,
    *,
    symmetrize: bool = True,
    chunk_edges: int = _CHUNK,
) -> dict:
    """Build a ``.csrbin`` from streamed edge chunks without ``O(m)`` RAM.

    ``chunks`` is either a zero-argument callable returning an iterable of
    ``(u, v)`` int arrays, or an iterable that can safely be iterated
    twice (e.g. a list of chunks, or a generator *factory* result such as
    :func:`er_edge_stream` re-created by a callable).  Three passes:

    1. **Count** — accumulate per-vertex degrees (self-loops dropped;
       both directions when ``symmetrize``).
    2. **Scatter** — write every adjacency entry into a raw spill file at
       its final row's region via running cursors (duplicates included).
    3. **Compact** — walk the spill file in bounded row blocks, sort and
       de-duplicate each adjacency list, and append the survivors to the
       final container; offsets are patched in once true degrees are
       known.

    Peak memory is ``O(n)`` plus one chunk/block window.  Returns
    ``{"path", "num_vertices", "num_edges", "raw_entries"}``.
    """
    path = Path(path)
    n = int(num_vertices)
    if n < 0:
        raise ValueError("num_vertices must be non-negative")

    def _iter_chunks():
        source = chunks() if callable(chunks) else chunks
        for u, v in source:
            u = np.asarray(u, dtype=np.int64).ravel()
            v = np.asarray(v, dtype=np.int64).ravel()
            if u.size != v.size:
                raise ValueError("edge chunk endpoint arrays differ in length")
            if u.size and (
                min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= max(n, 1)
            ):
                raise ValueError("edge chunk contains out-of-range vertex ids")
            keep = u != v  # self-loops never enter the container
            yield u[keep], v[keep]

    # Pass 1: degrees.
    degrees = np.zeros(n, dtype=np.int64)
    for u, v in _iter_chunks():
        degrees += np.bincount(u, minlength=n)
        if symmetrize:
            degrees += np.bincount(v, minlength=n)
    raw_R = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=raw_R[1:])
    raw_m = int(raw_R[-1])

    # Pass 2: scatter every entry into its row's region of a spill file.
    spill_path = path.with_suffix(path.suffix + ".spill")
    cursor = raw_R[:-1].copy()
    spill = (
        np.memmap(spill_path, dtype=VERTEX_DTYPE, mode="w+", shape=(raw_m,))
        if raw_m
        else None
    )

    def _scatter(src: np.ndarray, dst: np.ndarray) -> None:
        # Stable-sort the chunk by source row so same-row entries get
        # consecutive slots: position = cursor[row] + rank-within-chunk.
        order = np.argsort(src, kind="stable")
        src_s, dst_s = src[order], dst[order]
        starts = np.searchsorted(src_s, src_s)  # first index of each run
        ranks = np.arange(src_s.size, dtype=np.int64) - starts
        spill[cursor[src_s] + ranks] = dst_s.astype(VERTEX_DTYPE)
        rows, counts = np.unique(src_s, return_counts=True)
        cursor[rows] += counts

    if raw_m:
        for u, v in _iter_chunks():
            _scatter(u, v)
            if symmetrize:
                _scatter(v, u)
        spill.flush()

    # Pass 3: per-block sort + dedup, appending survivors to the final C.
    final_degrees = np.zeros(n, dtype=np.int64)
    with open(path, "wb") as f:
        f.write(_pack_header(n, 0))  # placeholder m, patched below
        f.seek(_c_offset(n))
        lo = 0
        while lo < n:
            # Largest hi with raw_R[hi] - raw_R[lo] <= chunk_edges; a single
            # row wider than the budget still gets its own block.
            hi = int(np.searchsorted(raw_R, raw_R[lo] + max(chunk_edges, 1), side="right")) - 1
            hi = min(max(hi, lo + 1), n)
            block = np.asarray(spill[raw_R[lo] : raw_R[hi]])
            rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64), degrees[lo:hi]
            )
            if block.size:
                order = np.lexsort((block, rows))
                rows_s, vals_s = rows[order], block[order]
                keep = np.empty(vals_s.size, dtype=bool)
                keep[0] = True
                keep[1:] = (rows_s[1:] != rows_s[:-1]) | (vals_s[1:] != vals_s[:-1])
                rows_k, vals_k = rows_s[keep], vals_s[keep]
                final_degrees[lo:hi] = np.bincount(rows_k - lo, minlength=hi - lo)
                f.write(memoryview(np.ascontiguousarray(vals_k)).cast("B"))
            lo = hi
        final_R = np.zeros(n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(final_degrees, out=final_R[1:])
        final_m = int(final_R[-1])
        f.seek(0)
        f.write(_pack_header(n, final_m))
        f.seek(_HEADER_SIZE)
        f.write(memoryview(final_R).cast("B"))
        f.flush()
        os.fsync(f.fileno())

    if spill is not None:
        del spill  # release the mapping before unlinking
    spill_path.unlink(missing_ok=True)
    return {
        "path": str(path),
        "num_vertices": n,
        "num_edges": final_m,
        "raw_entries": raw_m,
    }
