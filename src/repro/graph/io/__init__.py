"""Graph I/O: MatrixMarket (SuiteSparse), edge lists, binary caches."""

from .binary import cached, load_npz, save_npz
from .edgelist import read_edgelist, write_edgelist
from .matrix_market import MatrixMarketError, read_matrix_market, write_matrix_market

__all__ = [
    "MatrixMarketError",
    "cached",
    "load_npz",
    "read_edgelist",
    "read_matrix_market",
    "save_npz",
    "write_edgelist",
    "write_matrix_market",
]
