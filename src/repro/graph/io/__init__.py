"""Graph I/O: MatrixMarket (SuiteSparse), edge lists, binary caches.

:mod:`~repro.graph.io.stream` adds the out-of-core path: a mmap-able
``.csrbin`` container plus streaming edge-chunk builders that construct
graphs bigger than RAM.
"""

from .binary import cached, load_npz, save_npz
from .edgelist import read_edgelist, write_edgelist
from .matrix_market import MatrixMarketError, read_matrix_market, write_matrix_market
from .stream import edges_to_csr_bin, er_edge_stream, read_csr_bin, write_csr_bin

__all__ = [
    "MatrixMarketError",
    "cached",
    "edges_to_csr_bin",
    "er_edge_stream",
    "load_npz",
    "read_csr_bin",
    "read_edgelist",
    "read_matrix_market",
    "save_npz",
    "write_csr_bin",
    "write_edgelist",
    "write_matrix_market",
]
