"""Whitespace-separated edge-list I/O (SNAP-style ``u v`` per line)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    path: str | Path,
    *,
    comments: str = "#",
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Read a two-column edge list; ``comments``-prefixed lines are skipped."""
    path = Path(path)
    data = np.loadtxt(path, dtype=np.int64, comments=comments, usecols=(0, 1), ndmin=2)
    if data.size == 0:
        u = v = np.empty(0, dtype=np.int64)
    else:
        u, v = data[:, 0], data[:, 1]
    return from_edges(u, v, num_vertices=num_vertices, name=name or path.stem)


def write_edgelist(graph: CSRGraph, path: str | Path) -> None:
    """Write each undirected edge once as ``u v`` with ``u < v``."""
    u, v = graph.edge_endpoints()
    keep = u < v
    with open(Path(path), "w", encoding="ascii") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices\n")
        np.savetxt(fh, np.stack([u[keep], v[keep]], axis=1), fmt="%d")
