"""Fast binary graph caching via NumPy ``.npz`` archives.

Benchmarks regenerate the suite frequently; caching the CSR arrays makes
repeat runs start in milliseconds instead of re-running generators.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..csr import CSRGraph

__all__ = ["save_npz", "load_npz", "cached"]

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Serialize CSR arrays plus name/version metadata."""
    np.savez_compressed(
        Path(path),
        row_offsets=graph.row_offsets,
        col_indices=graph.col_indices,
        name=np.array(graph.name),
        version=np.array(_FORMAT_VERSION),
    )


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        return CSRGraph(
            data["row_offsets"], data["col_indices"], name=str(data["name"])
        )


def cached(path: str | Path, build, *args, **kwargs) -> CSRGraph:
    """Load ``path`` if it exists, else ``build(*args, **kwargs)`` and save."""
    path = Path(path)
    if path.exists():
        return load_npz(path)
    graph = build(*args, **kwargs)
    path.parent.mkdir(parents=True, exist_ok=True)
    save_npz(graph, path)
    return graph
