"""Graph partitioning for the 3-step GM baseline (Grosset et al. 2011).

Grosset's framework partitions the vertex set into contiguous blocks, colors
partitions on the GPU, and distinguishes *boundary* vertices (those with a
neighbor in another partition) whose conflicts are resolved sequentially on
the CPU.  A simple contiguous block partition matches the description — the
original work maps thread blocks to vertex ranges the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["Partition", "block_partition", "boundary_vertices"]


@dataclass(frozen=True)
class Partition:
    """Assignment of each vertex to a partition id ``0..k-1``."""

    assignment: np.ndarray  # (n,) int32 partition ids
    num_parts: int

    def __post_init__(self) -> None:
        if self.assignment.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if self.num_parts < 1:
            raise ValueError("need at least one partition")
        if self.assignment.size and int(self.assignment.max()) >= self.num_parts:
            raise ValueError("assignment references a partition >= num_parts")

    def members(self, part: int) -> np.ndarray:
        """Vertex ids belonging to ``part``."""
        return np.nonzero(self.assignment == part)[0]

    def sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)


def block_partition(graph: CSRGraph, num_parts: int) -> Partition:
    """Split vertices into ``num_parts`` contiguous, near-equal ranges."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    num_parts = min(num_parts, max(n, 1))
    bounds = np.linspace(0, n, num_parts + 1).astype(np.int64)
    assignment = np.zeros(n, dtype=np.int32)
    for p in range(num_parts):
        assignment[bounds[p] : bounds[p + 1]] = p
    return Partition(assignment, num_parts)


def boundary_vertices(graph: CSRGraph, partition: Partition) -> np.ndarray:
    """Boolean mask of vertices adjacent to a different partition.

    Vectorized: compare each adjacency entry's partition against its
    source's and reduce per-vertex with ``np.logical_or.reduceat``.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=bool)
    src = graph.edge_sources()
    cross = partition.assignment[src] != partition.assignment[graph.col_indices]
    boundary = np.zeros(n, dtype=bool)
    # reduceat needs non-empty segments; scatter with maximum handles empties.
    np.maximum.at(boundary.view(np.uint8), src, cross.view(np.uint8))
    return boundary
