"""Degree statistics and Table I reporting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "degree_histogram", "table1_row"]


@dataclass(frozen=True)
class GraphStats:
    """The statistics the paper reports per graph in Table I."""

    name: str
    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float
    variance: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.min_degree,
            self.max_degree,
            round(self.avg_degree, 2),
            round(self.variance, 2),
        )


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute the Table I statistics row for ``graph``.

    ``num_edges`` counts directed adjacency entries (matrix nonzeros), which
    is how Table I counts them; ``variance`` is the population variance of
    the degree distribution.
    """
    degs = graph.degrees.astype(np.float64)
    if degs.size == 0:
        return GraphStats(graph.name, 0, 0, 0, 0, 0.0, 0.0)
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
        avg_degree=float(degs.mean()),
        variance=float(degs.var()),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    return np.bincount(graph.degrees, minlength=graph.max_degree + 1)


def table1_row(graph: CSRGraph, *, spd: bool | None = None, application: str = "") -> str:
    """Format one graph as a row of the paper's Table I."""
    s = compute_stats(graph)
    spd_str = "-" if spd is None else ("yes" if spd else "no")
    return (
        f"{s.name:<12} {s.num_vertices:>10} {s.num_edges:>10} "
        f"{s.min_degree:>5} {s.max_degree:>6} {s.avg_degree:>8.2f} "
        f"{s.variance:>9.2f} {spd_str:>5}  {application}"
    )
