"""Configuration-model generation from a prescribed degree distribution.

Used by the benchmark suite to synthesize stand-ins whose degree statistics
(min/max/mean/variance) match a published SuiteSparse matrix when no
structured-mesh family fits (e.g. Hamrle3's circuit netlist).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph

__all__ = ["DegreeSpec", "sample_degrees", "configuration_model", "graph_from_degree_spec"]


@dataclass(frozen=True)
class DegreeSpec:
    """Target degree statistics for a synthesized graph."""

    min_degree: int
    max_degree: int
    mean_degree: float
    variance: float

    def __post_init__(self) -> None:
        if self.min_degree < 0 or self.max_degree < self.min_degree:
            raise ValueError("need 0 <= min_degree <= max_degree")
        if not (self.min_degree <= self.mean_degree <= self.max_degree):
            raise ValueError("mean_degree must lie within [min, max]")
        if self.variance < 0:
            raise ValueError("variance must be non-negative")


def sample_degrees(spec: DegreeSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``n`` degrees matching ``spec`` approximately.

    Strategy: a gamma distribution has free mean/variance; shift it to the
    min degree, clip to [min, max], and round.  Clipping shrinks the
    variance slightly, which is acceptable — suite tests only assert
    order-of-magnitude agreement (the paper's experiments depend on the
    *regime* of the degree distribution, not its third decimal).
    """
    lo, hi = spec.min_degree, spec.max_degree
    mean = spec.mean_degree - lo
    var = max(spec.variance, 1e-9)
    if mean <= 0:  # everything sits at the min degree
        degs = np.full(n, lo, dtype=np.int64)
    else:
        shape = mean * mean / var
        scale = var / mean
        raw = rng.gamma(shape, scale, size=n) + lo
        degs = np.clip(np.rint(raw), lo, hi).astype(np.int64)
    # Nudge the sum even so the stub pairing below is well defined.
    if degs.sum() % 2:
        idx = int(rng.integers(0, n))
        degs[idx] += 1 if degs[idx] < hi else -1
    return degs


def configuration_model(
    degrees: np.ndarray, *, seed: int = 0, name: str = "config-model"
) -> CSRGraph:
    """Pair half-edge stubs uniformly at random (self-loops/dupes dropped).

    The realized degrees are therefore a lower bound on the requested ones;
    for sparse graphs the deficit is O(d^2/n) per vertex and negligible at
    the scales the suite uses.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.sum() % 2:
        raise ValueError("degree sum must be even")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    u, v = stubs[0::2], stubs[1::2]
    return from_edges(u, v, num_vertices=degrees.size, name=name)


def graph_from_degree_spec(
    spec: DegreeSpec, n: int, *, seed: int = 0, name: str = "spec-graph"
) -> CSRGraph:
    """Sample a degree sequence from ``spec`` and realize it."""
    rng = np.random.default_rng(seed)
    degs = sample_degrees(spec, n, rng)
    return configuration_model(degs, seed=seed + 1, name=name)
