"""Structured-mesh graph generators.

These supply the *structural families* behind the paper's SuiteSparse
inputs: finite-difference/finite-element discretizations (thermal2,
atmosmodd) and grid-like circuit netlists (G3_circuit).  See
``generators/suite.py`` for the calibrated stand-ins.
"""

from __future__ import annotations

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph

__all__ = ["grid2d", "grid3d", "triangular_mesh", "grid2d_with_diagonals"]


def _grid_ids(shape: tuple[int, ...]) -> np.ndarray:
    return np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)


def grid2d(nx: int, ny: int, *, periodic: bool = False, name: str | None = None) -> CSRGraph:
    """5-point-stencil 2D grid (degree 4 interior; 2–3 on the boundary).

    ``periodic=True`` wraps both dimensions into a torus (4-regular).
    """
    ids = _grid_ids((nx, ny))
    us, vs = [], []
    # Horizontal edges.
    if periodic and nx > 2:
        us.append(ids.ravel())
        vs.append(np.roll(ids, -1, axis=0).ravel())
    else:
        us.append(ids[:-1, :].ravel())
        vs.append(ids[1:, :].ravel())
    # Vertical edges.
    if periodic and ny > 2:
        us.append(ids.ravel())
        vs.append(np.roll(ids, -1, axis=1).ravel())
    else:
        us.append(ids[:, :-1].ravel())
        vs.append(ids[:, 1:].ravel())
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny,
        name=name or f"grid2d-{nx}x{ny}",
    )


def grid3d(
    nx: int, ny: int, nz: int, *, periodic: bool = False, name: str | None = None
) -> CSRGraph:
    """7-point-stencil 3D grid (degree 6 interior), the atmosmodd family."""
    ids = _grid_ids((nx, ny, nz))
    us, vs = [], []
    for axis, extent in enumerate((nx, ny, nz)):
        if periodic and extent > 2:
            us.append(ids.ravel())
            vs.append(np.roll(ids, -1, axis=axis).ravel())
        else:
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            sl_lo[axis] = slice(None, -1)
            sl_hi[axis] = slice(1, None)
            us.append(ids[tuple(sl_lo)].ravel())
            vs.append(ids[tuple(sl_hi)].ravel())
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny * nz,
        name=name or f"grid3d-{nx}x{ny}x{nz}",
    )


def triangular_mesh(nx: int, ny: int, *, name: str | None = None) -> CSRGraph:
    """2D triangulated grid: 5-point stencil plus one diagonal per cell.

    Interior degree 6, like a structured FEM triangulation — the thermal2
    family (unstructured thermal FEM, average degree ≈ 7).
    """
    ids = _grid_ids((nx, ny))
    us = [ids[:-1, :].ravel(), ids[:, :-1].ravel(), ids[:-1, :-1].ravel()]
    vs = [ids[1:, :].ravel(), ids[:, 1:].ravel(), ids[1:, 1:].ravel()]
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny,
        name=name or f"trimesh-{nx}x{ny}",
    )


def grid2d_with_diagonals(
    nx: int,
    ny: int,
    diag_fraction: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """2D grid where a random fraction of cells gains one diagonal edge.

    Produces the narrow degree band (2..6, mean between 4 and 5) of
    grid-like circuit netlists such as G3_circuit.
    """
    if not 0.0 <= diag_fraction <= 1.0:
        raise ValueError("diag_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    ids = _grid_ids((nx, ny))
    us = [ids[:-1, :].ravel(), ids[:, :-1].ravel()]
    vs = [ids[1:, :].ravel(), ids[:, 1:].ravel()]
    cell_u = ids[:-1, :-1].ravel()
    cell_v = ids[1:, 1:].ravel()
    pick = rng.random(cell_u.size) < diag_fraction
    us.append(cell_u[pick])
    vs.append(cell_v[pick])
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny,
        name=name or f"grid2d-diag-{nx}x{ny}",
    )
