"""Classic random-graph families used by tests and ablation benchmarks."""

from __future__ import annotations

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "random_regular",
    "barabasi_albert",
    "random_bipartite",
    "watts_strogatz",
    "planted_partition",
]


def erdos_renyi(n: int, avg_degree: float, *, seed: int = 0, name: str | None = None) -> CSRGraph:
    """G(n, m)-style Erdős–Rényi graph with expected average degree.

    Samples ``n * avg_degree / 2`` endpoint pairs uniformly; duplicates and
    self-loops are dropped so the realized degree is marginally lower.
    """
    if n < 1:
        raise ValueError("n must be positive")
    m = int(round(n * avg_degree / 2))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)
    return from_edges(u, v, num_vertices=n, name=name or f"er-n{n}")


def random_regular(n: int, d: int, *, seed: int = 0, name: str | None = None) -> CSRGraph:
    """Approximately d-regular graph via the configuration model.

    Pairs up ``n*d`` half-edge stubs after a random shuffle; self-loops and
    multi-edges from the pairing are removed, so vertices end up with degree
    ``d`` minus a small deficit.  Exactness is not needed by any experiment —
    low degree *variance* is what matters (it mimics mesh-like inputs).
    """
    if (n * d) % 2:
        raise ValueError("n * d must be even")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    u, v = stubs[0::2], stubs[1::2]
    return from_edges(u, v, num_vertices=n, name=name or f"reg-n{n}-d{d}")


def barabasi_albert(n: int, m_attach: int, *, seed: int = 0, name: str | None = None) -> CSRGraph:
    """Preferential-attachment (scale-free) graph.

    Vectorized repeated-nodes trick: each new vertex attaches to ``m_attach``
    endpoints sampled from the running endpoint list (which is
    degree-proportional by construction).  A Python loop over vertices
    remains, but each step is O(m_attach); used only at test scales.
    """
    if m_attach < 1 or n <= m_attach:
        raise ValueError("need n > m_attach >= 1")
    rng = np.random.default_rng(seed)
    # Seed clique among the first m_attach + 1 vertices.
    seed_n = m_attach + 1
    su, sv = np.triu_indices(seed_n, k=1)
    endpoints = list(np.concatenate([su, sv]))
    us: list[np.ndarray] = [su.astype(np.int64)]
    vs: list[np.ndarray] = [sv.astype(np.int64)]
    pool = np.array(endpoints, dtype=np.int64)
    for w in range(seed_n, n):
        targets = np.unique(pool[rng.integers(0, pool.size, size=m_attach * 3)])[:m_attach]
        if targets.size < m_attach:  # pad with uniform picks if unlucky
            extra = rng.integers(0, w, size=m_attach - targets.size)
            targets = np.unique(np.concatenate([targets, extra]))
        src = np.full(targets.size, w, dtype=np.int64)
        us.append(src)
        vs.append(targets.astype(np.int64))
        pool = np.concatenate([pool, src, targets])
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=n,
        name=name or f"ba-n{n}-m{m_attach}",
    )


def random_bipartite(
    n_left: int, n_right: int, avg_degree: float, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Random bipartite graph — 2-colorable, so a sharp quality oracle."""
    rng = np.random.default_rng(seed)
    m = int(round((n_left + n_right) * avg_degree / 2))
    u = rng.integers(0, n_left, size=m, dtype=np.int64)
    v = rng.integers(n_left, n_left + n_right, size=m, dtype=np.int64)
    return from_edges(u, v, num_vertices=n_left + n_right, name=name or "bipartite")


def watts_strogatz(
    n: int, k: int, p_rewire: float, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Small-world ring lattice with random rewiring."""
    if k % 2 or k < 2:
        raise ValueError("k must be even and >= 2")
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(n, dtype=np.int64), k // 2)
    shifts = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    v = (u + shifts) % n
    rewire = rng.random(u.size) < p_rewire
    v = np.where(rewire, rng.integers(0, n, size=u.size, dtype=np.int64), v)
    return from_edges(u, v, num_vertices=n, name=name or f"ws-n{n}-k{k}")


def planted_partition(
    n: int, blocks: int, p_in: float, p_out: float, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Stochastic block model with equal-size blocks (community structure).

    Expected-edge-count sampling: draws Binomial(n_pairs, p) edge counts per
    block pair and samples endpoints uniformly inside the pair, which is
    O(edges) rather than O(n^2).
    """
    rng = np.random.default_rng(seed)
    size = n // blocks
    if size < 1:
        raise ValueError("more blocks than vertices")
    us, vs = [], []
    for bi in range(blocks):
        lo_i = bi * size
        hi_i = n if bi == blocks - 1 else lo_i + size
        ni = hi_i - lo_i
        for bj in range(bi, blocks):
            lo_j = bj * size
            hi_j = n if bj == blocks - 1 else lo_j + size
            nj = hi_j - lo_j
            pairs = ni * (ni - 1) // 2 if bi == bj else ni * nj
            p = p_in if bi == bj else p_out
            cnt = rng.binomial(pairs, min(p, 1.0))
            if cnt == 0:
                continue
            us.append(rng.integers(lo_i, hi_i, size=cnt, dtype=np.int64))
            vs.append(rng.integers(lo_j, hi_j, size=cnt, dtype=np.int64))
    if not us:
        us, vs = [np.empty(0, dtype=np.int64)], [np.empty(0, dtype=np.int64)]
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=n,
        name=name or f"sbm-n{n}-b{blocks}",
    )
