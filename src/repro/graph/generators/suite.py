"""The paper's six-graph benchmark suite (Table I), synthesized locally.

The paper evaluates on two R-MAT graphs plus four SuiteSparse matrices
(thermal2, atmosmodd, Hamrle3, G3_circuit).  The SuiteSparse collection is
not available offline, so each matrix is replaced by a deterministic
synthetic stand-in drawn from the same structural family and calibrated to
the degree statistics the paper reports (see DESIGN.md, substitution table).

Scaling: the paper uses 1.0–1.6 M vertices per graph.  By default every
graph is generated at ``1/16`` of paper scale so the trace-driven simulator
stays interactive; set ``REPRO_FULL_SCALE=1`` (or pass ``scale_div=1``) for
paper scale.  All *relative* results (who wins, color counts vs sequential)
are scale-stable — EXPERIMENTS.md records both.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph
from .degree_sequence import DegreeSpec, graph_from_degree_spec
from .mesh import grid2d_with_diagonals, grid3d, triangular_mesh
from .rmat import rmat_er, rmat_g

__all__ = [
    "PaperGraphStats",
    "SuiteEntry",
    "SUITE",
    "SUITE_ORDER",
    "default_scale_div",
    "load_graph",
    "load_suite",
]

#: Default downscale divisor applied to the paper's graph sizes.
DEFAULT_SCALE_DIV = 16


@dataclass(frozen=True)
class PaperGraphStats:
    """Row of the paper's Table I."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float
    variance: float
    spd: bool
    application: str


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark graph: its paper stats plus a calibrated generator."""

    name: str
    paper: PaperGraphStats
    build: Callable[[int, int], CSRGraph]  # (scale_div, seed) -> graph


def _scaled(n_paper: int, scale_div: int) -> int:
    return max(64, n_paper // scale_div)


def _build_rmat_er(scale_div: int, seed: int) -> CSRGraph:
    scale = 20 - int(round(math.log2(scale_div)))
    return rmat_er(scale=scale, edge_factor=10.0, seed=seed)


def _build_rmat_g(scale_div: int, seed: int) -> CSRGraph:
    scale = 20 - int(round(math.log2(scale_div)))
    return rmat_g(scale=scale, edge_factor=10.0, seed=seed)


def _build_thermal2(scale_div: int, seed: int) -> CSRGraph:
    """Thermal FEM stand-in: triangulated mesh + second diagonals + rare hubs.

    Targets avg degree ≈ 7 with small variance and a short tail up to ~11
    (unstructured FEM meshes have a few high-valence nodes).
    """
    n = _scaled(1_228_045, scale_div)
    side = int(round(math.sqrt(n)))
    g = triangular_mesh(side, side)
    rng = np.random.default_rng(seed)
    ids = np.arange(side * side, dtype=np.int64).reshape(side, side)
    # Second (anti-)diagonal on about half the cells lifts mean 6 -> ~7.
    cu, cv = ids[1:, :-1].ravel(), ids[:-1, 1:].ravel()
    pick = rng.random(cu.size) < 0.5
    # A sparse sprinkle of short-range extra edges creates the degree tail.
    hub = rng.integers(0, side * side - side - 2, size=side // 4)
    hu = np.concatenate([cu[pick], hub, hub])
    hv = np.concatenate([cv[pick], hub + side + 1, hub + 2])
    eu, ev = g.edge_endpoints()
    keep = eu < ev
    return from_edges(
        np.concatenate([eu[keep], hu]),
        np.concatenate([ev[keep], hv]),
        num_vertices=side * side,
        name="thermal2",
    )


def _build_atmosmodd(scale_div: int, seed: int) -> CSRGraph:
    """Atmospheric-model stand-in: 7-point 3D stencil plus sparse upwind
    diagonals.

    The pure 7-point grid is bipartite (greedy would 2-color it); the real
    atmosmodd pattern has convection terms that break bipartiteness, so a
    few percent of cells gain an x+1/y+1 diagonal coupling.
    """
    n = _scaled(1_270_432, scale_div)
    side = max(4, int(round(n ** (1.0 / 3.0))))
    g = grid3d(side, side, side)
    rng = np.random.default_rng(seed)
    nv = side ** 3
    cells = rng.choice(nv - side - 1, size=max(1, nv // 20), replace=False)
    eu, ev = g.edge_endpoints()
    keep = eu < ev
    return from_edges(
        np.concatenate([eu[keep], cells]),
        np.concatenate([ev[keep], cells + side + 1]),
        num_vertices=nv,
        name="atmosmodd",
    )


def _build_hamrle3(scale_div: int, seed: int) -> CSRGraph:
    """Circuit-simulation stand-in with Hamrle3's degree spec."""
    n = _scaled(1_447_360, scale_div)
    spec = DegreeSpec(min_degree=4, max_degree=15, mean_degree=7.62, variance=7.21)
    return graph_from_degree_spec(spec, n, seed=seed, name="Hamrle3")


def _build_g3_circuit(scale_div: int, seed: int) -> CSRGraph:
    """Grid-like circuit netlist stand-in: 2D grid + 42% cell diagonals."""
    n = _scaled(1_585_478, scale_div)
    side = int(round(math.sqrt(n)))
    g = grid2d_with_diagonals(side, side, diag_fraction=0.42, seed=seed)
    return CSRGraph(g.row_offsets, g.col_indices, name="G3_circuit")


#: Suite registry in the paper's Table I order.
SUITE: Mapping[str, SuiteEntry] = {
    "rmat-er": SuiteEntry(
        "rmat-er",
        PaperGraphStats(1_048_576, 20_971_268, 2, 59, 20.00, 23.37, False, "Synthetic"),
        _build_rmat_er,
    ),
    "rmat-g": SuiteEntry(
        "rmat-g",
        PaperGraphStats(1_048_576, 20_964_268, 0, 899, 20.00, 472.81, False, "Synthetic"),
        _build_rmat_g,
    ),
    "thermal2": SuiteEntry(
        "thermal2",
        PaperGraphStats(1_228_045, 8_580_313, 1, 11, 6.99, 0.66, True, "Thermal Simulation"),
        _build_thermal2,
    ),
    "atmosmodd": SuiteEntry(
        "atmosmodd",
        PaperGraphStats(1_270_432, 8_814_880, 4, 7, 6.94, 0.06, False, "Atmospheric Model"),
        _build_atmosmodd,
    ),
    "Hamrle3": SuiteEntry(
        "Hamrle3",
        PaperGraphStats(1_447_360, 11_028_464, 4, 15, 7.62, 7.21, False, "Circuit Simulation"),
        _build_hamrle3,
    ),
    "G3_circuit": SuiteEntry(
        "G3_circuit",
        PaperGraphStats(1_585_478, 7_660_826, 2, 6, 4.83, 0.41, True, "Circuit Simulation"),
        _build_g3_circuit,
    ),
}

SUITE_ORDER: tuple[str, ...] = tuple(SUITE)


def default_scale_div() -> int:
    """Scale divisor honoring the ``REPRO_FULL_SCALE`` environment switch."""
    if os.environ.get("REPRO_FULL_SCALE", "").strip() in {"1", "true", "yes"}:
        return 1
    raw = os.environ.get("REPRO_SCALE_DIV", "").strip()
    if raw:
        val = int(raw)
        if val < 1:
            raise ValueError("REPRO_SCALE_DIV must be >= 1")
        return val
    return DEFAULT_SCALE_DIV


def load_graph(name: str, *, scale_div: int | None = None, seed: int = 7) -> CSRGraph:
    """Generate one suite graph by its Table I name.

    If ``REPRO_CACHE_DIR`` is set, generated graphs are cached there as
    ``.npz`` keyed by (name, scale, seed) — repeat benchmark runs then
    start in milliseconds instead of re-running the generators.
    """
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}; choose from {list(SUITE)}")
    div = default_scale_div() if scale_div is None else scale_div
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if cache_dir:
        from pathlib import Path

        from ..io.binary import cached

        path = Path(cache_dir) / f"{name}-div{div}-seed{seed}.npz"
        return cached(path, SUITE[name].build, div, seed)
    return SUITE[name].build(div, seed)


def load_suite(
    names: tuple[str, ...] | None = None, *, scale_div: int | None = None, seed: int = 7
) -> list[CSRGraph]:
    """Generate the whole suite (or a named subset) in Table I order."""
    names = SUITE_ORDER if names is None else names
    return [load_graph(n, scale_div=scale_div, seed=seed) for n in names]
