"""Graph generators: R-MAT, random families, meshes, and the paper suite."""

from .degree_sequence import DegreeSpec, configuration_model, graph_from_degree_spec
from .mesh import grid2d, grid2d_with_diagonals, grid3d, triangular_mesh
from .random_graphs import (
    barabasi_albert,
    erdos_renyi,
    planted_partition,
    random_bipartite,
    random_regular,
    watts_strogatz,
)
from .rmat import RMATParams, rmat_er, rmat_g, rmat_graph
from .suite import SUITE, SUITE_ORDER, default_scale_div, load_graph, load_suite

__all__ = [
    "SUITE",
    "SUITE_ORDER",
    "DegreeSpec",
    "RMATParams",
    "barabasi_albert",
    "configuration_model",
    "default_scale_div",
    "erdos_renyi",
    "graph_from_degree_spec",
    "grid2d",
    "grid2d_with_diagonals",
    "grid3d",
    "load_graph",
    "load_suite",
    "planted_partition",
    "random_bipartite",
    "random_regular",
    "rmat_er",
    "rmat_g",
    "rmat_graph",
    "triangular_mesh",
    "watts_strogatz",
]
