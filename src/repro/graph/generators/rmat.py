"""R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos 2004).

The paper's two synthetic inputs come from this generator:

* ``rmat-er``  — parameters (0.25, 0.25, 0.25, 0.25): uniform quadrant
  probabilities give an Erdős–Rényi-like graph with low degree variance.
* ``rmat-g``   — parameters (0.45, 0.15, 0.15, 0.25): skewed probabilities
  give a graph with a heavy-tailed (power-law-ish) degree distribution.

Both use 2^20 vertices and ~21M adjacency entries in the paper (Table I).

Implementation: each of the ``scale`` bit levels of both endpoints is drawn
for *all* edges at once (vectorized), choosing the quadrant per level from
the (a, b, c, d) distribution.  Optional per-level parameter noise avoids
the characteristic "staircase" degree artifacts of pure R-MAT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..builder import from_edges
from ..csr import CSRGraph

__all__ = ["RMATParams", "rmat_graph", "rmat_er", "rmat_g"]


@dataclass(frozen=True)
class RMATParams:
    """Quadrant probabilities (a, b, c, d); must be non-negative, sum to 1."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        probs = (self.a, self.b, self.c, self.d)
        if any(p < 0 for p in probs):
            raise ValueError("R-MAT parameters must be non-negative")
        if abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(f"R-MAT parameters must sum to 1, got {sum(probs)}")

    def as_array(self) -> np.ndarray:
        return np.array([self.a, self.b, self.c, self.d], dtype=np.float64)


#: Parameter sets used by the paper's evaluation (Section IV).
ER_PARAMS = RMATParams(0.25, 0.25, 0.25, 0.25)
G_PARAMS = RMATParams(0.45, 0.15, 0.15, 0.25)


def rmat_graph(
    scale: int,
    edge_factor: float,
    params: RMATParams = ER_PARAMS,
    *,
    seed: int = 0,
    noise: float = 0.0,
    name: str = "rmat",
) -> CSRGraph:
    """Generate an undirected R-MAT graph.

    Parameters
    ----------
    scale:
        ``log2`` of the number of vertices (the paper uses scale 20).
    edge_factor:
        Directed adjacency entries per vertex to *sample* before
        symmetrization/dedup.  The paper's suite averages degree 20, i.e.
        edge_factor 10 undirected samples per vertex.
    params:
        Quadrant probabilities.
    noise:
        If nonzero, each recursion level perturbs (a, b, c, d)
        multiplicatively by up to ``±noise`` (then renormalizes), the
        standard smoothing for R-MAT degree staircases.
    seed:
        Deterministic generation seed.
    """
    if scale < 1 or scale > 30:
        raise ValueError("scale must be in [1, 30]")
    n = 1 << scale
    m = int(round(n * edge_factor))
    rng = np.random.default_rng(seed)

    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    base = params.as_array()
    for level in range(scale):
        p = base
        if noise:
            jitter = 1.0 + rng.uniform(-noise, noise, size=4)
            p = base * jitter
            p = p / p.sum()
        # Draw the quadrant for every edge at this bit level at once.
        q = rng.choice(4, size=m, p=p)
        u = (u << 1) | (q >> 1)  # quadrants 2,3 set the row bit
        v = (v << 1) | (q & 1)  # quadrants 1,3 set the column bit
    return from_edges(u, v, num_vertices=n, symmetrize=True, name=name)


def rmat_er(scale: int = 20, edge_factor: float = 10.0, *, seed: int = 1) -> CSRGraph:
    """The paper's ``rmat-er`` graph (uniform quadrants, ER-like)."""
    return rmat_graph(scale, edge_factor, ER_PARAMS, seed=seed, name="rmat-er")


def rmat_g(scale: int = 20, edge_factor: float = 10.0, *, seed: int = 2) -> CSRGraph:
    """The paper's ``rmat-g`` graph (skewed quadrants, heavy-tailed)."""
    return rmat_graph(scale, edge_factor, G_PARAMS, seed=seed, noise=0.05, name="rmat-g")
