"""Constructing :class:`~repro.graph.csr.CSRGraph` instances.

All construction funnels through :func:`from_edges`, which performs the
normalization the coloring kernels rely on: optional symmetrization,
self-loop removal, duplicate-edge removal, and CSR assembly — all with
vectorized NumPy (sort + bincount), never per-edge Python loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = [
    "from_edges",
    "from_adjacency",
    "from_scipy",
    "from_networkx",
    "empty_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "mycielski_graph",
]


def from_edges(
    u: np.ndarray | Sequence[int],
    v: np.ndarray | Sequence[int],
    num_vertices: int | None = None,
    *,
    symmetrize: bool = True,
    remove_self_loops: bool = True,
    dedup: bool = True,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from parallel endpoint arrays.

    Parameters
    ----------
    u, v:
        Endpoint arrays of equal length; each pair is one edge.
    num_vertices:
        Explicit vertex count (isolated trailing vertices are otherwise
        impossible to represent).  Defaults to ``max(endpoint) + 1``.
    symmetrize:
        Add the reverse of every edge so the result is undirected.
    remove_self_loops:
        Drop ``(x, x)`` edges — a self-loop makes proper coloring impossible.
    dedup:
        Collapse repeated edges (multi-edges carry no information for
        coloring but inflate simulated memory traffic).
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.shape != v.shape:
        raise ValueError("endpoint arrays must have equal length")
    if num_vertices is None:
        num_vertices = int(max(u.max(initial=-1), v.max(initial=-1)) + 1)
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= num_vertices):
        raise ValueError("edge endpoint out of range")

    if remove_self_loops:
        keep = u != v
        u, v = u[keep], v[keep]
    if symmetrize:
        u, v = np.concatenate([u, v]), np.concatenate([v, u])

    # Sort by (source, target); this both groups adjacency lists and makes
    # duplicates adjacent for O(m) dedup.
    keys = u * num_vertices + v
    order = np.argsort(keys, kind="stable")
    u, v, keys = u[order], v[order], keys[order]
    if dedup and keys.size:
        uniq = np.empty(keys.size, dtype=bool)
        uniq[0] = True
        np.not_equal(keys[1:], keys[:-1], out=uniq[1:])
        u, v = u[uniq], v[uniq]

    counts = np.bincount(u, minlength=num_vertices)
    R = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=R[1:])
    return CSRGraph(R, v.astype(VERTEX_DTYPE), name=name)


def from_adjacency(adj: Sequence[Iterable[int]], *, name: str = "graph") -> CSRGraph:
    """Build from a list-of-neighbor-lists (small graphs / tests)."""
    u: list[int] = []
    v: list[int] = []
    for i, nbrs in enumerate(adj):
        for j in nbrs:
            u.append(i)
            v.append(int(j))
    return from_edges(
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        num_vertices=len(adj),
        symmetrize=True,
        name=name,
    )


def from_scipy(mat, *, name: str = "graph", symmetrize: bool = True) -> CSRGraph:
    """Build from any SciPy sparse matrix (pattern only; values ignored).

    This mirrors how the paper treats SuiteSparse matrices: a nonzero at
    (i, j) is the edge (i, j); nonsymmetric matrices are symmetrized, which
    is the standard structural interpretation for coloring.
    """
    import scipy.sparse as sp

    coo = sp.coo_array(mat)
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("adjacency matrix must be square")
    return from_edges(
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        num_vertices=coo.shape[0],
        symmetrize=symmetrize,
        name=name,
    )


def from_networkx(g, *, name: str | None = None) -> CSRGraph:
    """Build from a ``networkx.Graph``; nodes must be ``0..n-1`` integers."""
    n = g.number_of_nodes()
    if set(g.nodes) != set(range(n)):
        mapping = {node: i for i, node in enumerate(g.nodes)}
        edges = [(mapping[a], mapping[b]) for a, b in g.edges]
    else:
        edges = list(g.edges)
    if edges:
        arr = np.asarray(edges, dtype=np.int64)
        u, v = arr[:, 0], arr[:, 1]
    else:
        u = v = np.empty(0, dtype=np.int64)
    return from_edges(u, v, num_vertices=n, symmetrize=True, name=name or "nx-graph")


# ----------------------------------------------------------------------
# Tiny canonical graphs used pervasively by tests and examples
# ----------------------------------------------------------------------
def empty_graph(n: int, *, name: str = "empty") -> CSRGraph:
    """``n`` isolated vertices."""
    return CSRGraph(np.zeros(n + 1, dtype=OFFSET_DTYPE), np.empty(0, dtype=VERTEX_DTYPE), name=name)


def complete_graph(n: int, *, name: str | None = None) -> CSRGraph:
    """K_n; chromatic number exactly ``n``."""
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    keep = i != j
    return from_edges(
        i[keep].ravel(), j[keep].ravel(), num_vertices=n,
        symmetrize=False, name=name or f"K{n}",
    )


def cycle_graph(n: int, *, name: str | None = None) -> CSRGraph:
    """C_n; chromatic number 2 (even n) or 3 (odd n)."""
    if n < 3:
        raise ValueError("cycle graph needs at least 3 vertices")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return from_edges(u, v, num_vertices=n, name=name or f"C{n}")


def path_graph(n: int, *, name: str | None = None) -> CSRGraph:
    """P_n; chromatic number 2 for n >= 2."""
    u = np.arange(n - 1, dtype=np.int64)
    return from_edges(u, u + 1, num_vertices=n, name=name or f"P{n}")


def star_graph(n_leaves: int, *, name: str | None = None) -> CSRGraph:
    """Hub vertex 0 connected to ``n_leaves`` leaves; chromatic number 2."""
    v = np.arange(1, n_leaves + 1, dtype=np.int64)
    u = np.zeros_like(v)
    return from_edges(u, v, num_vertices=n_leaves + 1, name=name or f"S{n_leaves}")


def mycielski_graph(k: int, *, name: str | None = None) -> CSRGraph:
    """The Mycielskian hierarchy: triangle-free graphs with chromatic
    number exactly ``k``.

    ``M_2`` is an edge, ``M_3`` is C5, ``M_4`` is the Grötzsch graph...
    Each step doubles-plus-one the vertex count while keeping the graph
    triangle-free — the classical witness that chromatic number is not
    bounded by clique number, and a sharp stress test for heuristics
    (greedy orderings can do arbitrarily badly on these).
    """
    if k < 2:
        raise ValueError("Mycielski hierarchy starts at k=2 (a single edge)")
    # M_2: one edge.
    edges = [(0, 1)]
    n = 2
    for _ in range(k - 2):
        # vertices 0..n-1 (originals), n..2n-1 (shadows), 2n (apex)
        new_edges = list(edges)
        for u, v in edges:
            new_edges.append((u + n, v))  # shadow(u) - v
            new_edges.append((u, v + n))  # u - shadow(v)
        apex = 2 * n
        for i in range(n):
            new_edges.append((i + n, apex))
        edges = new_edges
        n = 2 * n + 1
    arr = np.asarray(edges, dtype=np.int64)
    return from_edges(arr[:, 0], arr[:, 1], num_vertices=n, name=name or f"M{k}")
