"""Vertex relabeling for memory locality (extension).

The paper attributes its weakest results (G3_circuit) to poor temporal
locality on large sparse graphs and leaves the fix to future work.  The
classical remedy is bandwidth-reducing relabeling: renumber vertices so
neighbors get nearby ids, turning the color-array gather into a
cache-friendly stream.  This module provides BFS and reverse-Cuthill-McKee
orders plus the relabeling transform; the ablation benchmark measures the
effect through the simulated cache hierarchy.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .builder import from_edges
from .csr import CSRGraph

__all__ = ["bfs_order", "rcm_order", "relabel", "bandwidth"]


def bfs_order(graph: CSRGraph, *, start: int | None = None) -> np.ndarray:
    """Breadth-first visit order, restarting per component (min-degree seeds)."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    R, C = graph.row_offsets, graph.col_indices
    degs = graph.degrees
    seeds = np.argsort(degs, kind="stable") if start is None else np.array([start])
    seed_iter = iter(seeds.tolist())
    queue: deque[int] = deque()
    while pos < n:
        if not queue:
            s = next(seed_iter)
            while visited[s]:
                s = next(seed_iter)
            queue.append(s)
            visited[s] = True
        v = queue.popleft()
        order[pos] = v
        pos += 1
        for w in C[R[v] : R[v + 1]]:
            if not visited[w]:
                visited[w] = True
                queue.append(int(w))
    return order


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill–McKee: BFS with degree-sorted frontiers, reversed.

    The standard bandwidth-reducing order for sparse matrices; SciPy's
    implementation is used on the pattern for robustness and speed.
    """
    import scipy.sparse.csgraph as csgraph

    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    perm = csgraph.reverse_cuthill_mckee(graph.to_scipy(), symmetric_mode=True)
    return perm.astype(np.int64)


def relabel(graph: CSRGraph, order: np.ndarray, *, name: str | None = None) -> CSRGraph:
    """Renumber so that ``order[i]`` becomes vertex ``i``.

    Returns a new graph with identical structure; colorings of the
    relabeled graph map back via ``colors_old[order] = colors_new``.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of all vertices")
    new_id = np.empty(n, dtype=np.int64)
    new_id[order] = np.arange(n, dtype=np.int64)
    u, v = graph.edge_endpoints()
    return from_edges(
        new_id[u], new_id[v], num_vertices=n,
        symmetrize=False, dedup=False, remove_self_loops=False,
        name=name or f"{graph.name}[relabel]",
    )


def bandwidth(graph: CSRGraph) -> int:
    """Matrix bandwidth: max |u - v| over edges (locality proxy)."""
    u, v = graph.edge_endpoints()
    if u.size == 0:
        return 0
    return int(np.abs(u.astype(np.int64) - v.astype(np.int64)).max())
