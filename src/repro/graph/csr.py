"""Compressed sparse row (CSR) graph storage.

This is the substrate every algorithm in this package operates on.  The
representation follows Fig. 2 of the paper: a *row-offsets* array ``R`` of
``n + 1`` integers and a *column-indices* array ``C`` of ``m`` integers, where
``C[R[v]:R[v+1]]`` is the adjacency list of vertex ``v``.  Graphs are stored
in the order they are defined; no reordering/preprocessing is performed (the
paper explicitly does none either).

The class is deliberately a thin, immutable view over two NumPy arrays so
that the simulated GPU kernels can reason about the *addresses* of the data
(base pointers + strides) as well as the values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph"]

#: Integer dtype used for vertex ids and row offsets throughout the package.
#: 32-bit matches what CUDA graph codes (and the paper) use and halves memory
#: traffic compared to the NumPy default int64 — which matters because the
#: simulated memory system charges per byte.
VERTEX_DTYPE = np.int32
OFFSET_DTYPE = np.int64  # row offsets can exceed 2^31 for large graphs

#: Window size for the chunked content-digest scan (see
#: :meth:`CSRGraph.content_digest`): big enough to amortize the hashlib
#: call, small enough that digesting an out-of-core graph never allocates
#: more than one window.
_DIGEST_CHUNK_BYTES = 1 << 24


@dataclass(frozen=True)
class CSRGraph:
    """An undirected (symmetric) graph in CSR format.

    Parameters
    ----------
    row_offsets:
        Array ``R`` of shape ``(n + 1,)``; ``R[0] == 0`` and ``R[n] == m``.
    col_indices:
        Array ``C`` of shape ``(m,)`` holding neighbor vertex ids.
    name:
        Optional human-readable name used by reports and benchmarks.

    Notes
    -----
    Directed inputs must be symmetrized first (see
    :func:`repro.graph.builder.from_edges` with ``symmetrize=True``); vertex
    coloring is defined on undirected graphs and both the conflict-detection
    kernels and the sequential baseline rely on every edge being visible from
    both endpoints.
    """

    row_offsets: np.ndarray
    col_indices: np.ndarray
    name: str = field(default="graph", compare=False)

    @classmethod
    def from_validated_arrays(
        cls,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        *,
        name: str = "graph",
        content_digest: str | None = None,
        arena=None,
    ) -> "CSRGraph":
        """Wrap already-validated CSR arrays without copying or re-scanning.

        The zero-copy attach path (:mod:`repro.graph.store`): a worker that
        maps a shared-memory arena or an mmap'd file receives arrays that
        were validated when the graph was first built, so repeating the
        O(n + m) structural scan — and worse, letting
        ``np.ascontiguousarray`` silently *copy* a dtype-mismatched view —
        would defeat the point.  The arrays must already be 1-D,
        C-contiguous and of the canonical dtypes; anything else raises
        instead of copying.

        ``content_digest`` seeds the digest memo so attached multi-gigabyte
        graphs are never re-hashed (the digest traveled in the
        :class:`~repro.graph.store.GraphHandle`).  ``arena`` ties the
        lifetime of the backing storage object (a ``SharedMemory`` segment
        or an open memmap) to this graph, so the buffer outlives every view.
        """
        R, C = np.asarray(row_offsets), np.asarray(col_indices)
        if R.dtype != OFFSET_DTYPE or C.dtype != VERTEX_DTYPE:
            raise ValueError(
                f"from_validated_arrays requires canonical dtypes "
                f"({OFFSET_DTYPE.__name__}/{VERTEX_DTYPE.__name__}); got "
                f"{R.dtype}/{C.dtype} — a cast here would copy"
            )
        if R.ndim != 1 or C.ndim != 1 or not R.flags.c_contiguous or not C.flags.c_contiguous:
            raise ValueError("from_validated_arrays requires 1-D contiguous arrays")
        if R.flags.writeable:
            R.setflags(write=False)
        if C.flags.writeable:
            C.setflags(write=False)
        g = object.__new__(cls)
        object.__setattr__(g, "row_offsets", R)
        object.__setattr__(g, "col_indices", C)
        object.__setattr__(g, "name", name)
        if content_digest is not None:
            object.__setattr__(g, "_content_digest", content_digest)
        if arena is not None:
            object.__setattr__(g, "_arena", arena)
        return g

    def __post_init__(self) -> None:
        R = np.ascontiguousarray(self.row_offsets, dtype=OFFSET_DTYPE)
        C = np.ascontiguousarray(self.col_indices, dtype=VERTEX_DTYPE)
        object.__setattr__(self, "row_offsets", R)
        object.__setattr__(self, "col_indices", C)
        if R.ndim != 1 or C.ndim != 1:
            raise ValueError("row_offsets and col_indices must be 1-D arrays")
        if R.size == 0:
            raise ValueError("row_offsets must have at least one entry")
        if R[0] != 0:
            raise ValueError("row_offsets[0] must be 0")
        if R[-1] != C.size:
            raise ValueError(
                f"row_offsets[-1] ({R[-1]}) must equal len(col_indices) ({C.size})"
            )
        if np.any(np.diff(R) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        if C.size and (C.min() < 0 or C.max() >= self.num_vertices):
            raise ValueError("col_indices contains out-of-range vertex ids")
        # Freeze the buffers: algorithms receive shared views and must never
        # mutate the topology in place.
        R.setflags(write=False)
        C.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self.row_offsets.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of *directed* adjacency entries ``m`` (2x undirected edges)."""
        return int(self.col_indices.size)

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges, self-loops counted once."""
        u, v = self.edge_endpoints()
        loops = int(np.count_nonzero(u == v))
        return (self.num_edges - loops) // 2 + loops

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== degree for symmetric graphs).

        Computed once and memoized as a frozen array — every kernel round
        gathers from it, and the offsets it derives from are immutable.
        """
        cached = self.__dict__.get("_degrees")
        if cached is None:
            cached = np.diff(self.row_offsets).astype(VERTEX_DTYPE)
            cached.setflags(write=False)
            object.__setattr__(self, "_degrees", cached)
        return cached

    @property
    def max_degree(self) -> int:
        """Maximum degree; 0 for an empty graph."""
        d = self.degrees
        return int(d.max()) if d.size else 0

    @property
    def min_degree(self) -> int:
        d = self.degrees
        return int(d.min()) if d.size else 0

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_vertices if self.num_vertices else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only adjacency list of vertex ``v``."""
        lo, hi = self.row_offsets[v], self.row_offsets[v + 1]
        return self.col_indices[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    # ------------------------------------------------------------------
    # Edge views
    # ------------------------------------------------------------------
    def edge_sources(self) -> np.ndarray:
        """Source vertex of every adjacency entry, aligned with ``col_indices``.

        Vectorized expansion of the CSR structure: entry ``e`` of the result
        is the vertex whose adjacency list contains ``col_indices[e]``.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees
        )

    def edge_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, targets)`` arrays of all directed adjacency entries."""
        return self.edge_sources(), self.col_indices

    def iter_vertices(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True iff for every edge (u, v) the reverse edge (v, u) exists."""
        u, v = self.edge_endpoints()
        fwd = np.stack([u.astype(np.int64), v.astype(np.int64)], axis=1)
        rev = np.stack([v.astype(np.int64), u.astype(np.int64)], axis=1)
        fwd_keys = np.sort(fwd[:, 0] * self.num_vertices + fwd[:, 1])
        rev_keys = np.sort(rev[:, 0] * self.num_vertices + rev[:, 1])
        return bool(np.array_equal(fwd_keys, rev_keys))

    def has_self_loops(self) -> bool:
        u, v = self.edge_endpoints()
        return bool(np.any(u == v))

    def has_duplicate_edges(self) -> bool:
        """True if some adjacency list contains a vertex twice."""
        u, v = self.edge_endpoints()
        keys = u.astype(np.int64) * self.num_vertices + v.astype(np.int64)
        return keys.size != np.unique(keys).size

    def validate(self) -> None:
        """Raise ``ValueError`` unless the graph is simple and symmetric.

        Coloring kernels assume a simple symmetric graph: self-loops make
        every coloring improper by definition and duplicate entries waste
        simulated memory bandwidth without changing results.
        """
        if self.has_self_loops():
            raise ValueError(f"graph {self.name!r} contains self-loops")
        if self.has_duplicate_edges():
            raise ValueError(f"graph {self.name!r} contains duplicate edges")
        if not self.is_symmetric():
            raise ValueError(f"graph {self.name!r} is not symmetric")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_array`` with unit weights."""
        import scipy.sparse as sp

        data = np.ones(self.num_edges, dtype=np.int8)
        return sp.csr_array(
            (data, self.col_indices, self.row_offsets),
            shape=(self.num_vertices, self.num_vertices),
        )

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (test/diagnostic use only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        u, v = self.edge_endpoints()
        keep = u < v
        g.add_edges_from(zip(u[keep].tolist(), v[keep].tolist()))
        return g

    def subgraph_mask(self, mask: np.ndarray) -> "CSRGraph":
        """Induced subgraph on vertices where ``mask`` is True.

        Vertices are renumbered to ``0..k-1`` preserving relative order.
        Used by the progressively-shrinking-graph view of MIS-based methods
        and by the partitioner's per-partition coloring.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_vertices,):
            raise ValueError("mask must have one entry per vertex")
        new_id = np.cumsum(mask, dtype=np.int64) - 1
        u, v = self.edge_endpoints()
        keep = mask[u] & mask[v]
        nu, nv = new_id[u[keep]], new_id[v[keep]]
        k = int(mask.sum())
        order = np.lexsort((nv, nu))
        nu, nv = nu[order], nv[order]
        counts = np.bincount(nu, minlength=k)
        R = np.zeros(k + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=R[1:])
        return CSRGraph(R, nv.astype(VERTEX_DTYPE), name=f"{self.name}[sub]")

    def content_digest(self) -> str:
        """SHA-256 over the CSR arrays — a content address for this topology.

        Two graphs with identical ``R``/``C`` arrays share a digest no
        matter their ``name``; the result cache keys on it.  Computed once
        and memoized (the arrays are frozen, so the digest cannot go
        stale).
        """
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.int64(self.num_vertices).tobytes())
            # Feed the arrays in bounded windows: ``tobytes()`` would
            # materialize a full private copy, which for an mmap-backed
            # out-of-core graph is exactly the O(m) allocation the storage
            # layer exists to avoid.  The digest bytes are identical.
            for arr in (self.row_offsets, self.col_indices):
                view = memoryview(arr).cast("B")
                for lo in range(0, len(view), _DIGEST_CHUNK_BYTES):
                    h.update(view[lo : lo + _DIGEST_CHUNK_BYTES])
            cached = h.hexdigest()
            object.__setattr__(self, "_content_digest", cached)
        return cached

    # ------------------------------------------------------------------
    # Pickling: ship the topology plus the digest memo, never re-validate.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Fields plus the memoized content digest (when computed).

        The digest rides along so a worker that unpickles a graph it was
        handed *by* digest — or the result cache keying on it — never
        re-hashes multi-gigabyte CSR arrays.  Derived caches that are
        cheap to rebuild (``_degrees``) and process-local resources
        (``_arena``: a SharedMemory segment or open memmap must never be
        serialized as bytes) are deliberately dropped.
        """
        state = {
            "row_offsets": self.row_offsets,
            "col_indices": self.col_indices,
            "name": self.name,
        }
        digest = self.__dict__.get("_content_digest")
        if digest is not None:
            state["_content_digest"] = digest
        return state

    def __setstate__(self, state: dict) -> None:
        R = np.asarray(state["row_offsets"])
        C = np.asarray(state["col_indices"])
        R.setflags(write=False)
        C.setflags(write=False)
        object.__setattr__(self, "row_offsets", R)
        object.__setattr__(self, "col_indices", C)
        object.__setattr__(self, "name", state["name"])
        digest = state.get("_content_digest")
        if digest is not None:
            object.__setattr__(self, "_content_digest", digest)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes occupied by the CSR arrays (what the device must stream)."""
        return self.row_offsets.nbytes + self.col_indices.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, avg_deg={self.avg_degree:.2f})"
        )
