"""Graph substrate: CSR storage, builders, generators, I/O, statistics."""

from .builder import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edges,
    from_networkx,
    from_scipy,
    mycielski_graph,
    path_graph,
    star_graph,
)
from .csr import CSRGraph
from .partition import Partition, block_partition, boundary_vertices
from .line_graph import edge_coloring_from_line_colors, edge_list, line_graph
from .relabel import bandwidth, bfs_order, rcm_order, relabel
from .traversal import (
    connected_components,
    core_numbers,
    degeneracy,
    is_connected,
    num_connected_components,
)
from .stats import GraphStats, compute_stats, degree_histogram
from .store import (
    GraphHandle,
    GraphStore,
    HeapStore,
    MmapStore,
    SharedMemoryStore,
    attach,
    resolve_store,
)

__all__ = [
    "CSRGraph",
    "GraphHandle",
    "GraphStats",
    "GraphStore",
    "HeapStore",
    "MmapStore",
    "Partition",
    "SharedMemoryStore",
    "attach",
    "resolve_store",
    "bandwidth",
    "bfs_order",
    "block_partition",
    "boundary_vertices",
    "complete_graph",
    "compute_stats",
    "connected_components",
    "core_numbers",
    "cycle_graph",
    "degeneracy",
    "edge_coloring_from_line_colors",
    "edge_list",
    "degree_histogram",
    "empty_graph",
    "from_adjacency",
    "from_edges",
    "from_networkx",
    "from_scipy",
    "is_connected",
    "line_graph",
    "mycielski_graph",
    "num_connected_components",
    "path_graph",
    "rcm_order",
    "relabel",
    "star_graph",
]
