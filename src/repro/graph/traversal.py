"""Traversal and decomposition utilities: components, k-cores, degeneracy.

The degeneracy (maximum core number) is the theory behind the
smallest-last ordering's guarantee — greedy over SL order uses at most
``degeneracy + 1`` colors — so exposing it lets users predict and verify
coloring quality.  Components matter operationally: every algorithm here
handles disconnected graphs, and these helpers make that testable.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRGraph

__all__ = [
    "connected_components",
    "num_connected_components",
    "core_numbers",
    "degeneracy",
    "is_connected",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id (0-based, in order of discovery) for every vertex."""
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    R, C = graph.row_offsets, graph.col_indices
    current = 0
    for seed in range(n):
        if comp[seed] >= 0:
            continue
        queue = deque([seed])
        comp[seed] = current
        while queue:
            v = queue.popleft()
            for w in C[R[v] : R[v + 1]]:
                w = int(w)
                if comp[w] < 0:
                    comp[w] = current
                    queue.append(w)
        current += 1
    return comp


def num_connected_components(graph: CSRGraph) -> int:
    if graph.num_vertices == 0:
        return 0
    return int(connected_components(graph).max()) + 1


def is_connected(graph: CSRGraph) -> bool:
    return num_connected_components(graph) <= 1


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex (Matula–Beck peeling, O(n + m)).

    Vertex ``v`` has core number ``k`` if it belongs to a maximal subgraph
    of minimum degree ``k`` but not ``k + 1``.
    """
    n = graph.num_vertices
    degs = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    max_deg = int(degs.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degs[v]].append(v)
    R, C = graph.row_offsets, graph.col_indices
    cursor = 0
    current_core = 0
    for _ in range(n):
        while cursor <= max_deg:
            bucket = buckets[cursor]
            while bucket:
                v = bucket[-1]
                if removed[v] or degs[v] != cursor:
                    bucket.pop()
                else:
                    break
            if bucket:
                break
            cursor += 1
        v = buckets[cursor].pop()
        removed[v] = True
        current_core = max(current_core, cursor)
        core[v] = current_core
        for w in C[R[v] : R[v + 1]]:
            w = int(w)
            if not removed[w] and degs[w] > cursor:
                degs[w] -= 1
                buckets[degs[w]].append(w)
                if degs[w] < cursor:
                    cursor = degs[w]
    return core


def degeneracy(graph: CSRGraph) -> int:
    """Maximum core number; greedy over SL order uses <= degeneracy + 1."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max())
