"""Line-graph construction — vertex coloring of L(G) is edge coloring of G.

Edge coloring (no two edges sharing an endpoint get one color) schedules
*pairwise exchanges*: matchings in communication rounds, link scheduling
in wireless networks.  Vizing's theorem bounds the edge chromatic number
by ``max_degree + 1``; greedy on the line graph guarantees
``2*max_degree - 1``.
"""

from __future__ import annotations

import numpy as np

from .builder import from_edges
from .csr import CSRGraph

__all__ = ["line_graph", "edge_list", "edge_coloring_from_line_colors"]


def edge_list(graph: CSRGraph) -> np.ndarray:
    """Canonical undirected edge list: shape (m_undirected, 2), u < v rows."""
    u, v = graph.edge_endpoints()
    keep = u < v
    return np.stack([u[keep], v[keep]], axis=1).astype(np.int64)


def line_graph(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Build L(G): one vertex per undirected edge, adjacency = shared endpoint.

    Returns ``(L, edges)`` where ``edges[i]`` is the endpoint pair of L's
    vertex ``i``.  Construction is per-endpoint pairing: the edges incident
    to one vertex form a clique in L(G); cliques are emitted vectorized.
    """
    edges = edge_list(graph)
    m = edges.shape[0]
    if m == 0:
        return (
            from_edges(np.empty(0), np.empty(0), num_vertices=0, name="L(empty)"),
            edges,
        )
    # edge-id incidence per endpoint
    endpoint = np.concatenate([edges[:, 0], edges[:, 1]])
    eid = np.concatenate([np.arange(m), np.arange(m)])
    order = np.argsort(endpoint, kind="stable")
    endpoint, eid = endpoint[order], eid[order]
    counts = np.bincount(endpoint, minlength=graph.num_vertices)
    us, vs = [], []
    start = 0
    for c in counts:
        if c > 1:
            ids = eid[start : start + c]
            i, j = np.triu_indices(c, k=1)
            us.append(ids[i])
            vs.append(ids[j])
        start += c
    if us:
        u = np.concatenate(us)
        v = np.concatenate(vs)
    else:
        u = v = np.empty(0, dtype=np.int64)
    lg = from_edges(u, v, num_vertices=m, name=f"L({graph.name})")
    return lg, edges


def edge_coloring_from_line_colors(
    graph: CSRGraph, edges: np.ndarray, line_colors: np.ndarray
) -> None:
    """Verify that vertex colors of L(G) form a proper edge coloring of G.

    Raises ``AssertionError`` if two incident edges share a color.
    """
    m = edges.shape[0]
    if m == 0:
        return
    # Incidence is per endpoint regardless of which column holds it:
    # flatten both endpoint columns into one (vertex, edge-color) stream.
    endpoint = np.concatenate([edges[:, 0], edges[:, 1]])
    color = np.concatenate([line_colors, line_colors])
    order = np.argsort(endpoint, kind="stable")
    ep, col = endpoint[order], color[order]
    start = 0
    for v, count in zip(*np.unique(ep, return_counts=True)):
        group = col[start : start + count]
        assert np.unique(group).size == group.size, (
            f"vertex {int(v)} has two incident edges with one color"
        )
        start += count
