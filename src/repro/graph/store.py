"""Zero-copy graph storage arenas: heap, shared memory, and mmap.

Every kernel in this package consumes plain NumPy arrays, so *where*
those arrays live is a pluggable policy.  A :class:`GraphStore` places a
:class:`~repro.graph.csr.CSRGraph`'s ``R``/``C`` arrays into an arena and
hands out a small, picklable :class:`GraphHandle` that any process can
:func:`attach` to without copying the topology:

=========  ==============================================================
``heap``   today's behavior: private process memory; handles embed the
           graph itself (pickled arrays — the compatibility fallback).
``shm``    one ``multiprocessing.shared_memory`` segment per unique
           topology (deduplicated by content digest); attaching maps the
           same physical pages, so N pool workers share ONE copy.
``mmap``   an on-disk binary CSR container (see
           :mod:`repro.graph.io.stream`), attached as a read-only memmap;
           the OS page cache backs every reader, and graphs bigger than
           RAM stream through the engine window by window.
=========  ==============================================================

Kernel/engine/cache code is unchanged across stores: an arena-backed
graph is still a ``CSRGraph`` whose arrays merely view foreign buffers,
and :meth:`~repro.graph.csr.CSRGraph.content_digest` is byte-identical
no matter the arena (it hashes values, not addresses).

Lifecycle
---------
Stores own their arenas.  ``close()`` releases and (for ``shm``) unlinks
every segment the store created; every live store is also registered
with an ``atexit`` hook so an exception that skips the ``finally`` still
cannot leak ``/dev/shm`` segments from a *cleanly exiting* process.
Attach-side ``SharedMemory`` objects deliberately bypass Python's
``resource_tracker`` (a worker that merely maps a segment must not
unlink it when the worker exits — the creator owns the name), and their
lifetime is tied to the attached graph via ``CSRGraph._arena`` so the
buffer outlives every view.  Workers killed mid-job (crash injection,
pool recycling) release their mappings in the kernel; the coordinator's
store still owns — and unlinks — the segment.
"""

from __future__ import annotations

import atexit
import os
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = [
    "GraphHandle",
    "GraphStore",
    "HeapStore",
    "SharedMemoryStore",
    "MmapStore",
    "STORE_KINDS",
    "attach",
    "resolve_store",
]

#: Prefix for shared-memory segment names — lets tests and CI assert that
#: no ``/dev/shm/reproshm_*`` entries survive a run.
SHM_PREFIX = "reproshm_"

#: The accepted ``store=`` spellings.
STORE_KINDS = ("heap", "shm", "mmap")

#: Alignment of the C array inside an arena (cache-line friendly, and it
#: keeps the int32 view aligned no matter the R array's length).
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class GraphHandle:
    """A small, picklable address of a stored graph.

    Workers receive *this* instead of a pickled topology: kind + location
    + shapes are enough to map the arrays zero-copy, and ``digest`` seeds
    the graph's content-digest memo so neither the worker nor the result
    cache ever re-hashes arrays they just received by digest.

    ``graph`` is populated only for ``heap`` handles (the compatibility
    fallback, where the "handle" really is the pickled graph).
    """

    kind: str
    name: str
    digest: str
    num_vertices: int
    num_edges: int
    location: str = ""
    graph: CSRGraph | None = field(default=None, compare=False)

    def nbytes(self) -> int:
        """Topology bytes behind this handle (R + C, unaligned)."""
        R_item = np.dtype(OFFSET_DTYPE).itemsize
        C_item = np.dtype(VERTEX_DTYPE).itemsize
        return (self.num_vertices + 1) * R_item + self.num_edges * C_item

    def attach(self) -> CSRGraph:
        """Map the stored graph into this process (see :func:`attach`)."""
        return attach(self)


# ---------------------------------------------------------------------------
# Attach side (runs in any process, typically pool workers).
# ---------------------------------------------------------------------------
@contextmanager
def _untracked_shm_registration():
    """Suppress resource-tracker registration while *attaching* a segment.

    CPython (< 3.13) registers a ``SharedMemory`` with the resource
    tracker on attach as well as on create; a worker that then exits
    prompts the tracker to warn about — and eventually unlink — a segment
    the coordinator still owns.  Only the creating store may unlink.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


def _arrays_from_buffer(buf, num_vertices: int, num_edges: int):
    """Carve the R/C views out of one arena buffer (layout: R, pad, C)."""
    R_bytes = (num_vertices + 1) * np.dtype(OFFSET_DTYPE).itemsize
    R = np.frombuffer(buf, dtype=OFFSET_DTYPE, count=num_vertices + 1)
    C = np.frombuffer(
        buf, dtype=VERTEX_DTYPE, count=num_edges, offset=_aligned(R_bytes)
    )
    return R, C


def attach(handle: GraphHandle) -> CSRGraph:
    """Materialize a :class:`GraphHandle` as a zero-copy ``CSRGraph``.

    ``heap`` handles return their embedded graph; ``shm`` handles map the
    named segment; ``mmap`` handles open the binary container read-only.
    The returned graph's arrays view the arena directly — no O(graph)
    allocation — and its content digest is pre-seeded from the handle.
    """
    if handle.kind == "heap":
        if handle.graph is None:
            raise ValueError("heap handle lost its embedded graph")
        return handle.graph
    if handle.kind == "shm":
        from multiprocessing import shared_memory

        with _untracked_shm_registration():
            segment = shared_memory.SharedMemory(name=handle.location)
        R, C = _arrays_from_buffer(
            segment.buf, handle.num_vertices, handle.num_edges
        )
        return CSRGraph.from_validated_arrays(
            R, C, name=handle.name, content_digest=handle.digest, arena=segment
        )
    if handle.kind == "mmap":
        from .io.stream import read_csr_bin

        return read_csr_bin(
            handle.location,
            mmap=True,
            validate=False,
            name=handle.name,
            content_digest=handle.digest,
        )
    raise ValueError(f"unknown graph-store kind {handle.kind!r}")


# ---------------------------------------------------------------------------
# Store side (runs in the coordinator).
# ---------------------------------------------------------------------------
#: Live stores, closed by the atexit sweep; weak so a collected store
#: doesn't linger here (its __del__ already closed it).
_LIVE_STORES: "weakref.WeakSet[GraphStore]" = weakref.WeakSet()


@atexit.register
def _close_live_stores() -> None:  # pragma: no cover - exercised at exit
    for store in list(_LIVE_STORES):
        try:
            store.close()
        except Exception:
            pass


class GraphStore:
    """Base class: placement bookkeeping shared by every arena kind.

    Subclasses implement ``_place(graph) -> (placed_graph, location)``;
    ``place``/``publish`` deduplicate by content digest so a graph placed
    twice — or two graph objects with identical topology — share one
    arena no matter how many jobs reference them.
    """

    kind: str = "abstract"

    def __init__(self) -> None:
        self._placed: dict[str, tuple[CSRGraph, str]] = {}
        self.placements = 0  # arenas actually allocated
        self.reuses = 0  # place() calls served by digest dedup
        self.closed = False
        _LIVE_STORES.add(self)

    # -- public surface -------------------------------------------------
    def place(self, graph: CSRGraph) -> CSRGraph:
        """Return an arena-backed equivalent of ``graph`` (idempotent)."""
        digest = graph.content_digest()
        hit = self._placed.get(digest)
        if hit is not None:
            self.reuses += 1
            return hit[0]
        if self.closed:
            raise RuntimeError(f"{self.kind} store is closed")
        placed, location = self._place(graph)
        self._placed[digest] = (placed, location)
        self.placements += 1
        return placed

    def handle(self, graph: CSRGraph) -> GraphHandle:
        """The :class:`GraphHandle` for a (placed) graph."""
        digest = graph.content_digest()
        entry = self._placed.get(digest)
        if entry is None:
            raise KeyError(
                f"graph {graph.name!r} ({digest[:12]}) is not placed in this "
                f"{self.kind} store"
            )
        placed, location = entry
        return GraphHandle(
            kind=self.kind,
            name=placed.name,
            digest=digest,
            num_vertices=placed.num_vertices,
            num_edges=placed.num_edges,
            location=location,
        )

    def publish(self, graph: CSRGraph) -> tuple[CSRGraph, GraphHandle]:
        """``place`` + ``handle`` in one call."""
        placed = self.place(graph)
        return placed, self.handle(placed)

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "graphs": len(self._placed),
            "bytes": sum(g.memory_bytes() for g, _ in self._placed.values()),
            "placements": self.placements,
            "reuses": self.reuses,
        }

    def close(self) -> None:
        """Release every arena this store created (idempotent)."""
        if self.closed:
            return
        self.closed = True
        placed, self._placed = self._placed, {}
        self._release(placed)

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- subclass hooks --------------------------------------------------
    def _place(self, graph: CSRGraph) -> tuple[CSRGraph, str]:
        raise NotImplementedError

    def _release(self, placed: dict) -> None:
        pass


class HeapStore(GraphStore):
    """The default: graphs stay in private heap memory.

    ``place`` is the identity and handles embed the graph itself, so the
    scheduler's pickle-the-graph behavior is exactly what it was before
    the storage layer existed.
    """

    kind = "heap"

    def place(self, graph: CSRGraph) -> CSRGraph:  # no digest needed
        return graph

    def handle(self, graph: CSRGraph) -> GraphHandle:
        return GraphHandle(
            kind="heap",
            name=graph.name,
            digest=graph.content_digest(),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            graph=graph,
        )

    def publish(self, graph: CSRGraph) -> tuple[CSRGraph, GraphHandle]:
        return graph, self.handle(graph)


class SharedMemoryStore(GraphStore):
    """One POSIX shared-memory segment per unique topology.

    The coordinator pays one copy to fill the segment; after that every
    worker (and the coordinator itself — ``place`` returns views into the
    arena) reads the same physical pages.  Segment names carry
    :data:`SHM_PREFIX`, the content digest and the creator pid, so leak
    checks can grep ``/dev/shm`` and collisions across concurrent
    coordinators are impossible.
    """

    kind = "shm"

    def __init__(self) -> None:
        super().__init__()
        self._segments: list = []
        self._seq = 0

    def _place(self, graph: CSRGraph) -> tuple[CSRGraph, str]:
        from multiprocessing import shared_memory

        digest = graph.content_digest()
        R_bytes = graph.row_offsets.nbytes
        size = max(1, _aligned(R_bytes) + graph.col_indices.nbytes)
        name = f"{SHM_PREFIX}{digest[:12]}_{os.getpid()}_{self._seq}"
        self._seq += 1
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments.append(segment)
        R, C = _arrays_from_buffer(
            segment.buf, graph.num_vertices, graph.num_edges
        )
        R_writable = np.frombuffer(
            segment.buf, dtype=OFFSET_DTYPE, count=graph.num_vertices + 1
        )
        C_writable = np.frombuffer(
            segment.buf, dtype=VERTEX_DTYPE, count=graph.num_edges,
            offset=_aligned(R_bytes),
        )
        R_writable[:] = graph.row_offsets
        C_writable[:] = graph.col_indices
        placed = CSRGraph.from_validated_arrays(
            R, C, name=graph.name, content_digest=digest, arena=segment
        )
        return placed, segment.name

    def _release(self, placed: dict) -> None:
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # Live views (the placed graph is still referenced) pin
                # the mapping; unlink below still removes the name, and
                # the memory is freed when the last view dies.
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


class MmapStore(GraphStore):
    """On-disk binary CSR containers attached as read-only memmaps.

    Placement writes ``<digest>.csrbin`` into the store directory once
    (idempotent across runs — a pre-existing container is trusted and
    reused); attaching maps it without reading it eagerly, so the OS page
    cache is the only RAM the topology costs, shared across every
    process.  This is also the out-of-core substrate: the converter in
    :mod:`repro.graph.io.stream` builds these containers without ever
    materializing the graph in memory, and the streaming scheduler cuts
    mmap windows straight out of them.
    """

    kind = "mmap"

    def __init__(self, directory=None) -> None:
        super().__init__()
        if directory is None:
            import tempfile

            directory = tempfile.mkdtemp(prefix="repro-mmap-")
            self._owns_directory = True
        else:
            self._owns_directory = False
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _place(self, graph: CSRGraph) -> tuple[CSRGraph, str]:
        from .io.stream import read_csr_bin, write_csr_bin

        digest = graph.content_digest()
        path = self.directory / f"{digest[:24]}.csrbin"
        if not path.exists():
            write_csr_bin(graph, path)
        placed = read_csr_bin(
            path, mmap=True, validate=False, name=graph.name,
            content_digest=digest,
        )
        return placed, str(path)

    def _release(self, placed: dict) -> None:
        if not self._owns_directory:
            return  # caller-provided directory: containers are theirs
        import shutil

        shutil.rmtree(self.directory, ignore_errors=True)


def resolve_store(spec) -> GraphStore:
    """Normalize any accepted ``store=`` value into a :class:`GraphStore`.

    ``None``/``'heap'`` → a :class:`HeapStore`; ``'shm'`` → a fresh
    :class:`SharedMemoryStore`; ``'mmap'`` → an :class:`MmapStore` on a
    private temp directory; ``'mmap:/some/dir'`` → an :class:`MmapStore`
    on that directory; a store instance passes through (bring your own —
    anything with ``kind``/``publish``/``close``).
    """
    if spec is None or spec == "heap":
        return HeapStore()
    if isinstance(spec, GraphStore):
        return spec
    if isinstance(spec, str):
        if spec == "shm":
            return SharedMemoryStore()
        if spec == "mmap":
            return MmapStore()
        if spec.startswith("mmap:"):
            return MmapStore(directory=spec[len("mmap:"):])
        raise ValueError(
            f"unknown graph store {spec!r}; choose from "
            f"{'/'.join(STORE_KINDS)} or 'mmap:<dir>' (or pass an instance)"
        )
    if hasattr(spec, "publish") and hasattr(spec, "kind"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a graph store")
