"""The shared bulk-synchronous round loop every device scheme runs on.

Every speculative GPU coloring in the reproduction — Alg. 4 topology-
driven, Alg. 5 data-driven, 3-step GM's GPU phase, csrcolor's MIS
elections — is the same skeleton: *while work remains, run this round's
kernels, read a 4-byte flag back over PCIe, count the round*.  The
schemes differ only in what a round does, so that difference is all a
:class:`SchemeRecipe` expresses; :class:`RoundLoop` owns the skeleton:

* the safety cap (:data:`MAX_ITERATIONS`), raising a diagnostic
  :class:`~repro.engine.errors.ConvergenceError` instead of silently
  returning a partial coloring;
* the per-round changed-flag/worklist-size DtoH readback;
* per-round structured metrics (into a
  :class:`~repro.metrics.recorder.Recorder` when one is attached);
* assembling the :class:`~repro.coloring.base.ColoringResult` from the
  backend's timing span, so a shared backend reports per-run times.

Recipes plug in through five hooks — ``setup``, ``has_work``, ``round``,
``post_round``, ``finalize`` (plus ``cleanup`` for pooled buffers); see
the scheme modules for the four shipped recipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..resilience.deadline import DeadlineExceeded, active_control
from .backend import Backend
from .errors import AuditError, ConvergenceError, InvariantViolation

__all__ = [
    "MAX_ITERATIONS",
    "RoundStatus",
    "SchemeOutcome",
    "SchemeRecipe",
    "RoundLoop",
    "run_scheme",
]

#: Safety cap on bulk-synchronous rounds (speculation converges in
#: O(log n) rounds; hitting this means the scheme is livelocked).
#: Hoisted here from the per-scheme ``_MAX_ITERATIONS`` copies.
MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class RoundStatus:
    """What one recipe round reports back to the loop.

    ``executed=False`` means the round found no work and launched nothing
    — the loop then stops without charging the flag readback or counting
    the round (3-step GM's early exit); rounds that *do* run but color
    nothing still count (topology-driven's terminating empty round).
    """

    active: int = 0
    conflicts: int = 0
    executed: bool = True


@dataclass(frozen=True)
class SchemeOutcome:
    """What a recipe's ``finalize`` returns to the result assembler."""

    colors: np.ndarray
    extra: dict = field(default_factory=dict)
    extra_iterations: int = 0  # rounds performed outside the loop (3-step GM)
    cpu_time_us: float = 0.0  # host-side work the recipe priced itself


class SchemeRecipe:
    """Base class for declarative scheme recipes.

    A recipe is a single-run object: construct it with the scheme's knobs,
    hand it to :func:`run_scheme` (or an
    :class:`~repro.engine.context.ExecutionContext`), and it accumulates
    per-run state on ``self`` between hooks.

    Subclasses must set :attr:`scheme` (or override the property) and
    implement ``setup`` / ``has_work`` / ``round`` / ``finalize``.
    """

    #: Scheme identifier, used for result labels and error messages.
    scheme: str = "?"

    #: Bytes the host reads back after every round (changed flag or
    #: worklist tail — both are one 4-byte word in the real CUDA codes).
    flag_bytes: int = 4

    #: Round-scoped scratch arena (:class:`~repro.coloring.kernels.KernelScratch`);
    #: :class:`RoundLoop` installs a fresh one per run so waves reuse their
    #: temporaries across iterations.  ``None`` when a recipe runs outside
    #: the loop (kernels then allocate per call).
    scratch = None

    def setup(self, ex: Backend, graph, bufs) -> None:
        """Bind the run's substrate and build per-run state."""
        raise NotImplementedError

    def has_work(self) -> bool:
        """True while another round should run."""
        raise NotImplementedError

    def round(self, iteration: int) -> RoundStatus:
        """Run one round's kernels; return what happened."""
        raise NotImplementedError

    def post_round(self, iteration: int) -> int:
        """Hook after the flag readback (worklist swap, csrcolor's tail
        fast path).  Returns extra iterations consumed (usually 0)."""
        return 0

    def finalize(self) -> SchemeOutcome:
        """Wrap up (post-loop kernels, renumbering) and emit the colors."""
        raise NotImplementedError

    def cleanup(self) -> None:
        """Return pooled buffers to the backend; always called."""

    def uncolored(self) -> int:
        """Vertices still uncolored — reported by :class:`ConvergenceError`."""
        bufs = getattr(self, "bufs", None)
        if bufs is None:
            return 0
        return int((bufs.colors.data <= 0).sum())


@dataclass
class RoundLoop:
    """Drives a recipe to convergence on a backend (see module docstring).

    When a :class:`~repro.faults.Robustness` bundle is attached, the loop
    additionally enforces the bundle's :class:`~repro.faults.HealthPolicy`
    guard rails — the no-progress livelock watchdog, post-round invariant
    checks (colored-set monotonicity, worklist-size sanity), and the
    end-of-run coloring audit — and consults the bundle's fault injector
    at the ``buffer-bitflip`` / ``result-corrupt`` sites.  With no bundle
    attached none of this costs anything.
    """

    max_iterations: int = MAX_ITERATIONS
    recorder: object | None = None  # metrics.Recorder, duck-typed
    tracer: object | None = None  # obs.Tracer, duck-typed
    robustness: object | None = None  # faults.Robustness, duck-typed
    control: object | None = None  # resilience.RunControl, duck-typed

    def run(self, ex: Backend, graph, recipe: SchemeRecipe, bufs):
        """Execute ``recipe`` on ``graph``; returns a ``ColoringResult``.

        Backends exposing ``functional_scope()`` (the compiled backend)
        get it entered around the whole run, so every kernel *and*
        pricing call in the dynamic extent sees the engine flag.
        """
        scope = getattr(ex, "functional_scope", None)
        if scope is None:
            return self._run(ex, graph, recipe, bufs)
        with scope():
            return self._run(ex, graph, recipe, bufs)

    def _run(self, ex: Backend, graph, recipe: SchemeRecipe, bufs):
        from ..coloring.base import ColoringResult

        tracer = self.tracer
        rb = self.robustness
        policy = rb.policy if rb is not None else None
        max_iterations = self.max_iterations
        if policy is not None and policy.max_iterations is not None:
            max_iterations = policy.max_iterations
        watch_window = policy.no_progress_window if policy is not None else 0
        invariants = policy.invariants if policy is not None else False
        run_span = None
        if tracer is not None:
            run_span = tracer.begin(
                f"{recipe.scheme}:{getattr(graph, 'name', '?')}",
                "run",
                scheme=recipe.scheme,
                graph=getattr(graph, "name", "?"),
                vertices=graph.num_vertices,
                edges=graph.num_edges,
                backend=ex.name,
            )
        mark = ex.mark()
        iterations = 0
        try:
            recipe.setup(ex, graph, bufs)
            recipe.profiles = []
            from ..coloring.kernels import KernelScratch

            recipe.scratch = KernelScratch()
            last_uncolored: int | None = None
            stalled = 0
            control = self.control if self.control is not None \
                else active_control()
            try:
                while recipe.has_work():
                    if iterations >= max_iterations:
                        raise ConvergenceError(
                            recipe.scheme, iterations, recipe.uncolored()
                        )
                    if control is not None:
                        control.check("round")
                    if rb is not None:
                        self._check_deadline_storm(rb, control, iterations)
                        self._inject_bitflip(rb, recipe, bufs, iterations)
                    profiles_before = len(recipe.profiles)
                    round_span = (
                        tracer.begin(f"round-{iterations}", "round")
                        if tracer is not None
                        else None
                    )
                    status = recipe.round(iterations)
                    if not status.executed:
                        if round_span is not None:
                            tracer.end(round_span, active=0, conflicts=0)
                        break
                    ex.dtoh(recipe.flag_bytes)
                    if round_span is not None:
                        tracer.end(
                            round_span,
                            active=status.active,
                            conflicts=status.conflicts,
                        )
                    iterations += 1
                    iterations += recipe.post_round(iterations)
                    if self.recorder is not None:
                        self._record_round(
                            graph, recipe, iterations - 1, status, profiles_before
                        )
                    if watch_window > 0 or invariants:
                        last_uncolored, stalled = self._check_round(
                            graph, recipe, status, iterations,
                            watch_window, invariants, last_uncolored, stalled,
                        )
                outcome = recipe.finalize()
                if rb is not None:
                    self._inject_result_corrupt(rb, outcome)
                if policy is not None and policy.audit:
                    self._audit(graph, recipe.scheme, outcome.colors)
            finally:
                recipe.cleanup()

            timing = ex.timing_since(mark)
            extra = dict(outcome.extra)
            extra.setdefault("backend", ex.name)
            result = ColoringResult(
                colors=outcome.colors,
                scheme=recipe.scheme,
                iterations=iterations + outcome.extra_iterations,
                gpu_time_us=timing.gpu_time_us,
                cpu_time_us=timing.cpu_time_us + outcome.cpu_time_us,
                transfer_time_us=timing.transfer_time_us,
                num_kernel_launches=timing.num_launches,
                profiles=recipe.profiles,
                extra=extra,
            )
            if run_span is not None:
                run_span.counters.update(
                    colors=result.num_colors,
                    gpu_time_us=result.gpu_time_us,
                    cpu_time_us=result.cpu_time_us,
                    transfer_time_us=result.transfer_time_us,
                )
            return result
        finally:
            if run_span is not None:
                # Closes any round span an exception left open, too.
                tracer.end(run_span, iterations=iterations)

    def _check_round(self, graph, recipe, status, iterations,
                     watch_window, invariants, last_uncolored, stalled):
        """Post-round guard rails: invariants plus the livelock watchdog.

        Returns the updated ``(last_uncolored, stalled)`` watchdog state.
        The uncolored count is read once and shared by both guards.
        """
        n = graph.num_vertices
        uncolored = recipe.uncolored()
        if invariants:
            if not (0 <= status.active <= n and 0 <= status.conflicts <= n):
                raise InvariantViolation(
                    recipe.scheme, "worklist-sane", iterations - 1,
                    f"active={status.active} conflicts={status.conflicts} "
                    f"outside [0, {n}]",
                )
            if last_uncolored is not None and uncolored > last_uncolored:
                raise InvariantViolation(
                    recipe.scheme, "colored-monotone", iterations - 1,
                    f"uncolored grew from {last_uncolored} to {uncolored}",
                )
        if watch_window > 0:
            if last_uncolored is not None and uncolored == last_uncolored \
                    and uncolored > 0:
                stalled += 1
                if stalled >= watch_window:
                    raise ConvergenceError(
                        recipe.scheme, iterations, uncolored,
                        reason="no-progress", window=stalled,
                    )
            else:
                stalled = 0
        return uncolored, stalled

    def _audit(self, graph, scheme, colors) -> None:
        """End-of-run validity audit: re-verify the coloring on the CSR."""
        from ..coloring.base import count_conflicts

        uncolored = int((colors <= 0).sum())
        conflicts = count_conflicts(graph, colors)
        if uncolored or conflicts:
            raise AuditError(scheme, conflicts, uncolored)

    @staticmethod
    def _check_deadline_storm(rb, control, iteration) -> None:
        """``deadline-storm`` site: force the run's budget to expire now.

        Fires a structured :class:`DeadlineExceeded` at a round boundary
        — exactly what a real expiry raises — so the service/scheduler
        failure paths can be chaos-tested without real clock pressure.
        """
        if rb.fire("deadline-storm", round=iteration) is None:
            return
        deadline = control.deadline if control is not None else None
        if deadline is not None:
            raise DeadlineExceeded(
                deadline.deadline_ms, queued_ms=deadline.queued_ms,
                running_ms=deadline.running_ms(), where="round:forced",
            )
        raise DeadlineExceeded(0.0, where="round:forced")

    @staticmethod
    def _inject_bitflip(rb, recipe, bufs, iteration) -> None:
        """``buffer-bitflip`` site: flip one bit of the pooled color buffer."""
        spec = rb.fire("buffer-bitflip", round=iteration)
        if spec is None:
            return
        colors = bufs.colors.data
        if colors.size == 0:
            return
        victim = rb.plan.index_for(
            "buffer-bitflip", colors.size, {"round": iteration}
        )
        bit = int(spec.param) % 31 if spec.param is not None else 0
        colors[victim] = np.int32(int(colors[victim]) ^ (1 << bit))

    @staticmethod
    def _inject_result_corrupt(rb, outcome) -> None:
        """``result-corrupt`` site: flip one bit of the finalized colors."""
        spec = rb.fire("result-corrupt")
        if spec is None:
            return
        colors = outcome.colors
        if colors.size == 0:
            return
        victim = rb.plan.index_for("result-corrupt", colors.size, {})
        bit = int(spec.param) % 31 if spec.param is not None else 0
        colors[victim] = np.int32(int(colors[victim]) ^ (1 << bit))

    def _record_round(self, graph, recipe, iteration, status, profiles_before) -> None:
        time_us = sum(
            p.time_us for p in recipe.profiles[profiles_before:]
        )
        self.recorder.add_round(
            scheme=recipe.scheme,
            graph=getattr(graph, "name", "?"),
            iteration=iteration,
            active=status.active,
            conflicts=status.conflicts,
            time_us=float(time_us),
        )


def run_scheme(
    graph,
    recipe: SchemeRecipe,
    *,
    device=None,
    backend=None,
    context=None,
    observe=None,
    faults=None,
    health=None,
):
    """Run one recipe on one graph — the single-shot engine entry point.

    ``device=`` keeps the legacy per-scheme signature working (the device
    is wrapped in a :class:`~repro.engine.backend.GpuSimBackend`);
    ``context=`` reuses a long-lived :class:`ExecutionContext` (cached
    uploads, pooled buffers); otherwise an ephemeral context is built
    from ``backend`` (default: a fresh simulated K20c).  ``observe=``
    takes the unified observation surface (see :mod:`repro.obs`);
    ``faults=`` / ``health=`` attach the robustness layer (see
    :mod:`repro.faults`) — note the degradation *rerun* chain needs a
    recipe factory, so it lives on ``color_graph`` / ``ExecutionContext.run``,
    not here; guard failures raise from this entry point.
    """
    from .context import ExecutionContext

    if context is None:
        spec = backend if backend is not None else device
        context = ExecutionContext(
            backend=spec, observe=observe, faults=faults, health=health
        )
    elif observe is not None:
        raise ValueError(
            "pass observe= to the ExecutionContext, not alongside context="
        )
    elif faults is not None or health is not None:
        raise ValueError(
            "pass faults=/health= to the ExecutionContext, not alongside "
            "context="
        )
    return context.run_recipe(graph, recipe)
