"""The unified typed run-configuration surface.

Every execution entry point — :func:`~repro.coloring.api.color_graph`,
:func:`~repro.engine.context.color_many`,
:func:`~repro.parallel.sharded.color_sharded`,
:func:`~repro.parallel.streaming.color_streamed`,
:func:`~repro.parallel.scheduler.run_jobs` and
:class:`~repro.engine.context.ExecutionContext` — accepts the same
execution keywords (``backend=``, ``cache=``, ``faults=``, ...).  Before
this module they were threaded ad hoc; :class:`RunConfig` bundles them
into one frozen, reusable value::

    cfg = RunConfig(backend="compiled", cache="memory", health="strict")
    color_graph(g, "data-ldg", config=cfg)
    color_many(graphs, "data-ldg", config=cfg.replace(workers=4))

``config=`` and the legacy explicit keywords normalize through one
shared path (:func:`normalize_config`): a field set *both* ways is a
:class:`TypeError` (conflict), a field the entry point does not support
is a :class:`TypeError` naming the entry point, and mapping inputs get
did-you-mean suggestions for misspelled field names.  Because
normalization resolves to exactly the values the legacy keywords would
have carried, downstream behavior — including result-cache keys
(:mod:`repro.parallel.cache`) — is byte-identical between the two
spellings.

``mex`` never enters cache keys (strategies are result-identical), and
``observe``/``faults``/``health`` never do either — a config differing
only in observation or robustness still hits the same cached results.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["RunConfig", "normalize_config", "resolve_run_config"]


def _field(doc: str):
    return dataclasses.field(default=None, metadata={"doc": doc})


@dataclass(frozen=True)
class RunConfig:
    """Frozen bundle of the scheme-independent execution options.

    Every field defaults to ``None`` (= "entry point's default"); only
    non-``None`` fields take effect.  Instances are immutable — derive
    variants with :meth:`replace`.
    """

    backend: Any = _field(
        "execution substrate for device schemes: 'gpusim' (default), "
        "'cpusim', 'compiled', or a backend/device instance"
    )
    backend_opts: Any = _field(
        "constructor keywords for a string backend= spec, e.g. "
        "{'jit': 'cc'} or {'cache_model': 'hit_rate'}"
    )
    store: Any = _field(
        "graph arena for worker processes: 'heap', 'shm', "
        "'mmap'/'mmap:<dir>', or a GraphStore instance"
    )
    workers: Any = _field(
        "process-pool size for batched runs (None/0/1 = serial)"
    )
    scheduler: Any = _field(
        "'serial', 'process', or a Scheduler instance "
        "(default inferred from workers)"
    )
    cache: Any = _field(
        "content-addressed result cache: 'memory', a directory path, "
        "or a ResultCache"
    )
    mex: Any = _field(
        "forbidden-color kernel strategy: 'bitmask', 'bitmask:N', "
        "or 'sort' (results identical; never enters cache keys)"
    )
    faults: Any = _field(
        "fault-injection plan: a FaultPlan, a plan spec string, or a "
        "Robustness bundle"
    )
    health: Any = _field(
        "guard-rail policy: 'strict', 'off', or a HealthPolicy"
    )
    observe: Any = _field(
        "observation surface: 'trace'/'profile'/'rounds', a Tracer, "
        "a Recorder, or an Observation"
    )
    devices: Any = _field(
        "simulated device count for color_distributed (one contiguous "
        "shard per device; colors identical across counts)"
    )
    topology: Any = _field(
        "interconnect model pricing halo exchange: 'pcie', 'nvlink', "
        "'ring', or a Topology instance (never enters cache keys)"
    )
    deadline_ms: Any = _field(
        "wall-clock budget for the run in milliseconds, checked at "
        "round boundaries; a RunControl carries a service-stamped "
        "deadline + cancel token (never enters cache keys)"
    )

    def replace(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (``None`` clears a field)."""
        bad = [k for k in changes if k not in _FIELDS]
        if bad:
            raise TypeError(_unknown_fields_message("RunConfig.replace", bad))
        return dataclasses.replace(self, **changes)

    def as_kwargs(self) -> dict:
        """The non-``None`` fields as a plain keyword mapping."""
        return {
            name: getattr(self, name)
            for name in _FIELDS
            if getattr(self, name) is not None
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "RunConfig":
        """Build from a plain mapping, with did-you-mean validation."""
        bad = [k for k in mapping if k not in _FIELDS]
        if bad:
            raise TypeError(_unknown_fields_message("RunConfig", bad))
        return cls(**dict(mapping))


_FIELDS: tuple[str, ...] = tuple(f.name for f in dataclasses.fields(RunConfig))


def _unknown_fields_message(where: str, bad: list) -> str:
    suggestions = []
    for key in sorted(str(k) for k in bad):
        close = difflib.get_close_matches(key, _FIELDS, n=1)
        if close:
            suggestions.append(f"did you mean {close[0]!r} instead of {key!r}?")
    hint = (" " + " ".join(suggestions)) if suggestions else ""
    return (
        f"{where} got unknown field(s) {sorted(str(k) for k in bad)}.{hint} "
        f"Valid RunConfig fields: {', '.join(_FIELDS)}"
    )


def resolve_run_config(config) -> RunConfig | None:
    """Coerce a ``config=`` argument: None, RunConfig, or a mapping."""
    if config is None or isinstance(config, RunConfig):
        return config
    if isinstance(config, Mapping):
        return RunConfig.from_mapping(config)
    raise TypeError(
        f"config= takes a RunConfig or a mapping of its fields, "
        f"not {type(config).__name__}"
    )


def normalize_config(
    entry_point: str, config, explicit: dict[str, Any]
) -> dict[str, Any]:
    """Merge ``config=`` with the entry point's explicit keywords.

    ``explicit`` maps each RunConfig field the entry point supports to
    the value its legacy keyword carried (``None`` = not passed).
    Returns the merged mapping over exactly those keys.  Raises
    :class:`TypeError` when a field is set both ways (ambiguous), or when
    the config sets a field this entry point has no equivalent for.
    """
    cfg = resolve_run_config(config)
    if cfg is None:
        return dict(explicit)
    merged = dict(explicit)
    unsupported = []
    for name in _FIELDS:
        value = getattr(cfg, name)
        if value is None:
            continue
        if name not in explicit:
            unsupported.append(name)
            continue
        if explicit[name] is not None:
            raise TypeError(
                f"{entry_point}() got {name!r} both ways: config.{name}="
                f"{value!r} and {name}={explicit[name]!r}; pass one "
                f"(config.replace({name}=None) drops the config copy)"
            )
        merged[name] = value
    if unsupported:
        raise TypeError(
            f"{entry_point}() does not take "
            f"{', '.join(sorted(unsupported))} — clear the field(s) with "
            f"config.replace({unsupported[0]}=None) or use an entry point "
            f"that supports them (supported here: "
            f"{', '.join(sorted(explicit))})"
        )
    return merged
