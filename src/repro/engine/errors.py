"""Engine-level failure types."""

from __future__ import annotations

__all__ = ["ConvergenceError"]


class ConvergenceError(RuntimeError):
    """A scheme hit the engine's round cap without finishing its coloring.

    Subclasses :class:`RuntimeError` so callers that guarded against the old
    per-scheme ``RuntimeError("... failed to converge")`` keep working, but
    carries the diagnostic state those messages lacked.

    Attributes
    ----------
    scheme:
        Name of the scheme that failed to converge.
    iterations:
        Bulk-synchronous rounds executed before giving up.
    uncolored:
        Vertices still uncolored when the cap was hit.
    """

    def __init__(self, scheme: str, iterations: int, uncolored: int) -> None:
        self.scheme = scheme
        self.iterations = iterations
        self.uncolored = uncolored
        super().__init__(
            f"{scheme} failed to converge after {iterations} rounds "
            f"({uncolored} vertices still uncolored)"
        )
