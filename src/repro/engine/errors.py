"""Engine-level failure types.

All three guard-rail errors carry a structured payload (``to_dict``) so
failure reports, ``JobFailure`` slots, and trace artifacts can record
*why* a run was rejected, not just that it was.  They subclass
:class:`RuntimeError` so callers that guarded against the old per-scheme
``RuntimeError`` messages keep working.
"""

from __future__ import annotations

__all__ = ["ConvergenceError", "InvariantViolation", "AuditError"]


class ConvergenceError(RuntimeError):
    """A scheme hit a convergence guard without finishing its coloring.

    Raised when the round loop hits its iteration cap (``reason="cap"``)
    or when the no-progress watchdog sees the uncolored count frozen for
    a full window of rounds (``reason="no-progress"`` — livelock).

    Attributes
    ----------
    scheme:
        Name of the scheme that failed to converge.
    iterations:
        Bulk-synchronous rounds executed before giving up.
    uncolored:
        Vertices still uncolored when the guard fired.
    reason:
        ``"cap"`` or ``"no-progress"``.
    window:
        For ``"no-progress"``: rounds the uncolored count was frozen.
    """

    def __init__(self, scheme: str, iterations: int, uncolored: int,
                 reason: str = "cap", window: int = 0) -> None:
        self.scheme = scheme
        self.iterations = iterations
        self.uncolored = uncolored
        self.reason = reason
        self.window = window
        if reason == "no-progress":
            detail = (
                f"made no progress for {window} rounds "
                f"({uncolored} vertices still uncolored after "
                f"{iterations} rounds)"
            )
        else:
            detail = (
                f"failed to converge after {iterations} rounds "
                f"({uncolored} vertices still uncolored)"
            )
        super().__init__(f"{scheme} {detail}")

    def to_dict(self) -> dict:
        return {
            "error": "ConvergenceError",
            "scheme": self.scheme,
            "iterations": self.iterations,
            "uncolored": self.uncolored,
            "reason": self.reason,
            "window": self.window,
        }


class InvariantViolation(RuntimeError):
    """A post-round invariant check failed (e.g. the colored set shrank).

    Attributes
    ----------
    scheme: scheme whose round broke the invariant.
    invariant: short machine-readable name, e.g. ``"colored-monotone"``.
    iteration: round index that broke it.
    detail: human-readable specifics (observed vs expected values).
    """

    def __init__(self, scheme: str, invariant: str, iteration: int,
                 detail: str) -> None:
        self.scheme = scheme
        self.invariant = invariant
        self.iteration = iteration
        self.detail = detail
        super().__init__(
            f"{scheme} violated invariant {invariant!r} at round "
            f"{iteration}: {detail}"
        )

    def to_dict(self) -> dict:
        return {
            "error": "InvariantViolation",
            "scheme": self.scheme,
            "invariant": self.invariant,
            "iteration": self.iteration,
            "detail": self.detail,
        }


class AuditError(RuntimeError):
    """The end-of-run audit rejected the final coloring against the CSR.

    Attributes
    ----------
    scheme: scheme whose output failed the audit.
    conflicts: monochromatic edges found by the re-verification.
    uncolored: vertices left uncolored in the final result.
    """

    def __init__(self, scheme: str, conflicts: int, uncolored: int) -> None:
        self.scheme = scheme
        self.conflicts = conflicts
        self.uncolored = uncolored
        super().__init__(
            f"{scheme} produced an invalid coloring: {conflicts} conflicting "
            f"edges, {uncolored} uncolored vertices"
        )

    def to_dict(self) -> dict:
        return {
            "error": "AuditError",
            "scheme": self.scheme,
            "conflicts": self.conflicts,
            "uncolored": self.uncolored,
        }
