"""repro.engine: the unified scheme-execution layer.

Separates the coloring *recipe* (what kernels a round launches) from the
execution *substrate* (what hardware prices them), following the template
framing of Chen et al. and the recipe/substrate split Bogle & Slota use
for multi-device scaling:

* :mod:`~repro.engine.backend` — the :class:`Backend` protocol with the
  simulated K20c (:class:`GpuSimBackend`) and multicore Xeon
  (:class:`CpuSimBackend`) implementations;
* :mod:`~repro.engine.runner` — :class:`SchemeRecipe` /
  :class:`RoundLoop`: the shared bulk-synchronous skeleton (iteration
  cap, flag readback, round metrics, result assembly);
* :mod:`~repro.engine.context` — :class:`ExecutionContext`: cached
  graph uploads, pooled buffers, and the batched :func:`color_many` API.

See the "Execution engine" section of docs/API.md for the plug-in guide.
"""

from .backend import (
    BACKENDS,
    Backend,
    CompiledSimBackend,
    CpuSimBackend,
    GpuSimBackend,
    Mark,
    TimingDelta,
    resolve_backend,
)
from .config import RunConfig
from .context import ExecutionContext, color_many
from .errors import AuditError, ConvergenceError, InvariantViolation
from .runner import (
    MAX_ITERATIONS,
    RoundLoop,
    RoundStatus,
    SchemeOutcome,
    SchemeRecipe,
    run_scheme,
)

__all__ = [
    "AuditError",
    "BACKENDS",
    "Backend",
    "CompiledSimBackend",
    "ConvergenceError",
    "InvariantViolation",
    "CpuSimBackend",
    "ExecutionContext",
    "GpuSimBackend",
    "MAX_ITERATIONS",
    "Mark",
    "RoundLoop",
    "RoundStatus",
    "RunConfig",
    "SchemeOutcome",
    "SchemeRecipe",
    "TimingDelta",
    "color_many",
    "resolve_backend",
    "run_scheme",
]
