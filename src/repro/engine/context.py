"""Long-lived execution state: cached uploads, pooled buffers, batching.

An :class:`ExecutionContext` pairs one backend with the state that makes
*repeated* runs cheap — exactly what sweeps, ``compare``, and the
benchmark suite do:

* **Upload cache** — device-resident :class:`GraphBuffers` keyed by CSR
  identity, so a graph's R/C arrays cross PCIe once per context no matter
  how many schemes run on it (the color/state arrays are zeroed between
  runs instead of reallocated).
* **Buffer pool** — the backend's allocation pool recycles worklist and
  scratch buffers returned by recipe ``cleanup`` hooks.
* **Batching** — :meth:`color_many` runs a whole suite of graphs through
  one context, and :meth:`run` accepts any registered method name.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..faults import FaultInjected, resolve_robustness
from ..faults import runtime as fault_runtime
from ..obs.observe import reject_recorder_keyword, resolve_observe
from ..resilience.deadline import activate_control, resolve_control
from .backend import resolve_backend
from .errors import AuditError, ConvergenceError, InvariantViolation
from .runner import MAX_ITERATIONS, RoundLoop, SchemeRecipe

__all__ = ["ExecutionContext", "color_many"]

#: Failures the engine rerun chain may heal with a fresh run (injected
#: faults exhaust their fire budgets; guard errors caused by corruption
#: vanish once the corrupting spec stops firing).
_RECOVERABLE = (FaultInjected, AuditError, InvariantViolation, ConvergenceError)


class ExecutionContext:
    """Reusable run state on one backend (see module docstring).

    Parameters
    ----------
    backend:
        Backend name (``"gpusim"`` / ``"cpusim"``), instance, or a raw
        :class:`~repro.gpusim.device.Device`; default a fresh simulated
        K20c.
    observe:
        The unified observation surface (see :mod:`repro.obs`): ``None``,
        ``"trace"`` / ``"profile"`` / ``"rounds"``, a
        :class:`~repro.obs.tracer.Tracer`, a
        :class:`~repro.metrics.recorder.Recorder`, or a resolved
        :class:`~repro.obs.observe.Observation`.  Accessible afterwards
        as :attr:`observation` (with :attr:`tracer` / :attr:`recorder`
        shortcuts).
    faults:
        Fault-injection plan (see :mod:`repro.faults`): ``None``, a
        :class:`~repro.faults.FaultPlan`, a plan spec string, or a ready
        :class:`~repro.faults.Robustness` bundle.
    health:
        Guard-rail policy: ``None`` (defaults), ``"strict"`` (guards on,
        no degradation), ``"off"``, or a
        :class:`~repro.faults.HealthPolicy`.
    backend_opts:
        Forwarded to the backend constructor when ``backend`` is a name
        (e.g. ``seed=3``, ``cores=16``).
    """

    def __init__(
        self,
        backend=None,
        *,
        config=None,
        observe=None,
        faults=None,
        health=None,
        deadline_ms=None,
        max_iterations: int = MAX_ITERATIONS,
        **backend_opts,
    ) -> None:
        reject_recorder_keyword("ExecutionContext", backend_opts)
        if config is not None:
            from .config import normalize_config

            merged = normalize_config(
                "ExecutionContext",
                config,
                {
                    "backend": backend,
                    "backend_opts": backend_opts or None,
                    "observe": observe, "faults": faults, "health": health,
                    "deadline_ms": deadline_ms,
                },
            )
            backend, observe = merged["backend"], merged["observe"]
            faults, health = merged["faults"], merged["health"]
            deadline_ms = merged["deadline_ms"]
            backend_opts = dict(merged["backend_opts"] or {})
        self.observation = resolve_observe(observe)
        self.backend = resolve_backend(backend, **backend_opts)
        if self.observation.tracer is not None:
            self.backend.attach_tracer(self.observation.tracer)
        self.robustness = resolve_robustness(faults, health)
        if (
            self.robustness is not None
            and self.robustness.log.tracer is None
        ):
            self.robustness.log.tracer = self.observation.tracer
        self.control = resolve_control(deadline_ms)
        self.loop = RoundLoop(
            max_iterations=max_iterations,
            recorder=self.observation.recorder,
            tracer=self.observation.tracer,
            robustness=self.robustness,
            control=self.control,
        )
        self._uploads: dict[int, tuple] = {}
        self.uploads = 0  # graphs paying the HtoD burst
        self.upload_reuses = 0  # runs served from the cache

    @contextmanager
    def robustness_scope(self, robustness):
        """Temporarily attach a robustness bundle to this context.

        Used by the batch schedulers, whose shared per-worker contexts are
        built once but need a fresh injector per (job, attempt).
        """
        previous = self.robustness
        self.robustness = robustness
        self.loop.robustness = robustness
        if robustness is not None and robustness.log.tracer is None:
            robustness.log.tracer = self.observation.tracer
        try:
            yield self
        finally:
            self.robustness = previous
            self.loop.robustness = previous

    @contextmanager
    def control_scope(self, control):
        """Temporarily attach a :class:`RunControl` (deadline + cancel).

        Used by the batch schedulers: worker processes rebuild a fresh
        control per job from the remaining budget shipped in the payload
        and pin it on their long-lived shared context for that one run.
        """
        previous = self.control
        self.control = control
        self.loop.control = control
        try:
            yield self
        finally:
            self.control = previous
            self.loop.control = previous

    @property
    def recorder(self):
        """The attached recorder, if any (via :attr:`observation`)."""
        return self.observation.recorder

    @property
    def tracer(self):
        """The attached tracer, if any (via :attr:`observation`)."""
        return self.observation.tracer

    # ------------------------------------------------------------------
    def buffers_for(self, graph):
        """Device buffers for ``graph``, uploading at most once per context.

        Cache hits zero the color/state arrays in place — same addresses,
        no transfer, no allocation.
        """
        key = id(graph)
        name = getattr(graph, "name", "?")
        hit = self._uploads.get(key)
        if hit is not None and hit[0] is graph:
            bufs = hit[1]
            self.upload_reuses += 1
            if self.tracer is not None:
                self.tracer.event(f"upload:{name}", "cache", hit=1, miss=0)
        else:
            if self.tracer is not None:
                self.tracer.event(f"upload:{name}", "cache", hit=0, miss=1)
            bufs = self.backend.upload_graph(graph)
            self._uploads[key] = (graph, bufs)
            self.uploads += 1
        bufs.colors.data.fill(0)
        bufs.aux.data.fill(0)
        return bufs

    def evict(self, graph) -> None:
        """Drop a graph's cached buffers (returns them to the pool)."""
        entry = self._uploads.pop(id(graph), None)
        if entry is not None:
            for buf in (entry[1].colors, entry[1].aux):
                self.backend.release(buf)

    # ------------------------------------------------------------------
    def run_recipe(self, graph, recipe: SchemeRecipe):
        """Run a prepared recipe against this context's cached state.

        The context's robustness bundle (if any) is ambient for the run,
        so injection/degradation sites deep in the kernels see it.  Guard
        failures raise here; the rerun degradation chain lives in
        :meth:`run`, which can rebuild the recipe.
        """
        bufs = self.buffers_for(graph)
        pool = getattr(self.backend, "device", None)
        pool_mark = (
            (pool.pool_hits, pool.pool_misses) if pool is not None else None
        )
        with fault_runtime.activate(self.robustness), \
                activate_control(self.control):
            result = self.loop.run(self.backend, graph, recipe, bufs)
        if self.tracer is not None and pool_mark is not None:
            self.tracer.event(
                "buffer-pool",
                "cache",
                hits=pool.pool_hits - pool_mark[0],
                misses=pool.pool_misses - pool_mark[1],
            )
        if self.observation.active:
            result.extra.setdefault("observation", self.observation)
        return result

    def run(
        self,
        graph,
        method: str = "data-ldg",
        *,
        validate: bool = True,
        mex=None,
        **kwargs,
    ):
        """Run a registered engine method by name (cf. ``color_graph``).

        ``mex=`` selects the forbidden-color kernel strategy for this run
        (``'bitmask'``, ``'bitmask:N'``, or ``'sort'``); results are
        byte-identical either way, only wall-clock speed differs.

        When a robustness bundle with ``degrade=True`` is attached, a run
        rejected by the guard rails (or killed by an injected fault) is
        degraded to a fresh rerun — cached buffers evicted, new recipe —
        up to ``policy.max_reruns`` times.  The simulation is
        deterministic, so a clean rerun's colors are byte-identical to a
        never-faulted run's.
        """
        from ..coloring.api import make_recipe
        from ..coloring.base import ColoringError
        from ..coloring.kernels import mex_strategy

        rb = self.robustness
        reruns_left = (
            rb.policy.max_reruns if rb is not None and rb.policy.degrade else 0
        )
        while True:
            recipe = make_recipe(
                method, entry_point="ExecutionContext.run", **kwargs
            )
            try:
                if mex is None:
                    result = self.run_recipe(graph, recipe)
                else:
                    with mex_strategy(mex):
                        result = self.run_recipe(graph, recipe)
                if validate:
                    result.validate(graph)
                if rb is not None:
                    result.extra["robustness"] = rb.report()
                return result
            except (*_RECOVERABLE, ColoringError) as exc:
                if reruns_left <= 0:
                    raise
                reruns_left -= 1
                rb.degrade(
                    "engine", "run", "rerun",
                    type(exc).__name__, f"{method}: {exc}",
                )
                # A corrupted pooled buffer must not leak into the rerun.
                self.evict(graph)

    def color_many(
        self, graphs, method: str = "data-ldg", *, validate: bool = True, **kwargs
    ) -> list:
        """Color a batch of graphs, reusing device state across the batch.

        Each graph's CSR upload happens exactly once per context (repeat
        appearances in ``graphs``, or later :meth:`run` calls on the same
        graph object, hit the cache), and scratch buffers recycle through
        the backend pool instead of growing the address space per run.
        """
        return [
            self.run(g, method, validate=validate, **kwargs) for g in graphs
        ]


def color_many(
    graphs,
    method: str = "data-ldg",
    *,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    workers=None,
    scheduler=None,
    cache=None,
    store=None,
    faults=None,
    health=None,
    deadline_ms=None,
    validate: bool = True,
    **kwargs,
) -> list:
    """One-shot batched coloring: build a context, run the whole batch.

    Convenience wrapper over :meth:`ExecutionContext.color_many`; use an
    explicit context to interleave batches with other runs or to read the
    reuse counters afterwards.  ``observe=`` attaches the unified
    observation surface to the whole batch (every run becomes one root
    span of the same tracer).

    Parallel/cached batches (see :mod:`repro.parallel`):

    * ``workers=N`` shards the batch across ``N`` worker processes
      (colors and iteration counts are byte-identical to a serial run;
      simulated timings can differ — each worker's device starts cold).
    * ``scheduler=`` picks the scheduler explicitly (``"serial"``,
      ``"process"``, or an instance); default inferred from ``workers``.
    * ``cache=`` consults a content-addressed result cache before
      executing each job (``"memory"``, a directory path, or a
      :class:`~repro.parallel.ResultCache`).
    * ``store=`` selects the graph arena workers read from (see
      :mod:`repro.graph.store` and docs/STORAGE.md): ``'shm'`` /
      ``'mmap'`` publish each unique topology once and ship zero-copy
      handles instead of pickled graphs; default ``'heap'`` pickles.

    Entries of ``graphs`` may also be ``(graph, method[, options])``
    tuples or :class:`~repro.parallel.ColorJob` instances for
    heterogeneous batches; failures after the scheduler's retries come
    back as :class:`~repro.parallel.JobFailure` entries at the failed
    job's position (falsy, so ``all(results)`` screens them).

    ``faults=`` / ``health=`` attach the robustness layer (see
    :mod:`repro.faults`) to every job of the batch: injection sites fire
    deterministically per (job, attempt), the guard rails watch every
    round loop, and exhausted process-pool retries degrade to a serial
    healing pass instead of surfacing failures.
    """
    reject_recorder_keyword("color_many", kwargs)
    if config is not None:
        from .config import normalize_config

        merged = normalize_config(
            "color_many",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "store": store, "workers": workers, "scheduler": scheduler,
                "cache": cache, "faults": faults, "health": health,
                "observe": observe, "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        store, workers = merged["store"], merged["workers"]
        scheduler, cache = merged["scheduler"], merged["cache"]
        faults, health = merged["faults"], merged["health"]
        observe, deadline_ms = merged["observe"], merged["deadline_ms"]
    from ..coloring.registry import resolve_method

    from ..coloring.api import METHODS

    method = resolve_method(method, METHODS, entry_point="color_many")
    graphs = list(graphs)
    from ..graph.csr import CSRGraph

    plain = all(isinstance(g, CSRGraph) for g in graphs)
    if (
        plain
        and workers in (None, 0, 1)
        and scheduler is None
        and cache is None
        and store is None
        and faults is None
        and health is None
    ):
        ctx = ExecutionContext(
            backend=backend, observe=observe, deadline_ms=deadline_ms,
            **dict(backend_opts or {})
        )
        return ctx.color_many(graphs, method, validate=validate, **kwargs)
    from ..parallel.jobs import normalize_jobs
    from ..parallel.scheduler import run_jobs

    jobs = normalize_jobs(graphs, default_method=method, default_options=kwargs)
    return run_jobs(
        jobs,
        workers=workers,
        scheduler=scheduler,
        backend=backend,
        backend_opts=backend_opts,
        observe=observe,
        cache=cache,
        store=store,
        validate=validate,
        faults=faults,
        health=health,
        deadline_ms=deadline_ms,
    )
