"""Execution backends: the substrate a scheme recipe runs against.

A *backend* owns the simulated hardware a recipe's kernels are priced on
and exposes the narrow device surface the engine needs:

* memory — ``alloc`` / ``register`` / ``release`` returning
  :class:`~repro.gpusim.device.DeviceArray` handles with stable simulated
  addresses, plus ``upload_graph`` for the CSR + color state bundle;
* kernels — ``builder`` / ``commit`` (the trace-record-then-price cycle);
* host traffic — ``htod`` / ``dtoh`` (PCIe on the GPU, a no-op on the
  unified-memory CPU model);
* accounting — ``mark`` / ``timing_since`` so one long-lived backend can
  serve many runs and still report per-run timings (the
  :class:`~repro.engine.context.ExecutionContext` batching contract).

Two implementations ship: :class:`GpuSimBackend` wraps the simulated K20c
(:class:`~repro.gpusim.device.Device`) and is the default;
:class:`CpuSimBackend` prices the *same* recipes on the multicore Xeon
model (Çatalyürek-style speculative coloring on CPUs), demonstrating that
the recipe layer is substrate-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..cpusim.model import CPU, MulticoreCPU
from ..faults import TransientKernelError
from ..faults.runtime import active_fire
from ..gpusim.config import DeviceConfig, LaunchConfig
from ..gpusim.device import Device, DeviceArray

__all__ = [
    "TimingDelta",
    "Mark",
    "Backend",
    "GpuSimBackend",
    "CpuSimBackend",
    "CompiledSimBackend",
    "resolve_backend",
    "BACKENDS",
]

_ALIGNMENT = 256  # matches gpusim.device alignment

#: Simulated bytes a ``clock-stall`` fault charges when no param is given
#: (a 1 MiB phantom readback — enough to visibly skew a run's timeline).
_DEFAULT_STALL_BYTES = 1 << 20


def _commit_gate(name: str, stall=None) -> None:
    """Consult the ambient fault bundle before pricing a kernel.

    ``kernel-transient`` raises a retryable :class:`TransientKernelError`;
    ``clock-stall`` calls ``stall(nbytes)`` (when the backend provides
    one) to charge idle simulated time — timings skew, colors do not.
    """
    spec = active_fire("kernel-transient", kernel=name)
    if spec is not None:
        raise TransientKernelError(
            f"injected transient failure in kernel {name!r}"
        )
    if stall is not None:
        spec = active_fire("clock-stall", kernel=name)
        if spec is not None:
            stall(int(spec.param) if spec.param else _DEFAULT_STALL_BYTES)


@dataclass(frozen=True)
class Mark:
    """Opaque position in a backend's event history (see ``timing_since``)."""

    events: int = 0
    cpu_events: int = 0


@dataclass(frozen=True)
class TimingDelta:
    """Per-run timing totals between a :class:`Mark` and now."""

    gpu_time_us: float = 0.0
    cpu_time_us: float = 0.0
    transfer_time_us: float = 0.0
    num_launches: int = 0


@runtime_checkable
class Backend(Protocol):
    """Duck type every execution backend satisfies (see module docstring)."""

    name: str

    def alloc(self, shape, dtype, *, name: str = "buf", fill=None) -> DeviceArray: ...

    def register(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray: ...

    def release(self, buf: DeviceArray) -> None: ...

    def upload_graph(self, graph): ...

    def builder(self, num_threads: int, launch=None, *, name: str = "kernel"): ...

    def commit(self, builder): ...

    def commit_pair(self, first, second): ...

    def htod(self, nbytes: int) -> None: ...

    def dtoh(self, nbytes: int) -> None: ...

    def race_window(self, launch) -> int: ...

    def attach_tracer(self, tracer) -> None: ...

    def mark(self) -> Mark: ...

    def timing_since(self, mark: Mark) -> TimingDelta: ...


class GpuSimBackend:
    """The simulated Kepler-class GPU (the paper's K20c by default).

    Thin delegation onto :class:`~repro.gpusim.device.Device` with the
    device's allocation pool enabled, so worklists and scratch buffers are
    recycled across runs instead of consuming fresh address space.
    """

    name = "gpusim"

    def __init__(
        self,
        device: Device | None = None,
        *,
        config: DeviceConfig | None = None,
        cache_model: str = "reuse_distance",
        seed: int = 0,
    ) -> None:
        if device is None:
            kwargs = {"cache_model": cache_model, "seed": seed}
            device = Device(config, **kwargs) if config is not None else Device(**kwargs)
        self.device = device
        self.device.enable_pool()
        self._host_cpu: CPU | None = None

    # -- memory ---------------------------------------------------------
    def alloc(self, shape, dtype, *, name: str = "buf", fill=None) -> DeviceArray:
        return self.device.alloc(shape, dtype, name=name, fill=fill)

    def register(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray:
        return self.device.register(host_array, name=name)

    def release(self, buf: DeviceArray) -> None:
        self.device.release(buf)

    def upload_graph(self, graph):
        """Place CSR + color state on the device, charging one HtoD burst.

        The R/C arrays are charged as a single PCIe transfer event (one
        per graph per context — the reuse the batching API eliminates);
        per-run timings exclude it because the engine marks its timing
        span *after* the upload, matching the paper's I/O exclusion.
        """
        from ..coloring.kernels import upload_graph

        bufs = upload_graph(self.device, graph)
        self.device.htod(bufs.R.nbytes + bufs.C.nbytes)
        return bufs

    # -- kernels --------------------------------------------------------
    def builder(self, num_threads: int, launch=None, *, name: str = "kernel"):
        return self.device.builder(num_threads, launch, name=name)

    def commit(self, builder):
        _commit_gate(builder.name, stall=self.device.dtoh)
        return self.device.commit(builder)

    def commit_pair(self, first, second):
        _commit_gate(first.name, stall=self.device.dtoh)
        _commit_gate(second.name, stall=self.device.dtoh)
        return self.device.commit_pair(first, second)

    # -- transfers ------------------------------------------------------
    def htod(self, nbytes: int) -> None:
        self.device.htod(nbytes)

    def dtoh(self, nbytes: int) -> None:
        self.device.dtoh(nbytes)

    # -- geometry -------------------------------------------------------
    def race_window(self, launch) -> int:
        """Threads that truly race (see ``kernels.race_window_threads``)."""
        return self.device.config.warp_size

    @property
    def warp_size(self) -> int:
        return self.device.config.warp_size

    def host_cpu(self) -> CPU:
        """The host-side sequential CPU model (3-step GM's step 3)."""
        if self._host_cpu is None:
            self._host_cpu = CPU()
        return self._host_cpu

    # -- observation ----------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Mirror every priced device event into ``tracer`` (None detaches)."""
        self.device.tracer = tracer

    @property
    def tracer(self):
        return self.device.tracer

    # -- accounting -----------------------------------------------------
    def mark(self) -> Mark:
        return Mark(events=len(self.device.timeline.events))

    def timing_since(self, mark: Mark) -> TimingDelta:
        span = self.device.timeline.since(mark.events)
        return TimingDelta(
            gpu_time_us=span.kernel_time_us()
            + span.launch_overhead_us(self.device.config),
            transfer_time_us=span.transfer_time_us(),
            num_launches=span.num_launches(),
        )


@dataclass
class _CoreGeometry:
    """Stands in for ``DeviceConfig`` where charge helpers read geometry."""

    warp_size: int


class CpuTraceBuilder:
    """Collects a kernel's work as a flat instruction + address stream.

    Implements the recording surface of
    :class:`~repro.gpusim.trace.TraceBuilder` (``load``/``store``/
    ``atomic``/``instructions``/``uniform_overhead``/``barrier``/
    ``activate``) so the same charge helpers drive both substrates; on
    commit the totals are priced as one OpenMP-style parallel region.
    """

    _INSTR_PER_ATOMIC = 6  # lock-prefixed RMW + retry check

    def __init__(self, geometry: _CoreGeometry, launch: LaunchConfig, num_threads: int, name: str) -> None:
        self.device = geometry
        self.launch = launch
        self.num_threads = num_threads
        self.name = name
        self.total_instructions = 0
        self.addresses: list[np.ndarray] = []
        self.num_active = 0

    def _record(self, addresses) -> None:
        addrs = np.asarray(addresses, dtype=np.int64).ravel()
        if addrs.size:
            self.addresses.append(addrs)

    def load(self, thread_ids, addresses, *, ldg: bool = False, step=0, memo=None) -> None:
        self._record(addresses)

    def store(self, thread_ids, addresses, *, step=0, memo=None) -> None:
        self._record(addresses)

    def atomic(self, thread_ids, addresses, *, step=0) -> None:
        addrs = np.asarray(addresses, dtype=np.int64).ravel()
        self._record(addrs)
        self.total_instructions += self._INSTR_PER_ATOMIC * addrs.size

    def instructions(self, thread_ids, counts, *, note: str = "") -> None:
        counts = np.asarray(counts)
        if counts.ndim == 0:
            self.total_instructions += int(counts) * int(np.size(thread_ids))
        else:
            self.total_instructions += int(counts.sum())

    def uniform_overhead(self, per_thread_instr: int) -> None:
        self.total_instructions += int(per_thread_instr) * self.num_threads

    def barrier(self, times: int = 1) -> None:
        pass  # fork/join cost is charged per region by the multicore model

    def activate(self, num_active: int) -> None:
        self.num_active = int(num_active)


class CpuSimBackend:
    """Price scheme recipes on the multicore Xeon model instead of the GPU.

    Each committed "kernel" becomes one parallel region on a
    :class:`~repro.cpusim.model.MulticoreCPU`: total dynamic instructions
    split across cores, the gather address stream run through the CPU
    cache hierarchy.  Memory is unified, so ``htod``/``dtoh`` are free and
    ``release`` is a no-op.  The functional results differ from the GPU
    backend only through the race window (``cores`` threads race instead
    of a 32-wide warp).
    """

    name = "cpusim"

    def __init__(self, cpu: MulticoreCPU | None = None, *, cores: int = 8) -> None:
        self.cpu = cpu if cpu is not None else MulticoreCPU(cores=cores)
        self._geometry = _CoreGeometry(warp_size=self.cpu.cores)
        self._next_addr = _ALIGNMENT
        self._host_cpu: CPU | None = None
        self.tracer = None

    # -- memory ---------------------------------------------------------
    def _place(self, arr: np.ndarray, name: str) -> DeviceArray:
        base = self._next_addr
        self._next_addr += (arr.nbytes + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        if self.tracer is not None:
            self.tracer.event(f"alloc:{name}", "alloc", nbytes=arr.nbytes, pooled=0)
        return DeviceArray(data=arr, base=base, name=name)

    def alloc(self, shape, dtype, *, name: str = "buf", fill=None) -> DeviceArray:
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        return self._place(arr, name)

    def register(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray:
        return self._place(np.array(host_array, copy=True), name)

    def upload(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray:
        return self.register(host_array, name=name)  # unified memory: free

    def release(self, buf: DeviceArray) -> None:
        pass  # host memory; nothing to pool

    def upload_graph(self, graph):
        from ..coloring.kernels import upload_graph

        return upload_graph(self, graph)

    # -- kernels --------------------------------------------------------
    def builder(self, num_threads: int, launch=None, *, name: str = "kernel"):
        return CpuTraceBuilder(self._geometry, launch or LaunchConfig(), num_threads, name)

    def commit(self, builder: CpuTraceBuilder):
        _commit_gate(builder.name)  # unified memory: no stall surface
        addrs = (
            np.concatenate(builder.addresses) if builder.addresses else None
        )
        event = self.cpu.run_parallel(
            builder.name,
            instructions=builder.total_instructions,
            addresses=addrs,
        )
        if self.tracer is not None:
            self.tracer.event(
                event.name,
                "kernel",
                duration_us=event.time_us,
                kernel_us=event.time_us,
                launches=1,
                instructions=event.instructions,
                dram_bytes=0,
                transactions=event.accesses,
            )
        return event

    def commit_pair(self, first, second):
        # The multicore model is stateful and cheap to price; sequential
        # commits already match the GPU backend's ordering contract.
        return self.commit(first), self.commit(second)

    # -- transfers: unified memory --------------------------------------
    def htod(self, nbytes: int) -> None:
        pass

    def dtoh(self, nbytes: int) -> None:
        pass

    # -- geometry -------------------------------------------------------
    def race_window(self, launch) -> int:
        return self.cpu.cores

    @property
    def warp_size(self) -> int:
        return self.cpu.cores

    def host_cpu(self) -> CPU:
        if self._host_cpu is None:
            self._host_cpu = CPU(config=self.cpu.config)
        return self._host_cpu

    # -- observation ----------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Mirror priced parallel regions into ``tracer`` (None detaches)."""
        self.tracer = tracer

    # -- accounting -----------------------------------------------------
    def mark(self) -> Mark:
        return Mark(cpu_events=len(self.cpu.events))

    def timing_since(self, mark: Mark) -> TimingDelta:
        events = self.cpu.events[mark.cpu_events:]
        return TimingDelta(
            cpu_time_us=sum(e.time_us for e in events),
            num_launches=len(events),
        )


class CompiledSimBackend(GpuSimBackend):
    """``gpusim`` with the hot functional loops routed through JIT kernels.

    Identical device model, identical pricing, identical results — the
    difference is *host* wall-clock: while a run is active, the kernel
    and pricing modules route their hot loop bodies (mex, the fused wave
    loop, conflict detection, worklist compaction, reuse-distance and
    trace-coalescing scans) through :mod:`repro.compiledsim`, which uses
    numba ``@njit(cache=True)`` kernels when numba is importable, a
    ctypes-bound C build otherwise, and falls back to the unchanged
    NumPy paths (one-time warning) when neither toolchain exists.

    Parameters are :class:`GpuSimBackend`'s plus ``jit=``:
    ``'auto'`` (default tiering), ``'numba'`` / ``'cc'`` (require that
    tier, raise :class:`~repro.compiledsim.CompiledTierError` if
    missing), ``'numpy'`` (explicit silent fallback).
    """

    name = "compiled"

    def __init__(
        self,
        device: Device | None = None,
        *,
        config: DeviceConfig | None = None,
        cache_model: str = "reuse_distance",
        seed: int = 0,
        jit: str = "auto",
    ) -> None:
        super().__init__(
            device, config=config, cache_model=cache_model, seed=seed
        )
        from .. import compiledsim

        self.jit = jit
        # Resolve (and warn, if falling back) at construction so a
        # misconfigured explicit tier fails fast, not mid-run.
        self.tier = compiledsim.get_kernels(jit)[0]

    def functional_scope(self):
        """Context manager activating compiled dispatch for one run.

        The round loop wraps each run's whole dynamic extent in this, so
        every kernel and pricing call the run makes sees the compiled
        engine flag (the ``_MEX_STRATEGY`` scoping idiom).
        """
        from ..compiledsim import dispatch

        return dispatch.scope(self.jit)


#: Registry of constructible backends, keyed by their ``name``.
BACKENDS: dict[str, type] = {
    GpuSimBackend.name: GpuSimBackend,
    CpuSimBackend.name: CpuSimBackend,
    CompiledSimBackend.name: CompiledSimBackend,
}


def resolve_backend(spec, **kwargs):
    """Turn a backend spec into a backend instance.

    Accepts a backend instance (returned as-is), a name from
    :data:`BACKENDS` (constructed with ``**kwargs``), or a raw
    :class:`~repro.gpusim.device.Device` (wrapped in a
    :class:`GpuSimBackend` — the legacy ``device=`` path).
    """
    if spec is None:
        return GpuSimBackend(**kwargs)
    if isinstance(spec, str):
        try:
            return BACKENDS[spec](**kwargs)
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
            ) from None
    if isinstance(spec, Device):
        return GpuSimBackend(spec, **kwargs)
    if isinstance(spec, Backend):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as an execution backend")
