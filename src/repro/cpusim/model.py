"""Sequential-CPU cost model for the baseline the paper normalizes to.

The paper's speedups are "time on K20c / time of the sequential greedy on a
Xeon E5-2670".  Wall-clock of our NumPy code is meaningless for that ratio
(it measures the Python interpreter, not the algorithm), so the sequential
baseline is priced with the same trace-driven methodology as the GPU: the
algorithm emits its memory-access stream, a two-level cache model (256 KB
L2 + 20 MB LLC) assigns latencies, and an out-of-order core model overlaps
them against instruction issue.

Model: ``cycles = max(instructions / IPC, total_miss_latency / MLP)`` —
the standard first-order OoO bound (issue-limited vs memory-limited), with
MLP capped by the line-fill buffers a single core sustains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.cache import reuse_distance_hits
from ..gpusim.config import CPUConfig, XEON_E5_2670

__all__ = ["CPUEvent", "CPU"]


@dataclass(frozen=True)
class CPUEvent:
    """One priced stretch of sequential execution."""

    name: str
    instructions: int
    accesses: int
    l2_hits: int
    llc_hits: int
    dram_accesses: int
    cycles: float
    time_us: float


@dataclass
class CPU:
    """A single simulated CPU core with an event timeline."""

    config: CPUConfig = field(default_factory=lambda: XEON_E5_2670)
    events: list[CPUEvent] = field(default_factory=list)

    def run(
        self,
        name: str,
        *,
        instructions: int,
        addresses: np.ndarray | None = None,
        sequential_bytes: int = 0,
    ) -> CPUEvent:
        """Price a stretch of execution.

        Parameters
        ----------
        instructions:
            Dynamic instruction count of the stretch.
        addresses:
            Byte addresses of its *irregular* (gather) memory accesses, in
            program order; these run through the cache model.
        sequential_bytes:
            Bytes touched by streaming (prefetchable) accesses — charged at
            one miss per line against DRAM latency but with perfect MLP
            overlap, i.e. effectively bandwidth-free in this latency model.
        """
        cfg = self.config
        l2_hits = llc_hits = dram = 0
        miss_latency = 0.0
        n_access = 0
        if addresses is not None and len(addresses):
            addresses = np.asarray(addresses, dtype=np.int64)
            n_access = addresses.size
            lines = addresses >> (int(cfg.cache_line_bytes).bit_length() - 1)
            in_l2 = reuse_distance_hits(lines, cfg.l2_cache_lines)
            in_llc = reuse_distance_hits(lines, cfg.llc_cache_lines) & ~in_l2
            to_dram = ~(in_l2 | in_llc)
            l2_hits = int(in_l2.sum())
            llc_hits = int(in_llc.sum())
            dram = int(to_dram.sum())
            miss_latency = (
                l2_hits * cfg.l2_hit_latency
                + llc_hits * cfg.llc_hit_latency
                + dram * cfg.dram_latency
            )
        # Streaming traffic: hardware prefetchers hide latency; charge a
        # nominal 2 cycles per line to keep long streams from being free.
        stream_lines = sequential_bytes // cfg.cache_line_bytes
        stream_cycles = 2.0 * stream_lines

        cycles = max(instructions / cfg.ipc, miss_latency / cfg.mlp) + stream_cycles
        event = CPUEvent(
            name=name,
            instructions=instructions,
            accesses=n_access,
            l2_hits=l2_hits,
            llc_hits=llc_hits,
            dram_accesses=dram,
            cycles=cycles,
            time_us=cycles / cfg.cycles_per_us,
        )
        self.events.append(event)
        return event

    def total_time_us(self) -> float:
        return sum(e.time_us for e in self.events)

    def reset(self) -> None:
        self.events.clear()


@dataclass
class MulticoreCPU:
    """A ``p``-core CPU model for the OpenMP-style parallel baselines.

    Çatalyürek et al.'s speculative greedy runs on multicore CPUs; pricing
    it lets the library reproduce the Background-section comparison.  The
    model runs each parallel region as ``p`` single-core stretches over a
    ``1/p`` work share with an Amdahl-style parallel efficiency (memory
    bandwidth and coherence keep real scaling below linear), plus a
    per-round barrier cost.
    """

    config: CPUConfig = field(default_factory=lambda: XEON_E5_2670)
    cores: int = 8
    parallel_efficiency: float = 0.75
    barrier_us: float = 2.0  # OpenMP barrier + fork/join per region
    events: list[CPUEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if not 0 < self.parallel_efficiency <= 1:
            raise ValueError("parallel_efficiency must be in (0, 1]")

    def run_parallel(
        self,
        name: str,
        *,
        instructions: int,
        addresses: np.ndarray | None = None,
        sequential_bytes: int = 0,
    ) -> CPUEvent:
        """Price one parallel region (a 'for ... in parallel' round)."""
        core = CPU(config=self.config)
        share = max(1, self.cores)
        sub_addresses = None
        if addresses is not None and len(addresses):
            # Each core sees an interleaved 1/p slice of the access stream;
            # slicing preserves each core's locality structure.
            sub_addresses = np.asarray(addresses)[:: share]
        event = core.run(
            name,
            instructions=int(instructions / share),
            addresses=sub_addresses,
            sequential_bytes=int(sequential_bytes / share),
        )
        cycles = event.cycles / self.parallel_efficiency
        cycles += self.barrier_us * self.config.cycles_per_us
        out = CPUEvent(
            name=name,
            instructions=event.instructions,
            accesses=event.accesses,
            l2_hits=event.l2_hits,
            llc_hits=event.llc_hits,
            dram_accesses=event.dram_accesses,
            cycles=cycles,
            time_us=cycles / self.config.cycles_per_us,
        )
        self.events.append(out)
        return out

    def total_time_us(self) -> float:
        return sum(e.time_us for e in self.events)
