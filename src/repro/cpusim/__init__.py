"""Sequential and multicore CPU cost models (Xeon E5-2670 class)."""

from .model import CPU, CPUEvent, MulticoreCPU

__all__ = ["CPU", "CPUEvent", "MulticoreCPU"]
