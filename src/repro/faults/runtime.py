"""Ambient robustness context for deep call sites.

Most robustness plumbing is explicit (``robustness=`` parameters), but a
few injection/degradation sites live in code that deliberately knows
nothing about the engine — e.g. the mex kernels in
``repro.coloring.kernels``.  Those consult the *active* bundle installed
here by ``ExecutionContext`` for the duration of a run.

This is a plain module global, not thread-local: the simulator is
single-threaded per process, and worker processes each install their
own bundle.  ``note_degradation`` is the cheap no-op-when-inactive hook
hot paths call.
"""

from __future__ import annotations

from contextlib import contextmanager

from .robustness import Robustness

__all__ = ["activate", "get_active", "note_degradation", "active_fire"]

_ACTIVE: Robustness | None = None


@contextmanager
def activate(robustness: Robustness | None):
    """Install ``robustness`` as the ambient bundle for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = robustness
    try:
        yield robustness
    finally:
        _ACTIVE = previous


def get_active() -> Robustness | None:
    return _ACTIVE


def note_degradation(chain: str, from_mode: str, to_mode: str,
                     reason: str, detail: str = "") -> None:
    """Record a degradation event on the active bundle, if any."""
    if _ACTIVE is not None:
        _ACTIVE.degrade(chain, from_mode, to_mode, reason, detail)


def active_fire(site: str, **key):
    """Fire an injection site on the active bundle, if any."""
    if _ACTIVE is not None:
        return _ACTIVE.fire(site, **key)
    return None
