"""Deterministic fault injection, health guards, and degradation chains.

This package is the robustness layer's *vocabulary* — fault plans,
injectors, health policies, degradation logs — and deliberately imports
nothing from ``repro.engine``, ``repro.coloring``, or ``repro.parallel``:
the dependency direction is engine → faults only.  See
``docs/ROBUSTNESS.md`` for the user-facing guide.
"""

from .degrade import DegradationEvent, DegradationLog
from .health import HealthPolicy, resolve_health
from .injector import (
    FaultInjected,
    FaultInjector,
    InjectedFault,
    TransientKernelError,
)
from .plan import SITES, FaultPlan, FaultSpec, resolve_faults
from .robustness import Robustness, resolve_robustness
from .runtime import activate, active_fire, get_active, note_degradation

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "resolve_faults",
    "FaultInjected",
    "TransientKernelError",
    "InjectedFault",
    "FaultInjector",
    "DegradationEvent",
    "DegradationLog",
    "HealthPolicy",
    "resolve_health",
    "Robustness",
    "resolve_robustness",
    "activate",
    "active_fire",
    "get_active",
    "note_degradation",
]
