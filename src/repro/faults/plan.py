"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` declares *where* and *when* the engine should be
made to fail: each :class:`FaultSpec` names an injection **site** (a
choke point the execution layers consult — see :data:`SITES`), an
optional exact-match key filter (``when``), an optional probability, and
an optional fire budget.  Everything about a plan is deterministic:
probabilistic decisions hash ``(seed, site, key)`` through SHA-256, so
the same plan produces the same injected-fault sequence on every run —
the property the chaos suite and the CI determinism gate rely on.

Plans are frozen dataclasses of primitives, hence picklable: the process
scheduler ships them into worker processes unchanged.  The CLI spells a
plan as a compact string (:meth:`FaultPlan.parse`)::

    seed=7; worker-crash: job=0, attempt=1; job-error: p=0.25

Reserved spec keys: ``p``/``probability``, ``max_fires``, ``param``
(site-specific magnitude: hang seconds, stall bytes, flip bit).  Every
other ``k=v`` is a ``when`` filter matched against the keys the site
reports (``job``, ``attempt``, ``kernel``, ``round``, ...).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["SITES", "FaultSpec", "FaultPlan", "resolve_faults"]

#: Injection sites the execution layers consult, and what firing does.
SITES: dict[str, str] = {
    "worker-crash": "kill the worker process mid-job (process scheduler only); "
                    "keys: job, attempt",
    "worker-hang": "block the worker past the scheduler timeout (process "
                   "scheduler only); keys: job, attempt; param = seconds",
    "job-error": "raise a transient error inside the job runner (any "
                 "scheduler); keys: job, attempt",
    "kernel-transient": "raise TransientKernelError from a backend commit; "
                        "keys: kernel",
    "clock-stall": "charge a burst of idle simulated time at a backend "
                   "commit (gpusim); keys: kernel; param = bytes",
    "buffer-bitflip": "flip one bit of the pooled device color buffer "
                      "between rounds; keys: round; param = bit index",
    "result-corrupt": "flip one bit of the finalized colors before the "
                      "end-of-run audit; param = bit index",
    "cache-corrupt": "overwrite a just-stored result-cache disk entry with "
                     "garbage bytes; keys: job",
    "halo-drop": "drop one halo message before delivery (distributed); "
                 "keys: round, src, dst",
    "halo-corrupt": "flip payload colors of one halo message before "
                    "delivery (distributed); keys: round, src, dst; "
                    "param = added offset",
    "halo-reorder": "deliver one round's halo messages in reversed order "
                    "(distributed); keys: round",
    "transport-partition": "partition the interconnect for one sync round — "
                           "no halo messages delivered (distributed); "
                           "keys: round",
    "dispatcher-crash": "kill the service dispatcher task mid-batch "
                        "(service); keys: batch",
    "checkpoint-torn": "truncate a checkpoint blob after its checksum is "
                       "taken (detected as torn at resume); keys: round",
    "checkpoint-corrupt": "flip a checkpoint blob byte after its checksum "
                          "is taken (detected as corrupt at resume); "
                          "keys: round",
    "deadline-storm": "force the run's deadline to expire at a round "
                      "boundary; keys: round, phase ('sync' for "
                      "distributed sync rounds, 'window'/'repair' for "
                      "streamed runs; engine rounds report no phase)",
}

#: Spec keys that configure the spec itself rather than filter the site key.
_RESERVED = ("p", "probability", "max_fires", "param")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative injection rule (see module docstring)."""

    site: str
    when: tuple[tuple[str, object], ...] = ()
    probability: float = 1.0
    max_fires: int | None = None
    param: float | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {sorted(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")

    def matches(self, key: dict) -> bool:
        """True when every ``when`` filter equals the site's reported key."""
        return all(key.get(k) == v for k, v in self.when)


def _coerce(value: str):
    """CLI value coercion: int when it looks like one, else float, else str."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of :class:`FaultSpec` rules."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- deterministic randomness --------------------------------------
    def _digest(self, site: str, key: dict) -> int:
        payload = f"{self.seed}|{site}|{sorted(key.items())}"
        return int.from_bytes(
            hashlib.sha256(payload.encode("utf-8")).digest()[:8], "big"
        )

    def chance(self, site: str, key: dict) -> float:
        """A uniform [0, 1) draw, fully determined by (seed, site, key)."""
        return self._digest(site, key) / 2.0**64

    def index_for(self, site: str, size: int, key: dict) -> int:
        """A deterministic index in ``[0, size)`` (victim selection)."""
        if size <= 0:
            return 0
        return self._digest(site, {"victim": True, **key}) % size

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar (see module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        for raw in str(text).split(";"):
            token = raw.strip()
            if not token:
                continue
            if token.startswith("seed=") and ":" not in token:
                seed = int(token[len("seed="):])
                continue
            site, _, argtext = token.partition(":")
            site = site.strip()
            kwargs: dict = {"probability": 1.0, "max_fires": None, "param": None}
            when: list[tuple[str, object]] = []
            for pair in argtext.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                k, eq, v = pair.partition("=")
                if not eq:
                    raise ValueError(
                        f"bad fault spec argument {pair!r} in {token!r}: "
                        f"expected key=value"
                    )
                k = k.strip()
                v = _coerce(v.strip())
                if k in ("p", "probability"):
                    kwargs["probability"] = float(v)
                elif k == "max_fires":
                    kwargs["max_fires"] = int(v)
                elif k == "param":
                    kwargs["param"] = float(v)
                else:
                    when.append((k, v))
            specs.append(FaultSpec(site=site, when=tuple(when), **kwargs))
        return cls(seed=seed, specs=tuple(specs))

    def describe(self) -> list[dict]:
        """JSON-able view of the plan (for reports and artifacts)."""
        return [
            {
                "site": s.site,
                "when": dict(s.when),
                "probability": s.probability,
                "max_fires": s.max_fires,
                "param": s.param,
            }
            for s in self.specs
        ]


def resolve_faults(spec) -> FaultPlan | None:
    """Normalize any accepted ``faults=`` value into a :class:`FaultPlan`.

    ``None`` → no plan; a :class:`FaultPlan` → itself; a string → the CLI
    grammar; a dict → ``FaultPlan(seed=..., specs=[...])`` where specs
    entries may be :class:`FaultSpec` or dicts.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        return FaultPlan.parse(spec)
    if isinstance(spec, dict):
        specs = []
        for entry in spec.get("specs", ()):
            if isinstance(entry, FaultSpec):
                specs.append(entry)
            else:
                entry = dict(entry)
                when = tuple(sorted(entry.pop("when", {}).items()))
                specs.append(FaultSpec(when=when, **entry))
        return FaultPlan(seed=int(spec.get("seed", 0)), specs=tuple(specs))
    raise TypeError(
        f"cannot interpret {spec!r} as a fault plan: expected None, a "
        f"FaultPlan, a spec string, or a dict"
    )
