"""Runtime side of fault injection: firing decisions and records.

A :class:`FaultInjector` wraps a :class:`~repro.faults.plan.FaultPlan`
and answers the only question the execution layers ask: *"site X is
about to happen with key K — should a fault fire here?"* (:meth:`fire`).
Every fire is recorded as an :class:`InjectedFault`, so a run can report
the exact injected sequence; the chaos suite asserts this sequence is
identical across runs of the same plan.

Fire budgets (``max_fires``) are tracked per injector instance.  The
process scheduler builds one injector per (job, attempt) inside the
worker, so budgets there are per-attempt; single-run engine paths build
one injector per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import FaultPlan, FaultSpec

__all__ = [
    "FaultInjected",
    "TransientKernelError",
    "InjectedFault",
    "FaultInjector",
]


class FaultInjected(RuntimeError):
    """Base class for errors raised *by* the fault layer on purpose."""


class TransientKernelError(FaultInjected):
    """An injected, retryable kernel failure (site ``kernel-transient``)."""


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired."""

    site: str
    key: tuple[tuple[str, object], ...]
    param: float | None = None

    def to_dict(self) -> dict:
        return {"site": self.site, "key": dict(self.key), "param": self.param}


class FaultInjector:
    """Consults a plan at injection sites and records what fired."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired: list[InjectedFault] = []
        self._fire_counts: dict[int, int] = {}

    def fire(self, site: str, **key) -> FaultSpec | None:
        """Return the matching spec if a fault should fire here, else None.

        A spec fires when its site and ``when`` filters match, its fire
        budget is not exhausted, and the deterministic chance draw for
        (seed, site, key) lands under its probability.  The first
        matching spec wins; a fire is appended to :attr:`fired`.
        """
        for idx, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(key):
                continue
            if spec.max_fires is not None:
                if self._fire_counts.get(idx, 0) >= spec.max_fires:
                    continue
            if spec.probability < 1.0:
                if self.plan.chance(site, key) >= spec.probability:
                    continue
            self._fire_counts[idx] = self._fire_counts.get(idx, 0) + 1
            record = InjectedFault(
                site=site, key=tuple(sorted(key.items())), param=spec.param
            )
            self.fired.append(record)
            return spec
        return None

    # -- reporting -----------------------------------------------------
    def report(self) -> list[dict]:
        """JSON-able list of fired faults, in firing order."""
        return [f.to_dict() for f in self.fired]

    def absorb(self, fired: list[dict]) -> None:
        """Merge a sub-report (e.g. from a worker process) into this one."""
        for entry in fired:
            self.fired.append(
                InjectedFault(
                    site=entry["site"],
                    key=tuple(sorted(entry.get("key", {}).items())),
                    param=entry.get("param"),
                )
            )
