"""The per-run robustness bundle: injector + policy + degradation log.

``resolve_robustness(faults=..., health=...)`` is the single entry point
the engine surface uses: it turns whatever the caller passed for the two
engine options into one :class:`Robustness` object (or ``None`` when
neither option is set — the zero-overhead default).  A ready-made
:class:`Robustness` passes through unchanged, which is how the CLI and
``run_jobs`` share one bundle across many runs.
"""

from __future__ import annotations

from .degrade import DegradationLog
from .health import HealthPolicy, resolve_health
from .injector import FaultInjector
from .plan import FaultPlan, resolve_faults

__all__ = ["Robustness", "resolve_robustness"]


class Robustness:
    """Everything a run needs to inject faults and degrade gracefully.

    ``breaker`` (optional, see :mod:`repro.resilience.breaker`) is the
    circuit breaker the scheduler/transport consult before paying for a
    primary path that keeps failing; ``annex`` collects resilience
    accounting (checkpoint stats, deadline attribution) that belongs in
    the run report but has no structure of its own.
    """

    def __init__(self, *, injector: FaultInjector | None = None,
                 policy: HealthPolicy | None = None,
                 log: DegradationLog | None = None,
                 breaker=None):
        self.injector = injector
        self.policy = policy if policy is not None else HealthPolicy()
        self.log = log if log is not None else DegradationLog()
        self.breaker = breaker
        self.annex: dict = {}

    def annotate(self, key: str, value) -> None:
        """Attach one resilience-accounting entry to the run report."""
        self.annex[key] = value

    @property
    def plan(self) -> FaultPlan | None:
        return self.injector.plan if self.injector is not None else None

    def fire(self, site: str, **key):
        """Injection-site shorthand: None-safe :meth:`FaultInjector.fire`."""
        if self.injector is None:
            return None
        return self.injector.fire(site, **key)

    def degrade(self, chain: str, from_mode: str, to_mode: str,
                reason: str, detail: str = ""):
        return self.log.record(chain, from_mode, to_mode, reason, detail)

    def report(self) -> dict:
        """JSON-able run report: plan, fired faults, degradation events,
        breaker state, and any resilience annex (checkpoint/deadline)."""
        out = {
            "plan": self.plan.describe() if self.plan is not None else [],
            "seed": self.plan.seed if self.plan is not None else None,
            "fired": self.injector.report() if self.injector else [],
            "degradations": self.log.report(),
        }
        if self.breaker is not None:
            out["breaker"] = self.breaker.snapshot()
        out.update(self.annex)
        return out


def resolve_robustness(faults=None, health=None) -> Robustness | None:
    """Build the run's :class:`Robustness` bundle, or ``None`` for neither.

    A :class:`Robustness` instance passed as ``faults`` is returned
    unchanged (``health`` must then be unset).
    """
    if isinstance(faults, Robustness):
        if health is not None:
            raise ValueError(
                "pass either a ready Robustness bundle or health=, not both"
            )
        return faults
    plan = resolve_faults(faults)
    if plan is None and health is None:
        return None
    return Robustness(
        injector=FaultInjector(plan) if plan is not None else None,
        policy=resolve_health(health),
    )
