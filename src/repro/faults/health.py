"""Health policies: what the engine's guard rails should enforce.

A :class:`HealthPolicy` configures the :class:`RoundLoop` guard rails —
the convergence watchdog, post-round invariant checks, and the
end-of-run coloring audit — plus whether degradation chains are allowed
to heal failures (``degrade``) and how many fresh reruns the engine may
spend doing so (``max_reruns``).

``resolve_health`` accepts the ``health=`` engine-option spellings:
``None`` (default policy), ``"strict"`` (all guards on, no degradation
— failures raise), ``"off"`` (guards off), or a policy instance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HealthPolicy", "resolve_health"]


@dataclass(frozen=True)
class HealthPolicy:
    """Guard-rail configuration for a run.

    max_iterations: overrides the RoundLoop cap when set.
    no_progress_window: rounds with no drop in the uncolored count before
        the watchdog declares livelock (0 disables the watchdog).
    invariants: run post-round invariant checks (colored-set
        monotonicity, worklist-size sanity).
    audit: re-verify the final coloring against the CSR before the
        result leaves the engine.
    degrade: allow degradation chains to heal guard/fault failures; when
        False, the structured error propagates instead.
    max_reruns: fresh reruns the engine may spend healing a failed run.
    """

    max_iterations: int | None = None
    no_progress_window: int = 64
    invariants: bool = True
    audit: bool = True
    degrade: bool = True
    max_reruns: int = 2

    def __post_init__(self) -> None:
        if self.no_progress_window < 0:
            raise ValueError(
                f"no_progress_window must be >= 0, got {self.no_progress_window}"
            )
        if self.max_reruns < 0:
            raise ValueError(f"max_reruns must be >= 0, got {self.max_reruns}")


#: Named policies reachable from the CLI / string option.
_NAMED = {
    "default": HealthPolicy(),
    "strict": HealthPolicy(degrade=False),
    "off": HealthPolicy(
        no_progress_window=0, invariants=False, audit=False, max_reruns=0
    ),
}


def resolve_health(spec) -> HealthPolicy:
    """Normalize any accepted ``health=`` value into a :class:`HealthPolicy`."""
    if spec is None:
        return _NAMED["default"]
    if isinstance(spec, HealthPolicy):
        return spec
    if isinstance(spec, str):
        try:
            return _NAMED[spec]
        except KeyError:
            raise ValueError(
                f"unknown health policy {spec!r}; choose from {sorted(_NAMED)}"
            ) from None
    raise TypeError(
        f"cannot interpret {spec!r} as a health policy: expected None, "
        f"a HealthPolicy, or one of {sorted(_NAMED)}"
    )
