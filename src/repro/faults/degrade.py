"""Structured degradation events.

When a component falls back along one of the engine's declarative
degradation chains (bitmask mex → sort mex, process pool → serial
scheduler, sharded → sequential coloring, cache disk entry → quarantined
miss, faulted run → fresh rerun), it records a :class:`DegradationEvent`
into the active :class:`DegradationLog`.  The log dedupes by signature
(chain, modes, reason) and counts repeats, so a hot-path fallback that
fires once per round does not balloon the report; each event is also
mirrored into the obs tracer (category ``degrade``) when one is
attached, which is how degradation timelines land in trace artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DegradationEvent", "DegradationLog"]


@dataclass(frozen=True)
class DegradationEvent:
    """One fallback transition along a degradation chain."""

    chain: str        # e.g. "mex", "scheduler", "sharded", "cache", "engine"
    from_mode: str    # what was attempted, e.g. "bitmask"
    to_mode: str      # what it fell back to, e.g. "sort"
    reason: str       # short machine-readable cause, e.g. "word-budget-overflow"
    detail: str = ""  # free-form context (key, error text, ...)

    @property
    def signature(self) -> tuple[str, str, str, str]:
        return (self.chain, self.from_mode, self.to_mode, self.reason)

    def to_dict(self) -> dict:
        return {
            "chain": self.chain,
            "from": self.from_mode,
            "to": self.to_mode,
            "reason": self.reason,
            "detail": self.detail,
        }


class DegradationLog:
    """Collects degradation events, deduped by signature with counts."""

    def __init__(self, tracer=None):
        self.tracer = tracer
        self.events: list[DegradationEvent] = []
        self._counts: dict[tuple, int] = {}

    def record(self, chain: str, from_mode: str, to_mode: str,
               reason: str, detail: str = "") -> DegradationEvent:
        event = DegradationEvent(chain, from_mode, to_mode, reason, detail)
        sig = event.signature
        if sig in self._counts:
            self._counts[sig] += 1
        else:
            self._counts[sig] = 1
            self.events.append(event)
        if self.tracer is not None:
            self.tracer.event(
                f"degrade:{chain}",
                category="degrade",
                args=event.to_dict(),
            )
        return event

    def count(self, event: DegradationEvent) -> int:
        return self._counts.get(event.signature, 0)

    def report(self) -> list[dict]:
        """JSON-able, submission-ordered events with repeat counts."""
        return [
            {**e.to_dict(), "count": self._counts[e.signature]}
            for e in self.events
        ]

    def absorb(self, report: list[dict]) -> None:
        """Merge a sub-report (e.g. from a worker process) into this log."""
        for entry in report:
            event = DegradationEvent(
                chain=entry["chain"],
                from_mode=entry["from"],
                to_mode=entry["to"],
                reason=entry["reason"],
                detail=entry.get("detail", ""),
            )
            sig = event.signature
            repeat = int(entry.get("count", 1))
            if sig in self._counts:
                self._counts[sig] += repeat
            else:
                self._counts[sig] = repeat
                self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)
