"""Call-site dispatch for the compiled engine.

The hot NumPy paths (kernels, trace builder, cache model) each ask this
module "can you do this one?" at the top of their function.  Every hook
returns a computed result **or ``None``** — ``None`` means "run your
existing vectorized path", which keeps ``gpusim``/``cpusim`` behavior
untouched byte-for-byte and lets the compiled tier decline anything it
cannot prove exact (wrong dtype, non-contiguous input, unsorted
stream).

Activation follows the ``_MEX_STRATEGY`` idiom from
:mod:`repro.coloring.kernels`: a process-global flag flipped by the
:func:`scope` context manager, which
:class:`~repro.engine.backend.CompiledSimBackend` wraps around each
round loop.  The engine is single-threaded per process, so a module
global (not TLS) is the correct scope.

Only the *functional* halves are replaced.  Pricing — the trace
descriptors charged per access — is emitted by the same unchanged code
either way, so simulated timings stay byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from . import runtime

__all__ = ["scope", "active", "tier"]

#: Compiled kernel table while a scope is active, else None.
_K: dict | None = None
#: Resolved tier name of the active scope (for result metadata).
_TIER: str | None = None

#: Persistent mex generation counter (shared stamp arrays never need
#: clearing; uint64 generations cannot realistically collide).
_GEN = np.ones(1, dtype=np.uint64)

#: Grow-only scratch arrays keyed by role.
_SCRATCH: dict[str, np.ndarray] = {}

#: Monotone epoch for the hash tables' slot-validity stamps (a slot is
#: live iff its gen equals the call's epoch — replaces per-call memset).
_EPOCH = np.zeros(1, dtype=np.int64)


def _next_epoch() -> int:
    _EPOCH[0] += 1
    return int(_EPOCH[0])


def active() -> bool:
    """True while a compiled scope is active *and* a tier is loaded."""
    return _K is not None


def tier() -> str | None:
    """Tier name of the active scope (``'numba'``/``'cc'``/``'numpy'``)."""
    return _TIER


@contextmanager
def scope(jit: str = "auto"):
    """Activate compiled dispatch for the dynamic extent of a run."""
    global _K, _TIER
    prev = (_K, _TIER)
    tier_name, kernels = runtime.get_kernels(jit)
    _K, _TIER = kernels, tier_name
    try:
        yield tier_name
    finally:
        _K, _TIER = prev


def _scratch(name: str, size: int, dtype, zero: bool = False) -> np.ndarray:
    buf = _SCRATCH.get(name)
    if buf is None or buf.shape[0] < size:
        cap = max(size, 1024)
        if buf is not None:
            cap = max(cap, buf.shape[0] * 2)
        buf = (np.zeros if zero else np.empty)(cap, dtype=dtype)
        _SCRATCH[name] = buf
    return buf


def _table(name: str, size: int, zero: bool = False) -> np.ndarray:
    """Power-of-two hash-table buffer of exactly ``size`` entries.

    Epoch stamps make stale contents harmless (each call's epoch is
    fresh), so a grown table never needs re-zeroing beyond its initial
    allocation.
    """
    buf = _SCRATCH.get(name)
    if buf is None or buf.shape[0] < size:
        buf = (np.zeros if zero else np.empty)(size, dtype=np.int64)
        _SCRATCH[name] = buf
    return buf[:size]


def _stamp_for(max_run: int) -> np.ndarray:
    """Generation-stamped mex scratch sized so truncation never bites."""
    return _scratch("stamp", int(max_run) + 2, np.uint64)


def _c64(a: np.ndarray) -> bool:
    return a.dtype == np.int64 and a.flags.c_contiguous


def _c32(a: np.ndarray) -> bool:
    return a.dtype == np.int32 and a.flags.c_contiguous


def _table_size(n: int) -> int:
    """Power-of-two open-addressing table with load factor <= 0.5."""
    size = 16
    while size < 2 * n:
        size *= 2
    return size


# ----------------------------------------------------------------------
# coloring kernels
# ----------------------------------------------------------------------
def mex_sorted(seg_ids, nbr_colors, num_segments):
    """Sorted-segment mex; exact twin of the bitmask/sort NumPy paths."""
    if _K is None:
        return None
    if not (_c64(seg_ids) and _c32(nbr_colors)):
        return None
    max_run = _K["max_seg_run"](seg_ids)
    out = np.empty(int(num_segments), dtype=np.int32)
    _K["mex_sorted"](
        seg_ids, nbr_colors, int(num_segments), out, _stamp_for(max_run),
        _GEN,
    )
    return out


def waved_color(active_ids, seg, nbr, colors, bounds, epos):
    """The fused wave loop of ``speculative_color_waved``.

    Per wave: snapshot-read mex for every position, then commit —
    the same two-phase visibility as the vectorized gather/scatter.
    Writes ``colors`` in place and returns the per-position ``out``
    array, or ``None`` to decline.
    """
    if _K is None:
        return None
    if not (
        _c64(active_ids) and _c64(seg) and _c32(nbr) and _c32(colors)
        and _c64(bounds) and _c64(epos)
    ):
        return None
    max_run = _K["max_seg_run"](seg)
    out = np.ones(active_ids.shape[0], dtype=np.int32)
    _K["waved_color"](
        active_ids, seg, nbr, bounds, epos, colors, out,
        _stamp_for(max_run), _GEN,
    )
    return out


def detect_conflicts(seg, nbr, colors, scope_ids, num_scope):
    """Loser mask over monochromatic edges, indexed by scope position.

    ``scope_ids=None`` means seg positions *are* vertex ids (full-graph
    expansion).  Returns a uint8 mask of ``num_scope`` entries, or
    ``None`` to decline.
    """
    if _K is None:
        return None
    if not (_c64(seg) and _c32(nbr) and _c32(colors)):
        return None
    loser = np.zeros(int(num_scope), dtype=np.uint8)
    if scope_ids is None:
        _K["detect_conflicts_full"](seg, nbr, colors, loser)
        return loser
    if not _c64(scope_ids):
        return None
    _K["detect_conflicts_subset"](seg, scope_ids, nbr, colors, loser)
    return loser


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def pack_mask(mask):
    """``np.flatnonzero`` over a bool/uint8 mask, or ``None``."""
    if _K is None:
        return None
    if mask.dtype not in (np.bool_, np.uint8) or not mask.flags.c_contiguous:
        return None
    n = mask.shape[0]
    buf = _scratch("pack_out", n, np.int64)
    k = _K["pack_mask"](mask.view(np.uint8), buf)
    return buf[:k].copy()


# ----------------------------------------------------------------------
# pricing-model primitives (gpusim cache + trace)
# ----------------------------------------------------------------------
def reuse_prev(line_ids):
    """Re-touch positions and their previous touch, plus unique count.

    Returns ``(idx, prev, num_unique)`` where the (idx, prev) pair *set*
    equals the stable-argsort formulation's — downstream use is a
    scatter and an elementwise compare, so emission order is free.
    ``None`` declines (unsupported dtype).
    """
    if _K is None:
        return None
    if line_ids.dtype == np.int32 and line_ids.flags.c_contiguous:
        fn = _K["reuse_prev_i32"]
    elif line_ids.dtype == np.int64 and line_ids.flags.c_contiguous:
        fn = _K["reuse_prev_i64"]
    else:
        return None
    n = line_ids.shape[0]
    size = _table_size(n)
    tkey = _table("reuse_tkey", size)
    tval = _table("reuse_tval", size)
    tgen = _table("reuse_tgen", size, zero=True)
    idx = np.empty(n, dtype=np.int64)
    prev = np.empty(n, dtype=np.int64)
    k = fn(line_ids, idx, prev, tkey, tval, tgen, _next_epoch())
    return idx[:k], prev[:k], n - k


def first_occurrences(key):
    """First index of each distinct key, in key-sorted order.

    Exactly ``np.unique(key, return_index=True)[1]`` — the contract of
    ``repro.gpusim.trace._first_occurrences``.  ``None`` declines.
    """
    if _K is None:
        return None
    if not _c64(key):
        return None
    n = key.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    size = _table_size(n)
    tkey = _table("fo_tkey", size)
    tgen = _table("fo_tgen", size, zero=True)
    ukey = _scratch("fo_ukey", n, np.int64)
    upos = _scratch("fo_upos", n, np.int64)
    perm = _scratch("fo_perm", n, np.int64)
    tmp_perm = _scratch("fo_tmp_perm", n, np.int64)
    key_buf = _scratch("fo_key_buf", n, np.int64)
    tmp_key = _scratch("fo_tmp_key", n, np.int64)
    out = np.empty(n, dtype=np.int64)
    k = _K["first_occurrences"](
        key, out, ukey, upos, tkey, tgen, _next_epoch(), perm, tmp_perm,
        key_buf, tmp_key,
    )
    return out[:k].copy()


def coalesce_first(warp, step_arr, line, max_warp, max_step, max_line):
    """Coalescing unique over (warp, step, line): first index per key.

    Exactly what the trace builder gets from packing the components into
    one arithmetic key and calling ``_first_occurrences``: bit-packing
    preserves the key's ordering and equality classes, so an LSD radix
    sort over the bitkey plus an adjacent-run scan selects the same
    indices in the same (key-sorted) order.  ``None`` declines.
    """
    if _K is None or "first_occ3" not in _K:
        return None
    if not (_c32(warp) and _c64(line)):
        return None
    if step_arr.dtype != np.int64 or step_arr.ndim != 1:
        return None
    const_step = step_arr.strides[0] == 0
    if not const_step and not step_arr.flags.c_contiguous:
        return None
    n = line.shape[0]
    wb = int(max_warp - 1).bit_length()
    sb = 0 if const_step else int(max_step - 1).bit_length()
    lb = int(max_line - 1).bit_length()
    if wb + sb + lb > 62:
        return None
    # The kernel picks balanced digit widths of at most 19 bits.
    buckets = 1 << min(19, max(wb + sb + lb, 1))
    sel = _scratch("fo3_sel", n, np.int64)
    perm = _scratch("fo3_perm", n, np.int64)
    tmp_perm = _scratch("fo3_tmp_perm", n, np.int64)
    key_buf = _scratch("fo3_key_buf", n, np.int64)
    tmp_key = _scratch("fo3_tmp_key", n, np.int64)
    count = _scratch("fo3_count", buckets, np.int64)
    m = _K["first_occ3"](
        warp, None if const_step else step_arr, line, wb, sb, lb,
        sel, perm, tmp_perm, key_buf, tmp_key, count,
    )
    return sel[:m].copy()


def issue_order3(wave, warp, step, max_wave, max_warp, max_step):
    """Issue ordering over (wave, warp, step) as a bitkey LSD radix.

    Bit-packing the components preserves the arithmetic packed key's
    ordering, so the LSD passes produce the identical permutation to
    the stable argsort of the packed key.  Declines (``None``) on
    unsupported dtypes or when the components' widths overflow the
    bitkey.
    """
    if _K is None:
        return None
    if not _c32(wave):
        return None
    if warp.dtype not in (np.int32, np.int64) or not warp.flags.c_contiguous:
        return None
    if step.dtype not in (np.int32, np.int64) or not step.flags.c_contiguous:
        return None
    n = wave.shape[0]
    vb = int(max_wave - 1).bit_length()
    wb = int(max_warp - 1).bit_length()
    sb = int(max_step - 1).bit_length()
    if vb + wb + sb > 62:
        return None
    buckets = 1 << min(19, max(vb + wb + sb, 1))
    perm = np.empty(n, dtype=np.int64)
    if n == 0:
        return perm
    tmp_perm = _scratch("o3_tmp_perm", n, np.int64)
    key_buf = _scratch("o3_key_buf", n, np.int64)
    tmp_key = _scratch("o3_tmp_key", n, np.int64)
    count = _scratch("o3_count", buckets, np.int64)
    _K["order3"](wave, warp, step, vb, wb, sb, perm, tmp_perm, key_buf,
                 tmp_key, count)
    return perm


def emit_coalesced(kind, warp, step_arr, line, sm, wave,
                   max_warp, max_step, max_line, seq_off, out):
    """Coalesce and append one access stream into arena columns.

    Fuses :func:`coalesce_first` with the narrowing gathers the trace
    builder would otherwise run as separate NumPy passes: the kernel
    dedups (warp, step, line), then writes the surviving transactions'
    narrowed columns straight into ``out`` — a tuple of contiguous
    arena views ``(kind u8, line i32, sm i32, warp i32, wave i32,
    step i32)``, each at least as long as the input.  Emitted order is
    the bitkey-sorted order, identical to ``column[sel]`` on the NumPy
    path.  Returns the emitted count, or ``None`` to decline (caller
    falls back to the unfused path).
    """
    if _K is None or "emit_coalesced" not in _K:
        return None
    if not (_c32(warp) and _c32(sm) and _c32(wave) and _c64(line)):
        return None
    if step_arr.dtype != np.int64 or step_arr.ndim != 1:
        return None
    const_step = step_arr.strides[0] == 0
    if not const_step and not step_arr.flags.c_contiguous:
        return None
    # The arena stores narrow columns; anything wider than the trace
    # builder's own int32 thresholds declines into the legacy path.
    if max_line > (1 << 31) or max_step > (1 << 21):
        return None
    n = line.shape[0]
    wb = int(max_warp - 1).bit_length()
    sb = 0 if const_step else int(max_step - 1).bit_length()
    lb = int(max_line - 1).bit_length()
    if wb + sb + lb > 62:
        return None
    buckets = 1 << min(19, max(wb + sb + lb, 1))
    perm = _scratch("fo3_perm", n, np.int64)
    tmp_perm = _scratch("fo3_tmp_perm", n, np.int64)
    key_buf = _scratch("fo3_key_buf", n, np.int64)
    tmp_key = _scratch("fo3_tmp_key", n, np.int64)
    count = _scratch("fo3_count", buckets, np.int64)
    out_kind, out_line, out_sm, out_warp, out_wave, out_step = out
    return _K["emit_coalesced"](
        warp, None if const_step else step_arr,
        int(step_arr[0]) if const_step and n else 0,
        line, sm, wave, wb, sb, lb, int(kind), int(seq_off),
        perm, tmp_perm, key_buf, tmp_key, count,
        out_kind, out_line, out_sm, out_warp, out_wave, out_step,
    )


def merge_order(wave, warp, step, seg_off, max_wave, max_warp, max_step):
    """Issue ordering as a stable k-way merge of presorted segments.

    Exact replacement for the (wave, warp, step) stable argsort when
    every segment is internally key-sorted — which arena segments are
    by construction; the kernel re-verifies on the fly and ``None`` is
    returned on any violation (or unsupported dtypes), falling back to
    the radix sort.
    """
    if _K is None or "merge_order" not in _K:
        return None
    if not (_c32(wave) and _c32(warp) and _c32(step)):
        return None
    vb = int(max_wave - 1).bit_length()
    wb = int(max_warp - 1).bit_length()
    sb = int(max_step - 1).bit_length()
    if vb + wb + sb > 62:
        return None
    nseg = seg_off.shape[0] - 1
    n = wave.shape[0]
    perm = np.empty(n, dtype=np.int64)
    if n == 0 or nseg <= 0:
        return perm[:0]
    heap_key = _scratch("mo_heap_key", nseg, np.int64)
    heap_seg = _scratch("mo_heap_seg", nseg, np.int64)
    pos = _scratch("mo_pos", nseg, np.int64)
    rc = _K["merge_order"](wave, warp, step, seg_off, wb, sb,
                           heap_key, heap_seg, pos, perm)
    if rc != 0:
        return None
    return perm


#: Largest line id the fused hierarchy walk will size a direct-address
#: last-seen table for (two int64 arrays; 1 << 24 lines = 256 MiB cap).
WALK_LINE_CAP = 1 << 24


def walk_supported(order, kind, line, sm):
    """Dtype/contiguity precheck for the fused hierarchy walk.

    The walk consumes RNG draws between its passes, so every reason to
    decline must be established *before* any pass runs — a mid-walk
    fallback would leave the generator's stream diverged from the
    reference path's.
    """
    return (
        _K is not None
        and "walk_stats" in _K
        and _c64(order)
        and kind.dtype == np.uint8 and kind.flags.c_contiguous
        and _c32(sm)
        and line.dtype in (np.int32, np.int64)
        and line.flags.c_contiguous
    )


def walk_stats(kind, sm, line, num_sms, ldg_code, atomic_code):
    """Order-free stream facts: per-SM __ldg counts, atomics, maxima.

    Returns ``(ldg_per_sm, num_atomics, max_line, max_sm)``; the caller
    validates ``max_sm < num_sms`` and ``max_line`` against the table
    cap before committing to the fused path.
    """
    ldg_per_sm = np.zeros(int(num_sms), dtype=np.int64)
    out3 = np.zeros(3, dtype=np.int64)
    _K["walk_stats"](kind, sm, line, int(num_sms), int(ldg_code),
                     int(atomic_code), ldg_per_sm, out3)
    return ldg_per_sm, int(out3[0]), int(out3[1]), int(out3[2])


def walk_ro(order, kind, line, sm, ldg_code, rep_sm, rep_count, max_line):
    """Representative-SM __ldg substream reuse gaps, in issue order.

    ``gap[j]`` is the substream-position gap to the previous touch of
    the same line (-1 = first touch) — exactly the ``idx - prev`` pairs
    the argsort formulation feeds its threshold test.
    """
    tval = _scratch("walk_tval", int(max_line) + 1, np.int64)
    tgen = _scratch("walk_tgen", int(max_line) + 1, np.int64, zero=True)
    gap = np.empty(int(rep_count), dtype=np.int64)
    k = _K["walk_ro"](order, kind, line, sm, int(ldg_code), int(rep_sm),
                      gap, tval, tgen, _next_epoch())
    return gap[:k]


def walk_l2(order, kind, line, sm, ldg_code, store_code, rep_sm, rep_hits,
            draws, rate, max_line):
    """L2 substream (everything the RO cache did not absorb).

    Resolves each __ldg's RO verdict in issue order — representative-SM
    entries from ``rep_hits``, the rest from ``draws`` compared against
    ``rate`` (consumed in the same ascending-position order as the
    boolean-mask assignment) — and emits the L2 substream's reuse gaps
    and stall flags.  Returns ``(l2_gap, l2_stall, ro_hits)``.
    """
    n = order.shape[0]
    tval = _scratch("walk_tval", int(max_line) + 1, np.int64)
    tgen = _scratch("walk_tgen", int(max_line) + 1, np.int64, zero=True)
    l2_gap = _scratch("walk_l2_gap", n, np.int64)
    l2_stall = _scratch("walk_l2_stall", n, np.uint8)
    out2 = np.zeros(2, dtype=np.int64)
    if rep_hits.dtype == np.bool_:
        rep_hits = rep_hits.view(np.uint8)
    _K["walk_l2"](order, kind, line, sm, int(ldg_code), int(store_code),
                  int(rep_sm), rep_hits, draws, float(rate), l2_gap,
                  l2_stall, tval, tgen, _next_epoch(), out2)
    l2n = int(out2[0])
    return l2_gap[:l2n], l2_stall[:l2n], int(out2[1])


def issue_order(key):
    """Stable argsort of the packed issue keys (radix LSD ≡ kind='stable').

    Keys must be non-negative int64 (the trace builder guarantees this —
    it falls back to lexsort before keys could reach 2**62).
    """
    if _K is None:
        return None
    if not _c64(key):
        return None
    n = key.shape[0]
    perm = np.empty(n, dtype=np.int64)
    if n == 0:
        return perm
    tmp_perm = _scratch("io_tmp_perm", n, np.int64)
    key_buf = _scratch("io_key_buf", n, np.int64)
    tmp_key = _scratch("io_tmp_key", n, np.int64)
    _K["issue_order"](key, perm, tmp_perm, key_buf, tmp_key)
    return perm


def _reset_for_tests() -> None:
    """Drop scratch buffers and deactivate (test isolation)."""
    global _K, _TIER
    _K = None
    _TIER = None
    _SCRATCH.clear()
    _GEN[0] = 1
