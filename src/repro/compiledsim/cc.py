"""Compile-and-load for the C kernel tier.

Builds :data:`repro.compiledsim.csrc.KERNELS_C` into a shared library
with the system C compiler and binds it through :mod:`ctypes`.  The
build is disk-cached: the library lands in a per-user cache directory
keyed by a hash of the source (plus compiler identity), so a machine
pays the ~1 s compile exactly once — analogous to numba's
``cache=True`` on-disk kernel cache, which this tier substitutes for
when numba itself is not importable.

Everything here degrades by returning ``None``/raising into the tier
probe in :mod:`repro.compiledsim.runtime`; no hard dependency on a
compiler being present.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from .csrc import KERNELS_C, SOURCE_VERSION

__all__ = ["load_kernels", "cache_dir", "CCBuildError"]

_COMPILERS = ("cc", "gcc", "clang")
_CFLAGS = ["-O3", "-march=native", "-fPIC", "-shared", "-fvisibility=hidden"]


class CCBuildError(RuntimeError):
    """The C tier could not be built (no compiler, or compile failed)."""


def cache_dir() -> Path:
    """Directory holding cached kernel libraries (override via env)."""
    env = os.environ.get("REPRO_COMPILED_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "compiledsim"


def _find_compiler() -> str | None:
    env = os.environ.get("CC")
    if env and shutil.which(env):
        return env
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _source_tag(compiler: str) -> str:
    h = hashlib.sha256()
    h.update(f"v{SOURCE_VERSION}:{compiler}:".encode())
    h.update(KERNELS_C.encode())
    return h.hexdigest()[:16]


def _lib_suffix() -> str:
    return ".dylib" if sys.platform == "darwin" else ".so"


def _build(compiler: str, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as tmp:
        src = Path(tmp) / "kernels.c"
        src.write_text(KERNELS_C, encoding="utf-8")
        tmp_out = Path(tmp) / out_path.name
        cmd = [compiler, *_CFLAGS, str(src), "-o", str(tmp_out)]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise CCBuildError(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr}"
            )
        # Atomic publish so concurrent workers never load a half-written
        # library; the loser of the race just overwrites with identical
        # bytes.
        stage = out_path.with_name(out_path.name + f".{os.getpid()}.tmp")
        shutil.copy2(tmp_out, stage)
        os.replace(stage, out_path)


_I64P = ctypes.POINTER(ctypes.c_int64)
_I32P = ctypes.POINTER(ctypes.c_int32)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_I64 = ctypes.c_int64

#: name -> (restype, argtypes)
_SIGNATURES = {
    "max_seg_run": (_I64, [_I64P, _I64]),
    "mex_sorted": (None, [_I64P, _I32P, _I64, _I64, _I32P, _U64P, _I64, _U64P]),
    "waved_color": (
        None,
        [_I64P, _I64, _I64P, _I32P, _I64P, _I64P, _I64,
         _I32P, _I32P, _U64P, _I64, _U64P],
    ),
    "detect_conflicts_full": (None, [_I64P, _I32P, _I32P, _I64, _U8P]),
    "detect_conflicts_subset": (None, [_I64P, _I64P, _I32P, _I32P, _I64, _U8P]),
    "reuse_prev_i32": (
        _I64, [_I32P, _I64, _I64P, _I64P, _I64P, _I64P, _I64P, _I64, _I64],
    ),
    "reuse_prev_i64": (
        _I64, [_I64P, _I64, _I64P, _I64P, _I64P, _I64P, _I64P, _I64, _I64],
    ),
    "issue_order": (None, [_I64P, _I64, _I64P, _I64P, _I64P, _I64P]),
    "first_occurrences": (
        _I64,
        [_I64P, _I64, _I64P, _I64P, _I64P, _I64P, _I64P, _I64, _I64,
         _I64P, _I64P, _I64P, _I64P],
    ),
    "pack_mask": (_I64, [_U8P, _I64, _I64P]),
}

_DBL = ctypes.c_double
_DBLP = ctypes.POINTER(ctypes.c_double)

_SIGNATURES["first_occ3"] = (
    _I64,
    [_I32P, _I64P, _I64P, _I64, _I64, _I64, _I64,
     _I64P, _I64P, _I64P, _I64P, _I64P, _I64P],
)

for _suf, _lp in (("i32", _I32P), ("i64", _I64P)):
    _SIGNATURES[f"walk_stats_{_suf}"] = (
        None, [_U8P, _I32P, _lp, _I64, _I64, _I64, _I64, _I64P, _I64P],
    )
    _SIGNATURES[f"walk_ro_{_suf}"] = (
        _I64,
        [_I64P, _U8P, _lp, _I32P, _I64, _I64, _I64,
         _I64P, _I64P, _I64P, _I64],
    )
    _SIGNATURES[f"walk_l2_{_suf}"] = (
        None,
        [_I64P, _U8P, _lp, _I32P, _I64, _I64, _I64, _I64,
         _U8P, _DBLP, _DBL, _I64P, _U8P, _I64P, _I64P, _I64, _I64P],
    )

for _wp, _sp in (("w32", _I32P), ("w64", _I64P)):
    for _st, _stp in (("s32", _I32P), ("s64", _I64P)):
        _SIGNATURES[f"order3_{_wp}{_st}"] = (
            None,
            [_I32P, _sp, _stp, _I64, _I64, _I64, _I64,
             _I64P, _I64P, _I64P, _I64P, _I64P],
        )

_SIGNATURES["emit_coalesced"] = (
    _I64,
    [_I32P, _I64P, _I64, _I64P, _I32P, _I32P,
     _I64, _I64, _I64, _I64, _I64, _I64,
     _I64P, _I64P, _I64P, _I64P, _I64P,
     _U8P, _I32P, _I32P, _I32P, _I32P, _I32P],
)
_SIGNATURES["merge_order_i32"] = (
    _I64,
    [_I32P, _I32P, _I32P, _I64P, _I64, _I64, _I64,
     _I64P, _I64P, _I64P, _I64P],
)


def _bind(lib: ctypes.CDLL) -> dict:
    fns = {}
    for name, (restype, argtypes) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes
        fns[name] = fn
    return fns


def load_kernels() -> dict:
    """Build (if needed) and bind the C kernels; raises CCBuildError."""
    compiler = _find_compiler()
    if compiler is None:
        raise CCBuildError("no C compiler found (tried $CC, cc, gcc, clang)")
    tag = _source_tag(compiler)
    lib_path = cache_dir() / f"kernels-{tag}{_lib_suffix()}"
    if not lib_path.exists():
        _build(compiler, lib_path)
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        # Stale/corrupt cache entry (e.g. interrupted publish on an old
        # kernel): rebuild once.
        lib_path.unlink(missing_ok=True)
        _build(compiler, lib_path)
        lib = ctypes.CDLL(str(lib_path))
    return _bind(lib)
