"""C source for the compiled kernel tier (gcc + ctypes).

One translation unit holding the hot loop bodies the dispatch layer can
route to when the compiled engine is active:

* ``mex_sorted`` — exact minimum-excluded-color over sorted CSR segments
  (stamp-array formulation; equivalent to the bitmask/sort NumPy paths).
* ``waved_color`` — the fused wave loop of
  :func:`repro.coloring.kernels.speculative_color_waved`: per wave, a
  snapshot gather + mex pass over every vertex, then a commit pass, so
  wave-granular write visibility is preserved exactly.
* ``detect_conflicts_full`` / ``detect_conflicts_subset`` — the
  monochromatic-edge loser scan.
* ``reuse_prev_i32`` / ``reuse_prev_i64`` — previous-touch indices for
  the reuse-distance cache model (hash last-seen scan; replaces a full
  stable argsort).
* ``first_occurrences`` — first index of each distinct key, emitted in
  key-sorted order (hash scan + radix argsort of the unique subset);
  exactly ``np.unique(key, return_index=True)[1]``.
* ``issue_order`` — stable LSD radix argsort of the packed issue keys;
  the identical permutation to ``np.argsort(key, kind='stable')``.
* ``order3_*`` — the same issue ordering as a 3-key LSD *counting* sort
  over (wave, warp, step); three passes total instead of one byte-radix
  pass per significant key byte.
* ``walk_stats_* / walk_ro_* / walk_l2_*`` — the fused cache-hierarchy
  walk: RO-cache and L2 reuse gaps computed in issue order against
  direct-address last-seen tables, replacing the vectorized
  formulation's gathers, compactions and argsort-based reuse scans.
* ``pack_mask`` — boolean-mask compaction (``np.flatnonzero``).

Everything is integer arithmetic on caller-provided buffers — no malloc,
no floats, no libc beyond ``memset`` — so results are bit-exact across
compilers and optimization levels.  The dispatch layer guarantees dtype
and contiguity before handing out pointers.
"""

from __future__ import annotations

#: Bump when the C source changes incompatibly; part of the .so cache key.
SOURCE_VERSION = 3

KERNELS_C = r"""
#include <stdint.h>
#include <string.h>

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* mex over sorted segments: stamp-array formulation.                  */
/*                                                                     */
/* The mex of a set reached through a segment of d entries is at most  */
/* d + 1, so colors above d + 1 cannot change the answer and are       */
/* skipped; the stamp array marks colors seen this segment using a     */
/* generation counter so it never needs clearing.                      */
/* ------------------------------------------------------------------ */
static inline int32_t mex_of_run(
    const int32_t* nbr_colors, int64_t lo, int64_t hi,
    uint64_t* stamp, int64_t stamp_len, uint64_t gen)
{
    int64_t d = hi - lo;
    int64_t cap = d + 1;                 /* mex is in [1, d + 1] */
    if (cap >= stamp_len) cap = stamp_len - 1;
    for (int64_t e = lo; e < hi; e++) {
        int64_t c = (int64_t)nbr_colors[e];
        if (c >= 1 && c <= cap) stamp[c] = gen;
    }
    for (int64_t c = 1; c <= cap; c++) {
        if (stamp[c] != gen) return (int32_t)c;
    }
    return (int32_t)(cap + 1);
}

/* Longest run of equal adjacent values — bounds the stamp array so    */
/* mex truncation (cap = min(d + 1, stamp_len - 1)) never bites.       */
EXPORT int64_t max_seg_run(const int64_t* seg, int64_t n)
{
    int64_t best = 0;
    int64_t e = 0;
    while (e < n) {
        int64_t s = seg[e];
        int64_t lo = e;
        while (e < n && seg[e] == s) e++;
        if (e - lo > best) best = e - lo;
    }
    return best;
}

/* seg must be non-decreasing; out has num_segments entries.           */
EXPORT void mex_sorted(
    const int64_t* seg, const int32_t* nbr_colors, int64_t n,
    int64_t num_segments, int32_t* out,
    uint64_t* stamp, int64_t stamp_len, uint64_t* gen_io)
{
    for (int64_t s = 0; s < num_segments; s++) out[s] = 1;
    int64_t e = 0;
    uint64_t gen = *gen_io;
    while (e < n) {
        int64_t s = seg[e];
        int64_t lo = e;
        while (e < n && seg[e] == s) e++;
        gen++;
        out[s] = mex_of_run(nbr_colors, lo, e, stamp, stamp_len, gen);
    }
    *gen_io = gen;
}

/* ------------------------------------------------------------------ */
/* Fused wave loop: per wave, compute every vertex's color from the    */
/* wave-entry snapshot (phase 1), then commit (phase 2) — the same     */
/* two-phase visibility the vectorized NumPy wave loop has.            */
/* ------------------------------------------------------------------ */
EXPORT void waved_color(
    const int64_t* active_ids, int64_t n_active,
    const int64_t* seg, const int32_t* nbr,
    const int64_t* bounds, const int64_t* epos, int64_t n_waves,
    int32_t* colors, int32_t* out,
    uint64_t* stamp, int64_t stamp_len, uint64_t* gen_io)
{
    uint64_t gen = *gen_io;
    for (int64_t w = 0; w < n_waves; w++) {
        int64_t lo = bounds[w], hi = bounds[w + 1];
        if (hi <= lo) continue;
        int64_t e = epos[w], ehi = epos[w + 1];
        /* phase 1: snapshot reads only */
        for (int64_t pos = lo; pos < hi; pos++) {
            int64_t elo = e;
            while (e < ehi && seg[e] == pos) e++;
            if (e == elo) { out[pos] = 1; continue; }
            gen++;
            int64_t d = e - elo;
            int64_t cap = d + 1;
            if (cap >= stamp_len) cap = stamp_len - 1;
            for (int64_t k = elo; k < e; k++) {
                int64_t c = (int64_t)colors[nbr[k]];
                if (c >= 1 && c <= cap) stamp[c] = gen;
            }
            int32_t mex = (int32_t)(cap + 1);
            for (int64_t c = 1; c <= cap; c++) {
                if (stamp[c] != gen) { mex = (int32_t)c; break; }
            }
            out[pos] = mex;
        }
        /* phase 2: commit the wave */
        for (int64_t pos = lo; pos < hi; pos++) {
            colors[active_ids[pos]] = out[pos];
        }
    }
    *gen_io = gen;
}

/* ------------------------------------------------------------------ */
/* Conflict detection: mark the smaller endpoint of every              */
/* monochromatic edge.  "full" means seg positions are the vertex ids  */
/* themselves (whole-graph expansion); "subset" indirects through the  */
/* scope array.                                                        */
/* ------------------------------------------------------------------ */
EXPORT void detect_conflicts_full(
    const int64_t* seg, const int32_t* nbr, const int32_t* colors,
    int64_t m, uint8_t* loser)
{
    for (int64_t e = 0; e < m; e++) {
        int64_t v = seg[e];
        int64_t w = (int64_t)nbr[e];
        int32_t cv = colors[v];
        if (cv > 0 && cv == colors[w] && v < w) loser[v] = 1;
    }
}

EXPORT void detect_conflicts_subset(
    const int64_t* seg, const int64_t* scope_ids, const int32_t* nbr,
    const int32_t* colors, int64_t m, uint8_t* loser)
{
    for (int64_t e = 0; e < m; e++) {
        int64_t s = seg[e];
        int64_t v = scope_ids[s];
        int64_t w = (int64_t)nbr[e];
        int32_t cv = colors[v];
        if (cv > 0 && cv == colors[w] && v < w) loser[s] = 1;
    }
}

/* ------------------------------------------------------------------ */
/* Reuse-distance previous-touch scan.                                 */
/*                                                                     */
/* For every re-touch of a cache line, record its stream position and  */
/* the previous touch's position.  The (idx, prev) pair set is exactly */
/* what the stable-argsort formulation extracts; the downstream hit    */
/* mask is a scatter, so emission order is irrelevant.                 */
/*                                                                     */
/* Open addressing, linear probing; table_size is a power of two       */
/* >= 2n.  Fibonacci hashing keeps the *high* product bits (the mixed  */
/* ones).  Slots carry an epoch stamp so reusing a cached table costs  */
/* nothing — a slot belongs to this call iff gen[h] == epoch, which    */
/* replaces the O(table) memset.                                       */
/* ------------------------------------------------------------------ */
static inline int table_shift(int64_t table_size)
{
    return 64 - __builtin_ctzll((uint64_t)table_size);
}

static inline uint64_t hash_key(int64_t key, int shift)
{
    return ((uint64_t)key * 0x9E3779B97F4A7C15ULL) >> shift;
}

#define REUSE_PREV(NAME, LINETYPE)                                     \
EXPORT int64_t NAME(                                                   \
    const LINETYPE* line, int64_t n,                                   \
    int64_t* idx_out, int64_t* prev_out,                               \
    int64_t* table_key, int64_t* table_val, int64_t* table_gen,        \
    int64_t table_size, int64_t epoch)                                 \
{                                                                      \
    uint64_t mask = (uint64_t)(table_size - 1);                        \
    int shift = table_shift(table_size);                               \
    int64_t k = 0;                                                     \
    for (int64_t i = 0; i < n; i++) {                                  \
        int64_t key = (int64_t)line[i];                                \
        uint64_t h = hash_key(key, shift);                             \
        for (;;) {                                                     \
            if (table_gen[h] != epoch) {                               \
                table_gen[h] = epoch;                                  \
                table_key[h] = key;                                    \
                table_val[h] = i;                                      \
                break;                                                 \
            }                                                          \
            if (table_key[h] == key) {                                 \
                idx_out[k] = i;                                        \
                prev_out[k] = table_val[h];                            \
                table_val[h] = i;                                      \
                k++;                                                   \
                break;                                                 \
            }                                                          \
            h = (h + 1) & mask;                                        \
        }                                                              \
    }                                                                  \
    return k;                                                          \
}

REUSE_PREV(reuse_prev_i32, int32_t)
REUSE_PREV(reuse_prev_i64, int64_t)

/* ------------------------------------------------------------------ */
/* Stable LSD radix argsort of non-negative int64 keys.  Identical     */
/* permutation to np.argsort(key, kind='stable'): LSD counting sorts   */
/* are stable, and passes beyond the highest significant byte are      */
/* skipped (they would be identity permutations).                      */
/* ------------------------------------------------------------------ */
static void radix_argsort(
    const int64_t* key, int64_t n, int64_t* perm,
    int64_t* tmp_perm, int64_t* key_buf, int64_t* tmp_key)
{
    int64_t max_key = 0;
    for (int64_t i = 0; i < n; i++) {
        perm[i] = i;
        key_buf[i] = key[i];
        if (key[i] > max_key) max_key = key[i];
    }
    int passes = 0;
    while (max_key > 0) { passes++; max_key >>= 8; }
    if (passes == 0) return;

    int64_t count[256];
    int64_t* kin = key_buf;  int64_t* kout = tmp_key;
    int64_t* pin = perm;     int64_t* pout = tmp_perm;
    for (int p = 0; p < passes; p++) {
        memset(count, 0, sizeof(count));
        int shift = p * 8;
        for (int64_t i = 0; i < n; i++) {
            count[(kin[i] >> shift) & 0xff]++;
        }
        int64_t total = 0;
        for (int b = 0; b < 256; b++) {
            int64_t c = count[b];
            count[b] = total;
            total += c;
        }
        for (int64_t i = 0; i < n; i++) {
            int64_t slot = count[(kin[i] >> shift) & 0xff]++;
            kout[slot] = kin[i];
            pout[slot] = pin[i];
        }
        int64_t* t;
        t = kin; kin = kout; kout = t;
        t = pin; pin = pout; pout = t;
    }
    if (pin != perm) {
        memcpy(perm, pin, (size_t)n * sizeof(int64_t));
    }
}

EXPORT void issue_order(
    const int64_t* key, int64_t n, int64_t* perm,
    int64_t* tmp_perm, int64_t* key_buf, int64_t* tmp_key)
{
    radix_argsort(key, n, perm, tmp_perm, key_buf, tmp_key);
}

/* ------------------------------------------------------------------ */
/* First-occurrence indices of each distinct key, in key-sorted order  */
/* (np.unique(key, return_index=True)[1]).  Hash scan collects the     */
/* unique (key, first index) pairs, then the radix argsort orders them */
/* by key — keys are unique at that point, so the order is total and   */
/* deterministic.                                                      */
/* ------------------------------------------------------------------ */
EXPORT int64_t first_occurrences(
    const int64_t* key, int64_t n, int64_t* out_pos,
    int64_t* ukey, int64_t* upos,
    int64_t* table_key, int64_t* table_gen, int64_t table_size,
    int64_t epoch,
    int64_t* perm, int64_t* tmp_perm, int64_t* key_buf, int64_t* tmp_key)
{
    uint64_t mask = (uint64_t)(table_size - 1);
    int shift = table_shift(table_size);
    int64_t k = 0;
    int64_t prev = -1;
    for (int64_t i = 0; i < n; i++) {
        int64_t kv = key[i];
        if (i > 0 && kv == prev) continue;  /* adjacent-run fast path */
        prev = kv;
        uint64_t h = hash_key(kv, shift);
        for (;;) {
            if (table_gen[h] != epoch) {     /* empty: record first touch */
                table_gen[h] = epoch;
                table_key[h] = kv;
                ukey[k] = kv;
                upos[k] = i;
                k++;
                break;
            }
            if (table_key[h] == kv) break;   /* seen before: keep first */
            h = (h + 1) & mask;
        }
    }
    radix_argsort(ukey, k, perm, tmp_perm, key_buf, tmp_key);
    for (int64_t i = 0; i < k; i++) out_pos[i] = upos[perm[i]];
    return k;
}

/* ------------------------------------------------------------------ */
/* Boolean-mask compaction (np.flatnonzero over a uint8 mask).         */
/* ------------------------------------------------------------------ */
EXPORT int64_t pack_mask(const uint8_t* mask_arr, int64_t n, int64_t* out)
{
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++) {
        if (mask_arr[i]) out[k++] = i;
    }
    return k;
}

/* ------------------------------------------------------------------ */
/* Coalescing first-occurrence over (warp, step, line) components.     */
/*                                                                     */
/* The trace builder packs the three components into one arithmetic    */
/* key and takes np.unique(..., return_index=True)[1].  Packing with   */
/* bit shifts instead preserves both the ordering and the equality     */
/* classes of the arithmetic key, so an LSD radix sort with three      */
/* heterogeneous digits (one per component) followed by an adjacent    */
/* run scan yields the identical selection — no hash table, no         */
/* power-of-two probing, and the digit count is 3 regardless of key    */
/* magnitude.  ``step == NULL`` means the step component is constant   */
/* across the call (a broadcast scalar) and drops out of the order.    */
/* ------------------------------------------------------------------ */
/* Shared LSD radix over prebuilt bitkeys, carrying (key, perm) pairs
   so every count phase reads sequentially.  Digit widths are balanced
   over the key's total bit count rather than following component
   boundaries: up to 19 bits per pass (512 Ki-entry count array) once
   the stream is large enough to amortize the zero+prefix cost, so a
   37-bit key sorts in two passes instead of three.  Returns 0 when the
   sorted result ended in (key_buf, perm), 1 when in (tmp_key,
   tmp_perm). */
static int lsd_pairs(
    int64_t* key_buf, int64_t* tmp_key, int64_t* perm, int64_t* tmp_perm,
    int64_t n, int64_t nbits, int64_t* count)
{
    if (nbits <= 0 || n <= 0) return 0;
    int64_t cap = 16;
    while (cap < 19 && (n >> (cap - 2)) > 0) cap++;
    if (cap > nbits) cap = nbits;
    int64_t npass = (nbits + cap - 1) / cap;
    int64_t d = (nbits + npass - 1) / npass;
    int flip = 0;
    for (int64_t p = 0; p < npass; p++) {
        int64_t sh = p * d;
        int64_t w = nbits - sh;
        if (w > d) w = d;
        int64_t nb = (int64_t)1 << w;
        int64_t msk = nb - 1;
        int64_t* kin = flip ? tmp_key : key_buf;
        int64_t* kout = flip ? key_buf : tmp_key;
        int64_t* pin = flip ? tmp_perm : perm;
        int64_t* pout = flip ? perm : tmp_perm;
        memset(count, 0, (size_t)nb * sizeof(int64_t));
        for (int64_t i = 0; i < n; i++) count[(kin[i] >> sh) & msk]++;
        int64_t total = 0;
        for (int64_t b = 0; b < nb; b++) {
            int64_t c = count[b];
            count[b] = total;
            total += c;
        }
        for (int64_t i = 0; i < n; i++) {
            int64_t slot = count[(kin[i] >> sh) & msk]++;
            kout[slot] = kin[i];
            pout[slot] = pin[i];
        }
        flip = !flip;
    }
    return flip;
}

EXPORT int64_t first_occ3(
    const int32_t* warp, const int64_t* step, const int64_t* line,
    int64_t n, int64_t wb, int64_t sb, int64_t lb,
    int64_t* sel_out, int64_t* perm, int64_t* tmp_perm,
    int64_t* key_buf, int64_t* tmp_key, int64_t* count)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t k = ((int64_t)warp[i] << (sb + lb)) | line[i];
        if (step) k |= step[i] << lb;
        key_buf[i] = k;
        perm[i] = i;
    }
    int flip = lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n,
                         wb + sb + lb, count);
    const int64_t* kin = flip ? tmp_key : key_buf;
    const int64_t* pin = flip ? tmp_perm : perm;
    int64_t m = 0;
    for (int64_t i = 0; i < n; i++) {
        if (i == 0 || kin[i] != kin[i - 1]) sel_out[m++] = pin[i];
    }
    return m;
}

/* ------------------------------------------------------------------ */
/* Fused cache-hierarchy walk (the RO -> L2 -> DRAM pricing pass).     */
/*                                                                     */
/* Replaces the vectorized formulation's permutation gathers, mask     */
/* algebra, substream compactions and argsort-based reuse-distance     */
/* scans with two passes in issue order.  Last-seen positions live in  */
/* a direct-address table indexed by cache-line id (epoch-stamped, so  */
/* no clearing); gaps are *substream-relative* positions, exactly the  */
/* (idx - prev) the compacted-argsort formulation produces.  The hit   */
/* thresholding itself stays in Python (the threshold depends on the   */
/* substream's unique count, known only after the scan).               */
/*                                                                     */
/* Access-kind codes are passed in (see gpusim.trace.AccessKind).      */
/* ------------------------------------------------------------------ */
#define WALK(SUF, LT)                                                  \
/* Order-free per-stream facts: __ldg count per SM, atomic count, and  \
   the line-id / SM-id maxima the caller needs to size the tables and  \
   validate its invariants before committing to the fused path (the    \
   count write is range-guarded so a violated invariant declines       \
   instead of corrupting memory).  out3 = [atomics, max_line, max_sm]. \
*/                                                                     \
EXPORT void walk_stats_##SUF(                                          \
    const uint8_t* kind, const int32_t* sm, const LT* line, int64_t n, \
    int64_t num_sms, int64_t ldg_code, int64_t atomic_code,            \
    int64_t* ldg_per_sm, int64_t* out3)                                \
{                                                                      \
    int64_t atomics = 0;                                               \
    int64_t max_line = -1;                                             \
    int64_t max_sm = -1;                                               \
    for (int64_t i = 0; i < n; i++) {                                  \
        int64_t s = (int64_t)sm[i];                                    \
        if (s > max_sm) max_sm = s;                                    \
        if (kind[i] == ldg_code && s >= 0 && s < num_sms)              \
            ldg_per_sm[s]++;                                           \
        if (kind[i] == atomic_code) atomics++;                         \
        if ((int64_t)line[i] > max_line) max_line = (int64_t)line[i];  \
    }                                                                  \
    out3[0] = atomics;                                                 \
    out3[1] = max_line;                                                \
    out3[2] = max_sm;                                                  \
}                                                                      \
                                                                       \
/* Representative-SM __ldg substream: gap to previous touch (-1 =      \
   first touch), in issue order.  Returns the substream length.     */ \
EXPORT int64_t walk_ro_##SUF(                                          \
    const int64_t* order, const uint8_t* kind, const LT* line,         \
    const int32_t* sm, int64_t n, int64_t ldg_code, int64_t rep_sm,    \
    int64_t* gap_out,                                                  \
    int64_t* tval, int64_t* tgen, int64_t epoch)                       \
{                                                                      \
    int64_t j = 0;                                                     \
    for (int64_t i = 0; i < n; i++) {                                  \
        int64_t o = order[i];                                          \
        if (kind[o] != ldg_code || (int64_t)sm[o] != rep_sm) continue; \
        int64_t lid = (int64_t)line[o];                                \
        gap_out[j] = (tgen[lid] == epoch) ? j - tval[lid] : -1;        \
        tval[lid] = j;                                                 \
        tgen[lid] = epoch;                                             \
        j++;                                                           \
    }                                                                  \
    return j;                                                          \
}                                                                      \
                                                                       \
/* Everything the RO cache did not absorb, walked in issue order:      \
   resolve each __ldg's RO hit (rep substream verdicts for the rep     \
   SM, Bernoulli draws for the rest, consumed in issue order exactly   \
   as the boolean-mask assignment did), and emit the L2 substream's    \
   gaps + stall flags.  out2 = [l2_n, ro_hits].                     */ \
EXPORT void walk_l2_##SUF(                                             \
    const int64_t* order, const uint8_t* kind, const LT* line,         \
    const int32_t* sm, int64_t n,                                      \
    int64_t ldg_code, int64_t store_code, int64_t rep_sm,              \
    const uint8_t* rep_hits, const double* draws, double rate,         \
    int64_t* l2_gap, uint8_t* l2_stall,                                \
    int64_t* tval, int64_t* tgen, int64_t epoch, int64_t* out2)        \
{                                                                      \
    int64_t rj = 0, oj = 0, l2n = 0, ro_hits = 0;                      \
    for (int64_t i = 0; i < n; i++) {                                  \
        int64_t o = order[i];                                          \
        int64_t k = (int64_t)kind[o];                                  \
        if (k == ldg_code) {                                           \
            int hit;                                                   \
            if ((int64_t)sm[o] == rep_sm) hit = rep_hits[rj++];        \
            else hit = draws[oj++] < rate;                             \
            if (hit) { ro_hits++; continue; }                          \
        }                                                              \
        int64_t lid = (int64_t)line[o];                                \
        l2_gap[l2n] = (tgen[lid] == epoch) ? l2n - tval[lid] : -1;     \
        tval[lid] = l2n;                                               \
        tgen[lid] = epoch;                                             \
        l2_stall[l2n] = (uint8_t)(k != store_code);                    \
        l2n++;                                                         \
    }                                                                  \
    out2[0] = l2n;                                                     \
    out2[1] = ro_hits;                                                 \
}

WALK(i32, int32_t)
WALK(i64, int64_t)

/* ------------------------------------------------------------------ */
/* Issue ordering over (wave, warp, step) as a 3-digit bitkey LSD      */
/* radix sort.  Bit-packing the components preserves the packed        */
/* arithmetic key's ordering exactly, so this is the identical         */
/* permutation to the stable argsort the NumPy path computes — in      */
/* three passes with sequential count-phase reads, regardless of key   */
/* magnitude.                                                          */
/* ------------------------------------------------------------------ */
#define ORDER3(SUF, WARPT, STEPT)                                      \
EXPORT void order3_##SUF(                                              \
    const int32_t* wave, const WARPT* warp, const STEPT* step,         \
    int64_t n, int64_t vb, int64_t wb, int64_t sb,                     \
    int64_t* perm, int64_t* tmp_perm, int64_t* key_buf,                \
    int64_t* tmp_key, int64_t* count)                                  \
{                                                                      \
    for (int64_t i = 0; i < n; i++) {                                  \
        key_buf[i] = ((int64_t)wave[i] << (wb + sb))                   \
                   | ((int64_t)warp[i] << sb) | (int64_t)step[i];      \
        perm[i] = i;                                                   \
    }                                                                  \
    int flip = lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n,          \
                         vb + wb + sb, count);                         \
    if (flip) memcpy(perm, tmp_perm, (size_t)n * sizeof(int64_t));     \
}

ORDER3(w32s32, int32_t, int32_t)
ORDER3(w32s64, int32_t, int64_t)
ORDER3(w64s32, int64_t, int32_t)
ORDER3(w64s64, int64_t, int64_t)

/* ------------------------------------------------------------------ */
/* Fused coalesce-and-emit: the dedup of first_occ3 followed by the    */
/* narrowing gathers the trace builder would otherwise run as five     */
/* separate NumPy passes, written straight into the builder's arena    */
/* columns (no per-call temporaries, no final concatenate).  Output    */
/* order is the bitkey-sorted order — identical to the NumPy path's    */
/* ``column[sel]``.  ``step == NULL`` means a constant step of         */
/* ``cstep``.  Returns the emitted transaction count.                  */
/* ------------------------------------------------------------------ */
EXPORT int64_t emit_coalesced(
    const int32_t* warp, const int64_t* step, int64_t cstep,
    const int64_t* line, const int32_t* sm, const int32_t* wave,
    int64_t n, int64_t wb, int64_t sb, int64_t lb,
    int64_t kind, int64_t seq_off,
    int64_t* perm, int64_t* tmp_perm, int64_t* key_buf, int64_t* tmp_key,
    int64_t* count,
    uint8_t* out_kind, int32_t* out_line, int32_t* out_sm,
    int32_t* out_warp, int32_t* out_wave, int32_t* out_step)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t k = ((int64_t)warp[i] << (sb + lb)) | line[i];
        if (step) k |= step[i] << lb;
        key_buf[i] = k;
        perm[i] = i;
    }
    int flip = lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n,
                         wb + sb + lb, count);
    const int64_t* kin = flip ? tmp_key : key_buf;
    const int64_t* pin = flip ? tmp_perm : perm;
    int64_t m = 0;
    for (int64_t i = 0; i < n; i++) {
        if (i == 0 || kin[i] != kin[i - 1]) {
            int64_t p = pin[i];
            out_kind[m] = (uint8_t)kind;
            out_line[m] = (int32_t)line[p];
            out_sm[m] = sm[p];
            out_warp[m] = warp[p];
            out_wave[m] = wave[p];
            out_step[m] = (int32_t)((step ? step[p] : cstep) * 1024 + seq_off);
            m++;
        }
    }
    return m;
}

/* ------------------------------------------------------------------ */
/* Issue ordering as a stable k-way merge of presorted segments.       */
/*                                                                     */
/* Every arena segment leaves emit_coalesced sorted by (warp, step)    */
/* — and wave is monotone in warp (blocks ascend with warps) — so the  */
/* global (wave, warp, step) stable argsort is a merge of the          */
/* segments with ties broken by segment index (segments sit in append  */
/* order, so lower segment == lower global index; equal keys *within*  */
/* a segment keep their relative order, which the merge preserves).    */
/* The presortedness invariant is verified on the fly: any violation   */
/* aborts with -1 and the caller falls back to the radix sort.         */
/* Returns 0 on success.                                               */
/* ------------------------------------------------------------------ */
EXPORT int64_t merge_order_i32(
    const int32_t* wave, const int32_t* warp, const int32_t* step,
    const int64_t* seg_off, int64_t nseg, int64_t wb, int64_t sb,
    int64_t* heap_key, int64_t* heap_seg, int64_t* pos,
    int64_t* perm)
{
    int64_t hn = 0;
    for (int64_t s = 0; s < nseg; s++) {
        pos[s] = seg_off[s];
        if (seg_off[s] >= seg_off[s + 1]) continue;
        int64_t i = seg_off[s];
        int64_t k = ((int64_t)wave[i] << (wb + sb))
                  | ((int64_t)warp[i] << sb) | (int64_t)step[i];
        /* sift-up insert keyed by (key, seg); seg values are inserted
           ascending, so equal keys keep segment order. */
        int64_t c = hn++;
        while (c > 0) {
            int64_t par = (c - 1) >> 1;
            if (heap_key[par] <= k) break;
            heap_key[c] = heap_key[par];
            heap_seg[c] = heap_seg[par];
            c = par;
        }
        heap_key[c] = k;
        heap_seg[c] = s;
    }
    int64_t o = 0;
    while (hn > 0) {
        int64_t s = heap_seg[0];
        int64_t kprev = heap_key[0];
        int64_t i = pos[s]++;
        perm[o++] = i;
        int64_t k;
        int64_t seg2;
        if (pos[s] < seg_off[s + 1]) {
            int64_t j = pos[s];
            k = ((int64_t)wave[j] << (wb + sb))
              | ((int64_t)warp[j] << sb) | (int64_t)step[j];
            if (k < kprev) return -1; /* segment not presorted */
            seg2 = s;
        } else {
            hn--;
            if (hn == 0) break;
            k = heap_key[hn];
            seg2 = heap_seg[hn];
        }
        /* sift-down from the root with comparator (key, seg) */
        int64_t c = 0;
        for (;;) {
            int64_t l = 2 * c + 1;
            if (l >= hn) break;
            int64_t r = l + 1;
            int64_t best = l;
            if (r < hn && (heap_key[r] < heap_key[l] ||
                           (heap_key[r] == heap_key[l] &&
                            heap_seg[r] < heap_seg[l])))
                best = r;
            if (heap_key[best] < k ||
                (heap_key[best] == k && heap_seg[best] < seg2)) {
                heap_key[c] = heap_key[best];
                heap_seg[c] = heap_seg[best];
                c = best;
            } else {
                break;
            }
        }
        heap_key[c] = k;
        heap_seg[c] = seg2;
    }
    return 0;
}
"""
