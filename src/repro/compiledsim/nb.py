"""numba tier: ``@njit(cache=True)`` mirrors of the C kernels.

Importing this module raises ``ImportError`` when numba is absent; the
tier probe in :mod:`repro.compiledsim.runtime` catches that and falls
through to the C tier (then pure NumPy).  Every function here is the
same integer algorithm as its C twin in :mod:`repro.compiledsim.csrc`
— exclusively int comparisons, adds and shifts — so the two compiled
tiers and the NumPy reference are bit-exact interchangeable.

The array-level calling convention matches what
:func:`repro.compiledsim.runtime.get_kernels` hands to the dispatch
layer: caller-allocated scratch, generation-counter stamp arrays, and
``int64`` return counts.
"""

from __future__ import annotations

import numpy as np

import numba  # noqa: F401  (probe: ImportError here aborts the tier)
from numba import njit

__all__ = ["load_kernels"]

_HASH_MULT = 0x9E3779B97F4A7C15


@njit(cache=True)
def _max_seg_run(seg):
    n = seg.shape[0]
    best = 0
    e = 0
    while e < n:
        s = seg[e]
        lo = e
        while e < n and seg[e] == s:
            e += 1
        if e - lo > best:
            best = e - lo
    return best


@njit(cache=True)
def _mex_sorted(seg, nbr_colors, num_segments, out, stamp, gen_io):
    n = seg.shape[0]
    out[:num_segments] = 1
    gen = gen_io[0]
    e = 0
    while e < n:
        s = seg[e]
        lo = e
        while e < n and seg[e] == s:
            e += 1
        gen += 1
        d = e - lo
        cap = d + 1
        if cap >= stamp.shape[0]:
            cap = stamp.shape[0] - 1
        for k in range(lo, e):
            c = nbr_colors[k]
            if 1 <= c <= cap:
                stamp[c] = gen
        mex = cap + 1
        for c in range(1, cap + 1):
            if stamp[c] != gen:
                mex = c
                break
        out[s] = mex
    gen_io[0] = gen


@njit(cache=True)
def _waved_color(active_ids, seg, nbr, bounds, epos, colors, out, stamp, gen_io):
    gen = gen_io[0]
    for w in range(bounds.shape[0] - 1):
        lo = bounds[w]
        hi = bounds[w + 1]
        if hi <= lo:
            continue
        e = epos[w]
        ehi = epos[w + 1]
        for pos in range(lo, hi):
            elo = e
            while e < ehi and seg[e] == pos:
                e += 1
            if e == elo:
                out[pos] = 1
                continue
            gen += 1
            d = e - elo
            cap = d + 1
            if cap >= stamp.shape[0]:
                cap = stamp.shape[0] - 1
            for k in range(elo, e):
                c = colors[nbr[k]]
                if 1 <= c <= cap:
                    stamp[c] = gen
            mex = cap + 1
            for c in range(1, cap + 1):
                if stamp[c] != gen:
                    mex = c
                    break
            out[pos] = mex
        for pos in range(lo, hi):
            colors[active_ids[pos]] = out[pos]
    gen_io[0] = gen


@njit(cache=True)
def _detect_conflicts_full(seg, nbr, colors, loser):
    for e in range(seg.shape[0]):
        v = seg[e]
        w = nbr[e]
        cv = colors[v]
        if cv > 0 and cv == colors[w] and v < w:
            loser[v] = 1


@njit(cache=True)
def _detect_conflicts_subset(seg, scope_ids, nbr, colors, loser):
    for e in range(seg.shape[0]):
        s = seg[e]
        v = scope_ids[s]
        w = nbr[e]
        cv = colors[v]
        if cv > 0 and cv == colors[w] and v < w:
            loser[s] = 1


@njit(cache=True)
def _table_shift(size):
    shift = 64
    while size > 1:
        size >>= 1
        shift -= 1
    return shift


@njit(cache=True)
def _reuse_prev(line, idx_out, prev_out, table_key, table_val, table_gen,
                epoch):
    size = table_key.shape[0]
    mask = size - 1
    shift = _table_shift(size)
    k = 0
    for i in range(line.shape[0]):
        key = np.int64(line[i])
        h = np.int64((np.uint64(key) * np.uint64(_HASH_MULT)) >> shift)
        while True:
            if table_gen[h] != epoch:
                table_gen[h] = epoch
                table_key[h] = key
                table_val[h] = i
                break
            if table_key[h] == key:
                idx_out[k] = i
                prev_out[k] = table_val[h]
                table_val[h] = i
                k += 1
                break
            h = (h + 1) & mask
    return k


@njit(cache=True)
def _radix_argsort(key, n, perm, tmp_perm, key_buf, tmp_key):
    max_key = 0
    for i in range(n):
        perm[i] = i
        key_buf[i] = key[i]
        if key[i] > max_key:
            max_key = key[i]
    passes = 0
    while max_key > 0:
        passes += 1
        max_key >>= 8
    if passes == 0:
        return
    count = np.zeros(256, dtype=np.int64)
    flip = False
    for p in range(passes):
        count[:] = 0
        shift = p * 8
        if not flip:
            kin, kout, pin, pout = key_buf, tmp_key, perm, tmp_perm
        else:
            kin, kout, pin, pout = tmp_key, key_buf, tmp_perm, perm
        for i in range(n):
            count[(kin[i] >> shift) & 0xFF] += 1
        total = 0
        for b in range(256):
            c = count[b]
            count[b] = total
            total += c
        for i in range(n):
            b = (kin[i] >> shift) & 0xFF
            slot = count[b]
            count[b] = slot + 1
            kout[slot] = kin[i]
            pout[slot] = pin[i]
        flip = not flip
    if flip:
        perm[:n] = tmp_perm[:n]


@njit(cache=True)
def _issue_order(key, perm, tmp_perm, key_buf, tmp_key):
    _radix_argsort(key, key.shape[0], perm, tmp_perm, key_buf, tmp_key)


@njit(cache=True)
def _first_occurrences(
    key, out_pos, ukey, upos, table_key, table_gen, epoch, perm, tmp_perm,
    key_buf, tmp_key,
):
    size = table_key.shape[0]
    mask = size - 1
    shift = _table_shift(size)
    k = 0
    prev = np.int64(-1)
    for i in range(key.shape[0]):
        kv = key[i]
        if i > 0 and kv == prev:
            continue
        prev = kv
        h = np.int64((np.uint64(kv) * np.uint64(_HASH_MULT)) >> shift)
        while True:
            if table_gen[h] != epoch:
                table_gen[h] = epoch
                table_key[h] = kv
                ukey[k] = kv
                upos[k] = i
                k += 1
                break
            if table_key[h] == kv:
                break
            h = (h + 1) & mask
    _radix_argsort(ukey, k, perm, tmp_perm, key_buf, tmp_key)
    for i in range(k):
        out_pos[i] = upos[perm[i]]
    return k


@njit(cache=True)
def _first_occ3_impl(warp, step, has_step, line, wb, sb, lb, sel_out, perm,
                     tmp_perm, key_buf, tmp_key, count):
    n = line.shape[0]
    for i in range(n):
        k = (np.int64(warp[i]) << (sb + lb)) | line[i]
        if has_step:
            k |= step[i] << lb
        key_buf[i] = k
        perm[i] = i
    flip = _lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n, wb + sb + lb,
                      count)
    if not flip:
        kin, pin = key_buf, perm
    else:
        kin, pin = tmp_key, tmp_perm
    m = np.int64(0)
    for i in range(n):
        if i == 0 or kin[i] != kin[i - 1]:
            sel_out[m] = pin[i]
            m += 1
    return m


_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _first_occ3(warp, step, line, wb, sb, lb, sel_out, perm, tmp_perm,
                key_buf, tmp_key, count):
    if step is None:
        return _first_occ3_impl(warp, _EMPTY_I64, False, line, wb, sb, lb,
                                sel_out, perm, tmp_perm, key_buf, tmp_key,
                                count)
    return _first_occ3_impl(warp, step, True, line, wb, sb, lb, sel_out,
                            perm, tmp_perm, key_buf, tmp_key, count)


@njit(cache=True)
def _walk_stats(kind, sm, line, num_sms, ldg_code, atomic_code,
                ldg_per_sm, out3):
    atomics = np.int64(0)
    max_line = np.int64(-1)
    max_sm = np.int64(-1)
    for i in range(kind.shape[0]):
        s = np.int64(sm[i])
        if s > max_sm:
            max_sm = s
        if kind[i] == ldg_code and 0 <= s < num_sms:
            ldg_per_sm[s] += 1
        if kind[i] == atomic_code:
            atomics += 1
        if np.int64(line[i]) > max_line:
            max_line = np.int64(line[i])
    out3[0] = atomics
    out3[1] = max_line
    out3[2] = max_sm


@njit(cache=True)
def _walk_ro(order, kind, line, sm, ldg_code, rep_sm, gap_out, tval, tgen,
             epoch):
    j = np.int64(0)
    for i in range(order.shape[0]):
        o = order[i]
        if kind[o] != ldg_code or np.int64(sm[o]) != rep_sm:
            continue
        lid = np.int64(line[o])
        if tgen[lid] == epoch:
            gap_out[j] = j - tval[lid]
        else:
            gap_out[j] = -1
        tval[lid] = j
        tgen[lid] = epoch
        j += 1
    return j


@njit(cache=True)
def _walk_l2(order, kind, line, sm, ldg_code, store_code, rep_sm, rep_hits,
             draws, rate, l2_gap, l2_stall, tval, tgen, epoch, out2):
    rj = np.int64(0)
    oj = np.int64(0)
    l2n = np.int64(0)
    ro_hits = np.int64(0)
    for i in range(order.shape[0]):
        o = order[i]
        k = np.int64(kind[o])
        if k == ldg_code:
            if np.int64(sm[o]) == rep_sm:
                hit = rep_hits[rj] != 0
                rj += 1
            else:
                hit = draws[oj] < rate
                oj += 1
            if hit:
                ro_hits += 1
                continue
        lid = np.int64(line[o])
        if tgen[lid] == epoch:
            l2_gap[l2n] = l2n - tval[lid]
        else:
            l2_gap[l2n] = -1
        tval[lid] = l2n
        tgen[lid] = epoch
        l2_stall[l2n] = np.uint8(1) if k != store_code else np.uint8(0)
        l2n += 1
    out2[0] = l2n
    out2[1] = ro_hits


@njit(cache=True)
def _lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n, nbits, count):
    flip = False
    if nbits <= 0 or n <= 0:
        return flip
    cap = np.int64(16)
    while cap < 19 and (n >> (cap - 2)) > 0:
        cap += 1
    if cap > nbits:
        cap = np.int64(nbits)
    npass = (nbits + cap - 1) // cap
    d = (nbits + npass - 1) // npass
    for p in range(npass):
        sh = p * d
        w = nbits - sh
        if w > d:
            w = d
        nb = np.int64(1) << w
        msk = nb - 1
        if not flip:
            kin, kout, pin, pout = key_buf, tmp_key, perm, tmp_perm
        else:
            kin, kout, pin, pout = tmp_key, key_buf, tmp_perm, perm
        for b in range(nb):
            count[b] = 0
        for i in range(n):
            count[(kin[i] >> sh) & msk] += 1
        total = np.int64(0)
        for b in range(nb):
            c = count[b]
            count[b] = total
            total += c
        for i in range(n):
            b = (kin[i] >> sh) & msk
            slot = count[b]
            count[b] = slot + 1
            kout[slot] = kin[i]
            pout[slot] = pin[i]
        flip = not flip
    return flip


@njit(cache=True)
def _order3(wave, warp, step, vb, wb, sb, perm, tmp_perm, key_buf, tmp_key,
            count):
    n = wave.shape[0]
    for i in range(n):
        key_buf[i] = ((np.int64(wave[i]) << (wb + sb))
                      | (np.int64(warp[i]) << sb) | np.int64(step[i]))
        perm[i] = i
    flip = _lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n, vb + wb + sb,
                      count)
    if flip:
        for i in range(n):
            perm[i] = tmp_perm[i]


@njit(cache=True)
def _emit_coalesced_impl(warp, step, has_step, cstep, line, sm, wave,
                         wb, sb, lb, kind, seq_off, perm, tmp_perm,
                         key_buf, tmp_key, count, out_kind, out_line,
                         out_sm, out_warp, out_wave, out_step):
    n = line.shape[0]
    for i in range(n):
        k = (np.int64(warp[i]) << (sb + lb)) | line[i]
        if has_step:
            k |= step[i] << lb
        key_buf[i] = k
        perm[i] = i
    flip = _lsd_pairs(key_buf, tmp_key, perm, tmp_perm, n, wb + sb + lb,
                      count)
    if not flip:
        kin, pin = key_buf, perm
    else:
        kin, pin = tmp_key, tmp_perm
    m = np.int64(0)
    for i in range(n):
        if i == 0 or kin[i] != kin[i - 1]:
            p = pin[i]
            out_kind[m] = np.uint8(kind)
            out_line[m] = np.int32(line[p])
            out_sm[m] = sm[p]
            out_warp[m] = warp[p]
            out_wave[m] = wave[p]
            sv = step[p] if has_step else cstep
            out_step[m] = np.int32(sv * 1024 + seq_off)
            m += 1
    return m


def _emit_coalesced(warp, step, cstep, line, sm, wave, wb, sb, lb, kind,
                    seq_off, perm, tmp_perm, key_buf, tmp_key, count,
                    out_kind, out_line, out_sm, out_warp, out_wave,
                    out_step):
    if step is None:
        step, has_step = _EMPTY_I64, False
    else:
        has_step = True
    return _emit_coalesced_impl(
        warp, step, has_step, cstep, line, sm, wave, wb, sb, lb, kind,
        seq_off, perm, tmp_perm, key_buf, tmp_key, count, out_kind,
        out_line, out_sm, out_warp, out_wave, out_step,
    )


@njit(cache=True)
def _merge_order(wave, warp, step, seg_off, wb, sb, heap_key, heap_seg,
                 pos, perm):
    nseg = seg_off.shape[0] - 1
    hn = np.int64(0)
    for s in range(nseg):
        pos[s] = seg_off[s]
        if seg_off[s] >= seg_off[s + 1]:
            continue
        i = seg_off[s]
        k = ((np.int64(wave[i]) << (wb + sb))
             | (np.int64(warp[i]) << sb) | np.int64(step[i]))
        c = hn
        hn += 1
        while c > 0:
            par = (c - 1) >> 1
            if heap_key[par] <= k:
                break
            heap_key[c] = heap_key[par]
            heap_seg[c] = heap_seg[par]
            c = par
        heap_key[c] = k
        heap_seg[c] = s
    o = np.int64(0)
    while hn > 0:
        s = heap_seg[0]
        kprev = heap_key[0]
        i = pos[s]
        pos[s] = i + 1
        perm[o] = i
        o += 1
        if pos[s] < seg_off[s + 1]:
            j = pos[s]
            k = ((np.int64(wave[j]) << (wb + sb))
                 | (np.int64(warp[j]) << sb) | np.int64(step[j]))
            if k < kprev:
                return np.int64(-1)
            seg2 = s
        else:
            hn -= 1
            if hn == 0:
                break
            k = heap_key[hn]
            seg2 = heap_seg[hn]
        c = np.int64(0)
        while True:
            l = 2 * c + 1
            if l >= hn:
                break
            r = l + 1
            best = l
            if r < hn and (heap_key[r] < heap_key[l]
                           or (heap_key[r] == heap_key[l]
                               and heap_seg[r] < heap_seg[l])):
                best = r
            if (heap_key[best] < k
                    or (heap_key[best] == k and heap_seg[best] < seg2)):
                heap_key[c] = heap_key[best]
                heap_seg[c] = heap_seg[best]
                c = best
            else:
                break
        heap_key[c] = k
        heap_seg[c] = seg2
    return np.int64(0)


@njit(cache=True)
def _pack_mask(mask_arr, out):
    k = 0
    for i in range(mask_arr.shape[0]):
        if mask_arr[i]:
            out[k] = i
            k += 1
    return k


def load_kernels() -> dict:
    """Array-level kernel table (same keys as the C tier adapter)."""
    return {
        "max_seg_run": _max_seg_run,
        "mex_sorted": _mex_sorted,
        "waved_color": _waved_color,
        "detect_conflicts_full": _detect_conflicts_full,
        "detect_conflicts_subset": _detect_conflicts_subset,
        "reuse_prev_i32": _reuse_prev,
        "reuse_prev_i64": _reuse_prev,
        "issue_order": _issue_order,
        "first_occurrences": _first_occurrences,
        "first_occ3": _first_occ3,
        "pack_mask": _pack_mask,
        "walk_stats": _walk_stats,
        "walk_ro": _walk_ro,
        "walk_l2": _walk_l2,
        "order3": _order3,
        "emit_coalesced": _emit_coalesced,
        "merge_order": _merge_order,
    }
